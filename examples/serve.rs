//! Perforation-as-a-service: a closed-loop serving demo on a
//! `DeviceGroup` with the non-blocking completion layer.
//!
//! A request generator admits a window of concurrent perforation jobs
//! (mixed apps, mixed error budgets), places each on the least-loaded
//! member, enqueues it on that member's command queue, and harvests
//! finished work through one `CompletionQueue` — no thread ever parks on
//! an individual event. The full-scale measured version of this loop is
//! the `servebench` binary in `crates/bench` (writes
//! `BENCH_server.json`).
//!
//! ```sh
//! cargo run --release --example serve
//! # or pick worker-pool width / fleet size from the environment:
//! KP_SIM_PARALLELISM=4 KP_SIM_DEVICES=2 cargo run --release --example serve
//! ```

use std::collections::HashMap;
use std::time::Instant;

use kernel_perforation::apps::suite;
use kernel_perforation::core::{ApproxConfig, ImageBinding, PerforatedKernel};
use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::{CompletionQueue, DeviceConfig, DeviceGroup, Event, NdRange};

const SIZE: usize = 64;
const REQUESTS: u64 = 200;
const INFLIGHT: usize = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut group = DeviceGroup::new(DeviceConfig::firepro_w5100())?;
    let members = group.device_count();
    println!("serving on {members} member device(s), window of {INFLIGHT} in-flight requests");

    // One shared input frame (a group buffer: coherent fleet-wide, the
    // admission path migrates it on demand) and a pool of per-member
    // output slots so admitted requests never contend on a buffer.
    let frame = synth::photo_like(SIZE, SIZE, 0x5EED);
    let input = group.create_buffer_from("frame", frame.as_slice())?;
    let mut slots: Vec<Vec<_>> = Vec::new();
    for dev in group.members_mut() {
        let pool = (0..INFLIGHT)
            .map(|_| dev.create_buffer::<f32>("out", SIZE * SIZE))
            .collect::<Result<Vec<_>, _>>()?;
        slots.push(pool);
    }
    let queues: Vec<_> = (0..members).map(|m| group.create_queue(m)).collect();
    let range = NdRange::new_2d((SIZE, SIZE), (16, 16))?;

    // Mixed request stream: two apps, three error budgets. A real
    // service would map each caller's budget through tuner results; the
    // demo uses the paper's fig6-style scheme ladder directly.
    let apps = [
        suite::by_name("gaussian").unwrap(),
        suite::by_name("sobel3").unwrap(),
    ];
    let tiers = [
        ("accurate", ApproxConfig::accurate((16, 16))),
        ("Rows1:NN", ApproxConfig::rows1_nn((16, 16))),
        ("Rows2:NN", ApproxConfig::rows2_nn((16, 16))),
    ];

    let cq = CompletionQueue::new();
    let mut pending: HashMap<u64, (Event, Instant, usize, _)> = HashMap::new();
    let mut admitted = 0u64;
    let mut completed = 0u64;
    let mut sim_seconds = 0.0f64;
    let started = Instant::now();

    while completed < REQUESTS {
        // Admission never waits on device work: place, make the frame
        // resident (usually a no-op), enqueue, watch.
        while pending.len() < INFLIGHT && admitted < REQUESTS {
            let req = admitted;
            admitted += 1;
            if req > 0 && req.is_multiple_of(50) {
                // Periodic frame refresh: the new content lands on one
                // member and stales the other copies, so a multi-member
                // fleet pays real (counted, priced) migrations.
                group.write_buffer(input, frame.as_slice())?;
            }
            let app = &apps[req as usize % apps.len()];
            let (_, config) = &tiers[req as usize % tiers.len()];
            let member = group.place();
            group.prefetch(input, member)?;
            let slot = slots[member].pop().expect("pool covers the window");
            let kernel = PerforatedKernel::new(
                app.app,
                ImageBinding {
                    input,
                    aux: None,
                    output: slot,
                    tiled: None,
                    width: SIZE,
                    height: SIZE,
                },
                *config,
            )?;
            let event = queues[member].enqueue_launch(kernel, range, &[])?;
            cq.watch(&event, req);
            pending.insert(req, (event, Instant::now(), member, slot));
        }
        // Harvest: the drainer parks only when nothing is ready.
        let first = cq.next().expect("requests in flight");
        for c in std::iter::once(first).chain(cq.drain()) {
            let (event, t0, member, slot) = pending.remove(&c.token).expect("tracked");
            c.result?;
            let report = event.wait_report()?; // settled: pure lookup
            sim_seconds += report.seconds;
            slots[member].push(slot);
            completed += 1;
            if completed.is_multiple_of(50) {
                println!(
                    "  {completed:4} done, last {:5.1} ms wall, {:9.5} ms simulated",
                    t0.elapsed().as_secs_f64() * 1e3,
                    report.seconds * 1e3
                );
            }
        }
    }

    let stats = group.stats();
    let cfg = group.member(0).config().clone();
    println!(
        "served {REQUESTS} requests in {:.2} s wall ({:.0} req/s)",
        started.elapsed().as_secs_f64(),
        REQUESTS as f64 / started.elapsed().as_secs_f64()
    );
    println!(
        "simulated cost: {:.3} ms kernels + {:.3} ms migrations ({} migrations)",
        sim_seconds * 1e3,
        stats.migration_seconds(&cfg) * 1e3,
        stats.migrations
    );
    Ok(())
}
