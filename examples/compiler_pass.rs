//! The automatic perforation pass: feed an OpenCL-style kernel *as source
//! text* through the PerfCL compiler, print the generated perforated
//! kernel, and run both on the simulated GPU — the "fully automatic
//! compiler-based framework" the paper names as future work (§7).
//!
//! ```sh
//! cargo run --release --example compiler_pass
//! ```

use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::{Device, DeviceConfig, NdRange};
use kernel_perforation::ir::{
    parser::parse,
    pretty,
    transform::{perforate_kernel, IrRecon, IrScheme, PassConfig},
    ArgValue, IrKernel,
};

const GAUSSIAN_SRC: &str = r"
kernel gaussian(global const float* in, global float* out, int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x >= width || y >= height) { return; }
    float acc = 0.0625 * in[clamp(y - 1, 0, height - 1) * width + clamp(x - 1, 0, width - 1)]
              + 0.125  * in[clamp(y - 1, 0, height - 1) * width + clamp(x, 0, width - 1)]
              + 0.0625 * in[clamp(y - 1, 0, height - 1) * width + clamp(x + 1, 0, width - 1)]
              + 0.125  * in[clamp(y, 0, height - 1) * width + clamp(x - 1, 0, width - 1)]
              + 0.25   * in[y * width + x]
              + 0.125  * in[clamp(y, 0, height - 1) * width + clamp(x + 1, 0, width - 1)]
              + 0.0625 * in[clamp(y + 1, 0, height - 1) * width + clamp(x - 1, 0, width - 1)]
              + 0.125  * in[clamp(y + 1, 0, height - 1) * width + clamp(x, 0, width - 1)]
              + 0.0625 * in[clamp(y + 1, 0, height - 1) * width + clamp(x + 1, 0, width - 1)];
    out[y * width + x] = acc;
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(GAUSSIAN_SRC)?;
    let accurate_def = &program.kernels[0];

    let pass = PassConfig {
        scheme: IrScheme::RowsHalf,
        reconstruction: IrRecon::LinearInterpolation,
        tile_w: 16,
        tile_h: 16,
    };
    let perforated_def = perforate_kernel(accurate_def, &pass)?;

    println!(
        "=== generated kernel ===\n{}",
        pretty::print_kernel(&perforated_def)
    );

    // Run both versions on the simulator.
    let size = 256;
    let image = synth::photo_like(size, size, 5);
    let mut dev = Device::new(DeviceConfig::firepro_w5100())?;
    let input = dev.create_buffer_from("in", image.as_slice())?;
    let out_a = dev.create_buffer::<f32>("out_accurate", size * size)?;
    let out_p = dev.create_buffer::<f32>("out_perforated", size * size)?;

    let range = NdRange::new_2d((size, size), (16, 16))?;
    let bind = |out| {
        [
            ("in", ArgValue::Buffer(input)),
            ("out", ArgValue::Buffer(out)),
            ("width", ArgValue::Int(size as i64)),
            ("height", ArgValue::Int(size as i64)),
        ]
    };
    // Both kernels go through one command queue. An `IrKernel` cannot
    // declare which buffers its generated code touches, so the scheduler
    // conservatively orders the two launches — but the enqueue/event API
    // is identical, and the reads ride the same stream.
    let queue = dev.create_queue();
    let accurate = IrKernel::new(accurate_def.clone(), &bind(out_a))?;
    let e_acc = queue.enqueue_launch(accurate, range, &[])?;
    let perforated = IrKernel::new(perforated_def, &bind(out_p))?;
    let e_perf = queue.enqueue_launch(perforated, range, &[])?;
    let read_a = queue.enqueue_read::<f32>(out_a, std::slice::from_ref(&e_acc))?;
    let read_p = queue.enqueue_read::<f32>(out_p, std::slice::from_ref(&e_perf))?;

    let r_acc = e_acc.wait_report()?;
    let r_perf = e_perf.wait_report()?;
    let a = read_a.wait_read::<f32>()?;
    let p = read_p.wait_read::<f32>()?;
    let mre = kernel_perforation::core::mean_relative_error(&a, &p);

    println!(
        "accurate:   {:.3} ms ({} DRAM reads)",
        r_acc.millis(),
        r_acc.stats.dram_read_transactions
    );
    println!(
        "perforated: {:.3} ms ({} DRAM reads)",
        r_perf.millis(),
        r_perf.stats.dram_read_transactions
    );
    println!(
        "speedup {:.2}x at {:.3}% mean relative error — compiled, not hand-written",
        r_acc.seconds / r_perf.seconds,
        mre * 100.0
    );
    Ok(())
}
