//! Edge detection under an error budget: run the Sobel 5×5 operator with
//! every perforation configuration, then let the budget helper pick the
//! fastest one below a 2 % mean error — the Paraprox-style runtime-tuning
//! story from the paper's §7, applied to its best-case app (3.05×).
//!
//! ```sh
//! cargo run --release --example edge_detection
//! ```

use kernel_perforation::apps::Sobel5;
use kernel_perforation::core::{
    best_under_budget, sweep, ApproxConfig, ErrorMetric, ImageInput, RunSpec, SweepContext,
};
use kernel_perforation::data::{pgm, synth};
use kernel_perforation::gpu_sim::DeviceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 512;
    let image = synth::photo_like(size, size, 21);
    let input = ImageInput::new(image.as_slice(), size, size)?;

    let ctx = SweepContext {
        app: &Sobel5,
        input,
        metric: ErrorMetric::MeanAbsolute,
        device: DeviceConfig::firepro_w5100(),
        baseline: RunSpec::Baseline { group: (16, 16) },
    };
    let group = (16, 16);
    let specs = vec![
        RunSpec::Perforated(ApproxConfig::rows1_nn(group)),
        RunSpec::Perforated(ApproxConfig::rows1_li(group)),
        RunSpec::Perforated(ApproxConfig::rows2_nn(group)),
        RunSpec::Perforated(ApproxConfig::cols1_nn(group)),
        RunSpec::Perforated(ApproxConfig::stencil1_nn(group)),
    ];
    let outcomes = sweep(&ctx, &specs)?;

    println!("Sobel5 configurations (vs accurate baseline):");
    for o in &outcomes {
        println!(
            "  {:<12} speedup {:.2}x  mean error {:.3}%",
            o.label,
            o.speedup,
            o.error * 100.0
        );
    }

    let budget = 0.02;
    match best_under_budget(&outcomes, budget) {
        Some(best) => println!(
            "\nwithin a {:.0}% budget the tuner picks {} ({:.2}x, {:.3}%)",
            budget * 100.0,
            best.label,
            best.speedup,
            best.error * 100.0
        ),
        None => println!("\nno configuration meets the {budget} budget"),
    }

    // Dump the input so the edges can be eyeballed against fig2-style dumps.
    let out = std::path::Path::new("results");
    std::fs::create_dir_all(out)?;
    pgm::write_pgm(&image, &out.join("edge_detection_input.pgm"))?;
    println!("input written to results/edge_detection_input.pgm");
    Ok(())
}
