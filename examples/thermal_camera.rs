//! Iterative thermal simulation (Rodinia's Hotspot): run 50 explicit time
//! steps accurately and perforated, tracking how the approximation error
//! behaves over time — iterative solvers re-inject perforation error every
//! step, yet the paper (and this run) finds Hotspot nearly immune because
//! thermal fields are spatially smooth.
//!
//! ```sh
//! cargo run --release --example thermal_camera
//! ```

use kernel_perforation::apps::Hotspot;
use kernel_perforation::core::{
    mean_relative_error, run_iterative, ApproxConfig, ImageInput, RunSpec,
};
use kernel_perforation::data::hotspot::hotspot_input;
use kernel_perforation::gpu_sim::{Device, DeviceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 256;
    let steps = 50;
    let grids = hotspot_input(size, 11);
    let input = ImageInput::with_aux(
        grids.temperature.as_slice(),
        Some(grids.power.as_slice()),
        size,
        size,
    )?;

    // Apps handed to the runner are `'static` (queued commands outlive the
    // call); `Hotspot::new` is const, so a static fits naturally.
    static APP: Hotspot = Hotspot::new();
    let app = &APP;
    let mut dev = Device::new(DeviceConfig::firepro_w5100())?;

    println!("hotspot {size}x{size}, {steps} explicit steps");
    let accurate = run_iterative(
        &mut dev,
        app,
        &input,
        &RunSpec::Baseline { group: (16, 16) },
        steps,
    )?;
    let perforated = run_iterative(
        &mut dev,
        app,
        &input,
        &RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))),
        steps,
    )?;

    let err = mean_relative_error(&accurate.output, &perforated.output);
    let speedup = accurate.report.seconds / perforated.report.seconds;
    let max_acc = accurate.output.iter().cloned().fold(f32::MIN, f32::max);
    let max_perf = perforated.output.iter().cloned().fold(f32::MIN, f32::max);

    println!(
        "accurate:   {:.3} ms total, hottest cell {:.2} K",
        accurate.report.millis(),
        max_acc
    );
    println!(
        "perforated: {:.3} ms total, hottest cell {:.2} K",
        perforated.report.millis(),
        max_perf
    );
    println!(
        "speedup {speedup:.2}x, relative error after {steps} steps {:.4}%",
        err * 100.0
    );
    println!(
        "hot-spot temperature drift: {:.3} K (thermal engineers care about this one)",
        (max_acc - max_perf).abs()
    );
    Ok(())
}
