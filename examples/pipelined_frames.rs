//! Pipelined thermal-camera stream: perforate frame *N* while reading
//! back frame *N − 1*, using two command queues and double-buffered
//! frames — the classic overlap pattern OpenCL hosts build with
//! `clEnqueueNDRangeKernel` + `clEnqueueReadBuffer` + events.
//!
//! With the persistent worker pool, execution is **eager**: the entire
//! stream — every upload, launch and read-back of every frame — is
//! enqueued below **without a single intervening wait**, and the pool
//! starts working the moment the first command's dependencies clear.
//! The hazard DAG alone pipelines the stream (frame *t* reuses slot
//! *t mod 2*, so its upload waits for frame *t − 2*'s launch, while the
//! other slot's frame is still in flight), and the per-event
//! `queued`/`started`/`ended` timestamps prove that consecutive frames'
//! launches genuinely overlapped in wall-clock time. Yet every output is
//! **bit-identical** to the fully serial loop, which this example
//! asserts frame by frame.
//!
//! ```sh
//! cargo run --release --example pipelined_frames
//! ```

use kernel_perforation::apps::Gaussian3;
use kernel_perforation::core::{ApproxConfig, ImageBinding, PerforatedKernel};
use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::{Device, DeviceConfig, Event, NdRange};

const SIZE: usize = 256;
const FRAMES: usize = 8;

/// Synthetic thermal frames: smooth blobs drifting over time.
fn frame(t: usize) -> Vec<f32> {
    synth::photo_like(SIZE, SIZE, 0x7E41 + t as u64)
        .as_slice()
        .to_vec()
}

struct FrameSlot {
    img: ImageBinding,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    static APP: Gaussian3 = Gaussian3;
    let config = ApproxConfig::rows1_nn((16, 16));
    let range = NdRange::new_2d((SIZE, SIZE), (16, 16))?;

    // ---- Serial reference: launch, wait, read, next frame. ----
    let mut dev = Device::new(DeviceConfig::firepro_w5100())?;
    let input = dev.create_buffer::<f32>("in", SIZE * SIZE)?;
    let output = dev.create_buffer::<f32>("out", SIZE * SIZE)?;
    let img = ImageBinding {
        input,
        aux: None,
        output,
        tiled: None,
        width: SIZE,
        height: SIZE,
    };
    let serial_started = std::time::Instant::now();
    let mut serial_outputs = Vec::with_capacity(FRAMES);
    for t in 0..FRAMES {
        dev.write_buffer(input, &frame(t))?;
        dev.launch(&PerforatedKernel::new(&APP, img, config)?, range)?;
        serial_outputs.push(dev.read_buffer::<f32>(output)?);
    }
    let serial_wall = serial_started.elapsed();

    // ---- Pipelined: two queues, double-buffered frame slots. ----
    // Explicit parallelism so the pool has workers to overlap with even
    // when auto-resolution would give one (results are identical either
    // way — only the schedule changes).
    let mut cfg = DeviceConfig::firepro_w5100();
    cfg.parallelism = 4;
    let mut dev = Device::new(cfg)?;
    let slots: Vec<FrameSlot> = (0..2)
        .map(|k| {
            let input = dev.create_buffer::<f32>(&format!("in{k}"), SIZE * SIZE)?;
            let output = dev.create_buffer::<f32>(&format!("out{k}"), SIZE * SIZE)?;
            Ok(FrameSlot {
                img: ImageBinding {
                    input,
                    aux: None,
                    output,
                    tiled: None,
                    width: SIZE,
                    height: SIZE,
                },
            })
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;

    let q_compute = dev.create_queue();
    let q_io = dev.create_queue();
    let pipelined_started = std::time::Instant::now();
    // Enqueue the whole stream — no waits anywhere in this loop. The
    // hazard DAG does the pipelining: frame t's upload hangs off frame
    // t-2's launch (same slot), independent of the other slot's frame.
    let mut launches: Vec<Event> = Vec::with_capacity(FRAMES);
    let mut reads: Vec<Event> = Vec::with_capacity(FRAMES);
    for t in 0..FRAMES {
        let slot = &slots[t % 2];
        q_compute.enqueue_write(slot.img.input, &frame(t), &[])?;
        let launch =
            q_compute.enqueue_launch(PerforatedKernel::new(&APP, slot.img, config)?, range, &[])?;
        reads.push(q_io.enqueue_read::<f32>(slot.img.output, std::slice::from_ref(&launch))?);
        launches.push(launch);
    }
    // First wait of the run: by now the eager pool has long since been
    // executing (the timestamps below prove it).
    let pipelined_outputs: Vec<Vec<f32>> = reads
        .iter()
        .map(Event::wait_read::<f32>)
        .collect::<Result<_, _>>()?;
    let pipelined_wall = pipelined_started.elapsed();
    q_compute.finish()?;
    q_io.finish()?;

    // Per-event scheduler timestamps (everything is complete, so these
    // are pure lookups): count how much consecutive frames' launches
    // overlapped in wall-clock time.
    let mut overlap_observed = std::time::Duration::ZERO;
    for pair in launches.windows(2) {
        let (a, b) = (pair[0].timing()?, pair[1].timing()?);
        if b.started < a.ended {
            overlap_observed += a.ended - b.started;
        }
    }

    // ---- The determinism contract, frame by frame. ----
    assert_eq!(serial_outputs.len(), pipelined_outputs.len());
    for (t, (a, b)) in serial_outputs.iter().zip(&pipelined_outputs).enumerate() {
        assert_eq!(a, b, "frame {t} diverged between serial and pipelined");
    }
    // Eager start means consecutive launches really ran concurrently —
    // no wait was issued while the loop above was enqueueing.
    assert!(
        overlap_observed > std::time::Duration::ZERO,
        "expected nonzero inter-launch overlap from the eager worker pool"
    );

    println!("thermal stream: {FRAMES} frames of {SIZE}x{SIZE}, perforated Gaussian Rows1:NN");
    println!(
        "  serial loop : {:8.3} ms wall",
        serial_wall.as_secs_f64() * 1e3
    );
    println!(
        "  pipelined   : {:8.3} ms wall (2 queues, double-buffered, zero waits while enqueueing)",
        pipelined_wall.as_secs_f64() * 1e3
    );
    println!(
        "  launch/launch overlap observed by event timestamps: {:.3} ms",
        overlap_observed.as_secs_f64() * 1e3
    );
    println!("  all {FRAMES} frames bit-identical to the serial loop");
    Ok(())
}
