//! Multi-device: shard one big launch across a `DeviceGroup`, then let
//! the tuner spread its candidate sweep over the members by least-loaded
//! placement.
//!
//! ```sh
//! cargo run --release --example multi_device
//! # or pick the fleet size from the environment:
//! KP_SIM_DEVICES=4 cargo run --release --example multi_device
//! ```

use kernel_perforation::core::{
    fig8_specs, sweep, ErrorMetric, ImageBinding, ImageInput, PerforatedKernel, RunSpec,
    StencilApp, SweepContext, Window,
};
use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::{DeviceConfig, DeviceGroup, NdRange};

/// A 3×3 box blur, the smallest interesting stencil app.
struct BoxBlur;

impl StencilApp for BoxBlur {
    fn name(&self) -> &str {
        "box-blur"
    }

    fn halo(&self) -> usize {
        1
    }

    fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
        let mut acc = 0.0;
        for dy in -1..=1 {
            for dx in -1..=1 {
                acc += win.at(dx, dy);
            }
        }
        win.ops(10);
        acc / 9.0
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 512;
    let image = synth::photo_like(size, size, 7);

    // A fleet of four W5100-class devices behind one handle. (Set
    // cfg.devices = 0 to defer to KP_SIM_DEVICES instead.)
    let cfg = DeviceConfig::firepro_w5100();
    let mut group = DeviceGroup::with_devices(cfg.clone(), 4)?;
    println!("fleet: {} member devices", group.device_count());

    // --- Sharded launch -------------------------------------------------
    // Group buffers allocate one copy per member; a fresh buffer is valid
    // everywhere, so the scatter below migrates nothing.
    let input = group.create_buffer_from("input", image.as_slice())?;
    let output = group.create_buffer::<f32>("output", size * size)?;
    let img = ImageBinding {
        input,
        aux: None,
        output,
        tiled: None,
        width: size,
        height: size,
    };
    let kernel = PerforatedKernel::new(
        &BoxBlur,
        img,
        kernel_perforation::core::ApproxConfig::rows1_li((16, 16)),
    )?;
    let range = NdRange::new_2d((size, size), (16, 16))?;

    // One launch, split by contiguous row-major group ranges across the
    // members; outputs and the report are bit-identical to a
    // single-device run at any member count.
    let report = group.launch_sharded(&kernel, range)?;
    let blurred = group.read_buffer::<f32>(output)?;
    println!(
        "sharded launch: {} groups over {} members, {:.3} ms simulated, mean {:.3}",
        report.groups,
        group.device_count(),
        report.millis(),
        blurred.iter().sum::<f32>() / blurred.len() as f32,
    );
    let stats = group.stats();
    println!(
        "group stats: {} sharded launches, {} migrations ({} bytes, {} interconnect cycles)",
        stats.sharded_launches, stats.migrations, stats.migrated_bytes, stats.migration_cycles,
    );
    // Migration time is deliberately *not* folded into the per-launch
    // report (sharded reports stay bit-identical to single-device runs);
    // the stream-level cost lives here instead.
    println!(
        "  migration time: {:.6} ms simulated on top of the launch report",
        stats.migration_seconds(&cfg) * 1e3,
    );

    // --- Least-loaded placement ----------------------------------------
    // Independent commands (here: simulating a tuner dispatching whole
    // candidate launches) go to the least-loaded member — a deterministic
    // round-robin while the fleet is idle.
    for spec_group in [(8usize, 32usize), (16, 16), (32, 8)] {
        let member = group.place();
        println!("placing candidate group={spec_group:?} on member {member}");
    }

    // The tuner does the same internally: with `devices > 1` the sweep
    // routes its candidate batch through a DeviceGroup, one shard of
    // specs per member, and stitches results back in spec order. Every
    // number is identical to the single-device sweep.
    let mut fleet_cfg = cfg;
    fleet_cfg.devices = 4;
    let ctx = SweepContext {
        app: &BoxBlur,
        input: ImageInput::new(image.as_slice(), size, size)?,
        metric: ErrorMetric::MeanRelative,
        device: fleet_cfg,
        baseline: RunSpec::Baseline { group: (16, 16) },
    };
    let outcomes = sweep(&ctx, &fig8_specs((16, 16), 1))?;
    println!("\ntuner sweep across the fleet:");
    for o in &outcomes {
        println!(
            "  {:<12} {:.3} ms  speedup {:.2}x  error {:.2}%",
            o.label,
            o.seconds * 1e3,
            o.speedup,
            o.error * 100.0,
        );
    }
    Ok(())
}
