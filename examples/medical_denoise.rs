//! Medical-imaging denoise: a salt-and-pepper-corrupted scan cleaned by
//! the Median filter (Table 1's "medical imaging" row), accurate vs
//! perforated. The point: the *filter quality* (PSNR vs the clean scan)
//! barely moves under perforation even though the filter runs 1.5–2×
//! faster — the application-level view of "inherent resilience".
//!
//! ```sh
//! cargo run --release --example medical_denoise
//! ```

use kernel_perforation::apps::Median3;
use kernel_perforation::core::{psnr, run_app, ApproxConfig, ImageInput, RunSpec};
use kernel_perforation::data::{noise, pgm, synth};
use kernel_perforation::gpu_sim::{Device, DeviceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 512;
    // Ground truth "anatomy" and its corrupted acquisition.
    let clean = synth::shapes(size, size, 33);
    let mut noisy = clean.clone();
    noise::add_salt_pepper(&mut noisy, 0.03, 34);

    let input = ImageInput::new(noisy.as_slice(), size, size)?;
    let mut dev = Device::new(DeviceConfig::firepro_w5100())?;

    let accurate = run_app(
        &mut dev,
        &Median3,
        &input,
        &RunSpec::Baseline { group: (16, 16) },
    )?;
    let perforated = run_app(
        &mut dev,
        &Median3,
        &input,
        &RunSpec::Perforated(ApproxConfig::stencil1_nn((16, 16))),
    )?;

    let psnr_noisy = psnr(clean.as_slice(), noisy.as_slice(), 1.0);
    let psnr_accurate = psnr(clean.as_slice(), &accurate.output, 1.0);
    let psnr_perforated = psnr(clean.as_slice(), &perforated.output, 1.0);
    let speedup = accurate.report.seconds / perforated.report.seconds;

    println!("corrupted scan:        PSNR {psnr_noisy:6.2} dB vs ground truth");
    println!(
        "accurate median:       PSNR {psnr_accurate:6.2} dB   ({:.3} ms)",
        accurate.report.millis()
    );
    println!(
        "perforated median:     PSNR {psnr_perforated:6.2} dB   ({:.3} ms, {speedup:.2}x)",
        perforated.report.millis()
    );
    println!(
        "denoising quality kept: {:.2} of {:.2} dB gained",
        psnr_perforated - psnr_noisy,
        psnr_accurate - psnr_noisy
    );

    let out = std::path::Path::new("results");
    std::fs::create_dir_all(out)?;
    pgm::write_pgm(&noisy, &out.join("denoise_noisy.pgm"))?;
    let denoised = kernel_perforation::data::Image::from_vec(size, size, perforated.output)?;
    pgm::write_pgm(&denoised, &out.join("denoise_perforated.pgm"))?;
    println!("images written to results/denoise_*.pgm");
    Ok(())
}
