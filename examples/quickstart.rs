//! Quickstart: define a perforatable kernel, run it accurately and
//! perforated, compare speed and error.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kernel_perforation::core::{run_app, ApproxConfig, ImageInput, RunSpec, StencilApp, Window};
use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::{Device, DeviceConfig};

/// A 3×3 box blur: the smallest interesting stencil app. One `compute`
/// body serves the accurate, perforated and Paraprox kernel variants.
struct BoxBlur;

impl StencilApp for BoxBlur {
    fn name(&self) -> &str {
        "box-blur"
    }

    fn halo(&self) -> usize {
        1
    }

    fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
        let mut acc = 0.0;
        for dy in -1..=1 {
            for dx in -1..=1 {
                acc += win.at(dx, dy);
            }
        }
        win.ops(10);
        acc / 9.0
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A photo-like 512x512 input from the synthetic dataset substrate.
    let size = 512;
    let image = synth::photo_like(size, size, 7);
    let input = ImageInput::new(image.as_slice(), size, size)?;

    // The simulated GPU (AMD FirePro W5100-class, as in the paper).
    let mut dev = Device::new(DeviceConfig::firepro_w5100())?;

    // Accurate baseline: cooperative local-memory prefetch + compute.
    let baseline = run_app(
        &mut dev,
        &BoxBlur,
        &input,
        &RunSpec::Baseline { group: (16, 16) },
    )?;

    println!("accurate baseline: {:.3} ms", baseline.report.millis());
    println!(
        "  DRAM reads {}  L1 reads {}  ALU ops {}",
        baseline.report.stats.dram_read_transactions,
        baseline.report.stats.global_read_transactions,
        baseline.report.stats.alu_ops,
    );

    // Perforated variants: skip loads, reconstruct in local memory.
    for config in [
        ApproxConfig::rows1_nn((16, 16)),
        ApproxConfig::rows1_li((16, 16)),
        ApproxConfig::rows2_nn((16, 16)),
        ApproxConfig::stencil1_nn((16, 16)),
    ] {
        let run = run_app(&mut dev, &BoxBlur, &input, &RunSpec::Perforated(config))?;
        let speedup = baseline.report.seconds / run.report.seconds;
        let mre = kernel_perforation::core::mean_relative_error(&baseline.output, &run.output);
        println!(
            "{:<12} {:.3} ms  speedup {:.2}x  error {:.2}%  (DRAM reads {})",
            config.label(),
            run.report.millis(),
            speedup,
            mre * 100.0,
            run.report.stats.dram_read_transactions,
        );
    }
    Ok(())
}
