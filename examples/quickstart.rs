//! Quickstart: define a perforatable kernel, run it accurately, then
//! enqueue all four perforated variants as one overlappable command
//! stream and compare speed and error.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kernel_perforation::core::{
    mean_relative_error, run_app, ApproxConfig, ImageBinding, ImageInput, PerforatedKernel,
    RunSpec, StencilApp, Window,
};
use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::{Device, DeviceConfig, NdRange};

/// A 3×3 box blur: the smallest interesting stencil app. One `compute`
/// body serves the accurate, perforated and Paraprox kernel variants.
struct BoxBlur;

impl StencilApp for BoxBlur {
    fn name(&self) -> &str {
        "box-blur"
    }

    fn halo(&self) -> usize {
        1
    }

    fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
        let mut acc = 0.0;
        for dy in -1..=1 {
            for dx in -1..=1 {
                acc += win.at(dx, dy);
            }
        }
        win.ops(10);
        acc / 9.0
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A photo-like 512x512 input from the synthetic dataset substrate.
    let size = 512;
    let image = synth::photo_like(size, size, 7);
    let input = ImageInput::new(image.as_slice(), size, size)?;

    // The simulated GPU (AMD FirePro W5100-class, as in the paper).
    let mut dev = Device::new(DeviceConfig::firepro_w5100())?;

    // Accurate baseline: cooperative local-memory prefetch + compute.
    // `run_app` is the blocking one-liner (enqueue + wait internally).
    let baseline = run_app(
        &mut dev,
        &BoxBlur,
        &input,
        &RunSpec::Baseline { group: (16, 16) },
    )?;

    println!("accurate baseline: {:.3} ms", baseline.report.millis());
    println!(
        "  DRAM reads {}  L1 reads {}  ALU ops {}",
        baseline.report.stats.dram_read_transactions,
        baseline.report.stats.global_read_transactions,
        baseline.report.stats.alu_ops,
    );

    // Perforated variants: skip loads, reconstruct in local memory.
    // All four are enqueued on ONE command queue before anything is
    // waited on: they share the read-only input buffer and write disjoint
    // outputs, so the scheduler's hazard DAG lets them execute
    // concurrently — results stay bit-identical to running them one at a
    // time (the simulator's determinism contract).
    let configs = [
        ApproxConfig::rows1_nn((16, 16)),
        ApproxConfig::rows1_li((16, 16)),
        ApproxConfig::rows2_nn((16, 16)),
        ApproxConfig::stencil1_nn((16, 16)),
    ];
    let in_buf = dev.create_buffer_from("input", image.as_slice())?;
    let range = NdRange::new_2d((size, size), (16, 16))?;
    let queue = dev.create_queue();
    let mut pending = Vec::new();
    for config in configs {
        let out_buf = dev.create_buffer::<f32>("output", size * size)?;
        let img = ImageBinding {
            input: in_buf,
            aux: None,
            output: out_buf,
            tiled: None,
            width: size,
            height: size,
        };
        let launch =
            queue.enqueue_launch(PerforatedKernel::new(&BoxBlur, img, config)?, range, &[])?;
        let read = queue.enqueue_read::<f32>(out_buf, std::slice::from_ref(&launch))?;
        pending.push((config, launch, read));
    }
    for (config, launch, read) in pending {
        let report = launch.wait_report()?;
        let output = read.wait_read::<f32>()?;
        let speedup = baseline.report.seconds / report.seconds;
        let mre = mean_relative_error(&baseline.output, &output);
        println!(
            "{:<12} {:.3} ms  speedup {:.2}x  error {:.2}%  (DRAM reads {})",
            config.label(),
            report.millis(),
            speedup,
            mre * 100.0,
            report.stats.dram_read_transactions,
        );
    }
    Ok(())
}
