//! Error-budget autotuning: calibrate every perforation configuration on a
//! handful of sample images, then deploy the fastest one whose *mean*
//! calibration error stays within the user's budget — the runtime-helper
//! loop the paper inherits from Paraprox, at three budgets.
//!
//! Calibration runs through the persistent tuning cache
//! ([`kernel_perforation::tune`]): the first pass sweeps every candidate
//! in the simulator and records the outcomes; the second pass answers
//! every budget from the store — bit-identical selections, zero
//! simulated launches.
//!
//! ```sh
//! cargo run --release --example autotune_budget
//! ```
//!
//! Set `KP_TUNE_CACHE=/path/to/store.db` to persist the calibration
//! across invocations (the second *run* then starts warm too).

use kernel_perforation::apps::Gaussian3;
use kernel_perforation::core::{ApproxConfig, ErrorMetric, ImageInput, RunSpec};
use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::DeviceConfig;
use kernel_perforation::tune::{resolve_cache_path, select_with_budget_cached, TuneDb};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 256;
    // Calibration set: one smooth, one detailed, one adversarial image.
    let calib_images = [
        synth::countryside(size, size, 1),
        synth::photo_like(size, size, 2),
        synth::stripes(size, size, 6, false),
    ];
    let calibration: Vec<ImageInput<'_>> = calib_images
        .iter()
        .map(|img| ImageInput::new(img.as_slice(), size, size))
        .collect::<Result<_, _>>()?;

    let group = (16, 16);
    let specs = vec![
        RunSpec::Perforated(ApproxConfig::stencil1_nn(group)),
        RunSpec::Perforated(ApproxConfig::rows1_li(group)),
        RunSpec::Perforated(ApproxConfig::rows1_nn(group)),
        RunSpec::Perforated(ApproxConfig::rows2_nn(group)),
    ];
    let budgets = [0.005, 0.03, 0.10];

    // Honors KP_TUNE_CACHE; defaults to .kp-tune-cache.db in the
    // working directory.
    let cache_path = resolve_cache_path(None);
    let mut db = TuneDb::open(&cache_path);

    let select = |db: &mut TuneDb, budget: f64| {
        select_with_budget_cached(
            &Gaussian3,
            &calibration,
            &specs,
            ErrorMetric::MeanRelative,
            &DeviceConfig::firepro_w5100(),
            RunSpec::Baseline { group },
            budget,
            db,
            "autotune",
        )
    };

    for pass in ["cold", "warm"] {
        println!("{pass} pass (cache: {}):", cache_path.display());
        for budget in budgets {
            match select(&mut db, budget)? {
                Some(s) => println!(
                    "  budget {:>5.1}% -> {:<12} (speedup {:.2}x, calibrated error {:.3}%)",
                    budget * 100.0,
                    s.label,
                    s.speedup,
                    s.mean_error * 100.0
                ),
                None => println!(
                    "  budget {:>5.1}% -> no perforated configuration qualifies; stay accurate",
                    budget * 100.0
                ),
            }
        }
        let stats = db.stats();
        println!(
            "  cache: {} lookups, {} exact hits (rate {:.2}), {} misses, {} simulated \
             launches avoided\n",
            stats.lookups,
            stats.exact_hits,
            stats.hit_rate(),
            stats.misses,
            stats.launches_avoided,
        );
        db.reset_stats();
    }
    db.save()?;

    println!("(tighter budgets pick conservative schemes; looser ones buy more speed;");
    println!(" outcomes are cached per calibration image, so only the first pass sweeps)");
    Ok(())
}
