//! Error-budget autotuning: calibrate every perforation configuration on a
//! handful of sample images, then deploy the fastest one whose *mean*
//! calibration error stays within the user's budget — the runtime-helper
//! loop the paper inherits from Paraprox, at three budgets.
//!
//! ```sh
//! cargo run --release --example autotune_budget
//! ```

use kernel_perforation::apps::Gaussian3;
use kernel_perforation::core::{
    select_with_budget, ApproxConfig, ErrorMetric, ImageInput, RunSpec,
};
use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::DeviceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 256;
    // Calibration set: one smooth, one detailed, one adversarial image.
    let calib_images = [
        synth::countryside(size, size, 1),
        synth::photo_like(size, size, 2),
        synth::stripes(size, size, 6, false),
    ];
    let calibration: Vec<ImageInput<'_>> = calib_images
        .iter()
        .map(|img| ImageInput::new(img.as_slice(), size, size))
        .collect::<Result<_, _>>()?;

    let group = (16, 16);
    let specs = vec![
        RunSpec::Perforated(ApproxConfig::stencil1_nn(group)),
        RunSpec::Perforated(ApproxConfig::rows1_li(group)),
        RunSpec::Perforated(ApproxConfig::rows1_nn(group)),
        RunSpec::Perforated(ApproxConfig::rows2_nn(group)),
    ];

    for budget in [0.005, 0.03, 0.10] {
        let selection = select_with_budget(
            &Gaussian3,
            &calibration,
            &specs,
            ErrorMetric::MeanRelative,
            &DeviceConfig::firepro_w5100(),
            RunSpec::Baseline { group },
            budget,
        )?;
        match selection {
            Some(s) => println!(
                "budget {:>5.1}% -> {:<12} (speedup {:.2}x, calibrated error {:.3}%)",
                budget * 100.0,
                s.label,
                s.speedup,
                s.mean_error * 100.0
            ),
            None => println!(
                "budget {:>5.1}% -> no perforated configuration qualifies; stay accurate",
                budget * 100.0
            ),
        }
    }
    println!("\n(tighter budgets pick conservative schemes; looser ones buy more speed)");
    Ok(())
}
