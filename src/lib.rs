//! # kernel-perforation — local memory-aware kernel perforation in Rust
//!
//! A complete, self-contained reproduction of *"Local Memory-Aware Kernel
//! Perforation"* (Maier, Cosenza, Juurlink — CGO 2018,
//! [10.1145/3168814](https://doi.org/10.1145/3168814)): an approximate-
//! computing technique that accelerates GPU kernels by skipping part of
//! their global-memory loads and reconstructing the skipped data in fast
//! local memory.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`gpu_sim`] | deterministic OpenCL-style GPU simulator (execution + timing model) |
//! | [`core`] | the paper's contribution: schemes, reconstruction, pipeline, tuner, Paraprox baseline |
//! | [`apps`] | the six evaluation applications (Gaussian, Median, Hotspot, Inversion, Sobel3/5) |
//! | [`data`] | synthetic input-data substrate (images, Hotspot grids, PGM I/O) |
//! | [`ir`] | PerfCL kernel language + the automatic perforation compiler pass |
//! | [`tune`] | persistent cross-run tuning cache + online SLA-driven scheme adaptation |
//!
//! Architecture notes live in `docs/ARCHITECTURE.md`; the PerfCL
//! bytecode instruction set is documented in `docs/BYTECODE.md`.
//!
//! ## End-to-end example
//!
//! The host API is an OpenCL-style command stream: commands are
//! *enqueued* on [`gpu_sim::Queue`]s, return [`gpu_sim::Event`]s, and
//! overlap wherever the event/hazard DAG allows — while results stay
//! bit-identical to in-order execution. Here the baseline and the
//! perforated variant are enqueued together (disjoint outputs, shared
//! read-only input, so they may run concurrently):
//!
//! ```
//! use kernel_perforation::core::{ApproxConfig, ImageBinding, PerforatedKernel,
//!     AccurateLocalKernel, ImageInput};
//! use kernel_perforation::gpu_sim::{Device, DeviceConfig, NdRange};
//! use kernel_perforation::{apps, data};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let entry = apps::by_name("gaussian").expect("registered");
//! let image = data::synth::photo_like(128, 128, 42);
//! let mut dev = Device::new(DeviceConfig::firepro_w5100())?;
//!
//! let input = dev.create_buffer_from("input", image.as_slice())?;
//! let bind = |output| ImageBinding {
//!     input, aux: None, output, tiled: None, width: 128, height: 128 };
//! let img_base = bind(dev.create_buffer::<f32>("baseline", 128 * 128)?);
//! let img_perf = bind(dev.create_buffer::<f32>("perforated", 128 * 128)?);
//!
//! let queue = dev.create_queue();
//! let range = NdRange::new_2d((128, 128), (16, 16))?;
//! let base = queue.enqueue_launch(
//!     AccurateLocalKernel::new(entry.app, img_base, (16, 16)), range, &[])?;
//! let perf = queue.enqueue_launch(
//!     PerforatedKernel::new(entry.app, img_perf, ApproxConfig::rows1_nn((16, 16)))?,
//!     range, &[])?;
//! let out_base = queue.enqueue_read::<f32>(img_base.output, std::slice::from_ref(&base))?;
//! let out_perf = queue.enqueue_read::<f32>(img_perf.output, std::slice::from_ref(&perf))?;
//!
//! let speedup = base.wait_report()?.seconds / perf.wait_report()?.seconds;
//! let error = entry.metric.evaluate(&out_base.wait_read()?, &out_perf.wait_read()?);
//! assert!(speedup > 1.3, "speedup {speedup}");
//! assert!(error < 0.10, "error {error}");
//! # Ok(())
//! # }
//! ```
//!
//! Prefer one-liners? The blocking shims are still there:
//! `core::run_app(&mut dev, entry.workload, &input, &spec)` is exactly
//! "enqueue + wait" (and `core::run_specs_batched` submits a whole sweep
//! as one overlappable stream):
//!
//! ```
//! use kernel_perforation::core::{run_app, ApproxConfig, ImageInput, RunSpec};
//! use kernel_perforation::gpu_sim::{Device, DeviceConfig};
//! use kernel_perforation::{apps, data};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let entry = apps::by_name("gaussian").expect("registered");
//! let image = data::synth::photo_like(64, 64, 42);
//! let input = ImageInput::new(image.as_slice(), 64, 64)?;
//! let mut dev = Device::new(DeviceConfig::firepro_w5100())?;
//! let perforated = run_app(&mut dev, entry.workload, &input,
//!     &RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))))?;
//! assert_eq!(perforated.output.len(), 64 * 64);
//! # Ok(())
//! # }
//! ```
//!
//! ## Compiled, optimized, and reference execution
//!
//! PerfCL kernels compile to register bytecode at construction and run
//! through an optimizer pass pipeline (constant folding, CSE, dead-code
//! and dead-phase elimination — see `docs/BYTECODE.md`). The device's
//! [`gpu_sim::ExecMode`] and [`gpu_sim::OptLevel`] knobs select between
//! the optimized bytecode (default), the as-lowered bytecode, and the
//! tree-walking evaluator; all three are bit-identical by contract:
//!
//! ```
//! use kernel_perforation::gpu_sim::{Device, DeviceConfig, NdRange, OptLevel};
//! use kernel_perforation::ir::{ArgValue, IrKernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "kernel scale(global const float* src, global float* dst, int w) {
//!                int x = get_global_id(0);
//!                dst[clamp(x, 0, w - 1)] = src[clamp(x, 0, w - 1)] * 2.0;
//!            }";
//!
//! let run = |opt: OptLevel| -> Result<Vec<f32>, Box<dyn std::error::Error>> {
//!     let mut cfg = DeviceConfig::test_tiny();
//!     cfg.opt_level = opt;
//!     let mut dev = Device::new(cfg)?;
//!     let a = dev.create_buffer_from("src", &[1.0f32, 2.0, 3.0, 4.0])?;
//!     let b = dev.create_buffer::<f32>("dst", 4)?;
//!     let kernel = IrKernel::from_source(src, &[
//!         ("src", ArgValue::Buffer(a)),
//!         ("dst", ArgValue::Buffer(b)),
//!         ("w", ArgValue::Int(4)),
//!     ])?;
//!     // The optimizer folded `w - 1` (a frozen parameter) and CSE'd the
//!     // repeated clamp: fewer instructions, identical results.
//!     assert!(kernel.optimized().len() < kernel.compiled().len());
//!     assert!(kernel.opt_stats().cse_reused >= 1);
//!     dev.launch(&kernel, NdRange::new_1d(4, 4)?)?;
//!     Ok(dev.read_buffer::<f32>(b)?)
//! };
//!
//! assert_eq!(run(OptLevel::Full)?, run(OptLevel::None)?);
//! assert_eq!(run(OptLevel::Full)?, vec![2.0, 4.0, 6.0, 8.0]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub use kp_apps as apps;
pub use kp_core as core;
pub use kp_data as data;
pub use kp_gpu_sim as gpu_sim;
pub use kp_ir as ir;
pub use kp_tune as tune;
