//! # kernel-perforation — local memory-aware kernel perforation in Rust
//!
//! A complete, self-contained reproduction of *"Local Memory-Aware Kernel
//! Perforation"* (Maier, Cosenza, Juurlink — CGO 2018,
//! [10.1145/3168814](https://doi.org/10.1145/3168814)): an approximate-
//! computing technique that accelerates GPU kernels by skipping part of
//! their global-memory loads and reconstructing the skipped data in fast
//! local memory.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`gpu_sim`] | deterministic OpenCL-style GPU simulator (execution + timing model) |
//! | [`core`] | the paper's contribution: schemes, reconstruction, pipeline, tuner, Paraprox baseline |
//! | [`apps`] | the six evaluation applications (Gaussian, Median, Hotspot, Inversion, Sobel3/5) |
//! | [`data`] | synthetic input-data substrate (images, Hotspot grids, PGM I/O) |
//! | [`ir`] | PerfCL kernel language + the automatic perforation compiler pass |
//!
//! Architecture notes live in `docs/ARCHITECTURE.md`; the PerfCL
//! bytecode instruction set is documented in `docs/BYTECODE.md`.
//!
//! ## End-to-end example
//!
//! ```
//! use kernel_perforation::core::{run_app, ApproxConfig, ImageInput, RunSpec};
//! use kernel_perforation::gpu_sim::{Device, DeviceConfig};
//! use kernel_perforation::{apps, data};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let entry = apps::by_name("gaussian").expect("registered");
//! let image = data::synth::photo_like(128, 128, 42);
//! let input = ImageInput::new(image.as_slice(), 128, 128)?;
//! let mut dev = Device::new(DeviceConfig::firepro_w5100())?;
//!
//! let baseline = run_app(&mut dev, entry.app, &input, &RunSpec::Baseline { group: (16, 16) })?;
//! let perforated = run_app(&mut dev, entry.app, &input,
//!     &RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))))?;
//!
//! let speedup = baseline.report.seconds / perforated.report.seconds;
//! let error = entry.metric.evaluate(&baseline.output, &perforated.output);
//! assert!(speedup > 1.3, "speedup {speedup}");
//! assert!(error < 0.10, "error {error}");
//! # Ok(())
//! # }
//! ```
//!
//! ## Compiled, optimized, and reference execution
//!
//! PerfCL kernels compile to register bytecode at construction and run
//! through an optimizer pass pipeline (constant folding, CSE, dead-code
//! and dead-phase elimination — see `docs/BYTECODE.md`). The device's
//! [`gpu_sim::ExecMode`] and [`gpu_sim::OptLevel`] knobs select between
//! the optimized bytecode (default), the as-lowered bytecode, and the
//! tree-walking evaluator; all three are bit-identical by contract:
//!
//! ```
//! use kernel_perforation::gpu_sim::{Device, DeviceConfig, NdRange, OptLevel};
//! use kernel_perforation::ir::{ArgValue, IrKernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "kernel scale(global const float* src, global float* dst, int w) {
//!                int x = get_global_id(0);
//!                dst[clamp(x, 0, w - 1)] = src[clamp(x, 0, w - 1)] * 2.0;
//!            }";
//!
//! let run = |opt: OptLevel| -> Result<Vec<f32>, Box<dyn std::error::Error>> {
//!     let mut cfg = DeviceConfig::test_tiny();
//!     cfg.opt_level = opt;
//!     let mut dev = Device::new(cfg)?;
//!     let a = dev.create_buffer_from("src", &[1.0f32, 2.0, 3.0, 4.0])?;
//!     let b = dev.create_buffer::<f32>("dst", 4)?;
//!     let kernel = IrKernel::from_source(src, &[
//!         ("src", ArgValue::Buffer(a)),
//!         ("dst", ArgValue::Buffer(b)),
//!         ("w", ArgValue::Int(4)),
//!     ])?;
//!     // The optimizer folded `w - 1` (a frozen parameter) and CSE'd the
//!     // repeated clamp: fewer instructions, identical results.
//!     assert!(kernel.optimized().len() < kernel.compiled().len());
//!     assert!(kernel.opt_stats().cse_reused >= 1);
//!     dev.launch(&kernel, NdRange::new_1d(4, 4)?)?;
//!     Ok(dev.read_buffer::<f32>(b)?)
//! };
//!
//! assert_eq!(run(OptLevel::Full)?, run(OptLevel::None)?);
//! assert_eq!(run(OptLevel::Full)?, vec![2.0, 4.0, 6.0, 8.0]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub use kp_apps as apps;
pub use kp_core as core;
pub use kp_data as data;
pub use kp_gpu_sim as gpu_sim;
pub use kp_ir as ir;
