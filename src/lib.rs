//! # kernel-perforation — local memory-aware kernel perforation in Rust
//!
//! A complete, self-contained reproduction of *"Local Memory-Aware Kernel
//! Perforation"* (Maier, Cosenza, Juurlink — CGO 2018,
//! [10.1145/3168814](https://doi.org/10.1145/3168814)): an approximate-
//! computing technique that accelerates GPU kernels by skipping part of
//! their global-memory loads and reconstructing the skipped data in fast
//! local memory.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`gpu_sim`] | deterministic OpenCL-style GPU simulator (execution + timing model) |
//! | [`core`] | the paper's contribution: schemes, reconstruction, pipeline, tuner, Paraprox baseline |
//! | [`apps`] | the six evaluation applications (Gaussian, Median, Hotspot, Inversion, Sobel3/5) |
//! | [`data`] | synthetic input-data substrate (images, Hotspot grids, PGM I/O) |
//! | [`ir`] | PerfCL kernel language + the automatic perforation compiler pass |
//!
//! ## End-to-end example
//!
//! ```
//! use kernel_perforation::core::{run_app, ApproxConfig, ImageInput, RunSpec};
//! use kernel_perforation::gpu_sim::{Device, DeviceConfig};
//! use kernel_perforation::{apps, data};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let entry = apps::by_name("gaussian").expect("registered");
//! let image = data::synth::photo_like(128, 128, 42);
//! let input = ImageInput::new(image.as_slice(), 128, 128)?;
//! let mut dev = Device::new(DeviceConfig::firepro_w5100())?;
//!
//! let baseline = run_app(&mut dev, entry.app, &input, &RunSpec::Baseline { group: (16, 16) })?;
//! let perforated = run_app(&mut dev, entry.app, &input,
//!     &RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))))?;
//!
//! let speedup = baseline.report.seconds / perforated.report.seconds;
//! let error = entry.metric.evaluate(&baseline.output, &perforated.output);
//! assert!(speedup > 1.3, "speedup {speedup}");
//! assert!(error < 0.10, "error {error}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use kp_apps as apps;
pub use kp_core as core;
pub use kp_data as data;
pub use kp_gpu_sim as gpu_sim;
pub use kp_ir as ir;
