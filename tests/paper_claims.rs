//! Small-scale assertions of the paper's qualitative claims — the same
//! shapes the full `repro` harness regenerates, checked in CI sizes.

use kernel_perforation::apps::{self, suite};
use kernel_perforation::core::paraprox::{ParaproxLevel, ParaproxScheme};
use kernel_perforation::core::{
    pareto_outcomes, run_app, sweep, ApproxConfig, ErrorMetric, ImageInput, RunSpec, SweepContext,
};
use kernel_perforation::data::{hotspot, synth};
use kernel_perforation::gpu_sim::{Device, DeviceConfig};

fn device() -> Device {
    Device::new(DeviceConfig::firepro_w5100()).unwrap()
}

const SIZE: usize = 128;

fn photo() -> kernel_perforation::data::Image {
    synth::photo_like(SIZE, SIZE, 77)
}

/// §6: "our approach is able to accelerate the execution of a variety of
/// applications" — every app in Table 1 speeds up under Rows1:NN.
#[test]
fn every_app_speeds_up() {
    let mut dev = device();
    let img = photo();
    let hs = hotspot::hotspot_input(SIZE, 3);
    for entry in suite::evaluation_apps() {
        let (data, aux);
        if entry.needs_aux {
            data = hs.temperature.as_slice().to_vec();
            aux = Some(hs.power.as_slice().to_vec());
        } else {
            data = img.as_slice().to_vec();
            aux = None;
        }
        let input = ImageInput::with_aux(&data, aux.as_deref(), SIZE, SIZE).unwrap();
        let baseline = run_app(
            &mut dev,
            entry.workload,
            &input,
            &RunSpec::Baseline { group: (16, 16) },
        )
        .unwrap();
        let perforated = run_app(
            &mut dev,
            entry.workload,
            &input,
            &RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))),
        )
        .unwrap();
        let speedup = baseline.report.seconds / perforated.report.seconds;
        assert!(speedup > 1.25, "{}: speedup only {speedup:.2}", entry.name);
        let err = entry.metric.evaluate(&baseline.output, &perforated.output);
        assert!(err < 0.10, "{}: error {err:.4} too large", entry.name);
    }
}

/// Fig. 8: error ordering LI < NN, Rows1 < Rows2; Stencil1 smallest; and
/// the Rows variants' runtimes stay within ~15 % of each other.
#[test]
fn fig8_orderings_hold_for_gaussian() {
    let img = photo();
    let ctx = SweepContext {
        app: apps::by_name("gaussian").unwrap().workload,
        input: ImageInput::new(img.as_slice(), SIZE, SIZE).unwrap(),
        metric: ErrorMetric::MeanRelative,
        device: DeviceConfig::firepro_w5100(),
        baseline: RunSpec::Baseline { group: (16, 16) },
    };
    let specs = kernel_perforation::core::fig8_specs((16, 16), 1);
    let outcomes = sweep(&ctx, &specs).unwrap();
    let get = |l: &str| outcomes.iter().find(|o| o.label == l).unwrap();
    assert!(get("Rows1:LI").error < get("Rows1:NN").error);
    assert!(get("Rows1:NN").error < get("Rows2:NN").error);
    assert!(get("Stencil1:NN").error < get("Rows1:NN").error);
    let t_nn = get("Rows1:NN").seconds;
    let t_li = get("Rows1:LI").seconds;
    assert!(
        (t_li - t_nn).abs() / t_nn < 0.15,
        "LI should cost about the same as NN: {t_nn} vs {t_li}"
    );
}

/// Fig. 10's headline: at comparable speedups, our input perforation has a
/// fraction of Paraprox's error (output approximation copies whole rows).
#[test]
fn ours_beats_paraprox_on_error() {
    // Edge-dominated content (the USC-SIPI regime): output copying
    // displaces filtered edges, input reconstruction lets the filter
    // smooth the displacement.
    let img = synth::scene(SIZE, SIZE, 77);
    let entry = apps::by_name("gaussian").unwrap();
    let ctx = SweepContext {
        app: entry.workload,
        input: ImageInput::new(img.as_slice(), SIZE, SIZE).unwrap(),
        metric: ErrorMetric::MeanRelative,
        device: DeviceConfig::firepro_w5100(),
        baseline: RunSpec::AccurateGlobal { group: (16, 16) },
    };
    let specs = vec![
        RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))),
        RunSpec::Perforated(ApproxConfig::rows1_li((16, 16))),
        RunSpec::Paraprox {
            scheme: ParaproxScheme::Rows(ParaproxLevel::One),
            group: (16, 16),
        },
    ];
    let outcomes = sweep(&ctx, &specs).unwrap();
    let ours_nn = &outcomes[0];
    let ours_li = &outcomes[1];
    let px = &outcomes[2];
    // NN already beats Paraprox; the Pareto configuration (LI) beats it
    // clearly, at essentially the same runtime as NN.
    assert!(
        ours_nn.error < px.error,
        "ours NN {:.4} should beat Paraprox {:.4}",
        ours_nn.error,
        px.error
    );
    assert!(
        ours_li.error < px.error * 0.75,
        "ours LI {:.4} should be well below Paraprox {:.4}",
        ours_li.error,
        px.error
    );
}

/// §6.4: "Cols becomes slower, which is explained by the improper alignment
/// of column-shaped perforation and memory data layout."
#[test]
fn paraprox_cols_is_slower_than_rows_on_inversion() {
    let img = photo();
    let entry = apps::by_name("inversion").unwrap();
    let ctx = SweepContext {
        app: entry.workload,
        input: ImageInput::new(img.as_slice(), SIZE, SIZE).unwrap(),
        metric: ErrorMetric::MeanRelative,
        device: DeviceConfig::firepro_w5100(),
        baseline: RunSpec::AccurateGlobal { group: (16, 16) },
    };
    let specs = vec![
        RunSpec::Paraprox {
            scheme: ParaproxScheme::Rows(ParaproxLevel::One),
            group: (16, 16),
        },
        RunSpec::Paraprox {
            scheme: ParaproxScheme::Cols(ParaproxLevel::One),
            group: (16, 16),
        },
    ];
    let outcomes = sweep(&ctx, &specs).unwrap();
    assert!(
        outcomes[1].seconds > outcomes[0].seconds * 1.3,
        "Cols ({}s) should be much slower than Rows ({}s)",
        outcomes[1].seconds,
        outcomes[0].seconds
    );
}

/// Fig. 9: wide work groups beat tall ones (memory-interface alignment) for
/// baseline *and* perforated kernels.
#[test]
fn wide_work_groups_beat_tall_ones() {
    let mut dev = device();
    let img = photo();
    let input = ImageInput::new(img.as_slice(), SIZE, SIZE).unwrap();
    let entry = apps::by_name("gaussian").unwrap();
    let time = |dev: &mut Device, spec: &RunSpec| {
        run_app(dev, entry.workload, &input, spec)
            .unwrap()
            .report
            .seconds
    };
    let tall_base = time(&mut dev, &RunSpec::Baseline { group: (2, 128) });
    let wide_base = time(&mut dev, &RunSpec::Baseline { group: (64, 4) });
    assert!(
        wide_base < tall_base * 0.6,
        "baseline: wide {wide_base} vs tall {tall_base}"
    );
    let tall_perf = time(
        &mut dev,
        &RunSpec::Perforated(ApproxConfig::rows1_nn((2, 128))),
    );
    let wide_perf = time(
        &mut dev,
        &RunSpec::Perforated(ApproxConfig::rows1_nn((64, 4))),
    );
    assert!(
        wide_perf < tall_perf * 0.6,
        "perforated: wide {wide_perf} vs tall {tall_perf}"
    );
}

/// §6.2 / Fig. 7: error tracks input frequency across three classes.
#[test]
fn error_tracks_input_frequency() {
    let mut dev = device();
    dev.set_profiling(false);
    let entry = apps::by_name("median").unwrap();
    // Seeds chosen so the offline rand shim's stream reproduces the
    // paper's order-of-magnitude spread (even checkerboard cells would be
    // reconstructed exactly; the cell size must stay odd).
    let flat = synth::shapes(SIZE, SIZE, 5);
    let smooth = synth::countryside(SIZE, SIZE, 6);
    let pattern = synth::checkerboard(SIZE, SIZE, 7);
    let mut errs = Vec::new();
    for img in [&flat, &smooth, &pattern] {
        let input = ImageInput::new(img.as_slice(), SIZE, SIZE).unwrap();
        let acc = run_app(
            &mut dev,
            entry.workload,
            &input,
            &RunSpec::AccurateGlobal { group: (16, 16) },
        )
        .unwrap();
        let perf = run_app(
            &mut dev,
            entry.workload,
            &input,
            &RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))),
        )
        .unwrap();
        errs.push(entry.metric.evaluate(&acc.output, &perf.output));
    }
    assert!(errs[0] < errs[1], "flat {} !< smooth {}", errs[0], errs[1]);
    assert!(
        errs[1] < errs[2],
        "smooth {} !< pattern {}",
        errs[1],
        errs[2]
    );
    // "differ by orders of magnitude depending on the input"
    assert!(errs[2] > errs[0] * 50.0, "spread too small: {errs:?}");
}

/// Fig. 10: at least one of our configurations sits on the Pareto front.
#[test]
fn our_configs_reach_the_pareto_front() {
    let img = photo();
    let entry = apps::by_name("gaussian").unwrap();
    let ctx = SweepContext {
        app: entry.workload,
        input: ImageInput::new(img.as_slice(), SIZE, SIZE).unwrap(),
        metric: ErrorMetric::MeanRelative,
        device: DeviceConfig::firepro_w5100(),
        baseline: RunSpec::AccurateGlobal { group: (16, 16) },
    };
    let mut specs = vec![RunSpec::Perforated(ApproxConfig::stencil1_nn((16, 16)))];
    for scheme in kernel_perforation::core::paraprox::fig10_schemes() {
        specs.push(RunSpec::Paraprox {
            scheme,
            group: (16, 16),
        });
    }
    let outcomes = sweep(&ctx, &specs).unwrap();
    let front = pareto_outcomes(&outcomes);
    assert!(
        front.contains(&0),
        "Stencil1:NN should be Pareto-optimal: {outcomes:#?}"
    );
}

/// Hotspot's error variance is tiny across input sizes (§6.2: "the variance
/// of the error is very small").
#[test]
fn hotspot_errors_are_small_across_sizes() {
    let mut dev = device();
    dev.set_profiling(false);
    let entry = apps::by_name("hotspot").unwrap();
    for size in [64, 96, 128] {
        let hs = hotspot::hotspot_input(size, 5);
        let input = ImageInput::with_aux(
            hs.temperature.as_slice(),
            Some(hs.power.as_slice()),
            size,
            size,
        )
        .unwrap();
        let acc = run_app(
            &mut dev,
            entry.workload,
            &input,
            &RunSpec::AccurateGlobal { group: (16, 16) },
        )
        .unwrap();
        let perf = run_app(
            &mut dev,
            entry.workload,
            &input,
            &RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))),
        )
        .unwrap();
        let err = entry.metric.evaluate(&acc.output, &perf.output);
        assert!(err < 0.001, "hotspot {size}: error {err}");
    }
}

/// Iterative solvers recompose perforation error every step; for smooth
/// thermal fields it stays bounded instead of compounding (the mechanism
/// behind Hotspot's tiny Fig. 6 errors).
#[test]
fn iterative_hotspot_error_stays_bounded() {
    use kernel_perforation::core::run_iterative;
    let size = 64;
    let hs = hotspot::hotspot_input(size, 9);
    let input = ImageInput::with_aux(
        hs.temperature.as_slice(),
        Some(hs.power.as_slice()),
        size,
        size,
    )
    .unwrap();
    let entry = apps::by_name("hotspot").unwrap();
    let mut dev = device();
    dev.set_profiling(false);
    let spec_acc = RunSpec::AccurateGlobal { group: (16, 16) };
    let spec_perf = RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16)));
    let mut prev_err = 0.0f64;
    for steps in [5, 20, 60] {
        let acc = run_iterative(&mut dev, entry.workload, &input, &spec_acc, steps).unwrap();
        let perf = run_iterative(&mut dev, entry.workload, &input, &spec_perf, steps).unwrap();
        let err = entry.metric.evaluate(&acc.output, &perf.output);
        // Error grows sub-linearly with steps (bounded by diffusion), far
        // from compounding exponentially.
        assert!(err < 0.05, "{steps} steps: error {err}");
        assert!(
            err < prev_err + 0.02,
            "error explodes between steps: {prev_err} -> {err}"
        );
        prev_err = err;
    }
}

/// The error-budget helper composes with the suite: a strict budget keeps
/// the accurate kernel, a loose one picks a perforated configuration.
#[test]
fn budget_selection_behaves_monotonically() {
    use kernel_perforation::core::{select_with_budget, ErrorMetric};
    let img = synth::scene(SIZE, SIZE, 3);
    let calibration = [ImageInput::new(img.as_slice(), SIZE, SIZE).unwrap()];
    let entry = apps::by_name("gaussian").unwrap();
    let specs = vec![
        RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))),
        RunSpec::Perforated(ApproxConfig::rows2_nn((16, 16))),
    ];
    let strict = select_with_budget(
        entry.workload,
        &calibration,
        &specs,
        ErrorMetric::MeanRelative,
        &DeviceConfig::firepro_w5100(),
        RunSpec::Baseline { group: (16, 16) },
        1e-9,
    )
    .unwrap();
    assert!(
        strict.is_none(),
        "nothing should fit an (almost) zero budget"
    );
    let loose = select_with_budget(
        entry.workload,
        &calibration,
        &specs,
        ErrorMetric::MeanRelative,
        &DeviceConfig::firepro_w5100(),
        RunSpec::Baseline { group: (16, 16) },
        0.5,
    )
    .unwrap()
    .expect("a loose budget admits a config");
    // Rows2 is the faster of the two and fits the loose budget.
    assert_eq!(loose.label, "Rows2:NN");
}
