//! Determinism and resource-hygiene guarantees of the full stack.

use kernel_perforation::apps::suite;
use kernel_perforation::core::{run_app, ApproxConfig, ImageInput, RunSpec};
use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::{Device, DeviceConfig};

/// Identical runs produce bit-identical outputs *and* identical reports —
/// across fresh devices and across reuse of one device.
#[test]
fn launches_are_fully_deterministic() {
    let (w, h) = (96, 64);
    let img = synth::scene(w, h, 5);
    let input = ImageInput::new(img.as_slice(), w, h).unwrap();
    let entry = suite::by_name("gaussian").unwrap();
    let spec = RunSpec::Perforated(ApproxConfig::rows1_li((16, 16)));

    let run = || {
        let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
        run_app(&mut dev, entry.workload, &input, &spec).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.output, b.output);
    assert_eq!(a.report, b.report);

    // Same device, repeated runs.
    let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
    let c = run_app(&mut dev, entry.workload, &input, &spec).unwrap();
    let d = run_app(&mut dev, entry.workload, &input, &spec).unwrap();
    assert_eq!(c.output, d.output);
    assert_eq!(c.report.timing, d.report.timing);
    assert_eq!(a.output, c.output);
}

/// Hundreds of runs on one device leak no global memory (buffers released).
#[test]
fn repeated_runs_do_not_leak_device_memory() {
    let (w, h) = (32, 32);
    let img = synth::flat(w, h, 0.5);
    let input = ImageInput::new(img.as_slice(), w, h).unwrap();
    let entry = suite::by_name("inversion").unwrap();
    let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
    dev.set_profiling(false);
    let baseline_bytes = dev.used_global_bytes();
    for i in 0..200 {
        let spec = if i % 2 == 0 {
            RunSpec::Baseline { group: (16, 16) }
        } else {
            RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16)))
        };
        run_app(&mut dev, entry.workload, &input, &spec).unwrap();
        assert_eq!(
            dev.used_global_bytes(),
            baseline_bytes,
            "leak at iteration {i}"
        );
    }
}

/// Profiling on/off changes reports but never functional results.
#[test]
fn profiling_does_not_affect_results() {
    let (w, h) = (64, 48);
    let img = synth::photo_like(w, h, 6);
    let input = ImageInput::new(img.as_slice(), w, h).unwrap();
    for entry in suite::evaluation_apps().iter().filter(|e| !e.needs_aux) {
        let spec = RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16)));
        let mut dev_on = Device::new(DeviceConfig::firepro_w5100()).unwrap();
        let mut dev_off = Device::new(DeviceConfig::firepro_w5100()).unwrap();
        dev_off.set_profiling(false);
        let on = run_app(&mut dev_on, entry.workload, &input, &spec).unwrap();
        let off = run_app(&mut dev_off, entry.workload, &input, &spec).unwrap();
        assert_eq!(on.output, off.output, "{}", entry.name);
        assert!(on.report.profiled);
        assert!(!off.report.profiled);
        assert_eq!(off.report.timing.device_cycles, 0);
    }
}

/// The error and the timing decompose: error depends on the input, timing
/// does not (paper §6.2: "the speedup only depends on the selected
/// approximation scheme").
#[test]
fn timing_is_input_independent() {
    let (w, h) = (64, 64);
    let entry = suite::by_name("gaussian").unwrap();
    let spec = RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16)));
    let mut cycles = Vec::new();
    for seed in [1, 2, 3] {
        let img = synth::photo_like(w, h, seed);
        let input = ImageInput::new(img.as_slice(), w, h).unwrap();
        let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
        let run = run_app(&mut dev, entry.workload, &input, &spec).unwrap();
        cycles.push(run.report.timing.device_cycles);
    }
    assert_eq!(cycles[0], cycles[1]);
    assert_eq!(cycles[1], cycles[2]);
}

/// Median is the exception: its comparator ops are data independent (it is
/// branchless), so even the compute-heavy app keeps input-independent
/// timing — matching the paper's observation.
#[test]
fn median_timing_is_also_input_independent() {
    let (w, h) = (64, 64);
    let entry = suite::by_name("median").unwrap();
    let spec = RunSpec::Baseline { group: (16, 16) };
    let mut cycles = Vec::new();
    for img in [
        synth::flat(w, h, 0.2),
        synth::checkerboard(w, h, 1),
        synth::corrupted_scan(w, h, 9),
    ] {
        let input = ImageInput::new(img.as_slice(), w, h).unwrap();
        let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
        let run = run_app(&mut dev, entry.workload, &input, &spec).unwrap();
        cycles.push(run.report.timing.device_cycles);
    }
    assert_eq!(cycles[0], cycles[1]);
    assert_eq!(cycles[1], cycles[2]);
}
