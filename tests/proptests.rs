//! Property-based tests over the core data structures and invariants.
//!
//! The build environment is offline, so instead of `proptest` these
//! properties are checked over deterministic seeded sample sets: every
//! case derives from a fixed-seed RNG, failures are exactly reproducible,
//! and each property sees a few hundred distinct inputs.

use kernel_perforation::core::{
    pareto_front, reconstruct_element, Distribution, LoadQuery, PerforationScheme, Reconstruction,
    SkipLevel, TileGeometry, TradeOff,
};
use kernel_perforation::data::{pgm, Image};
use kernel_perforation::gpu_sim::coalesce::{CoalesceTracker, Dir};
use kernel_perforation::gpu_sim::local::BankTracker;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schemes(rng: &mut StdRng) -> PerforationScheme {
    match rng.gen_range(0usize..6) {
        0 => PerforationScheme::Rows(SkipLevel::Half),
        1 => PerforationScheme::Rows(SkipLevel::ThreeQuarters),
        2 => PerforationScheme::Columns(SkipLevel::Half),
        3 => PerforationScheme::Columns(SkipLevel::ThreeQuarters),
        4 => PerforationScheme::Stencil,
        _ => PerforationScheme::Random {
            keep_fraction: rng.gen_range(0.05f64..1.0),
            seed: rng.gen(),
        },
    }
}

fn recons(rng: &mut StdRng) -> Reconstruction {
    if rng.gen::<bool>() {
        Reconstruction::NearestNeighbor
    } else {
        Reconstruction::LinearInterpolation
    }
}

/// Reconstructed values are convex combinations of loaded values: they
/// never leave the value range of the loaded data, and never read an
/// unloaded cell.
#[test]
fn reconstruction_never_extrapolates() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut checked = 0usize;
    while checked < 300 {
        let scheme = schemes(&mut rng);
        let recon = recons(&mut rng);
        let tile_w = rng.gen_range(2usize..12);
        let tile_h = rng.gen_range(2usize..12);
        let halo = rng.gen_range(0usize..3);
        let group = (rng.gen_range(0usize..4), rng.gen_range(0usize..4));
        let seed: u64 = rng.gen();

        // Skip combinations the library itself rejects.
        let tile = TileGeometry::new(tile_w, tile_h, halo);
        if scheme.validate(&tile).is_err() || recon.validate(&scheme).is_err() {
            continue;
        }

        // Fill loaded cells with a seeded pattern in [0, 1].
        let mut data = vec![f32::NAN; tile.padded_len()];
        let mut any_loaded = false;
        for py in 0..tile.padded_h() {
            for px in 0..tile.padded_w() {
                let (gx, gy) = tile.global_of(group, px, py);
                if scheme.loads(LoadQuery {
                    tile: &tile,
                    padded: (px, py),
                    global: (gx, gy),
                }) {
                    let h = seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((py * tile.padded_w() + px) as u64);
                    data[tile.index(px, py)] = (h % 1000) as f32 / 999.0;
                    any_loaded = true;
                }
            }
        }
        if !any_loaded {
            continue;
        }
        checked += 1;
        let snapshot = data.clone();
        for py in 0..tile.padded_h() {
            for px in 0..tile.padded_w() {
                let (gx, gy) = tile.global_of(group, px, py);
                if !scheme.loads(LoadQuery {
                    tile: &tile,
                    padded: (px, py),
                    global: (gx, gy),
                }) {
                    let mut read = |x: usize, y: usize| snapshot[tile.index(x, y)];
                    let mut ops = |_| {};
                    let v = reconstruct_element(
                        &scheme, recon, &tile, group, px, py, &mut read, &mut ops,
                    );
                    // Reads of other skipped cells would return NaN; a
                    // correct reconstruction only ever reads loaded cells.
                    assert!(!v.is_nan(), "read an unloaded cell at ({px},{py})");
                    assert!((0.0..=1.0).contains(&v), "extrapolated: {v}");
                }
            }
        }
    }
}

/// The fraction loaded by skip levels matches their nominal rate within
/// tile-boundary rounding.
#[test]
fn scheme_fraction_matches_level() {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for _ in 0..300 {
        let tile_w = rng.gen_range(4usize..24);
        let tile_h = rng.gen_range(4usize..24);
        let halo = rng.gen_range(0usize..3);
        let group = (rng.gen_range(0usize..4), rng.gen_range(0usize..4));
        let tile = TileGeometry::new(tile_w, tile_h, halo);
        let half = PerforationScheme::Rows(SkipLevel::Half).fraction_loaded(&tile, group);
        let quarter =
            PerforationScheme::Rows(SkipLevel::ThreeQuarters).fraction_loaded(&tile, group);
        let ph = tile.padded_h() as f64;
        assert!((half - 0.5).abs() <= 0.5 / ph + 1e-9);
        assert!((quarter - 0.25).abs() <= 0.75 / ph + 1e-9);
        assert!(quarter < half + 1e-9);
    }
}

/// Pareto front: nothing on the front is dominated; everything off the
/// front is dominated by someone on it.
#[test]
fn pareto_front_is_sound_and_complete() {
    let mut rng = StdRng::seed_from_u64(0xABCD);
    for _ in 0..200 {
        let n = rng.gen_range(1usize..40);
        let tos: Vec<TradeOff> = (0..n)
            .map(|_| TradeOff::new(rng.gen_range(0.5f64..4.0), rng.gen_range(0.0f64..0.5)))
            .collect();
        let front = pareto_front(&tos);
        assert!(!front.is_empty());
        for &i in &front {
            for (j, q) in tos.iter().enumerate() {
                if i != j {
                    assert!(!q.dominates(&tos[i]), "front point {i} dominated by {j}");
                }
            }
        }
        for (i, p) in tos.iter().enumerate() {
            if !front.contains(&i) {
                assert!(
                    front.iter().any(|&j| tos[j].dominates(p)),
                    "off-front point {i} not dominated"
                );
            }
        }
    }
}

/// Distribution summaries are ordered and bounded.
#[test]
fn distribution_is_ordered() {
    let mut rng = StdRng::seed_from_u64(0xD157);
    for _ in 0..200 {
        let n = rng.gen_range(1usize..200);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).collect();
        let d = Distribution::from_values(&values);
        assert!(d.min <= d.q1 + 1e-12);
        assert!(d.q1 <= d.median + 1e-12);
        assert!(d.median <= d.q3 + 1e-12);
        assert!(d.q3 <= d.max + 1e-12);
        assert!(d.min - 1e-12 <= d.mean && d.mean <= d.max + 1e-12);
        assert_eq!(d.count, values.len());
    }
}

/// Coalescing invariants: L1 transactions never exceed element count (for
/// non-spanning accesses), DRAM never exceeds L1, and both are positive
/// when anything was accessed.
#[test]
fn coalescing_bounds() {
    let mut rng = StdRng::seed_from_u64(0xC0A1);
    for _ in 0..200 {
        let n = rng.gen_range(1usize..300);
        let accesses: Vec<(u32, u64, bool)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0u32..8),
                    rng.gen_range(0u64..4096),
                    rng.gen::<bool>(),
                )
            })
            .collect();
        let mut t = CoalesceTracker::new();
        for (i, &(granule, addr, is_write)) in accesses.iter().enumerate() {
            let dir = if is_write { Dir::Write } else { Dir::Read };
            // 4-byte aligned accesses never span blocks.
            t.record(granule, (i % 16) as u32, dir, addr * 4, 4, 64);
        }
        let s = t.finish_phase();
        assert!(s.transactions() >= 1);
        assert!(s.transactions() <= accesses.len() as u64);
        assert!(s.dram_transactions() <= s.transactions());
        assert!(s.dram_transactions() >= 1);
        assert_eq!(s.element_reads + s.element_writes, accesses.len() as u64);
    }
}

/// Bank conflicts: serialized steps are at least the ideal steps and at
/// most the total access count.
#[test]
fn bank_steps_bounds() {
    let mut rng = StdRng::seed_from_u64(0xBA2C);
    for _ in 0..200 {
        let n = rng.gen_range(1usize..200);
        let accesses: Vec<(u32, u32, u64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0u32..4),
                    rng.gen_range(0u32..8),
                    rng.gen_range(0u64..512),
                )
            })
            .collect();
        let mut t = BankTracker::new();
        for &(wf, seq, word) in &accesses {
            t.record(wf, seq, word, 32);
        }
        let s = t.finish_phase();
        assert!(s.steps >= s.ideal_steps);
        assert!(s.steps <= s.accesses);
        assert_eq!(s.accesses, accesses.len() as u64);
    }
}

/// PGM roundtrip: 8-bit quantization is the only loss.
#[test]
fn pgm_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x96A3);
    for _ in 0..100 {
        let w = rng.gen_range(1usize..24);
        let h = rng.gen_range(1usize..24);
        let seed: u64 = rng.gen();
        let img = Image::from_fn(w, h, |x, y| {
            let v = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((y * w + x) as u64);
            (v % 256) as f32 / 255.0
        });
        let mut buf = Vec::new();
        pgm::write_pgm_to(&img, &mut buf).unwrap();
        let back = pgm::read_pgm_from(&buf[..]).unwrap();
        assert_eq!(back.width(), w);
        assert_eq!(back.height(), h);
        for (a, b) in img.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6);
        }
    }
}

/// PerfCL expression round-trip: random arithmetic expressions survive
/// print → parse unchanged.
mod ir_roundtrip {
    use kernel_perforation::ir::ast::{BinOp, Expr};
    use kernel_perforation::ir::parser::parse;
    use kernel_perforation::ir::pretty::print_expr;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a random expression with the given remaining recursion depth.
    fn random_expr(rng: &mut StdRng, depth: usize) -> Expr {
        if depth == 0 || rng.gen_range(0usize..4) == 0 {
            return match rng.gen_range(0usize..3) {
                0 => Expr::IntLit(rng.gen_range(0i64..1000)),
                1 => Expr::var("a"),
                _ => Expr::var("b"),
            };
        }
        let op = match rng.gen_range(0usize..4) {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            _ => BinOp::Rem,
        };
        let l = random_expr(rng, depth - 1);
        let r = random_expr(rng, depth - 1);
        Expr::bin(op, l, r)
    }

    #[test]
    fn expressions_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x1234);
        for _ in 0..200 {
            let e = random_expr(&mut rng, 4);
            let src = format!(
                "kernel k(int a, int b, global int* out) {{ out[0] = {}; }}",
                print_expr(&e)
            );
            let prog = parse(&src).unwrap();
            let kernel = &prog.kernels[0];
            let kernel_perforation::ir::ast::Stmt::Store { value, .. } = &kernel.body[0] else {
                panic!("expected a store");
            };
            assert_eq!(value, &e);
        }
    }
}
