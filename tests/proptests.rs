//! Property-based tests over the core data structures and invariants.

use kernel_perforation::core::{
    pareto_front, reconstruct_element, Distribution, PerforationScheme, Reconstruction, SkipLevel,
    TileGeometry, TradeOff,
};
use kernel_perforation::data::{pgm, Image};
use kernel_perforation::gpu_sim::coalesce::{CoalesceTracker, Dir};
use kernel_perforation::gpu_sim::local::BankTracker;
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = PerforationScheme> {
    prop_oneof![
        Just(PerforationScheme::Rows(SkipLevel::Half)),
        Just(PerforationScheme::Rows(SkipLevel::ThreeQuarters)),
        Just(PerforationScheme::Columns(SkipLevel::Half)),
        Just(PerforationScheme::Columns(SkipLevel::ThreeQuarters)),
        Just(PerforationScheme::Stencil),
        (0.05f64..1.0, any::<u64>()).prop_map(|(keep_fraction, seed)| PerforationScheme::Random {
            keep_fraction,
            seed
        }),
    ]
}

fn recon_strategy() -> impl Strategy<Value = Reconstruction> {
    prop_oneof![
        Just(Reconstruction::NearestNeighbor),
        Just(Reconstruction::LinearInterpolation),
    ]
}

proptest! {
    /// Reconstructed values are convex combinations of loaded values: they
    /// never leave the value range of the loaded data.
    #[test]
    fn reconstruction_never_extrapolates(
        scheme in scheme_strategy(),
        recon in recon_strategy(),
        tile_w in 2usize..12,
        tile_h in 2usize..12,
        halo in 0usize..3,
        group_x in 0usize..4,
        group_y in 0usize..4,
        seed in any::<u64>(),
    ) {
        // Skip combinations the library itself rejects.
        let tile = TileGeometry::new(tile_w, tile_h, halo);
        prop_assume!(scheme.validate(&tile).is_ok());
        prop_assume!(recon.validate(&scheme).is_ok());

        // Fill loaded cells with a seeded pattern in [0, 1].
        let group = (group_x, group_y);
        let mut data = vec![f32::NAN; tile.padded_len()];
        let mut any_loaded = false;
        for py in 0..tile.padded_h() {
            for px in 0..tile.padded_w() {
                let (gx, gy) = tile.global_of(group, px, py);
                if scheme.loads(&tile, px, py, gx, gy) {
                    let h = seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((py * tile.padded_w() + px) as u64);
                    data[tile.index(px, py)] = (h % 1000) as f32 / 999.0;
                    any_loaded = true;
                }
            }
        }
        prop_assume!(any_loaded);
        let snapshot = data.clone();
        for py in 0..tile.padded_h() {
            for px in 0..tile.padded_w() {
                let (gx, gy) = tile.global_of(group, px, py);
                if !scheme.loads(&tile, px, py, gx, gy) {
                    let mut read = |x: usize, y: usize| snapshot[tile.index(x, y)];
                    let mut ops = |_| {};
                    let v = reconstruct_element(
                        &scheme, recon, &tile, group, px, py, &mut read, &mut ops,
                    );
                    // Reads of other skipped cells would return NaN; a
                    // correct reconstruction only ever reads loaded cells.
                    prop_assert!(!v.is_nan(), "read an unloaded cell at ({px},{py})");
                    prop_assert!((0.0..=1.0).contains(&v), "extrapolated: {v}");
                }
            }
        }
    }

    /// The fraction loaded by skip levels matches their nominal rate within
    /// tile-boundary rounding.
    #[test]
    fn scheme_fraction_matches_level(
        tile_w in 4usize..24,
        tile_h in 4usize..24,
        halo in 0usize..3,
        group_x in 0usize..4,
        group_y in 0usize..4,
    ) {
        let tile = TileGeometry::new(tile_w, tile_h, halo);
        let group = (group_x, group_y);
        let half = PerforationScheme::Rows(SkipLevel::Half).fraction_loaded(&tile, group);
        let quarter =
            PerforationScheme::Rows(SkipLevel::ThreeQuarters).fraction_loaded(&tile, group);
        let ph = tile.padded_h() as f64;
        prop_assert!((half - 0.5).abs() <= 0.5 / ph + 1e-9);
        prop_assert!((quarter - 0.25).abs() <= 0.75 / ph + 1e-9);
        prop_assert!(quarter < half + 1e-9);
    }

    /// Pareto front: nothing on the front is dominated; everything off the
    /// front is dominated by someone on it.
    #[test]
    fn pareto_front_is_sound_and_complete(
        points in prop::collection::vec((0.5f64..4.0, 0.0f64..0.5), 1..40)
    ) {
        let tos: Vec<TradeOff> =
            points.iter().map(|&(s, e)| TradeOff::new(s, e)).collect();
        let front = pareto_front(&tos);
        prop_assert!(!front.is_empty());
        for &i in &front {
            for (j, q) in tos.iter().enumerate() {
                if i != j {
                    prop_assert!(!q.dominates(&tos[i]), "front point {i} dominated by {j}");
                }
            }
        }
        for (i, p) in tos.iter().enumerate() {
            if !front.contains(&i) {
                prop_assert!(
                    front.iter().any(|&j| tos[j].dominates(p)),
                    "off-front point {i} not dominated"
                );
            }
        }
    }

    /// Distribution summaries are ordered and bounded.
    #[test]
    fn distribution_is_ordered(values in prop::collection::vec(0.0f64..1.0, 1..200)) {
        let d = Distribution::from_values(&values);
        prop_assert!(d.min <= d.q1 + 1e-12);
        prop_assert!(d.q1 <= d.median + 1e-12);
        prop_assert!(d.median <= d.q3 + 1e-12);
        prop_assert!(d.q3 <= d.max + 1e-12);
        prop_assert!(d.min - 1e-12 <= d.mean && d.mean <= d.max + 1e-12);
        prop_assert_eq!(d.count, values.len());
    }

    /// Coalescing invariants: L1 transactions never exceed element count
    /// (for non-spanning accesses), DRAM never exceeds L1, and both are
    /// positive when anything was accessed.
    #[test]
    fn coalescing_bounds(accesses in prop::collection::vec((0u32..8, 0u64..4096, any::<bool>()), 1..300)) {
        let mut t = CoalesceTracker::new();
        for (i, &(granule, addr, is_write)) in accesses.iter().enumerate() {
            let dir = if is_write { Dir::Write } else { Dir::Read };
            // 4-byte aligned accesses never span blocks.
            t.record(granule, (i % 16) as u32, dir, addr * 4, 4, 64);
        }
        let s = t.finish_phase();
        prop_assert!(s.transactions() >= 1);
        prop_assert!(s.transactions() <= accesses.len() as u64);
        prop_assert!(s.dram_transactions() <= s.transactions());
        prop_assert!(s.dram_transactions() >= 1);
        prop_assert_eq!(s.element_reads + s.element_writes, accesses.len() as u64);
    }

    /// Bank conflicts: serialized steps are at least the ideal steps and at
    /// most the total access count.
    #[test]
    fn bank_steps_bounds(accesses in prop::collection::vec((0u32..4, 0u32..8, 0u64..512), 1..200)) {
        let mut t = BankTracker::new();
        for &(wf, seq, word) in &accesses {
            t.record(wf, seq, word, 32);
        }
        let s = t.finish_phase();
        prop_assert!(s.steps >= s.ideal_steps);
        prop_assert!(s.steps <= s.accesses);
        prop_assert_eq!(s.accesses, accesses.len() as u64);
    }

    /// PGM roundtrip: 8-bit quantization is the only loss.
    #[test]
    fn pgm_roundtrip(
        w in 1usize..24,
        h in 1usize..24,
        seed in any::<u64>(),
    ) {
        let img = Image::from_fn(w, h, |x, y| {
            let v = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((y * w + x) as u64);
            (v % 256) as f32 / 255.0
        });
        let mut buf = Vec::new();
        pgm::write_pgm_to(&img, &mut buf).unwrap();
        let back = pgm::read_pgm_from(&buf[..]).unwrap();
        prop_assert_eq!(back.width(), w);
        prop_assert_eq!(back.height(), h);
        for (a, b) in img.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6);
        }
    }
}

/// PerfCL expression round-trip: random arithmetic expressions survive
/// print → parse unchanged.
mod ir_roundtrip {
    use kernel_perforation::ir::ast::{BinOp, Expr};
    use kernel_perforation::ir::parser::parse;
    use kernel_perforation::ir::pretty::print_expr;
    use proptest::prelude::*;

    fn expr_strategy() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (0i64..1000).prop_map(Expr::IntLit),
            Just(Expr::var("a")),
            Just(Expr::var("b")),
        ];
        leaf.prop_recursive(4, 32, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::bin(BinOp::Add, l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::bin(BinOp::Sub, l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::bin(BinOp::Mul, l, r)),
                (inner.clone(), inner).prop_map(|(l, r)| Expr::bin(BinOp::Rem, l, r)),
            ]
        })
    }

    proptest! {
        #[test]
        fn expressions_roundtrip(e in expr_strategy()) {
            let src = format!(
                "kernel k(int a, int b, global int* out) {{ out[0] = {}; }}",
                print_expr(&e)
            );
            let prog = parse(&src).unwrap();
            let kernel = &prog.kernels[0];
            let kernel_perforation::ir::ast::Stmt::Store { value, .. } = &kernel.body[0]
            else {
                panic!("expected a store");
            };
            prop_assert_eq!(value, &e);
        }
    }
}
