//! Bytecode-VM differential suite.
//!
//! The `kp-ir` interpreter compiles kernels to register bytecode at
//! construction, runs the optimizer pass pipeline over it, and keeps both
//! slower strategies as references: the tree-walking evaluator
//! (`ExecMode::Interpreted`) and the as-lowered bytecode
//! (`OptLevel::None`), mirroring how `launch_serial` is the reference for
//! the parallel launch engine. This suite asserts the whole contract at
//! once, app by app: **outputs (bit for bit), launch reports (statistics
//! + timing), runtime errors and fault logs must be identical** across
//!
//! * all execution strategies — tree walk, unoptimized VM, optimized VM,
//!   and the lane-batched vector VM at wavefront widths 1, 4 and 8 — and
//! * both launch frontends — serial reference and parallel engine at
//!   worker counts 1, 2, 8 and auto —
//!
//! for the five PerfCL evaluation apps (accurate *and* perforated
//! variants) plus dedicated fault/runtime-error kernels.

use kernel_perforation::apps::perfcl::{self, PerfclApp};
use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::{
    Device, DeviceConfig, ExecMode, LaunchReport, NdRange, OptLevel, SimError,
};
use kernel_perforation::ir::{
    ast::KernelDef,
    parser::parse,
    transform::{perforate_kernel, IrRecon, IrScheme, PassConfig},
    ArgValue, IrError, IrKernel,
};

/// How a case is launched.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Launch {
    /// `Device::launch_serial` — the legacy one-group-at-a-time reference.
    Serial,
    /// `Device::launch` at the given worker count (0 = auto).
    Parallel(usize),
}

/// The launch matrix every case runs under.
const LAUNCHES: [Launch; 5] = [
    Launch::Serial,
    Launch::Parallel(1),
    Launch::Parallel(2),
    Launch::Parallel(8),
    Launch::Parallel(0),
];

/// The execution strategies every case runs under: tree walk, as-lowered
/// bytecode, optimized bytecode, and the lane-batched vector VM at three
/// wavefront widths (1 = degenerate lockstep; 4 divides the 8-wide test
/// groups evenly; 8 covers full-width waves). Group sizes that are not
/// lane multiples exercise the tail wave via the perforated 40×24 cases.
const STRATEGIES: [(ExecMode, OptLevel); 6] = [
    (ExecMode::Interpreted, OptLevel::Full), // opt level ignored
    (ExecMode::Compiled, OptLevel::None),
    (ExecMode::Compiled, OptLevel::Full),
    (ExecMode::Vectorized { lanes: 1 }, OptLevel::Full),
    (ExecMode::Vectorized { lanes: 4 }, OptLevel::None),
    (ExecMode::Vectorized { lanes: 8 }, OptLevel::Full),
];

/// Everything observable from one launch, in comparable form.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    /// Output buffer as raw bits (exact equality, NaN-safe).
    output_bits: Vec<u32>,
    /// Full report (stats, timing, occupancy) on success.
    report: Option<LaunchReport>,
    /// Launch error (kernel faults keep their full logs), if any.
    error: Option<SimError>,
    /// First interpreter/VM runtime error, if any.
    runtime_error: Option<IrError>,
}

/// Runs one kernel definition with standard bindings and returns the
/// observable outcome.
#[allow(clippy::too_many_arguments)] // mirrors the full case coordinates
fn run_case(
    def: &KernelDef,
    app: &PerfclApp,
    data: &[f32],
    aux: &[f32],
    (w, h): (usize, usize),
    group: (usize, usize),
    (mode, opt): (ExecMode, OptLevel),
    launch: Launch,
) -> Outcome {
    let mut cfg = DeviceConfig::firepro_w5100();
    cfg.exec_mode = mode;
    cfg.opt_level = opt;
    if let Launch::Parallel(threads) = launch {
        cfg.parallelism = threads;
    }
    let mut dev = Device::new(cfg).unwrap();
    let in_buf = dev.create_buffer_from("in", data).unwrap();
    let out_buf = dev.create_buffer::<f32>("out", w * h).unwrap();
    let mut args = vec![
        ("in", ArgValue::Buffer(in_buf)),
        ("out", ArgValue::Buffer(out_buf)),
        ("width", ArgValue::Int(w as i64)),
        ("height", ArgValue::Int(h as i64)),
    ];
    if app.needs_aux {
        let aux_buf = dev.create_buffer_from("aux", aux).unwrap();
        args.push(("aux", ArgValue::Buffer(aux_buf)));
    }
    for &(name, v) in app.extra_args {
        args.push((name, ArgValue::Float(v)));
    }
    let kernel = IrKernel::new(def.clone(), &args).unwrap();

    // Global size padded up to group multiples; the kernels guard.
    let range = NdRange::new_2d(
        (w.div_ceil(group.0) * group.0, h.div_ceil(group.1) * group.1),
        group,
    )
    .unwrap();
    let result = match launch {
        Launch::Serial => dev.launch_serial(&kernel, range),
        Launch::Parallel(_) => dev.launch(&kernel, range),
    };
    let (report, error) = match result {
        Ok(r) => (Some(r), None),
        Err(e) => (None, Some(e)),
    };
    Outcome {
        output_bits: dev
            .read_buffer::<f32>(out_buf)
            .unwrap()
            .into_iter()
            .map(f32::to_bits)
            .collect(),
        report,
        error,
        runtime_error: kernel.take_runtime_error(),
    }
}

/// Runs the full mode × launch matrix for one kernel definition and
/// asserts every outcome equals the compiled-serial reference.
fn assert_matrix_identical(
    label: &str,
    def: &KernelDef,
    app: &PerfclApp,
    (w, h): (usize, usize),
    group: (usize, usize),
) {
    let data = synth::photo_like(w, h, 0x5EED).as_slice().to_vec();
    let aux = synth::photo_like(w, h, 0xA0C).as_slice().to_vec();
    let reference = run_case(
        def,
        app,
        &data,
        &aux,
        (w, h),
        group,
        (ExecMode::Compiled, OptLevel::Full),
        Launch::Serial,
    );
    for strategy in STRATEGIES {
        for launch in LAUNCHES {
            let outcome = run_case(def, app, &data, &aux, (w, h), group, strategy, launch);
            assert_eq!(
                outcome, reference,
                "{label}: {:?} / {launch:?} diverges from optimized-compiled serial",
                strategy
            );
        }
    }
}

#[test]
fn accurate_apps_are_identical_across_modes_and_launches() {
    // 44×33 is deliberately not a multiple of the group size, so the
    // early-return guards execute on the padded border items.
    for app in perfcl::evaluation_kernels() {
        let def = parse(app.source).unwrap().kernels.remove(0);
        assert_matrix_identical(
            &format!("{} accurate", app.name),
            &def,
            &app,
            (44, 33),
            (8, 8),
        );
    }
}

#[test]
fn perforated_apps_are_identical_across_modes_and_launches() {
    // The perforation pass specializes kernels for a fixed tile, so the
    // image divides the group exactly here (the pass's launch contract).
    for app in perfcl::evaluation_kernels() {
        let def = parse(app.source).unwrap().kernels.remove(0);
        let pass = PassConfig {
            scheme: IrScheme::RowsHalf,
            reconstruction: IrRecon::NearestNeighbor,
            tile_w: 8,
            tile_h: 8,
        };
        let perforated = perforate_kernel(&def, &pass).unwrap();
        assert_matrix_identical(
            &format!("{} Rows1:NN", app.name),
            &perforated,
            &app,
            (40, 24),
            (8, 8),
        );
    }
}

#[test]
fn linear_interpolation_variant_is_identical_too() {
    // A second reconstruction exercises a different generated-code shape
    // (two-sided distance weighting with division).
    let app = perfcl::by_name("gaussian").unwrap();
    let def = parse(app.source).unwrap().kernels.remove(0);
    let pass = PassConfig {
        scheme: IrScheme::RowsHalf,
        reconstruction: IrRecon::LinearInterpolation,
        tile_w: 8,
        tile_h: 8,
    };
    let perforated = perforate_kernel(&def, &pass).unwrap();
    assert_matrix_identical("gaussian Rows1:LI", &perforated, &app, (32, 24), (8, 8));
}

#[test]
fn tail_wavefronts_with_column_divergence_are_identical() {
    // Group (6, 3) = 18 work-items: not a multiple of either vector
    // width, so every group runs two full 8-wide waves plus a 2-lane
    // tail (and four full 4-wide waves plus a 2-lane tail). ColsHalf
    // perforation branches on the *x* coordinate — adjacent lanes of one
    // wave take opposite sides of the sparse-load branch, the closest
    // thing the pass offers to per-lane random divergence.
    let app = perfcl::by_name("gaussian").unwrap();
    let def = parse(app.source).unwrap().kernels.remove(0);
    let pass = PassConfig {
        scheme: IrScheme::ColsHalf,
        reconstruction: IrRecon::NearestNeighbor,
        tile_w: 6,
        tile_h: 3,
    };
    let perforated = perforate_kernel(&def, &pass).unwrap();
    assert_matrix_identical(
        "gaussian Cols1:NN tail-wave",
        &perforated,
        &app,
        (36, 15),
        (6, 3),
    );
}

#[test]
fn stencil_scheme_divergence_is_identical_across_lanes() {
    // The Stencil scheme's sparse-load predicate depends on both local
    // coordinates (interior vs halo ring), and its reconstruction phase
    // runs only on the ring items — heavy intra-wave divergence across
    // all three phases.
    let app = perfcl::by_name("gaussian").unwrap();
    let def = parse(app.source).unwrap().kernels.remove(0);
    let pass = PassConfig {
        scheme: IrScheme::Stencil,
        reconstruction: IrRecon::NearestNeighbor,
        tile_w: 8,
        tile_h: 8,
    };
    let perforated = perforate_kernel(&def, &pass).unwrap();
    assert_matrix_identical("gaussian Stencil1:NN", &perforated, &app, (40, 24), (8, 8));
}

#[test]
fn shadow_leaked_lane_registers_are_identical() {
    // Every third lane dynamically retypes `v` (float → int) through a
    // shadow leak: the vector VM's per-lane tag bytes must track each
    // lane independently, in full and tail wavefronts alike. 22×14 pads
    // up to 24×15, so the border guard retires some lanes early too.
    let app = PerfclApp {
        name: "shadow",
        source: "",
        halo: 0,
        needs_aux: false,
        extra_args: &[],
    };
    let src = "kernel shadow(global const float* in, global float* out, int width, int height) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        if (x >= width || y >= height) { return; }
        float v = in[y * width + x];
        if (x % 3 == 0) { int v = x + 1; }
        v = v + 1;
        out[y * width + x] = float(v) * 0.5;
    }";
    let def = parse(src).unwrap().kernels.remove(0);
    assert_matrix_identical("shadow-leak", &def, &app, (22, 14), (6, 3));
}

#[test]
fn mid_phase_per_lane_faults_are_identical() {
    // Faults raised *after* a barrier (phase 1) on a lane-dependent
    // predicate: every lane with x ≡ 1 (mod 4) reads its local tile out
    // of bounds mid-phase while sibling lanes keep running. Fault logs,
    // totals and partial outputs must match the scalar reference.
    let app = PerfclApp {
        name: "midfault",
        source: "",
        halo: 0,
        needs_aux: false,
        extra_args: &[],
    };
    let src = "kernel midfault(global const float* in, global float* out, int width, int height) {
        local float tile[18];
        int x = get_global_id(0);
        int y = get_global_id(1);
        int li = get_local_id(1) * 6 + get_local_id(0);
        tile[li] = float(li) * 0.25;
        barrier();
        if (x >= width || y >= height) { return; }
        int idx = li;
        if (x % 4 == 1) { idx = li + 100; }
        out[y * width + x] = in[y * width + x] + tile[idx];
    }";
    let def = parse(src).unwrap().kernels.remove(0);
    assert_matrix_identical("mid-phase faults", &def, &app, (24, 15), (6, 3));
}

#[test]
fn fault_logs_are_identical_across_modes_and_launches() {
    // Every third item stores out of bounds: the launch fails with a
    // capped fault log whose contents (and total) must not depend on the
    // execution mode or worker count.
    let app = PerfclApp {
        name: "oob",
        source: "",
        halo: 0,
        needs_aux: false,
        extra_args: &[],
    };
    let src = "kernel oob(global const float* in, global float* out, int width, int height) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        if (x >= width || y >= height) { return; }
        out[(y * width + x) * 3] = in[y * width + x];
    }";
    let def = parse(src).unwrap().kernels.remove(0);
    assert_matrix_identical("oob faults", &def, &app, (24, 16), (8, 8));

    // Sanity: the reference really does fault.
    let data = synth::photo_like(24, 16, 1).as_slice().to_vec();
    let outcome = run_case(
        &def,
        &app,
        &data,
        &data,
        (24, 16),
        (8, 8),
        (ExecMode::Compiled, OptLevel::Full),
        Launch::Serial,
    );
    match outcome.error {
        Some(SimError::KernelFaults { total, faults, .. }) => {
            assert!(total > 0);
            assert!(!faults.is_empty());
        }
        other => panic!("expected kernel faults, got {other:?}"),
    }
}

#[test]
fn runtime_errors_are_identical_across_modes_and_launches() {
    // Items whose x ≡ 3 (mod 7) divide by zero; the recorded error must be
    // the row-major-earliest one in every configuration.
    let app = PerfclApp {
        name: "divz",
        source: "",
        halo: 0,
        needs_aux: false,
        extra_args: &[],
    };
    let src = "kernel divz(global const float* in, global float* out, int width, int height) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        if (x >= width || y >= height) { return; }
        int d = x % 7 - 3;
        out[y * width + x] = float(100 / d) + in[y * width + x];
    }";
    let def = parse(src).unwrap().kernels.remove(0);
    assert_matrix_identical("div-by-zero", &def, &app, (24, 16), (8, 8));

    let data = synth::photo_like(24, 16, 2).as_slice().to_vec();
    let outcome = run_case(
        &def,
        &app,
        &data,
        &data,
        (24, 16),
        (8, 8),
        (ExecMode::Interpreted, OptLevel::Full),
        Launch::Parallel(2),
    );
    let err = outcome.runtime_error.expect("division must be reported");
    assert!(err.to_string().contains("division by zero"), "{err}");
}
