//! Cross-crate equivalence: kernels compiled by the kp-ir perforation pass
//! must produce *bit-identical* outputs to the hand-built kp-core pipeline
//! kernels — same schemes, same reconstruction arithmetic, same clamping,
//! same tie-breaking.

use kernel_perforation::core::{run_app, ApproxConfig, ImageInput, RunSpec, StencilApp, Window};
use kernel_perforation::data::synth;
use kernel_perforation::gpu_sim::{Device, DeviceConfig, NdRange};
use kernel_perforation::ir::{
    parser::parse,
    transform::{perforate_kernel, IrRecon, IrScheme, PassConfig},
    ArgValue, IrKernel,
};

/// Box mean 3×3 in Rust — accumulation order matches the PerfCL source
/// below exactly (dy outer, dx inner), so both compute identical f32 sums.
struct BoxMean;

impl StencilApp for BoxMean {
    fn name(&self) -> &str {
        "boxmean"
    }

    fn halo(&self) -> usize {
        1
    }

    fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
        let mut acc = 0.0f32;
        for dy in -1..=1 {
            for dx in -1..=1 {
                acc += win.at(dx, dy);
            }
        }
        win.ops(10);
        acc / 9.0
    }
}

const BOXMEAN_SRC: &str = "kernel boxmean(global const float* in, global float* out,
                                          int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x >= width || y >= height) { return; }
    float acc = 0.0;
    acc = acc + in[clamp(y - 1, 0, height - 1) * width + clamp(x - 1, 0, width - 1)];
    acc = acc + in[clamp(y - 1, 0, height - 1) * width + clamp(x, 0, width - 1)];
    acc = acc + in[clamp(y - 1, 0, height - 1) * width + clamp(x + 1, 0, width - 1)];
    acc = acc + in[clamp(y, 0, height - 1) * width + clamp(x - 1, 0, width - 1)];
    acc = acc + in[y * width + x];
    acc = acc + in[clamp(y, 0, height - 1) * width + clamp(x + 1, 0, width - 1)];
    acc = acc + in[clamp(y + 1, 0, height - 1) * width + clamp(x - 1, 0, width - 1)];
    acc = acc + in[clamp(y + 1, 0, height - 1) * width + clamp(x, 0, width - 1)];
    acc = acc + in[clamp(y + 1, 0, height - 1) * width + clamp(x + 1, 0, width - 1)];
    out[y * width + x] = acc / 9.0;
}";

struct Negate;

impl StencilApp for Negate {
    fn name(&self) -> &str {
        "negate"
    }

    fn halo(&self) -> usize {
        0
    }

    fn baseline_uses_local(&self) -> bool {
        false
    }

    fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
        win.ops(1);
        1.0 - win.at(0, 0)
    }
}

const NEGATE_SRC: &str = "kernel negate(global const float* in, global float* out,
                                        int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x >= width || y >= height) { return; }
    out[y * width + x] = 1.0 - in[y * width + x];
}";

fn run_hand(
    app: kernel_perforation::core::WorkloadRef,
    config: ApproxConfig,
    data: &[f32],
    w: usize,
    h: usize,
) -> Vec<f32> {
    let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
    dev.set_profiling(false);
    let input = ImageInput::new(data, w, h).unwrap();
    run_app(&mut dev, app, &input, &RunSpec::Perforated(config))
        .unwrap()
        .output
}

fn run_ir(src: &str, pass: &PassConfig, data: &[f32], w: usize, h: usize) -> Vec<f32> {
    let prog = parse(src).unwrap();
    let perforated = perforate_kernel(&prog.kernels[0], pass).unwrap();
    let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
    dev.set_profiling(false);
    let input = dev.create_buffer_from("in", data).unwrap();
    let out = dev.create_buffer::<f32>("out", w * h).unwrap();
    let kernel = IrKernel::new(
        perforated,
        &[
            ("in", ArgValue::Buffer(input)),
            ("out", ArgValue::Buffer(out)),
            ("width", ArgValue::Int(w as i64)),
            ("height", ArgValue::Int(h as i64)),
        ],
    )
    .unwrap();
    let range = NdRange::new_2d((w, h), (pass.tile_w, pass.tile_h)).unwrap();
    dev.launch(&kernel, range).unwrap();
    assert!(kernel.take_runtime_error().is_none());
    dev.read_buffer::<f32>(out).unwrap()
}

fn assert_bit_identical(a: &[f32], b: &[f32], what: &str, w: usize) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: mismatch at ({}, {}): hand {x} vs ir {y}",
            i % w,
            i / w
        );
    }
}

fn cases() -> Vec<(IrScheme, IrRecon, ApproxConfig)> {
    let g = (8, 8);
    vec![
        (
            IrScheme::RowsHalf,
            IrRecon::NearestNeighbor,
            ApproxConfig::rows1_nn(g),
        ),
        (
            IrScheme::RowsHalf,
            IrRecon::LinearInterpolation,
            ApproxConfig::rows1_li(g),
        ),
        (
            IrScheme::RowsQuarter,
            IrRecon::NearestNeighbor,
            ApproxConfig::rows2_nn(g),
        ),
        (
            IrScheme::ColsHalf,
            IrRecon::NearestNeighbor,
            ApproxConfig::cols1_nn(g),
        ),
    ]
}

#[test]
fn boxmean_ir_matches_hand_pipeline_for_all_schemes() {
    let (w, h) = (32, 24);
    let image = synth::photo_like(w, h, 9);
    let data = image.as_slice();
    for (scheme, recon, config) in cases() {
        let pass = PassConfig {
            scheme,
            reconstruction: recon,
            tile_w: 8,
            tile_h: 8,
        };
        let hand = run_hand(&BoxMean, config, data, w, h);
        let ir = run_ir(BOXMEAN_SRC, &pass, data, w, h);
        assert_bit_identical(&hand, &ir, &config.label(), w);
    }
}

#[test]
fn boxmean_ir_matches_hand_pipeline_for_stencil_scheme() {
    let (w, h) = (32, 24);
    let image = synth::photo_like(w, h, 10);
    let data = image.as_slice();
    let pass = PassConfig {
        scheme: IrScheme::Stencil,
        reconstruction: IrRecon::NearestNeighbor,
        tile_w: 8,
        tile_h: 8,
    };
    let hand = run_hand(&BoxMean, ApproxConfig::stencil1_nn((8, 8)), data, w, h);
    let ir = run_ir(BOXMEAN_SRC, &pass, data, w, h);
    assert_bit_identical(&hand, &ir, "Stencil1:NN", w);
}

#[test]
fn negate_ir_matches_hand_pipeline() {
    let (w, h) = (24, 16);
    let image = synth::countryside(w, h, 11);
    let data = image.as_slice();
    for (scheme, recon, config) in cases() {
        let pass = PassConfig {
            scheme,
            reconstruction: recon,
            tile_w: 8,
            tile_h: 8,
        };
        let hand = run_hand(&Negate, config, data, w, h);
        let ir = run_ir(NEGATE_SRC, &pass, data, w, h);
        assert_bit_identical(&hand, &ir, &config.label(), w);
    }
}

#[test]
fn accurate_ir_matches_accurate_hand_kernel() {
    // Sanity anchor: the *untransformed* IR kernel matches the hand
    // AccurateGlobal kernel bit for bit, so any perforated mismatch can
    // only come from the pass.
    let (w, h) = (32, 16);
    let image = synth::photo_like(w, h, 12);
    let data = image.as_slice();

    let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
    dev.set_profiling(false);
    let input = ImageInput::new(data, w, h).unwrap();
    let hand = run_app(
        &mut dev,
        &BoxMean,
        &input,
        &RunSpec::AccurateGlobal { group: (8, 8) },
    )
    .unwrap()
    .output;

    let prog = parse(BOXMEAN_SRC).unwrap();
    let in_buf = dev.create_buffer_from("in", data).unwrap();
    let out_buf = dev.create_buffer::<f32>("out", w * h).unwrap();
    let kernel = IrKernel::new(
        prog.kernels[0].clone(),
        &[
            ("in", ArgValue::Buffer(in_buf)),
            ("out", ArgValue::Buffer(out_buf)),
            ("width", ArgValue::Int(w as i64)),
            ("height", ArgValue::Int(h as i64)),
        ],
    )
    .unwrap();
    dev.launch(&kernel, NdRange::new_2d((w, h), (8, 8)).unwrap())
        .unwrap();
    let ir = dev.read_buffer::<f32>(out_buf).unwrap();
    assert_bit_identical(&hand, &ir, "accurate", w);
}

#[test]
fn ir_and_hand_kernels_report_comparable_memory_traffic() {
    // The IR interpreter should not just match functionally: its perforated
    // kernel must also *save the same DRAM traffic* as the hand pipeline
    // (within the noise of extra scalar loads).
    let (w, h) = (64, 64);
    let image = synth::photo_like(w, h, 13);
    let data = image.as_slice();

    let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
    let input = ImageInput::new(data, w, h).unwrap();
    let hand = run_app(
        &mut dev,
        &BoxMean,
        &input,
        &RunSpec::Perforated(ApproxConfig::rows1_nn((8, 8))),
    )
    .unwrap()
    .report;

    let prog = parse(BOXMEAN_SRC).unwrap();
    let pass = PassConfig {
        scheme: IrScheme::RowsHalf,
        reconstruction: IrRecon::NearestNeighbor,
        tile_w: 8,
        tile_h: 8,
    };
    let perforated = perforate_kernel(&prog.kernels[0], &pass).unwrap();
    let in_buf = dev.create_buffer_from("in", data).unwrap();
    let out_buf = dev.create_buffer::<f32>("out", w * h).unwrap();
    let kernel = IrKernel::new(
        perforated,
        &[
            ("in", ArgValue::Buffer(in_buf)),
            ("out", ArgValue::Buffer(out_buf)),
            ("width", ArgValue::Int(w as i64)),
            ("height", ArgValue::Int(h as i64)),
        ],
    )
    .unwrap();
    let ir = dev
        .launch(&kernel, NdRange::new_2d((w, h), (8, 8)).unwrap())
        .unwrap();

    assert_eq!(
        hand.stats.dram_read_transactions, ir.stats.dram_read_transactions,
        "hand and compiled kernels should touch identical DRAM blocks"
    );
    assert_eq!(
        hand.stats.global_element_writes,
        ir.stats.global_element_writes
    );
}
