//! Worker-pool thread hygiene.
//!
//! The persistent command-queue pool spawns up to
//! `resolve_parallelism(cfg.parallelism)` threads per device, lazily on
//! first enqueue, and `Device`'s drop must join every one of them — a
//! pool shutdown bug shows up here as a thread-count delta. The test
//! lives in its own integration-test binary so no concurrently running
//! test can perturb the process thread count.
//!
//! Counting uses `/proc/self/task` (Linux — the platform CI runs on);
//! elsewhere the test is a no-op.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use kp_gpu_sim::{
    BufferId, BufferUse, CompletionQueue, Device, DeviceConfig, DeviceGroup, ItemCtx, Kernel,
    NdRange, SimError,
};

const BUF_LEN: usize = 64;

/// Spins until the test flips the gate, then writes its buffer — pins a
/// pool worker at a point the test controls so "registered while
/// pending" is deterministic.
struct Gated {
    buf: BufferId,
    gate: Arc<AtomicBool>,
}

impl Kernel for Gated {
    fn name(&self) -> &str {
        "gated"
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(BufferUse::new([], [self.buf]))
    }

    fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
        while !self.gate.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        ctx.write_global(self.buf, ctx.global_id(0), 1.0f32);
    }
}

/// Opens a gate when dropped — including during unwinding — so a failed
/// assertion can never leave a worker spinning and hang the test binary.
struct OpenOnDrop(Arc<AtomicBool>);

impl Drop for OpenOnDrop {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

fn thread_count() -> Option<usize> {
    Some(std::fs::read_dir("/proc/self/task").ok()?.count())
}

struct Scale {
    src: BufferId,
    dst: BufferId,
}

impl Kernel for Scale {
    fn name(&self) -> &str {
        "scale"
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(BufferUse::new([self.src], [self.dst]))
    }

    fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
        let i = ctx.global_id(0);
        let v: f32 = ctx.read_global(self.src, i);
        ctx.write_global(self.dst, i, 2.0 * v);
        ctx.ops(1);
    }
}

fn busy_device(parallelism: usize, wait_before_drop: bool) {
    let mut cfg = DeviceConfig::test_tiny();
    cfg.parallelism = parallelism;
    let mut dev = Device::new(cfg).unwrap();
    let src = dev.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
    let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
    let q = dev.create_queue();
    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    let mut events = Vec::new();
    for _ in 0..4 {
        events.push(q.enqueue_launch(Scale { src, dst }, range, &[]).unwrap());
    }
    if wait_before_drop {
        for ev in &events {
            ev.wait().unwrap();
        }
    }
    // Otherwise: drop with commands possibly still pending/running — the
    // queue drop cancels what has not started, the device drop joins the
    // pool either way.
}

#[test]
fn device_drop_joins_every_pool_worker() {
    let Some(baseline) = thread_count() else {
        eprintln!("skipping: /proc/self/task not available on this platform");
        return;
    };

    // Sequential churn: many short-lived devices, waited and unwaited,
    // at several pool sizes (0 = auto, subject to KP_SIM_PARALLELISM in
    // CI).
    for round in 0..8 {
        for parallelism in [1, 2, 4, 0] {
            busy_device(parallelism, round % 2 == 0);
        }
    }
    let after_churn = thread_count().unwrap();
    assert_eq!(
        after_churn, baseline,
        "worker threads leaked after sequential device churn"
    );

    // Many devices alive at once, each with a live queue and enqueued
    // work, then dropped together.
    let mut live = Vec::new();
    for k in 0..6 {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.parallelism = 2;
        let mut dev = Device::new(cfg).unwrap();
        let src = dev
            .create_buffer_from(&format!("s{k}"), &[1.0f32; BUF_LEN])
            .unwrap();
        let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
        let q = dev.create_queue();
        let ev = q
            .enqueue_launch(
                Scale { src, dst },
                NdRange::new_1d(BUF_LEN, 16).unwrap(),
                &[],
            )
            .unwrap();
        live.push((dev, q, ev));
    }
    let with_pools = thread_count().unwrap();
    assert!(
        with_pools >= baseline + 6,
        "expected at least one pool worker per live device \
         (baseline {baseline}, with 6 live devices {with_pools})"
    );
    drop(live);
    let after_drop = thread_count().unwrap();
    assert_eq!(
        after_drop, baseline,
        "worker threads leaked after dropping devices with live queues"
    );
}

/// `DeviceGroup` churn: N pooled member devices per group, sharded
/// launches, plus a cross-member wait (which spawns a one-shot bridge
/// thread) — construction and drop must leave the process thread count
/// untouched, and events held across the drop must resolve to the typed
/// [`SimError::DeviceLost`], never hang or panic.
#[test]
fn device_group_drop_joins_member_pools_and_bridges() {
    let Some(baseline) = thread_count() else {
        eprintln!("skipping: /proc/self/task not available on this platform");
        return;
    };

    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    for round in 0..4 {
        for n in [1, 2, 4] {
            let mut cfg = DeviceConfig::test_tiny();
            cfg.parallelism = 2;
            let mut group = DeviceGroup::with_devices(cfg, n).unwrap();
            let src = group.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
            let dst = group.create_buffer::<f32>("d", BUF_LEN).unwrap();
            group.launch_sharded(&Scale { src, dst }, range).unwrap();

            // A wait-list edge from the first member to the last spawns a
            // cross-device bridge thread when n > 1; drop must join it.
            let qa = group.create_queue(0);
            let qb = group.create_queue(n - 1);
            let ea = qa.enqueue_read::<f32>(src, &[]).unwrap();
            let eb = qb.enqueue_read::<f32>(src, &[ea]).unwrap();
            if round % 2 == 0 {
                // Half the rounds wait, half drop with commands possibly
                // still in flight.
                eb.wait().unwrap();
            }
            let held = eb.clone();
            drop((group, qa, qb, eb));
            assert!(
                matches!(held.wait(), Err(SimError::DeviceLost)),
                "event on a dropped group must resolve to DeviceLost"
            );
        }
    }
    assert_eq!(
        thread_count().unwrap(),
        baseline,
        "threads leaked after DeviceGroup churn"
    );
}

/// Serve-loop churn with the non-blocking completion layer: completion
/// queues watching in-flight events, devices dropped mid-flight — the
/// process thread count must come back to baseline, and every watched
/// event must surface exactly one completion (`Ok` or the typed
/// [`SimError::DeviceLost`]), never zero and never two.
#[test]
fn serve_loop_churn_with_callbacks_leaves_no_threads() {
    let Some(baseline) = thread_count() else {
        eprintln!("skipping: /proc/self/task not available on this platform");
        return;
    };

    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    for round in 0..6 {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.parallelism = 2;
        let mut dev = Device::new(cfg).unwrap();
        let src = dev.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
        let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
        let q = dev.create_queue();
        let cq = CompletionQueue::new();
        let mut events = Vec::new();
        for i in 0..8u64 {
            let ev = q.enqueue_launch(Scale { src, dst }, range, &[]).unwrap();
            cq.watch(&ev, i);
            events.push(ev);
        }
        if round % 2 == 0 {
            // Drain to dry, then drop the device.
            let mut seen = 0;
            while let Some(c) = cq.next() {
                c.result.unwrap();
                seen += 1;
            }
            assert_eq!(seen, 8);
            drop((dev, q, events));
        } else {
            // Drop mid-flight: the device-drop path must fire every
            // leftover callback (with DeviceLost), so the queue still
            // drains to exactly one completion per watched event.
            drop((dev, q, events));
            let mut seen = 0;
            while let Some(c) = cq.next() {
                assert!(
                    c.result.is_ok() || matches!(c.result, Err(SimError::DeviceLost)),
                    "unexpected completion outcome: {:?}",
                    c.result
                );
                seen += 1;
            }
            assert_eq!(
                seen, 8,
                "every watched event surfaces exactly one completion \
                 across a mid-flight device drop"
            );
        }
    }
    assert_eq!(
        thread_count().unwrap(),
        baseline,
        "threads leaked after serve-loop churn with callbacks"
    );
}

/// A callback registered *after* the device dropped fires exactly once,
/// synchronously on the registering thread, with [`SimError::DeviceLost`].
#[test]
fn callback_registered_after_device_drop_fires_once_with_device_lost() {
    let mut cfg = DeviceConfig::test_tiny();
    cfg.parallelism = 1;
    let mut dev = Device::new(cfg).unwrap();
    let src = dev.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
    let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
    let q = dev.create_queue();
    let ev = q
        .enqueue_launch(
            Scale { src, dst },
            NdRange::new_1d(BUF_LEN, 16).unwrap(),
            &[],
        )
        .unwrap();
    drop((dev, q));

    let fired = Arc::new(AtomicUsize::new(0));
    let lost = Arc::new(AtomicBool::new(false));
    let (fired2, lost2) = (Arc::clone(&fired), Arc::clone(&lost));
    ev.on_complete(move |outcome| {
        fired2.fetch_add(1, Ordering::SeqCst);
        if matches!(outcome, Err(SimError::DeviceLost)) {
            lost2.store(true, Ordering::SeqCst);
        }
    });
    assert_eq!(fired.load(Ordering::SeqCst), 1, "fires exactly once");
    assert!(lost.load(Ordering::SeqCst), "fires with DeviceLost");
}

/// A panicking `on_complete` callback is caught on the resolving worker:
/// the pool survives, later commands on the same (single-worker) device
/// still complete, and the callback still counts as fired exactly once.
#[test]
fn panicking_callback_does_not_kill_the_worker_pool() {
    let Some(baseline) = thread_count() else {
        eprintln!("skipping: /proc/self/task not available on this platform");
        return;
    };
    {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.parallelism = 1; // one worker: a dead pool would hang below
        let mut dev = Device::new(cfg).unwrap();
        let src = dev.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
        let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
        let gbuf = dev.create_buffer::<f32>("g", 1).unwrap();
        let q = dev.create_queue();
        let range = NdRange::new_1d(BUF_LEN, 16).unwrap();

        // Pin the lone worker so the callback is registered while the
        // watched command is still pending — it then fires on the worker.
        let gate = Arc::new(AtomicBool::new(false));
        let _open = OpenOnDrop(Arc::clone(&gate));
        let blocker = q
            .enqueue_launch(
                Gated {
                    buf: gbuf,
                    gate: Arc::clone(&gate),
                },
                NdRange::new_1d(1, 1).unwrap(),
                &[],
            )
            .unwrap();
        let ev = q
            .enqueue_launch(Scale { src, dst }, range, std::slice::from_ref(&blocker))
            .unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        ev.on_complete(move |outcome| {
            fired2.fetch_add(1, Ordering::SeqCst);
            outcome.unwrap();
            panic!("callback exploded on purpose");
        });

        gate.store(true, Ordering::Release);
        ev.wait().unwrap();
        // The worker that caught the panic must still execute commands.
        let ev2 = q.enqueue_launch(Scale { src, dst }, range, &[]).unwrap();
        ev2.wait().unwrap();
        while fired.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1, "fires exactly once");
        assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), vec![2.0; BUF_LEN]);
    }
    assert_eq!(
        thread_count().unwrap(),
        baseline,
        "panicking callback killed or leaked pool threads"
    );
}
