//! Worker-pool thread hygiene.
//!
//! The persistent command-queue pool spawns up to
//! `resolve_parallelism(cfg.parallelism)` threads per device, lazily on
//! first enqueue, and `Device`'s drop must join every one of them — a
//! pool shutdown bug shows up here as a thread-count delta. The test
//! lives in its own integration-test binary so no concurrently running
//! test can perturb the process thread count.
//!
//! Counting uses `/proc/self/task` (Linux — the platform CI runs on);
//! elsewhere the test is a no-op.

use kp_gpu_sim::{
    BufferId, BufferUse, Device, DeviceConfig, DeviceGroup, ItemCtx, Kernel, NdRange, SimError,
};

const BUF_LEN: usize = 64;

fn thread_count() -> Option<usize> {
    Some(std::fs::read_dir("/proc/self/task").ok()?.count())
}

struct Scale {
    src: BufferId,
    dst: BufferId,
}

impl Kernel for Scale {
    fn name(&self) -> &str {
        "scale"
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(BufferUse::new([self.src], [self.dst]))
    }

    fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
        let i = ctx.global_id(0);
        let v: f32 = ctx.read_global(self.src, i);
        ctx.write_global(self.dst, i, 2.0 * v);
        ctx.ops(1);
    }
}

fn busy_device(parallelism: usize, wait_before_drop: bool) {
    let mut cfg = DeviceConfig::test_tiny();
    cfg.parallelism = parallelism;
    let mut dev = Device::new(cfg).unwrap();
    let src = dev.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
    let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
    let q = dev.create_queue();
    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    let mut events = Vec::new();
    for _ in 0..4 {
        events.push(q.enqueue_launch(Scale { src, dst }, range, &[]).unwrap());
    }
    if wait_before_drop {
        for ev in &events {
            ev.wait().unwrap();
        }
    }
    // Otherwise: drop with commands possibly still pending/running — the
    // queue drop cancels what has not started, the device drop joins the
    // pool either way.
}

#[test]
fn device_drop_joins_every_pool_worker() {
    let Some(baseline) = thread_count() else {
        eprintln!("skipping: /proc/self/task not available on this platform");
        return;
    };

    // Sequential churn: many short-lived devices, waited and unwaited,
    // at several pool sizes (0 = auto, subject to KP_SIM_PARALLELISM in
    // CI).
    for round in 0..8 {
        for parallelism in [1, 2, 4, 0] {
            busy_device(parallelism, round % 2 == 0);
        }
    }
    let after_churn = thread_count().unwrap();
    assert_eq!(
        after_churn, baseline,
        "worker threads leaked after sequential device churn"
    );

    // Many devices alive at once, each with a live queue and enqueued
    // work, then dropped together.
    let mut live = Vec::new();
    for k in 0..6 {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.parallelism = 2;
        let mut dev = Device::new(cfg).unwrap();
        let src = dev
            .create_buffer_from(&format!("s{k}"), &[1.0f32; BUF_LEN])
            .unwrap();
        let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
        let q = dev.create_queue();
        let ev = q
            .enqueue_launch(
                Scale { src, dst },
                NdRange::new_1d(BUF_LEN, 16).unwrap(),
                &[],
            )
            .unwrap();
        live.push((dev, q, ev));
    }
    let with_pools = thread_count().unwrap();
    assert!(
        with_pools >= baseline + 6,
        "expected at least one pool worker per live device \
         (baseline {baseline}, with 6 live devices {with_pools})"
    );
    drop(live);
    let after_drop = thread_count().unwrap();
    assert_eq!(
        after_drop, baseline,
        "worker threads leaked after dropping devices with live queues"
    );
}

/// `DeviceGroup` churn: N pooled member devices per group, sharded
/// launches, plus a cross-member wait (which spawns a one-shot bridge
/// thread) — construction and drop must leave the process thread count
/// untouched, and events held across the drop must resolve to the typed
/// [`SimError::DeviceLost`], never hang or panic.
#[test]
fn device_group_drop_joins_member_pools_and_bridges() {
    let Some(baseline) = thread_count() else {
        eprintln!("skipping: /proc/self/task not available on this platform");
        return;
    };

    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    for round in 0..4 {
        for n in [1, 2, 4] {
            let mut cfg = DeviceConfig::test_tiny();
            cfg.parallelism = 2;
            let mut group = DeviceGroup::with_devices(cfg, n).unwrap();
            let src = group.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
            let dst = group.create_buffer::<f32>("d", BUF_LEN).unwrap();
            group.launch_sharded(&Scale { src, dst }, range).unwrap();

            // A wait-list edge from the first member to the last spawns a
            // cross-device bridge thread when n > 1; drop must join it.
            let qa = group.create_queue(0);
            let qb = group.create_queue(n - 1);
            let ea = qa.enqueue_read::<f32>(src, &[]).unwrap();
            let eb = qb.enqueue_read::<f32>(src, &[ea]).unwrap();
            if round % 2 == 0 {
                // Half the rounds wait, half drop with commands possibly
                // still in flight.
                eb.wait().unwrap();
            }
            let held = eb.clone();
            drop((group, qa, qb, eb));
            assert!(
                matches!(held.wait(), Err(SimError::DeviceLost)),
                "event on a dropped group must resolve to DeviceLost"
            );
        }
    }
    assert_eq!(
        thread_count().unwrap(),
        baseline,
        "threads leaked after DeviceGroup churn"
    );
}
