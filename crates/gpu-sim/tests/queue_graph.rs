//! Differential tests for the command-queue scheduler.
//!
//! The contract under test extends `parallel_determinism.rs` to command
//! streams: **any interleaving the scheduler picks produces buffers,
//! launch reports, read data and fault logs bit-identical to executing
//! the commands one at a time in enqueue order** — at every worker-thread
//! count — and random buffer-sharing command graphs always run to
//! completion (no deadlock, every event resolves).
//!
//! Graphs are generated from seeded xorshift state (the workspace is
//! offline, so no `proptest`): every failing case reproduces from the
//! seed in the assertion message.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kp_gpu_sim::{
    BufferId, BufferUse, CompletionQueue, Device, DeviceConfig, Event, FaultKind, ItemCtx, Kernel,
    LaunchReport, NdRange, Queue, SimError,
};

const BUF_LEN: usize = 64;

/// Spins until the test flips the gate, then writes its buffer. Used to
/// hold pool workers busy at a point the test controls — the only way to
/// make "this command was still pending when X happened" deterministic
/// now that execution is eager.
struct Gated {
    buf: BufferId,
    gate: Arc<AtomicBool>,
}

impl Kernel for Gated {
    fn name(&self) -> &str {
        "gated"
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(BufferUse::new([], [self.buf]))
    }

    fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
        while !self.gate.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        ctx.write_global(self.buf, ctx.global_id(0), 1.0f32);
    }
}

/// Opens a gate when dropped — including during unwinding — so a failed
/// assertion can never leave a worker spinning and hang the test binary.
struct OpenOnDrop(Arc<AtomicBool>);

impl Drop for OpenOnDrop {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// `dst[i] = a * x[i] + y[i]` with declared usage — overlappable.
struct Saxpy {
    x: BufferId,
    y: BufferId,
    dst: BufferId,
    a: f32,
}

impl Kernel for Saxpy {
    fn name(&self) -> &str {
        "saxpy"
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(BufferUse::new([self.x, self.y], [self.dst]))
    }

    fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
        let i = ctx.global_id(0);
        let x: f32 = ctx.read_global(self.x, i);
        let y: f32 = ctx.read_global(self.y, i);
        ctx.write_global(self.dst, i, self.a * x + y);
        ctx.ops(2);
    }
}

/// `dst[i] = factor * src[i]`, optionally reading one element out of
/// bounds so fault logs flow through the comparison too. `src == dst` is
/// allowed (read-modify-write of a declared output).
struct Scale {
    src: BufferId,
    dst: BufferId,
    factor: f32,
    oob: bool,
}

impl Kernel for Scale {
    fn name(&self) -> &str {
        "scale"
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(BufferUse::new([self.src], [self.dst]))
    }

    fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
        let i = ctx.global_id(0);
        let v: f32 = ctx.read_global(self.src, i);
        if self.oob && i == 0 {
            let _: f32 = ctx.read_global(self.src, BUF_LEN + 7);
        }
        ctx.write_global(self.dst, i, self.factor * v);
        ctx.ops(1);
    }
}

/// Declares only `a` but also reads `b`: the undeclared access must fault
/// identically under every schedule.
struct Sneaky {
    a: BufferId,
    b: BufferId,
    dst: BufferId,
}

impl Kernel for Sneaky {
    fn name(&self) -> &str {
        "sneaky"
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(BufferUse::new([self.a], [self.dst]))
    }

    fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
        let i = ctx.global_id(0);
        let a: f32 = ctx.read_global(self.a, i);
        let b: f32 = ctx.read_global(self.b, i); // undeclared!
        ctx.write_global(self.dst, i, a + b);
    }
}

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One abstract command of a generated graph.
#[derive(Debug, Clone)]
enum Cmd {
    Saxpy {
        x: usize,
        y: usize,
        dst: usize,
        a: f32,
    },
    Scale {
        src: usize,
        dst: usize,
        factor: f32,
        oob: bool,
    },
    Write {
        dst: usize,
        salt: u32,
    },
    Copy {
        src: usize,
        dst: usize,
    },
    Read {
        src: usize,
    },
    Sneaky {
        a: usize,
        b: usize,
        dst: usize,
    },
}

/// Generates a random command list over `nbufs` buffers, with up to two
/// random explicit dependencies per command (indices into earlier
/// commands).
fn random_graph(
    rng: &mut XorShift,
    len: usize,
    nbufs: usize,
    faults: bool,
) -> Vec<(Cmd, Vec<usize>)> {
    (0..len)
        .map(|i| {
            let kind = rng.below(if faults { 12 } else { 10 });
            let cmd = match kind {
                0..=2 => Cmd::Saxpy {
                    x: rng.below(nbufs),
                    y: rng.below(nbufs),
                    dst: rng.below(nbufs),
                    a: (rng.below(5) as f32) - 2.0,
                },
                3..=5 => Cmd::Scale {
                    src: rng.below(nbufs),
                    dst: rng.below(nbufs),
                    factor: (rng.below(7) as f32) / 2.0,
                    oob: false,
                },
                6 => Cmd::Write {
                    dst: rng.below(nbufs),
                    salt: rng.next() as u32,
                },
                7 => Cmd::Copy {
                    src: rng.below(nbufs),
                    dst: rng.below(nbufs),
                },
                8 | 9 => Cmd::Read {
                    src: rng.below(nbufs),
                },
                10 => Cmd::Scale {
                    src: rng.below(nbufs),
                    dst: rng.below(nbufs),
                    factor: 1.5,
                    oob: true,
                },
                _ => Cmd::Sneaky {
                    a: rng.below(nbufs),
                    b: rng.below(nbufs),
                    dst: rng.below(nbufs),
                },
            };
            let ndeps = rng.below(3).min(i);
            let deps = (0..ndeps).map(|_| rng.below(i)).collect();
            (cmd, deps)
        })
        .collect()
}

/// Everything observable about one executed command.
#[derive(Debug, PartialEq)]
enum Observed {
    Launch(Result<LaunchReport, SimError>),
    Read(Result<Vec<f32>, SimError>),
    Host(Result<(), SimError>),
}

fn device(parallelism: usize) -> Device {
    let mut cfg = DeviceConfig::test_tiny();
    cfg.parallelism = parallelism;
    Device::new(cfg).unwrap()
}

fn make_buffers(dev: &mut Device, nbufs: usize) -> Vec<BufferId> {
    (0..nbufs)
        .map(|k| {
            let data: Vec<f32> = (0..BUF_LEN).map(|i| (i * (k + 3)) as f32 * 0.25).collect();
            dev.create_buffer_from(&format!("b{k}"), &data).unwrap()
        })
        .collect()
}

/// How a run learns that its commands finished. Every mode must produce
/// bit-identical observations — completion plumbing is pure signalling
/// and never steers execution.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Reap {
    /// Await every event right after its enqueue — the reference
    /// schedule.
    InOrder,
    /// Enqueue everything, then park on the blocking `wait_*` calls.
    Blocking,
    /// Enqueue everything, then spin on `Event::poll` (never parks)
    /// until every event reports a settled outcome.
    Polling,
    /// Enqueue everything, watch every event on one `CompletionQueue`,
    /// and drain it until each callback has fired exactly once.
    Callbacks,
}

/// Runs a generated graph on `queues` queues, completing it in the
/// requested [`Reap`] mode. Queue `i` gets priority `prios[i]` when
/// provided (priorities may steer the pool's pick order but must never
/// change results). Returns the per-command observations plus the final
/// contents of every buffer.
fn run_graph(
    graph: &[(Cmd, Vec<usize>)],
    parallelism: usize,
    nbufs: usize,
    queues: usize,
    reap: Reap,
    prios: &[u8],
) -> (Vec<Observed>, Vec<Vec<f32>>) {
    let mut dev = device(parallelism);
    let bufs = make_buffers(&mut dev, nbufs);
    let qs: Vec<Queue> = (0..queues).map(|_| dev.create_queue()).collect();
    for (q, &p) in qs.iter().zip(prios) {
        q.set_priority(p).unwrap();
    }
    let mut events: Vec<(Event, bool)> = Vec::with_capacity(graph.len()); // (event, is_read)
    for (i, (cmd, deps)) in graph.iter().enumerate() {
        let wait: Vec<Event> = deps.iter().map(|&d| events[d].0.clone()).collect();
        let q = &qs[i % queues];
        let (event, is_read) = match *cmd {
            Cmd::Saxpy { x, y, dst, a } => (
                q.enqueue_launch(
                    Saxpy {
                        x: bufs[x],
                        y: bufs[y],
                        dst: bufs[dst],
                        a,
                    },
                    NdRange::new_1d(BUF_LEN, 16).unwrap(),
                    &wait,
                )
                .unwrap(),
                false,
            ),
            Cmd::Scale {
                src,
                dst,
                factor,
                oob,
            } => (
                q.enqueue_launch(
                    Scale {
                        src: bufs[src],
                        dst: bufs[dst],
                        factor,
                        oob,
                    },
                    NdRange::new_1d(BUF_LEN, 16).unwrap(),
                    &wait,
                )
                .unwrap(),
                false,
            ),
            Cmd::Sneaky { a, b, dst } => (
                q.enqueue_launch(
                    Sneaky {
                        a: bufs[a],
                        b: bufs[b],
                        dst: bufs[dst],
                    },
                    NdRange::new_1d(BUF_LEN, 16).unwrap(),
                    &wait,
                )
                .unwrap(),
                false,
            ),
            Cmd::Write { dst, salt } => {
                let data: Vec<f32> = (0..BUF_LEN)
                    .map(|i| (i as f32) + (salt % 97) as f32)
                    .collect();
                (q.enqueue_write(bufs[dst], &data, &wait).unwrap(), false)
            }
            Cmd::Copy { src, dst } => {
                if src == dst {
                    // Self-copy is a host error in the blocking API too;
                    // just degrade to a read to keep the graph simple.
                    (q.enqueue_read::<f32>(bufs[src], &wait).unwrap(), true)
                } else {
                    (q.enqueue_copy(bufs[src], bufs[dst], &wait).unwrap(), false)
                }
            }
            Cmd::Read { src } => (q.enqueue_read::<f32>(bufs[src], &wait).unwrap(), true),
        };
        if reap == Reap::InOrder {
            let _ = event.wait();
        }
        events.push((event, is_read));
    }

    // Drive completion without parking first when asked: the blocking
    // `wait_*` reaps below then degrade to pure result lookups.
    match reap {
        Reap::InOrder | Reap::Blocking => {}
        Reap::Polling => {
            let mut outcomes: Vec<Option<Result<(), SimError>>> = vec![None; events.len()];
            while outcomes.iter().any(Option::is_none) {
                for ((event, _), slot) in events.iter().zip(outcomes.iter_mut()) {
                    if slot.is_none() {
                        *slot = event.poll();
                    }
                }
                std::thread::yield_now();
            }
            // A settled poll outcome must agree with the blocking wait.
            for ((event, _), outcome) in events.iter().zip(&outcomes) {
                assert_eq!(event.wait().is_ok(), outcome.as_ref().unwrap().is_ok());
            }
        }
        Reap::Callbacks => {
            let cq = CompletionQueue::new();
            for (i, (event, _)) in events.iter().enumerate() {
                cq.watch(event, i as u64);
            }
            let mut fired = vec![0u32; events.len()];
            while let Some(c) = cq.next() {
                fired[c.token as usize] += 1;
                assert_eq!(events[c.token as usize].0.wait().is_ok(), c.result.is_ok());
            }
            assert!(
                fired.iter().all(|&n| n == 1),
                "every callback fires exactly once: {fired:?}"
            );
        }
    }

    // Reap everything (out-of-order path executes here).
    let observed: Vec<Observed> = graph
        .iter()
        .zip(&events)
        .map(|((cmd, _), (event, is_read))| {
            if *is_read {
                Observed::Read(event.wait_read::<f32>())
            } else if matches!(
                cmd,
                Cmd::Saxpy { .. } | Cmd::Scale { .. } | Cmd::Sneaky { .. }
            ) {
                Observed::Launch(event.wait_report())
            } else {
                Observed::Host(event.wait())
            }
        })
        .collect();
    for (event, _) in &events {
        assert!(
            event.is_complete().unwrap(),
            "event {} did not complete",
            event.seq()
        );
    }
    let finals = bufs
        .iter()
        .map(|&b| dev.read_buffer::<f32>(b).unwrap())
        .collect();
    (observed, finals)
}

#[test]
fn random_graphs_match_in_order_replay_at_every_worker_count() {
    for seed in 0..6u64 {
        let mut rng = XorShift::new(seed);
        let graph = random_graph(&mut rng, 24, 5, false);
        let (ref_obs, ref_bufs) = run_graph(&graph, 1, 5, 1, Reap::InOrder, &[]);
        for parallelism in [1, 2, 8, 0] {
            for queues in [1, 2, 3] {
                let (obs, bufs) = run_graph(&graph, parallelism, 5, queues, Reap::Blocking, &[]);
                assert_eq!(
                    obs, ref_obs,
                    "observations diverged (seed {seed}, p={parallelism}, q={queues})"
                );
                assert_eq!(
                    bufs, ref_bufs,
                    "buffers diverged (seed {seed}, p={parallelism}, q={queues})"
                );
            }
        }
    }
}

#[test]
fn faulting_graphs_keep_fault_logs_bit_identical() {
    for seed in 100..104u64 {
        let mut rng = XorShift::new(seed);
        let graph = random_graph(&mut rng, 20, 4, true);
        let (ref_obs, ref_bufs) = run_graph(&graph, 1, 4, 1, Reap::InOrder, &[]);
        // The generator with `faults` emits OOB scales and Sneaky
        // launches; make sure at least one seed actually faults so this
        // test keeps meaning something if the generator changes.
        for parallelism in [1, 8, 0] {
            let (obs, bufs) = run_graph(&graph, parallelism, 4, 2, Reap::Blocking, &[]);
            assert_eq!(obs, ref_obs, "seed {seed}, p={parallelism}");
            assert_eq!(bufs, ref_bufs, "seed {seed}, p={parallelism}");
        }
    }
}

#[test]
fn poll_and_callback_completion_match_blocking_waits() {
    // The non-blocking completion layer is pure signalling: finishing the
    // same graph via `poll()` spin loops or `on_complete` callbacks (one
    // CompletionQueue over all events) must yield outputs, reports and
    // fault logs bit-identical to blocking waits — at 1, 2 and 8 workers,
    // on clean and faulting graphs alike.
    for (seed, faults) in [(11u64, false), (12, false), (102, true), (103, true)] {
        let mut rng = XorShift::new(seed);
        let graph = random_graph(&mut rng, 24, 5, faults);
        let (ref_obs, ref_bufs) = run_graph(&graph, 1, 5, 1, Reap::InOrder, &[]);
        for parallelism in [1, 2, 8] {
            for reap in [Reap::Blocking, Reap::Polling, Reap::Callbacks] {
                let (obs, bufs) = run_graph(&graph, parallelism, 5, 2, reap, &[]);
                assert_eq!(
                    obs, ref_obs,
                    "observations diverged (seed {seed}, p={parallelism}, {reap:?})"
                );
                assert_eq!(
                    bufs, ref_bufs,
                    "buffers diverged (seed {seed}, p={parallelism}, {reap:?})"
                );
            }
        }
    }
}

#[test]
fn generator_emits_faulting_commands() {
    let mut rng = XorShift::new(101);
    let graph = random_graph(&mut rng, 20, 4, true);
    let (obs, _) = run_graph(&graph, 1, 4, 1, Reap::InOrder, &[]);
    assert!(
        obs.iter()
            .any(|o| matches!(o, Observed::Launch(Err(SimError::KernelFaults { .. })))),
        "expected at least one faulting launch in the seeded graph"
    );
}

#[test]
fn undeclared_access_faults_deterministically() {
    for parallelism in [1, 8] {
        let mut dev = device(parallelism);
        let a = dev.create_buffer_from("a", &[1.0f32; BUF_LEN]).unwrap();
        let b = dev.create_buffer_from("b", &[2.0f32; BUF_LEN]).unwrap();
        let dst = dev.create_buffer::<f32>("dst", BUF_LEN).unwrap();
        let q = dev.create_queue();
        let ev = q
            .enqueue_launch(
                Sneaky { a, b, dst },
                NdRange::new_1d(BUF_LEN, 16).unwrap(),
                &[],
            )
            .unwrap();
        match ev.wait_report() {
            Err(SimError::KernelFaults { faults, total, .. }) => {
                assert_eq!(total, BUF_LEN);
                assert!(matches!(
                    faults[0].kind,
                    FaultKind::UndeclaredBuffer { write: false, .. }
                ));
            }
            other => panic!("expected undeclared-buffer faults, got {other:?}"),
        }
        // The undeclared read returned 0.0 deterministically: dst = a + 0.
        assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), vec![1.0; BUF_LEN]);
    }
}

#[test]
fn two_queues_overlap_bitwise_matches_serialized() {
    let run = |overlapped: bool| {
        let mut dev = device(8);
        let x1 = dev.create_buffer_from("x1", &[1.0f32; BUF_LEN]).unwrap();
        let x2 = dev.create_buffer_from("x2", &[2.0f32; BUF_LEN]).unwrap();
        let d1 = dev.create_buffer::<f32>("d1", BUF_LEN).unwrap();
        let d2 = dev.create_buffer::<f32>("d2", BUF_LEN).unwrap();
        let q1 = dev.create_queue();
        let q2 = dev.create_queue();
        let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
        let e1 = q1
            .enqueue_launch(
                Scale {
                    src: x1,
                    dst: d1,
                    factor: 3.0,
                    oob: false,
                },
                range,
                &[],
            )
            .unwrap();
        if !overlapped {
            e1.wait().unwrap();
        }
        let e2 = q2
            .enqueue_launch(
                Scale {
                    src: x2,
                    dst: d2,
                    factor: 0.5,
                    oob: false,
                },
                range,
                &[],
            )
            .unwrap();
        let r1 = e1.wait_report().unwrap();
        let r2 = e2.wait_report().unwrap();
        (
            r1,
            r2,
            dev.read_buffer::<f32>(d1).unwrap(),
            dev.read_buffer::<f32>(d2).unwrap(),
        )
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn explicit_event_chains_complete_at_high_parallelism() {
    // A pure chain (each command explicitly waits on the previous) is the
    // worst case for a work-stealing scheduler; make sure nothing
    // deadlocks and order semantics hold.
    let mut dev = device(8);
    let buf = dev.create_buffer_from("b", &[1.0f32; BUF_LEN]).unwrap();
    let q = dev.create_queue();
    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    let mut prev: Option<Event> = None;
    for _ in 0..10 {
        let wait: Vec<Event> = prev.iter().cloned().collect();
        let ev = q
            .enqueue_launch(
                Scale {
                    src: buf,
                    dst: buf,
                    factor: 2.0,
                    oob: false,
                },
                range,
                &wait,
            )
            .unwrap();
        prev = Some(ev);
    }
    prev.unwrap().wait().unwrap();
    // 1.0 * 2^10
    assert_eq!(dev.read_buffer::<f32>(buf).unwrap(), vec![1024.0; BUF_LEN]);
}

#[test]
fn wait_on_event_from_released_queue_is_typed_error() {
    let mut dev = device(1);
    let src = dev.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
    let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
    let gbuf = dev.create_buffer::<f32>("g", 1).unwrap();
    let gate = Arc::new(AtomicBool::new(false));
    let _open = OpenOnDrop(Arc::clone(&gate));
    // Eager execution would otherwise run the command before the release:
    // chain it behind a gated blocker so it is provably still pending.
    let q_gate = dev.create_queue();
    let blocker = q_gate
        .enqueue_launch(
            Gated {
                buf: gbuf,
                gate: Arc::clone(&gate),
            },
            NdRange::new_1d(1, 1).unwrap(),
            &[],
        )
        .unwrap();
    let q = dev.create_queue();
    let qid = q.id();
    let ev = q
        .enqueue_launch(
            Scale {
                src,
                dst,
                factor: 2.0,
                oob: false,
            },
            NdRange::new_1d(BUF_LEN, 16).unwrap(),
            std::slice::from_ref(&blocker),
        )
        .unwrap();
    q.release(); // pending (dep-blocked) command cancelled
    gate.store(true, Ordering::Release);
    blocker.wait().unwrap();
    match ev.wait() {
        Err(SimError::QueueReleased { queue }) => assert_eq!(queue, qid),
        other => panic!("expected QueueReleased, got {other:?}"),
    }
    // The cancelled launch never ran.
    assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), vec![0.0; BUF_LEN]);
    // Events waited *before* the release keep their results.
    let q2 = dev.create_queue();
    let ev2 = q2
        .enqueue_launch(
            Scale {
                src,
                dst,
                factor: 2.0,
                oob: false,
            },
            NdRange::new_1d(BUF_LEN, 16).unwrap(),
            &[],
        )
        .unwrap();
    ev2.wait().unwrap();
    q2.release();
    assert!(ev2.wait_report().is_ok());
}

#[test]
fn dropped_device_turns_handles_into_typed_errors() {
    let mut dev = device(1);
    let buf = dev.create_buffer_from("b", &[1.0f32; 4]).unwrap();
    let q = dev.create_queue();
    let ev = q.enqueue_read::<f32>(buf, &[]).unwrap();
    drop(dev);
    assert!(matches!(
        q.enqueue_read::<f32>(buf, &[]),
        Err(SimError::DeviceLost)
    ));
    assert!(matches!(ev.wait(), Err(SimError::DeviceLost)));
    assert!(matches!(ev.timing(), Err(SimError::DeviceLost)));
}

#[test]
fn event_result_accessors_are_typed() {
    let mut dev = device(1);
    let src = dev.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
    let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
    let q = dev.create_queue();
    let launch = q
        .enqueue_launch(
            Scale {
                src,
                dst,
                factor: 2.0,
                oob: false,
            },
            NdRange::new_1d(BUF_LEN, 16).unwrap(),
            &[],
        )
        .unwrap();
    let read = q.enqueue_read::<f32>(dst, &[]).unwrap();
    // wait_read on a launch event.
    assert!(matches!(
        launch.wait_read::<f32>(),
        Err(SimError::EventResult { .. })
    ));
    // wait_report on a read event.
    assert!(matches!(
        read.wait_report(),
        Err(SimError::EventResult { .. })
    ));
    // First wait_read succeeds, second reports the taken result.
    assert_eq!(read.wait_read::<f32>().unwrap(), vec![2.0; BUF_LEN]);
    assert!(matches!(
        read.wait_read::<f32>(),
        Err(SimError::EventResult { .. })
    ));
    // Wrong element type on a read event.
    let read2 = q.enqueue_read::<f32>(dst, &[]).unwrap();
    assert!(matches!(
        read2.wait_read::<i32>(),
        Err(SimError::BufferKind { .. })
    ));
}

#[test]
fn cross_device_events_bridge_in_wait_lists() {
    // A wait-list event from another device is bridged: the dependent
    // command waits for the foreign event to settle, then runs normally.
    let mut dev_a = device(1);
    let mut dev_b = device(1);
    let buf_a = dev_a.create_buffer_from("a", &[1.0f32; 4]).unwrap();
    let buf_b = dev_b.create_buffer_from("b", &[2.0f32; 4]).unwrap();
    let qa = dev_a.create_queue();
    let qb = dev_b.create_queue();
    let ea = qa.enqueue_read::<f32>(buf_a, &[]).unwrap();
    let eb = qb
        .enqueue_read::<f32>(buf_b, std::slice::from_ref(&ea))
        .unwrap();
    assert_eq!(eb.wait_read::<f32>().unwrap(), vec![2.0; 4]);
    let ta = ea.timing().unwrap();
    let tb = eb.timing().unwrap();
    // The bridged dependency holds B's command back until A's settled.
    assert!(tb.started >= ta.ended);
}

#[test]
fn event_timing_is_ordered() {
    let mut dev = device(2);
    let src = dev.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
    let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
    let q = dev.create_queue();
    let ev = q
        .enqueue_launch(
            Scale {
                src,
                dst,
                factor: 2.0,
                oob: false,
            },
            NdRange::new_1d(BUF_LEN, 16).unwrap(),
            &[],
        )
        .unwrap();
    let t = ev.timing().unwrap();
    assert!(t.queued <= t.started, "{t:?}");
    assert!(t.started <= t.ended, "{t:?}");
    // Derived durations never panic.
    let _ = t.queue_delay();
    let _ = t.execution();
}

#[test]
fn blocking_shims_drain_pending_commands_first() {
    let mut dev = device(2);
    let src = dev.create_buffer_from("s", &[1.0f32; BUF_LEN]).unwrap();
    let mid = dev.create_buffer::<f32>("m", BUF_LEN).unwrap();
    let q = dev.create_queue();
    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    q.enqueue_launch(
        Scale {
            src,
            dst: mid,
            factor: 3.0,
            oob: false,
        },
        range,
        &[],
    )
    .unwrap();
    // Blocking read_buffer must observe the queued launch's effect.
    assert_eq!(dev.read_buffer::<f32>(mid).unwrap(), vec![3.0; BUF_LEN]);
    // A blocking launch after more enqueues also sees them.
    q.enqueue_write(mid, &[10.0f32; BUF_LEN], &[]).unwrap();
    let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
    dev.launch(
        &Scale {
            src: mid,
            dst,
            factor: 1.0,
            oob: false,
        },
        range,
    )
    .unwrap();
    assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), vec![10.0; BUF_LEN]);
}

/// The eager-start contract: enqueued commands run to completion with
/// **no** wait of any kind — only non-triggering `is_complete` polls —
/// and their `started` timestamps predate the first `wait` call.
///
/// The timestamp bound is sound without access to the device epoch:
/// `t0` is taken *before* `Device::new`, so `epoch >= t0` and every
/// epoch-relative event timestamp is `<=` the same instant measured
/// relative to `t0`. A `started` below `t0.elapsed()`-at-first-wait
/// therefore proves the command started strictly before the wait.
#[test]
fn commands_execute_eagerly_without_any_wait() {
    let t0 = Instant::now();
    let mut dev = device(2);
    let x1 = dev.create_buffer_from("x1", &[1.0f32; BUF_LEN]).unwrap();
    let x2 = dev.create_buffer_from("x2", &[2.0f32; BUF_LEN]).unwrap();
    let d1 = dev.create_buffer::<f32>("d1", BUF_LEN).unwrap();
    let d2 = dev.create_buffer::<f32>("d2", BUF_LEN).unwrap();
    let q = dev.create_queue();
    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    let e1 = q
        .enqueue_launch(
            Scale {
                src: x1,
                dst: d1,
                factor: 3.0,
                oob: false,
            },
            range,
            &[],
        )
        .unwrap();
    let e2 = q
        .enqueue_launch(
            Scale {
                src: x2,
                dst: d2,
                factor: 0.5,
                oob: false,
            },
            range,
            &[],
        )
        .unwrap();
    // Poll only. Demand-driven execution would never complete these.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !(e1.is_complete().unwrap() && e2.is_complete().unwrap()) {
        assert!(
            Instant::now() < deadline,
            "enqueued commands did not start without a wait"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let before_first_wait = t0.elapsed();
    e1.wait().unwrap();
    e2.wait().unwrap();
    for (name, ev) in [("e1", &e1), ("e2", &e2)] {
        let t = ev.timing().unwrap();
        assert!(
            t.started < before_first_wait,
            "{name} started at {:?}, first wait was at {:?} — not eager",
            t.started,
            before_first_wait
        );
        assert!(t.ended < before_first_wait, "{name} ended after the wait");
    }
    assert_eq!(dev.read_buffer::<f32>(d1).unwrap(), vec![3.0; BUF_LEN]);
    assert_eq!(dev.read_buffer::<f32>(d2).unwrap(), vec![1.0; BUF_LEN]);
}

/// Host-side commands (reads) complete eagerly too, without a wait.
#[test]
fn host_commands_execute_eagerly_without_any_wait() {
    let mut dev = device(1);
    let buf = dev.create_buffer_from("b", &[7.0f32; BUF_LEN]).unwrap();
    let q = dev.create_queue();
    let read = q.enqueue_read::<f32>(buf, &[]).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while !read.is_complete().unwrap() {
        assert!(
            Instant::now() < deadline,
            "enqueued read did not execute without a wait"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(read.wait_read::<f32>().unwrap(), vec![7.0; BUF_LEN]);
}

/// With one pool worker, simultaneously ready commands must start in the
/// deterministic ready-list order: descending queue priority, then
/// enqueue sequence. A gated blocker holds the worker so all four
/// commands are released at one instant.
#[test]
fn priorities_order_simultaneously_ready_commands() {
    let mut dev = device(1);
    let gbuf = dev.create_buffer::<f32>("g", 1).unwrap();
    let gate = Arc::new(AtomicBool::new(false));
    let _open = OpenOnDrop(Arc::clone(&gate));
    let q_gate = dev.create_queue();
    let blocker = q_gate
        .enqueue_launch(
            Gated {
                buf: gbuf,
                gate: Arc::clone(&gate),
            },
            NdRange::new_1d(1, 1).unwrap(),
            &[],
        )
        .unwrap();
    // (priority, expected start position): equal priorities fall back to
    // enqueue order.
    let prios: [u8; 4] = [0, 200, 50, 200];
    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    let mut events = Vec::new();
    let mut queues = Vec::new(); // keep queues alive until their commands ran
    for (k, &prio) in prios.iter().enumerate() {
        let src = dev
            .create_buffer_from(&format!("s{k}"), &[k as f32 + 1.0; BUF_LEN])
            .unwrap();
        let dst = dev.create_buffer::<f32>(&format!("d{k}"), BUF_LEN).unwrap();
        let q = dev.create_queue();
        q.set_priority(prio).unwrap();
        assert_eq!(q.priority().unwrap(), prio);
        let ev = q
            .enqueue_launch(
                Scale {
                    src,
                    dst,
                    factor: 2.0,
                    oob: false,
                },
                range,
                std::slice::from_ref(&blocker),
            )
            .unwrap();
        events.push((ev, dst, k as f32 + 1.0));
        queues.push(q);
    }
    gate.store(true, Ordering::Release);
    for (ev, dst, input) in &events {
        ev.wait().unwrap();
        assert_eq!(
            dev.read_buffer::<f32>(*dst).unwrap(),
            vec![input * 2.0; BUF_LEN]
        );
    }
    // Expected start order: prio 200 (enqueue #1), prio 200 (enqueue #3),
    // prio 50 (#2), prio 0 (#0).
    let expected = [1usize, 3, 2, 0];
    let starts: Vec<_> = events
        .iter()
        .map(|(ev, _, _)| ev.timing().unwrap().started)
        .collect();
    for pair in expected.windows(2) {
        assert!(
            starts[pair[0]] <= starts[pair[1]],
            "ready-list order violated: command {} (prio {}) started at {:?}, \
             command {} (prio {}) at {:?}",
            pair[0],
            prios[pair[0]],
            starts[pair[0]],
            pair[1],
            prios[pair[1]],
            starts[pair[1]]
        );
    }
}

/// Priorities steer the schedule, never the results: seeded random graphs
/// with random per-queue priorities stay bit-identical to the in-order
/// replay at every worker count.
#[test]
fn random_graphs_with_priorities_match_in_order_replay() {
    for seed in 200..204u64 {
        let mut rng = XorShift::new(seed);
        let graph = random_graph(&mut rng, 24, 5, false);
        let prios: Vec<u8> = (0..3).map(|_| (rng.next() % 256) as u8).collect();
        let (ref_obs, ref_bufs) = run_graph(&graph, 1, 5, 1, Reap::InOrder, &[]);
        for parallelism in [1, 2, 8, 0] {
            let (obs, bufs) = run_graph(&graph, parallelism, 5, 3, Reap::Blocking, &prios);
            assert_eq!(
                obs, ref_obs,
                "observations diverged (seed {seed}, p={parallelism}, prios {prios:?})"
            );
            assert_eq!(
                bufs, ref_bufs,
                "buffers diverged (seed {seed}, p={parallelism}, prios {prios:?})"
            );
        }
    }
}

/// A kernel that panics mid-launch must not kill the pool worker: the
/// event resolves to a typed error, no writes are applied, and the
/// device keeps executing subsequent commands.
#[test]
fn panicking_kernel_resolves_to_typed_error_and_pool_survives() {
    struct Panicker {
        dst: BufferId,
    }
    impl Kernel for Panicker {
        fn name(&self) -> &str {
            "panicker"
        }
        fn buffer_usage(&self) -> Option<BufferUse> {
            Some(BufferUse::new([], [self.dst]))
        }
        fn run_phase(&self, _phase: usize, _ctx: &mut ItemCtx<'_>) {
            panic!("deliberate test panic");
        }
    }
    let mut dev = device(1);
    let dst = dev.create_buffer::<f32>("d", BUF_LEN).unwrap();
    let q = dev.create_queue();
    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    let bad = q.enqueue_launch(Panicker { dst }, range, &[]).unwrap();
    assert!(matches!(bad.wait(), Err(SimError::Launch(_))));
    assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), vec![0.0; BUF_LEN]);
    // The worker that caught the panic still executes later commands.
    let src = dev.create_buffer_from("s", &[4.0f32; BUF_LEN]).unwrap();
    let ok = q
        .enqueue_launch(
            Scale {
                src,
                dst,
                factor: 0.25,
                oob: false,
            },
            range,
            &[],
        )
        .unwrap();
    ok.wait().unwrap();
    assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), vec![1.0; BUF_LEN]);
}

/// Lowering the parallelism knob after the pool has grown still bounds
/// concurrency: surplus workers park, and with a budget of 1 every
/// launch interval is disjoint from the next (each `started` stamp is
/// taken under the lock only after the previous launch's `ended`).
#[test]
fn lowered_parallelism_serializes_launches_despite_wide_pool() {
    let mut dev = device(8);
    let warm_src = dev.create_buffer_from("w", &[1.0f32; BUF_LEN]).unwrap();
    let warm_dst = dev.create_buffer::<f32>("wd", BUF_LEN).unwrap();
    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    let q = dev.create_queue();
    // Grow the pool to 8 workers, then lower the budget to 1.
    q.enqueue_launch(
        Scale {
            src: warm_src,
            dst: warm_dst,
            factor: 1.0,
            oob: false,
        },
        range,
        &[],
    )
    .unwrap()
    .wait()
    .unwrap();
    dev.set_parallelism(1);
    let mut events = Vec::new();
    for k in 0..4 {
        let src = dev
            .create_buffer_from(&format!("s{k}"), &[1.0f32; BUF_LEN])
            .unwrap();
        let dst = dev.create_buffer::<f32>(&format!("d{k}"), BUF_LEN).unwrap();
        events.push(
            q.enqueue_launch(
                Scale {
                    src,
                    dst,
                    factor: 2.0,
                    oob: false,
                },
                range,
                &[],
            )
            .unwrap(),
        );
    }
    let mut timings: Vec<_> = events
        .iter()
        .map(|ev| {
            ev.wait().unwrap();
            ev.timing().unwrap()
        })
        .collect();
    timings.sort_by_key(|t| t.started);
    for pair in timings.windows(2) {
        assert!(
            pair[1].started >= pair[0].ended,
            "launches overlapped ({:?} then {:?}) despite a budget of 1",
            pair[0],
            pair[1]
        );
    }
}

/// Starvation: a priority-0 command must still complete while a stream
/// of priority-255 enqueues keeps arriving. The scheduler is strict
/// priority with FIFO tie-break and no aging, so eventual completion
/// relies on the gaps a real submit→wait→submit stream always has: the
/// moment a high-priority launch retires and before the host has
/// enqueued the next one, the low-priority command is the only ready
/// launch and the worker must take it. The loop is capped, and the
/// assertion demands completion *while the stream is still arriving* —
/// a scheduler that only ran the low-priority command after the stream
/// dried up would trip the cap.
#[test]
fn low_priority_command_completes_under_sustained_high_priority_stream() {
    const STREAM_CAP: usize = 200;
    let mut dev = device(1);
    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();
    let gate = Arc::new(AtomicBool::new(false));
    let _open = OpenOnDrop(Arc::clone(&gate));
    let gbuf = dev.create_buffer::<f32>("g", 1).unwrap();
    let q_gate = dev.create_queue();
    let blocker = q_gate
        .enqueue_launch(
            Gated {
                buf: gbuf,
                gate: Arc::clone(&gate),
            },
            NdRange::new_1d(1, 1).unwrap(),
            &[],
        )
        .unwrap();

    let q_low = dev.create_queue();
    q_low.set_priority(0).unwrap();
    let q_high = dev.create_queue();
    q_high.set_priority(255).unwrap();

    let low_src = dev.create_buffer_from("ls", &[3.0f32; BUF_LEN]).unwrap();
    let low_dst = dev.create_buffer::<f32>("ld", BUF_LEN).unwrap();
    let low = q_low
        .enqueue_launch(
            Scale {
                src: low_src,
                dst: low_dst,
                factor: 2.0,
                oob: false,
            },
            range,
            std::slice::from_ref(&blocker),
        )
        .unwrap();

    // An initial burst is already pending when the gate opens: those
    // commands are simultaneously ready with the low-priority one and
    // must all start before it (checked below) — the pressure is real.
    let high_src = dev.create_buffer_from("hs", &[1.0f32; BUF_LEN]).unwrap();
    let high_dst = dev.create_buffer::<f32>("hd", BUF_LEN).unwrap();
    let burst: Vec<Event> = (0..4)
        .map(|_| {
            q_high
                .enqueue_launch(
                    Scale {
                        src: high_src,
                        dst: high_dst,
                        factor: 1.0,
                        oob: false,
                    },
                    range,
                    std::slice::from_ref(&blocker),
                )
                .unwrap()
        })
        .collect();

    gate.store(true, Ordering::Release);

    // Sustained closed-loop stream: submit a high-priority launch, wait
    // for it, submit the next — the pattern a latency-sensitive client
    // actually runs. Stop as soon as the low-priority command got
    // through (or at the cap, which fails the test below).
    let mut streamed = 0usize;
    while !low.is_complete().unwrap() && streamed < STREAM_CAP {
        q_high
            .enqueue_launch(
                Scale {
                    src: high_src,
                    dst: high_dst,
                    factor: 1.0,
                    oob: false,
                },
                range,
                &[],
            )
            .unwrap()
            .wait()
            .unwrap();
        streamed += 1;
    }
    assert!(
        streamed < STREAM_CAP,
        "low-priority command starved: still pending after {STREAM_CAP} \
         high-priority submissions completed around it"
    );
    low.wait().unwrap();
    assert_eq!(dev.read_buffer::<f32>(low_dst).unwrap(), vec![6.0; BUF_LEN]);

    // The initial burst was simultaneously ready with the low-priority
    // command, so strict priority ordering must have started every one
    // of its commands first.
    let low_start = low.timing().unwrap().started;
    for (k, ev) in burst.iter().enumerate() {
        ev.wait().unwrap();
        assert!(
            ev.timing().unwrap().started <= low_start,
            "burst command {k} (priority 255) started after the \
             priority-0 command"
        );
    }
}

#[test]
fn serve_loop_low_priority_requests_complete_within_bounded_completions() {
    // Scales the starvation check above to the serving pattern: a
    // latency-sensitive high-priority client runs closed-loop through a
    // CompletionQueue (next launch submitted only after the previous
    // completion drains) while low-priority requests are admitted
    // alongside it. Strict priorities steer the pool's pick order but
    // must not starve: every admitted low-priority request completes
    // within a bounded number of drained completions.
    const LOW_REQUESTS: usize = 6;
    const BOUND: usize = 400;
    const HIGH: u64 = u64::MAX; // completion token of every high launch
    let mut dev = device(1);
    let range = NdRange::new_1d(BUF_LEN, 16).unwrap();

    let q_low = dev.create_queue();
    q_low.set_priority(0).unwrap();
    let q_high = dev.create_queue();
    q_high.set_priority(255).unwrap();

    let high_src = dev.create_buffer_from("hs", &[1.0f32; BUF_LEN]).unwrap();
    let high_dst = dev.create_buffer::<f32>("hd", BUF_LEN).unwrap();
    let low_src = dev.create_buffer_from("ls", &[3.0f32; BUF_LEN]).unwrap();
    let low_dsts: Vec<BufferId> = (0..LOW_REQUESTS)
        .map(|i| {
            dev.create_buffer::<f32>(&format!("ld{i}"), BUF_LEN)
                .unwrap()
        })
        .collect();

    let cq = CompletionQueue::new();
    let launch_high = || {
        let ev = q_high
            .enqueue_launch(
                Scale {
                    src: high_src,
                    dst: high_dst,
                    factor: 1.0,
                    oob: false,
                },
                range,
                &[],
            )
            .unwrap();
        cq.watch(&ev, HIGH);
    };

    launch_high(); // prime the closed loop
    for (i, &dst) in low_dsts.iter().enumerate() {
        let low_ev = q_low
            .enqueue_launch(
                Scale {
                    src: low_src,
                    dst,
                    factor: 2.0,
                    oob: false,
                },
                range,
                &[],
            )
            .unwrap();
        cq.watch(&low_ev, i as u64);
        let mut drained = 0usize;
        loop {
            let c = cq.next().expect("work in flight");
            c.result.as_ref().unwrap();
            drained += 1;
            if c.token == HIGH {
                assert!(
                    drained <= BOUND,
                    "low-priority request {i} starved: {drained} completions \
                     drained without it finishing"
                );
                launch_high(); // closed loop: resubmit after the drain
            } else {
                assert_eq!(c.token, i as u64, "tokens map back to requests");
                break;
            }
        }
    }
    // Stop resubmitting; next() drains the in-flight tail and then
    // reports dry.
    while let Some(c) = cq.next() {
        assert_eq!(c.token, HIGH);
        c.result.unwrap();
    }
    for &dst in &low_dsts {
        assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), vec![6.0; BUF_LEN]);
    }
}
