//! Launch-level property tests: invariants of the simulator that must hold
//! for *any* kernel and geometry, not just the perforation pipeline.
//!
//! Properties are checked over deterministic parameter grids (the build
//! environment is offline, so no `proptest`): every failing case is
//! directly reproducible from the loop indices in the assertion message.

use kp_gpu_sim::{BufferId, Device, DeviceConfig, ItemCtx, Kernel, NdRange};

/// Reads `reads_per_item` elements (strided) and writes one.
struct Worker {
    src: BufferId,
    dst: BufferId,
    n: usize,
    reads_per_item: usize,
    ops_per_item: u64,
}

impl Kernel for Worker {
    fn name(&self) -> &str {
        "worker"
    }

    fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
        let i = ctx.global_id(0);
        let mut acc = 0.0f32;
        for k in 0..self.reads_per_item {
            let idx = (i + k * 7) % self.n;
            acc += ctx.read_global::<f32>(self.src, idx);
        }
        ctx.ops(self.ops_per_item);
        ctx.write_global(self.dst, i, acc);
    }
}

fn run(n: usize, local: usize, reads: usize, ops: u64) -> kp_gpu_sim::LaunchReport {
    let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
    let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let src = dev.create_buffer_from("src", &data).unwrap();
    let dst = dev.create_buffer::<f32>("dst", n).unwrap();
    let kernel = Worker {
        src,
        dst,
        n,
        reads_per_item: reads,
        ops_per_item: ops,
    };
    dev.launch(&kernel, NdRange::new_1d(n, local).unwrap())
        .unwrap()
}

/// Transaction counts are bounded by element accesses; DRAM by L1;
/// cycles are positive; seconds follow cycles.
#[test]
fn report_invariants() {
    for groups in [1usize, 2, 3, 5, 7] {
        for local_pow in [2u32, 3, 5] {
            for reads in [1usize, 3, 5] {
                for ops in [0u64, 17, 63] {
                    let local = 1usize << local_pow;
                    let n = groups * local;
                    let r = run(n, local, reads, ops);
                    let case = format!("groups={groups} local={local} reads={reads} ops={ops}");
                    assert_eq!(r.groups, groups, "{case}");
                    assert_eq!(r.stats.global_element_reads, (n * reads) as u64, "{case}");
                    assert_eq!(r.stats.global_element_writes, n as u64, "{case}");
                    assert!(
                        r.stats.global_read_transactions <= r.stats.global_element_reads,
                        "{case}"
                    );
                    assert!(
                        r.stats.dram_read_transactions <= r.stats.global_read_transactions,
                        "{case}"
                    );
                    assert!(r.stats.dram_read_transactions >= 1, "{case}");
                    assert!(r.timing.device_cycles > 0, "{case}");
                    assert!(r.seconds > 0.0, "{case}");
                    assert!(
                        r.timing.group_cycles_total >= r.timing.device_cycles,
                        "{case}"
                    );
                }
            }
        }
    }
}

/// More reads per item never make the launch faster (monotonicity of the
/// timing model in memory work).
#[test]
fn more_reads_never_faster() {
    for groups in [1usize, 2, 3, 5] {
        for reads in [1usize, 2, 4] {
            let local = 16;
            let n = groups * local;
            let fewer = run(n, local, reads, 8);
            let more = run(n, local, reads + 1, 8);
            assert!(
                more.timing.device_cycles >= fewer.timing.device_cycles,
                "{} reads: {} cycles, {} reads: {} cycles",
                reads,
                fewer.timing.device_cycles,
                reads + 1,
                more.timing.device_cycles
            );
        }
    }
}

/// More ALU ops never make the launch faster.
#[test]
fn more_ops_never_faster() {
    for groups in [1usize, 2, 3, 5] {
        for ops in [0u64, 5, 31, 127] {
            let local = 16;
            let n = groups * local;
            let fewer = run(n, local, 2, ops);
            let more = run(n, local, 2, ops + 64);
            assert!(
                more.timing.device_cycles >= fewer.timing.device_cycles,
                "groups={groups} ops={ops}"
            );
        }
    }
}

/// Doubling the grid never reduces total device time, and per-group
/// serialized work scales exactly linearly (homogeneous groups).
#[test]
fn work_scales_with_grid() {
    for groups in 1usize..5 {
        let local = 16;
        let one = run(groups * local, local, 3, 8);
        let two = run(2 * groups * local, local, 3, 8);
        assert!(two.timing.device_cycles >= one.timing.device_cycles);
        assert!(two.stats.global_element_reads == 2 * one.stats.global_element_reads);
    }
}

/// Functional output is independent of the work-group size.
#[test]
fn outputs_independent_of_group_size() {
    let n = 256;
    for local_pow in 2u32..7 {
        let local = 1usize << local_pow;
        let outputs: Vec<Vec<f32>> = [16usize, local]
            .iter()
            .map(|&l| {
                let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
                let data: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
                let src = dev.create_buffer_from("src", &data).unwrap();
                let dst = dev.create_buffer::<f32>("dst", n).unwrap();
                let kernel = Worker {
                    src,
                    dst,
                    n,
                    reads_per_item: 3,
                    ops_per_item: 4,
                };
                dev.launch(&kernel, NdRange::new_1d(n, l).unwrap()).unwrap();
                dev.read_buffer::<f32>(dst).unwrap()
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "local={local}");
    }
}
