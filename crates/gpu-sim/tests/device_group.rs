//! Multi-device coherence and determinism.
//!
//! A [`DeviceGroup`] promises that everything observable — output buffer
//! bits, launch reports, fault logs — is identical to running the same
//! work on a single device, at any member count, and that group buffers
//! migrate between members **on demand only**. These tests pin both:
//! sharded launches (clean and faulting) against a plain [`Device`]
//! reference at 1/2/4 members, seeded random command graphs replayed on a
//! 1-member group, and migration counters across device-local reuse.

use kp_gpu_sim::{
    BufferId, BufferUse, Device, DeviceConfig, DeviceGroup, ItemCtx, Kernel, LaunchReport, NdRange,
    SimError,
};

const LEN: usize = 192;

/// Two-phase kernel: phase 0 scales `src` into `dst`, phase 1 reads the
/// phase-0 result back and offsets it — exercising cross-phase
/// read-after-write through the write log. One work item can be steered
/// out of bounds to produce a deterministic fault log.
struct ScaleOffset {
    src: BufferId,
    dst: BufferId,
    factor: f32,
    oob_at: Option<usize>,
}

impl Kernel for ScaleOffset {
    fn name(&self) -> &str {
        "scale_offset"
    }

    fn phases(&self) -> usize {
        2
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(BufferUse::new([self.src], [self.dst]))
    }

    fn run_phase(&self, phase: usize, ctx: &mut ItemCtx<'_>) {
        let i = ctx.global_id(0);
        if phase == 0 {
            let at = if self.oob_at == Some(i) { LEN + 7 } else { i };
            let v: f32 = ctx.read_global(self.src, at);
            ctx.write_global(self.dst, i, self.factor * v);
            ctx.ops(1);
        } else {
            let v: f32 = ctx.read_global(self.dst, i);
            ctx.write_global(self.dst, i, v + 1.0);
            ctx.ops(1);
        }
    }
}

fn seeded_image(seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..LEN)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f32 / 1000.0
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_same_outcome(
    a: &Result<LaunchReport, SimError>,
    b: &Result<LaunchReport, SimError>,
    label: &str,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => assert_eq!(x, y, "{label}: reports differ"),
        (
            Err(SimError::KernelFaults {
                kernel: ka,
                faults: fa,
                total: ta,
            }),
            Err(SimError::KernelFaults {
                kernel: kb,
                faults: fb,
                total: tb,
            }),
        ) => {
            assert_eq!(ka, kb, "{label}: faulting kernel names differ");
            assert_eq!(ta, tb, "{label}: fault totals differ");
            assert_eq!(fa, fb, "{label}: fault logs differ");
        }
        (x, y) => panic!("{label}: divergent outcomes: {x:?} vs {y:?}"),
    }
}

/// One sharded launch on an `n`-member group; returns the outcome and the
/// output bits.
fn sharded_run(n: usize, oob_at: Option<usize>) -> (Result<LaunchReport, SimError>, Vec<u32>) {
    let mut group = DeviceGroup::with_devices(DeviceConfig::test_tiny(), n).unwrap();
    group.set_profiling(true);
    let src = group.create_buffer_from("src", &seeded_image(3)).unwrap();
    let dst = group.create_buffer::<f32>("dst", LEN).unwrap();
    let kernel = ScaleOffset {
        src,
        dst,
        factor: 2.5,
        oob_at,
    };
    let result = group.launch_sharded(&kernel, NdRange::new_1d(LEN, 8).unwrap());
    let out = group.read_buffer::<f32>(dst).unwrap();
    (result, bits(&out))
}

#[test]
fn sharded_launch_is_bit_identical_to_single_device() {
    // Reference: a plain single Device, blocking launch.
    let mut dev = Device::new(DeviceConfig::test_tiny()).unwrap();
    dev.set_profiling(true);
    let src = dev.create_buffer_from("src", &seeded_image(3)).unwrap();
    let dst = dev.create_buffer::<f32>("dst", LEN).unwrap();
    let kernel = ScaleOffset {
        src,
        dst,
        factor: 2.5,
        oob_at: None,
    };
    let reference = dev.launch(&kernel, NdRange::new_1d(LEN, 8).unwrap());
    let ref_bits = bits(&dev.read_buffer::<f32>(dst).unwrap());

    for n in [1, 2, 4] {
        let (result, out) = sharded_run(n, None);
        assert_same_outcome(&reference, &result, "clean");
        assert_eq!(
            out, ref_bits,
            "{n}-member output differs from single device"
        );
    }
}

#[test]
fn sharded_faults_are_bit_identical_across_member_counts() {
    // The faulting item lands in the middle of the range, i.e. inside
    // different members' spans at different member counts — the gathered
    // fault log must still come out identical (row-major item order).
    let (ref_result, ref_bits) = sharded_run(1, Some(97));
    assert!(matches!(
        ref_result,
        Err(SimError::KernelFaults { ref faults, .. }) if !faults.is_empty()
    ));
    for n in [2, 4] {
        let (result, out) = sharded_run(n, Some(97));
        assert_same_outcome(&ref_result, &result, "faulting");
        // Faulting launches still apply their writes (partial-write
        // semantics), so even these outputs must match bit-for-bit.
        assert_eq!(out, ref_bits, "{n}-member faulting output differs");
    }
}

/// A deterministic splitmix64 — the same generator seeds both replays.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Everything one random command-graph replay observes.
#[derive(Debug, PartialEq)]
enum Observed {
    Launch(String, usize, u64),
    Fault(String, usize),
    Read(Vec<u32>),
}

/// Replays `steps` seeded random commands — host writes, sharded
/// launches, placed launches, host reads — on an `n`-member group and
/// records every observable.
fn replay_graph(seed: u64, n: usize, steps: usize) -> (Vec<Observed>, Vec<u32>, Vec<u32>) {
    let mut rng = Lcg(seed);
    let mut group = DeviceGroup::with_devices(DeviceConfig::test_tiny(), n).unwrap();
    group.set_profiling(true);
    let src = group
        .create_buffer_from("src", &seeded_image(seed))
        .unwrap();
    let dst = group.create_buffer::<f32>("dst", LEN).unwrap();
    let range = NdRange::new_1d(LEN, 8).unwrap();
    let mut observed = Vec::new();
    for _ in 0..steps {
        let factor = (rng.pick(9) + 1) as f32 / 2.0;
        let oob_at = if rng.pick(5) == 0 {
            Some(rng.pick(LEN as u64) as usize)
        } else {
            None
        };
        let kernel = ScaleOffset {
            src,
            dst,
            factor,
            oob_at,
        };
        match rng.pick(4) {
            0 => group.write_buffer(src, &seeded_image(rng.next())).unwrap(),
            1 => observed.push(match group.launch_sharded(&kernel, range) {
                Ok(r) => Observed::Launch(r.kernel, r.groups, r.timing.device_cycles),
                Err(SimError::KernelFaults { kernel, total, .. }) => Observed::Fault(kernel, total),
                Err(e) => panic!("unexpected launch error: {e:?}"),
            }),
            2 => {
                let member = group.place();
                observed.push(match group.launch_on(member, &kernel, range) {
                    Ok(r) => Observed::Launch(r.kernel, r.groups, r.timing.device_cycles),
                    Err(SimError::KernelFaults { kernel, total, .. }) => {
                        Observed::Fault(kernel, total)
                    }
                    Err(e) => panic!("unexpected launch error: {e:?}"),
                });
            }
            _ => observed.push(Observed::Read(bits(
                &group.read_buffer::<f32>(dst).unwrap(),
            ))),
        }
    }
    let final_src = bits(&group.read_buffer::<f32>(src).unwrap());
    let final_dst = bits(&group.read_buffer::<f32>(dst).unwrap());
    (observed, final_src, final_dst)
}

#[test]
fn random_command_graphs_match_single_device_replay() {
    for seed in 0..6u64 {
        let reference = replay_graph(seed, 1, 24);
        for n in [2, 3, 4] {
            let multi = replay_graph(seed, n, 24);
            assert_eq!(
                reference, multi,
                "seed {seed}: {n}-member replay diverged from single device"
            );
        }
    }
}

#[test]
fn migrations_happen_on_demand_only() {
    let mut group = DeviceGroup::with_devices(DeviceConfig::test_tiny(), 3).unwrap();
    let src = group.create_buffer_from("src", &seeded_image(1)).unwrap();
    let dst = group.create_buffer::<f32>("dst", LEN).unwrap();
    let range = NdRange::new_1d(LEN, 8).unwrap();
    let kernel = ScaleOffset {
        src,
        dst,
        factor: 2.0,
        oob_at: None,
    };

    // Fresh buffers are valid everywhere: placing on any member moves
    // nothing.
    group.launch_on(1, &kernel, range).unwrap();
    assert_eq!(group.stats().migrations, 0);

    // Device-local reuse: dst is now owned by member 1; relaunching on
    // member 1 again and again must never migrate.
    for _ in 0..3 {
        group.launch_on(1, &kernel, range).unwrap();
    }
    assert_eq!(group.stats().migrations, 0, "device-local reuse migrated");

    // First cross-device use: member 0 needs dst's latest bits (declared
    // write — kernels may read it back), src is still valid fleet-wide.
    group.launch_on(0, &kernel, range).unwrap();
    assert_eq!(group.stats().migrations, 1, "exactly dst moves to member 0");
    let after_first_move = group.stats().migrated_bytes;
    assert_eq!(after_first_move, (LEN * 4) as u64);

    // Host reads pull from the latest source and never migrate.
    group.read_buffer::<f32>(dst).unwrap();
    group.read_buffer::<f32>(src).unwrap();
    assert_eq!(group.stats().migrations, 1);

    // Sharded launch across all three members: dst must reach members 1
    // and 2 (stale since member 0 owns it); src is still valid everywhere.
    group.launch_sharded(&kernel, range).unwrap();
    assert_eq!(group.stats().migrations, 3);

    // And once coherent, an immediate relaunch moves nothing new except
    // the re-invalidated dst (written by member 0 in the gather).
    group.launch_sharded(&kernel, range).unwrap();
    assert_eq!(group.stats().migrations, 5);
}
