//! Differential tests for the parallel launch engine.
//!
//! The contract under test: for kernels whose work groups are independent
//! within one launch (the OpenCL contract), [`Device::launch`] produces
//! **bit-identical** output buffers and **identical** [`LaunchReport`]s at
//! every worker-thread count, and both match [`Device::launch_serial`].
//! This must hold for clean kernels and for faulting ones (the fault log,
//! including its storage cap and total count, is part of the contract).

use kp_gpu_sim::{
    BufferId, Device, DeviceConfig, ElemKind, ItemCtx, Kernel, LocalId, LocalSpec, NdRange,
    SimError,
};

/// A two-phase 1D stencil: phase 0 cooperatively loads a tile (plus halo)
/// into local memory, phase 1 computes a 3-point average from the tile.
/// Exercises global reads, local memory with barriers, ALU accounting and
/// per-item divergence.
struct Stencil3 {
    src: BufferId,
    dst: BufferId,
    tile: LocalId,
    n: usize,
    /// When set, items whose global id hits this index read out of bounds.
    oob_at: Option<usize>,
}

impl Kernel for Stencil3 {
    fn name(&self) -> &str {
        "stencil3"
    }

    fn phases(&self) -> usize {
        2
    }

    fn local_buffers(&self) -> Vec<LocalSpec> {
        // 16-wide groups plus a one-element halo on each side.
        vec![LocalSpec::new(ElemKind::F32, 18)]
    }

    fn run_phase(&self, phase: usize, ctx: &mut ItemCtx<'_>) {
        let gid = ctx.global_id(0);
        let lid = ctx.local_id(0);
        match phase {
            0 => {
                // Cooperative load with clamped halo.
                let v: f32 = ctx.read_global(self.src, gid.min(self.n - 1));
                ctx.write_local(self.tile, lid + 1, v);
                if lid == 0 {
                    let left = gid.saturating_sub(1);
                    let v: f32 = ctx.read_global(self.src, left);
                    ctx.write_local(self.tile, 0, v);
                }
                if lid == ctx.local_size(0) - 1 {
                    let right = (gid + 1).min(self.n - 1);
                    let v: f32 = ctx.read_global(self.src, right);
                    ctx.write_local(self.tile, lid + 2, v);
                }
                if let Some(bad) = self.oob_at {
                    if gid == bad {
                        // Deliberate fault: index past the end.
                        let _: f32 = ctx.read_global(self.src, self.n + 7);
                    }
                }
            }
            _ => {
                let a: f32 = ctx.read_local(self.tile, lid);
                let b: f32 = ctx.read_local(self.tile, lid + 1);
                let c: f32 = ctx.read_local(self.tile, lid + 2);
                // Divergent op count: odd items do extra work.
                ctx.ops(if gid.is_multiple_of(2) { 4 } else { 7 });
                ctx.write_global(self.dst, gid, (a + b + c) / 3.0);
            }
        }
    }
}

fn input(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((i as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
            ((h >> 40) as f32) / (1u32 << 24) as f32
        })
        .collect()
}

/// Runs the stencil at the given parallelism (None = `launch_serial`) and
/// returns the launch result plus the output buffer contents.
fn run_stencil(
    n: usize,
    seed: u64,
    oob_at: Option<usize>,
    parallelism: Option<usize>,
    profiling: bool,
) -> (Result<kp_gpu_sim::LaunchReport, SimError>, Vec<f32>) {
    let mut cfg = DeviceConfig::firepro_w5100();
    if let Some(p) = parallelism {
        cfg.parallelism = p;
    }
    let mut dev = Device::new(cfg).unwrap();
    dev.set_profiling(profiling);
    let data = input(n, seed);
    let src = dev.create_buffer_from("src", &data).unwrap();
    let dst = dev.create_buffer::<f32>("dst", n).unwrap();
    let kernel = Stencil3 {
        src,
        dst,
        tile: LocalId(0),
        n,
        oob_at,
    };
    let range = NdRange::new_1d(n, 16).unwrap();
    let result = match parallelism {
        Some(_) => dev.launch(&kernel, range),
        None => dev.launch_serial(&kernel, range),
    };
    let output = dev.read_buffer::<f32>(dst).unwrap();
    (result, output)
}

fn assert_identical(
    (ra, oa): &(Result<kp_gpu_sim::LaunchReport, SimError>, Vec<f32>),
    (rb, ob): &(Result<kp_gpu_sim::LaunchReport, SimError>, Vec<f32>),
    label: &str,
) {
    // Outputs must be bit-identical.
    let bits_a: Vec<u32> = oa.iter().map(|v| v.to_bits()).collect();
    let bits_b: Vec<u32> = ob.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits_a, bits_b, "{label}: output buffers differ");
    match (ra, rb) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{label}: reports differ"),
        (
            Err(SimError::KernelFaults {
                faults: fa,
                total: ta,
                ..
            }),
            Err(SimError::KernelFaults {
                faults: fb,
                total: tb,
                ..
            }),
        ) => {
            assert_eq!(ta, tb, "{label}: fault totals differ");
            assert_eq!(fa, fb, "{label}: fault logs differ");
        }
        (a, b) => panic!("{label}: divergent outcomes: {a:?} vs {b:?}"),
    }
}

/// Clean stencil: serial and every parallel width agree bit-for-bit, for
/// several sizes and seeds, with and without profiling.
#[test]
fn parallel_matches_serial_clean() {
    for &n in &[16usize, 64, 256, 1024] {
        for seed in 0..4u64 {
            for profiling in [true, false] {
                let reference = run_stencil(n, seed, None, None, profiling);
                assert!(reference.0.is_ok(), "reference run must be clean");
                for threads in [1usize, 2, 3, 8] {
                    let parallel = run_stencil(n, seed, None, Some(threads), profiling);
                    assert_identical(
                        &reference,
                        &parallel,
                        &format!("n={n} seed={seed} threads={threads} profiling={profiling}"),
                    );
                }
            }
        }
    }
}

/// Faulting stencil: the fault log (positions, order, storage cap, total)
/// is identical across serial and all parallel widths.
#[test]
fn parallel_matches_serial_with_faults() {
    for &n in &[64usize, 256] {
        for seed in 0..2u64 {
            // One faulting item in the middle of the grid.
            let reference = run_stencil(n, seed, Some(n / 2), None, true);
            assert!(reference.0.is_err(), "fault must surface");
            for threads in [1usize, 2, 8] {
                let parallel = run_stencil(n, seed, Some(n / 2), Some(threads), true);
                assert_identical(
                    &reference,
                    &parallel,
                    &format!("faulting n={n} seed={seed} threads={threads}"),
                );
            }
        }
    }
}

/// Auto parallelism (0 = all cores) is part of the same contract.
#[test]
fn auto_parallelism_matches_serial() {
    let reference = run_stencil(512, 9, None, None, true);
    let auto = run_stencil(512, 9, None, Some(0), true);
    assert_identical(&reference, &auto, "auto threads");
}

/// A kernel that writes and then re-reads its own output buffer within one
/// group: the write-log overlay must give the group its own stores back.
struct ReadBack {
    buf: BufferId,
}

impl Kernel for ReadBack {
    fn name(&self) -> &str {
        "read-back"
    }

    fn phases(&self) -> usize {
        2
    }

    fn run_phase(&self, phase: usize, ctx: &mut ItemCtx<'_>) {
        let gid = ctx.global_id(0);
        match phase {
            0 => ctx.write_global(self.buf, gid, (gid * 3) as f32),
            _ => {
                // Re-read own group's writes: items of one group read the
                // slot of their left neighbor *within the same group*.
                let base = ctx.group_id(0) * ctx.local_size(0);
                let left = base + (ctx.local_id(0) + ctx.local_size(0) - 1) % ctx.local_size(0);
                let v: f32 = ctx.read_global(self.buf, left);
                ctx.write_global(self.buf, gid, v + 1.0);
            }
        }
    }
}

#[test]
fn groups_observe_their_own_writes_at_any_width() {
    let run = |threads: Option<usize>| {
        let mut cfg = DeviceConfig::firepro_w5100();
        if let Some(t) = threads {
            cfg.parallelism = t;
        }
        let mut dev = Device::new(cfg).unwrap();
        let buf = dev.create_buffer::<f32>("buf", 128).unwrap();
        let kernel = ReadBack { buf };
        let range = NdRange::new_1d(128, 16).unwrap();
        match threads {
            Some(_) => dev.launch(&kernel, range).unwrap(),
            None => dev.launch_serial(&kernel, range).unwrap(),
        };
        dev.read_buffer::<f32>(buf).unwrap()
    };
    let reference = run(None);
    // Spot-check: within a group, phase-1 items run in order, so the reads
    // cascade. Item 0 of group 0 reads item 15's phase-0 value (45.0) and
    // writes 46.0; every later item reads its left neighbor's fresh write,
    // so item 5 ends at 46 + 5 = 51. Only the overlay (a group observing
    // its own earlier stores) produces this value.
    assert_eq!(reference[5], 51.0);
    for threads in [1usize, 2, 4, 8] {
        assert_eq!(run(Some(threads)), reference, "threads={threads}");
    }
}
