//! Multi-device runtime: [`DeviceGroup`] — a fleet of simulated devices
//! behind one handle.
//!
//! A group owns N identically configured [`Device`]s and is the preferred
//! host API for anything beyond a single workload on a single device:
//!
//! * **Sharded launches** ([`DeviceGroup::launch_sharded`]): one large
//!   [`NdRange`] launch splits by contiguous row-major group ranges across
//!   the members. Each member executes its span against its own copy of
//!   the input buffers; the spans' write logs are gathered in device order
//!   (restoring full row-major order), applied on member 0 and reduced
//!   exactly once — so outputs, reports and fault logs are
//!   **bit-identical** to a single-device run at any member count.
//! * **Placement** ([`DeviceGroup::place`] / [`DeviceGroup::launch_on`]):
//!   independent commands (tuner candidates, concurrent requests) go to
//!   the least-loaded member, with a deterministic lowest-index tie-break.
//! * **Coherent buffers**: a group-level buffer has one allocation per
//!   member (created in identical order, so handles and base addresses
//!   agree fleet-wide) plus a validity bit per copy and a `latest_source`
//!   member. Copies migrate **on demand only** — when a launch or host
//!   access needs the latest bits on a member that does not have them —
//!   and every migration is counted in [`GroupStats`] and priced by the
//!   charge model ([`GroupStats::migration_cost_cycles`]).
//!
//! Fleet size comes from [`DeviceConfig::devices`] via
//! [`crate::resolve_devices`] (`0` = auto → the `KP_SIM_DEVICES`
//! environment variable → 1).

use crate::buffer::{BufferId, ElemKind, GroupBuffer, Scalar};
use crate::config::DeviceConfig;
use crate::device::Device;
use crate::engine::{self, resolve_devices};
use crate::error::SimError;
use crate::kernel::Kernel;
use crate::ndrange::NdRange;
use crate::queue::Queue;
use crate::stats::{GroupStats, LaunchReport};

/// A fleet of N identically configured simulated devices with coherent
/// group-level buffers, sharded launches and least-loaded placement. See
/// the crate docs ("Multi-device: `DeviceGroup`") for the coherence
/// protocol and determinism argument.
///
/// # Examples
///
/// ```
/// use kp_gpu_sim::{BufferId, BufferUse, DeviceConfig, DeviceGroup, ItemCtx, Kernel, NdRange};
///
/// struct Double { src: BufferId, dst: BufferId }
///
/// impl Kernel for Double {
///     fn name(&self) -> &str { "double" }
///     fn buffer_usage(&self) -> Option<BufferUse> {
///         Some(BufferUse::new([self.src], [self.dst]))
///     }
///     fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
///         let i = ctx.global_id(0);
///         let v: f32 = ctx.read_global(self.src, i);
///         ctx.write_global(self.dst, i, 2.0 * v);
///         ctx.ops(1);
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut group = DeviceGroup::with_devices(DeviceConfig::test_tiny(), 2)?;
/// let src = group.create_buffer_from("src", &[1.0f32; 64])?;
/// let dst = group.create_buffer::<f32>("dst", 64)?;
/// let report = group.launch_sharded(&Double { src, dst }, NdRange::new_1d(64, 4)?)?;
/// assert_eq!(report.groups, 16);
/// assert_eq!(group.read_buffer::<f32>(dst)?, vec![2.0f32; 64]);
/// // Fresh buffers are valid on every member: nothing migrated.
/// assert_eq!(group.stats().migrations, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DeviceGroup {
    devices: Vec<Device>,
    /// Group-level coherence state, slot-indexed like each member's own
    /// buffer table (handles agree fleet-wide by construction).
    buffers: Vec<Option<GroupBuffer>>,
    /// Commands assigned through [`DeviceGroup::place`] per member, the
    /// deterministic component of the load signal (live queue depth via
    /// `pending_commands` is the other).
    assigned_load: Vec<u64>,
    stats: GroupStats,
}

impl DeviceGroup {
    /// Creates a group of [`crate::resolve_devices`]`(cfg.devices)`
    /// members, each an independent [`Device`] with configuration `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is inconsistent.
    pub fn new(cfg: DeviceConfig) -> Result<Self, SimError> {
        let n = resolve_devices(cfg.devices);
        Self::with_devices(cfg, n)
    }

    /// Creates a group with exactly `n` member devices, ignoring the
    /// `cfg.devices` knob and the environment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `n == 0` or the configuration is
    /// inconsistent.
    pub fn with_devices(cfg: DeviceConfig, n: usize) -> Result<Self, SimError> {
        if n == 0 {
            return Err(SimError::Config(
                "a device group needs at least one member device".into(),
            ));
        }
        let devices = (0..n)
            .map(|_| Device::new(cfg.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            devices,
            buffers: Vec::new(),
            assigned_load: vec![0; n],
            stats: GroupStats::default(),
        })
    }

    /// Number of member devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Shared reference to member `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn member(&self, idx: usize) -> &Device {
        &self.devices[idx]
    }

    /// Mutable access to the member devices — the escape hatch for host
    /// code that drives members directly (e.g. the tuner running one
    /// candidate batch per member). Buffers created through a member
    /// instead of the group are device-local: the group's coherence layer
    /// only tracks buffers created through [`DeviceGroup::create_buffer`]
    /// and friends, and direct writes to *group* buffers through a member
    /// bypass invalidation — keep the two kinds separate.
    pub fn members_mut(&mut self) -> &mut [Device] {
        &mut self.devices
    }

    /// Creates a command queue on member `idx` (see [`Queue`]). Events
    /// from one member's queue may appear in wait-lists of another's —
    /// cross-device waits bridge automatically (see [`Queue`]'s
    /// "Cross-device waits" docs).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn create_queue(&self, idx: usize) -> Queue {
        self.devices[idx].create_queue()
    }

    /// Multi-device statistics accumulated so far (migrations and their
    /// priced cost, sharded vs placed launches).
    pub fn stats(&self) -> GroupStats {
        self.stats
    }

    /// Enables or disables profiling on every member (see
    /// [`Device::set_profiling`]).
    pub fn set_profiling(&mut self, enabled: bool) {
        for dev in &mut self.devices {
            dev.set_profiling(enabled);
        }
    }

    /// Sets the per-member launch-engine parallelism (see
    /// [`Device::set_parallelism`]).
    pub fn set_parallelism(&mut self, threads: usize) {
        for dev in &mut self.devices {
            dev.set_parallelism(threads);
        }
    }

    /// Allocates a zeroed group buffer of `len` elements on **every**
    /// member, in identical order — so the returned handle (and the
    /// underlying base address) is valid on all of them. All copies start
    /// valid: a fresh buffer never needs migration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if any member cannot fit the
    /// allocation (members are identical, so they all fail together).
    pub fn create_buffer<T: Scalar>(
        &mut self,
        label: &str,
        len: usize,
    ) -> Result<BufferId, SimError> {
        self.create_group_buffer(T::KIND, len, |dev| dev.create_buffer::<T>(label, len))
    }

    /// Allocates a group buffer initialized from host data on every
    /// member (see [`DeviceGroup::create_buffer`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if any member cannot fit the
    /// allocation.
    pub fn create_buffer_from<T: Scalar>(
        &mut self,
        label: &str,
        data: &[T],
    ) -> Result<BufferId, SimError> {
        self.create_group_buffer(T::KIND, data.len(), |dev| {
            dev.create_buffer_from::<T>(label, data)
        })
    }

    fn create_group_buffer(
        &mut self,
        kind: ElemKind,
        len: usize,
        mut alloc: impl FnMut(&mut Device) -> Result<BufferId, SimError>,
    ) -> Result<BufferId, SimError> {
        let mut id = None;
        for dev in &mut self.devices {
            let got = alloc(dev)?;
            match id {
                None => id = Some(got),
                Some(first) => debug_assert_eq!(
                    first, got,
                    "group members allocate in identical order; handles must agree"
                ),
            }
        }
        let id = id.expect("group has at least one member");
        let slot = id.index();
        if self.buffers.len() <= slot {
            self.buffers.resize(slot + 1, None);
        }
        self.buffers[slot] = Some(GroupBuffer::fresh(id, kind, len, self.devices.len()));
        Ok(id)
    }

    /// Releases a group buffer on every member.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] if the handle does not name a
    /// live group buffer.
    pub fn release_buffer(&mut self, id: BufferId) -> Result<(), SimError> {
        let slot = id.index();
        match self.buffers.get_mut(slot) {
            Some(entry @ Some(_)) => *entry = None,
            _ => return Err(SimError::UnknownBuffer(id)),
        }
        for dev in &mut self.devices {
            dev.release_buffer(id)?;
        }
        Ok(())
    }

    /// Reads a group buffer from its latest-source member. Host reads
    /// never migrate — they pull from wherever the latest copy lives.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] or [`SimError::BufferKind`].
    pub fn read_buffer<T: Scalar>(&self, id: BufferId) -> Result<Vec<T>, SimError> {
        let gb = self.group_buffer(id)?;
        self.devices[gb.latest_source].read_buffer::<T>(id)
    }

    /// Overwrites a group buffer from the host. The write lands on the
    /// current latest-source member and invalidates every other copy —
    /// on-demand migration refreshes them when next needed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`], [`SimError::BufferKind`] or
    /// [`SimError::SizeMismatch`].
    pub fn write_buffer<T: Scalar>(&mut self, id: BufferId, data: &[T]) -> Result<(), SimError> {
        let writer = self.group_buffer(id)?.latest_source;
        self.devices[writer].write_buffer(id, data)?;
        self.buffers[id.index()]
            .as_mut()
            .expect("checked above")
            .mark_written(writer);
        Ok(())
    }

    fn group_buffer(&self, id: BufferId) -> Result<&GroupBuffer, SimError> {
        self.buffers
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(SimError::UnknownBuffer(id))
    }

    /// Ensures member `dest` holds the latest bits of the group buffer in
    /// `slot`, migrating from the latest source if (and only if) `dest`'s
    /// copy is stale. Each migration is counted and priced.
    fn migrate_to(&mut self, slot: usize, dest: usize) -> Result<(), SimError> {
        let (id, src, bytes, valid) = {
            let gb = self.buffers[slot].as_ref().expect("live group buffer");
            (gb.id, gb.latest_source, gb.byte_len(), gb.copies[dest])
        };
        if valid {
            return Ok(());
        }
        let bits = self.devices[src].read_buffer_bits(id)?;
        self.devices[dest].write_buffer_bits(id, &bits)?;
        self.buffers[slot]
            .as_mut()
            .expect("live group buffer")
            .mark_migrated(dest);
        let cfg = self.devices[dest].config().clone();
        self.stats.record_migration(&cfg, bytes);
        Ok(())
    }

    /// The group-buffer slots a launch of `kernel` may touch: its declared
    /// [`Kernel::buffer_usage`] (reads ∪ writes), or — conservatively —
    /// every live group buffer when usage is undeclared.
    fn used_slots<K: Kernel + ?Sized>(&self, kernel: &K) -> Vec<usize> {
        match kernel.buffer_usage() {
            Some(u) => {
                let mut slots: Vec<usize> = u
                    .reads
                    .iter()
                    .chain(u.writes.iter())
                    .map(|id| id.index())
                    .collect();
                slots.sort_unstable();
                slots.dedup();
                slots
            }
            None => self
                .buffers
                .iter()
                .enumerate()
                .filter_map(|(slot, gb)| gb.as_ref().map(|_| slot))
                .collect(),
        }
    }

    /// The slots a launch actually wrote, derived from its write entries.
    fn written_slots(entries: &[engine::WriteEntry]) -> Vec<usize> {
        let mut slots: Vec<usize> = entries.iter().map(|e| e.slot as usize).collect();
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Executes one launch sharded across the member devices by
    /// contiguous row-major group ranges, blocking until it completes.
    ///
    /// Every buffer the kernel may touch is first migrated to each
    /// participating member (on demand — already-valid copies move
    /// nothing). Members execute their spans concurrently; write logs are
    /// gathered in device order, applied on member 0 (which becomes the
    /// latest source for every written buffer) and reduced exactly once —
    /// so the report, the output bits and the fault log are bit-identical
    /// to running the same launch on a single device, at any member
    /// count. On a faulting launch, writes are still applied (matching
    /// [`Device::launch`]) before the fault error is returned.
    ///
    /// # Errors
    ///
    /// As [`Device::launch`].
    pub fn launch_sharded<K: Kernel + Sync + ?Sized>(
        &mut self,
        kernel: &K,
        range: NdRange,
    ) -> Result<LaunchReport, SimError> {
        let total = range.num_groups_total();
        let participants = self.devices.len().min(total).max(1);
        let chunk = total.div_ceil(participants).max(1);
        let spans: Vec<(usize, usize)> = (0..participants)
            .map(|i| (i * chunk, ((i + 1) * chunk).min(total)))
            .filter(|&(lo, hi)| lo < hi)
            .collect();

        // Scatter: every participant needs the latest bits of every
        // buffer the kernel may touch (declared writes included — kernels
        // may read written buffers back, and unwritten elements of an
        // output must survive the gather unchanged).
        for slot in self.used_slots(kernel) {
            for dest in 0..spans.len() {
                self.migrate_to(slot, dest)?;
            }
        }

        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = spans
                .iter()
                .zip(self.devices.iter_mut())
                .map(|(&(lo, hi), dev)| s.spawn(move || dev.launch_span(kernel, range, lo, hi)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sharded launch member panicked"))
                .collect()
        });

        // Gather in device order = row-major group order.
        let mut setup = None;
        let mut outcomes = Vec::with_capacity(total);
        let mut entries = Vec::new();
        for r in results {
            let (member_setup, member_outcomes, member_entries) = r?;
            setup.get_or_insert(member_setup);
            outcomes.extend(member_outcomes);
            entries.extend(member_entries);
        }
        let setup = setup.expect("at least one span executed");

        // Apply on member 0 even when the launch faulted — matching the
        // partial-write semantics of a single device — and mark written
        // buffers as owned by member 0.
        self.devices[0].apply_entries(&entries);
        for slot in Self::written_slots(&entries) {
            if let Some(gb) = self.buffers.get_mut(slot).and_then(Option::as_mut) {
                gb.mark_written(0);
            }
        }
        self.stats.sharded_launches += 1;

        let cfg = self.devices[0].config().clone();
        let profiling = self.devices[0].profiling();
        engine::reduce_outcomes(kernel.name(), &cfg, profiling, &range, &setup, outcomes)
    }

    /// Ensures member `member` holds the latest bits of group buffer
    /// `id`, migrating from the latest source if (and only if) that
    /// member's copy is stale — counted and priced in [`GroupStats`]
    /// like every other migration.
    ///
    /// This is the serving-loop building block for *enqueued* placement:
    /// [`DeviceGroup::launch_on`] migrates and blocks, but a loop that
    /// enqueues on a member queue ([`DeviceGroup::create_queue`]) and
    /// harvests through a [`crate::CompletionQueue`] must make shared
    /// inputs resident itself before enqueueing. Migration is a host-side
    /// copy through the member devices' blocking buffer paths, so call it
    /// from the admission path (where it is a no-op whenever the copy is
    /// already valid), not from a completion callback.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] if `id` does not name a live
    /// group buffer.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range.
    pub fn prefetch(&mut self, id: BufferId, member: usize) -> Result<(), SimError> {
        let slot = id.index();
        if self.buffers.get(slot).and_then(Option::as_ref).is_none() {
            return Err(SimError::UnknownBuffer(id));
        }
        assert!(member < self.devices.len(), "member index out of range");
        self.migrate_to(slot, member)
    }

    /// The member index least-loaded right now: smallest live queue depth
    /// plus [`DeviceGroup::place`]-assigned count, ties broken by the
    /// lowest index (deterministic).
    pub fn least_loaded(&self) -> usize {
        (0..self.devices.len())
            .min_by_key(|&d| {
                (
                    self.devices[d].pending_commands() as u64 + self.assigned_load[d],
                    d,
                )
            })
            .expect("group has at least one member")
    }

    /// Picks the least-loaded member for the next independent command and
    /// records the assignment (so a burst of placements round-robins
    /// across idle members instead of piling onto one).
    pub fn place(&mut self) -> usize {
        let d = self.least_loaded();
        self.assigned_load[d] += 1;
        d
    }

    /// Executes one whole (unsharded) launch on member `idx`, blocking
    /// until it completes — the placement path for independent commands:
    /// pick a member with [`DeviceGroup::place`], then launch on it.
    /// Buffers the kernel may touch are migrated to `idx` on demand
    /// first; written buffers become owned by `idx`.
    ///
    /// # Errors
    ///
    /// As [`Device::launch`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn launch_on<K: Kernel + Sync + ?Sized>(
        &mut self,
        idx: usize,
        kernel: &K,
        range: NdRange,
    ) -> Result<LaunchReport, SimError> {
        let used = self.used_slots(kernel);
        for &slot in &used {
            self.migrate_to(slot, idx)?;
        }
        let result = self.devices[idx].launch(kernel, range);
        // Launches apply writes even when they fault, so ownership moves
        // regardless of the outcome. Without declared usage the write set
        // is unknown — conservatively assume everything it could touch.
        let written: Vec<usize> = match kernel.buffer_usage() {
            Some(u) => {
                let mut slots: Vec<usize> = u.writes.iter().map(|id| id.index()).collect();
                slots.sort_unstable();
                slots.dedup();
                slots
            }
            None => used,
        };
        for slot in written {
            if let Some(gb) = self.buffers.get_mut(slot).and_then(Option::as_mut) {
                gb.mark_written(idx);
            }
        }
        self.stats.placed_launches += 1;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ItemCtx;
    use crate::queue::BufferUse;

    struct Scale {
        src: BufferId,
        dst: BufferId,
        factor: f32,
    }

    impl Kernel for Scale {
        fn name(&self) -> &str {
            "scale"
        }

        fn buffer_usage(&self) -> Option<BufferUse> {
            Some(BufferUse::new([self.src], [self.dst]))
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            let i = ctx.global_id(0);
            let v: f32 = ctx.read_global(self.src, i);
            ctx.write_global(self.dst, i, self.factor * v);
            ctx.ops(1);
        }
    }

    fn group(n: usize) -> DeviceGroup {
        DeviceGroup::with_devices(DeviceConfig::test_tiny(), n).unwrap()
    }

    #[test]
    fn zero_members_rejected() {
        assert!(matches!(
            DeviceGroup::with_devices(DeviceConfig::test_tiny(), 0),
            Err(SimError::Config(_))
        ));
    }

    #[test]
    fn fresh_buffers_need_no_migration() {
        let mut g = group(3);
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let src = g.create_buffer_from("src", &data).unwrap();
        let dst = g.create_buffer::<f32>("dst", 64).unwrap();
        g.launch_sharded(
            &Scale {
                src,
                dst,
                factor: 2.0,
            },
            NdRange::new_1d(64, 4).unwrap(),
        )
        .unwrap();
        assert_eq!(g.stats().migrations, 0);
        assert_eq!(g.stats().sharded_launches, 1);
        let out = g.read_buffer::<f32>(dst).unwrap();
        assert_eq!(out[5], 10.0);
    }

    #[test]
    fn rewriting_migrates_only_stale_copies() {
        let mut g = group(2);
        let src = g.create_buffer_from("src", &[1.0f32; 16]).unwrap();
        let dst = g.create_buffer::<f32>("dst", 16).unwrap();
        let range = NdRange::new_1d(16, 4).unwrap();
        let k = Scale {
            src,
            dst,
            factor: 3.0,
        };
        g.launch_sharded(&k, range).unwrap();
        // dst is now owned by member 0 and stale on member 1; src is
        // still valid everywhere. Relaunching migrates exactly dst once.
        g.launch_sharded(&k, range).unwrap();
        assert_eq!(g.stats().migrations, 1);
        assert_eq!(g.stats().migrated_bytes, 64);
        assert!(g.stats().migration_cycles > 0);
    }

    #[test]
    fn placement_round_robins_on_ties() {
        let mut g = group(4);
        let picks: Vec<usize> = (0..5).map(|_| g.place()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn release_invalidates_handle() {
        let mut g = group(2);
        let id = g.create_buffer::<f32>("x", 8).unwrap();
        g.release_buffer(id).unwrap();
        assert!(matches!(
            g.read_buffer::<f32>(id),
            Err(SimError::UnknownBuffer(_))
        ));
        assert!(matches!(
            g.release_buffer(id),
            Err(SimError::UnknownBuffer(_))
        ));
    }

    #[test]
    fn prefetch_migrates_stale_copies_only() {
        let mut g = group(2);
        let src = g.create_buffer_from("src", &[1.0f32; 16]).unwrap();
        // Fresh buffers are valid fleet-wide: prefetch is a no-op.
        g.prefetch(src, 1).unwrap();
        assert_eq!(g.stats().migrations, 0);
        // A host write leaves only the latest source valid; prefetching
        // to the other member migrates exactly once, and again is a
        // no-op once resident.
        g.write_buffer(src, &[9.0f32; 16]).unwrap();
        g.prefetch(src, 1).unwrap();
        g.prefetch(src, 1).unwrap();
        assert_eq!(g.stats().migrations, 1);
        assert_eq!(g.member(1).read_buffer::<f32>(src).unwrap(), [9.0f32; 16]);
        // Unknown handles are rejected.
        let bogus = g.create_buffer::<f32>("tmp", 4).unwrap();
        g.release_buffer(bogus).unwrap();
        assert!(matches!(
            g.prefetch(bogus, 0),
            Err(SimError::UnknownBuffer(_))
        ));
    }

    #[test]
    fn host_write_invalidates_other_copies() {
        let mut g = group(2);
        let src = g.create_buffer_from("src", &[1.0f32; 16]).unwrap();
        let dst = g.create_buffer::<f32>("dst", 16).unwrap();
        g.write_buffer(src, &[5.0f32; 16]).unwrap();
        // src now lives on its latest source only; the sharded launch
        // must migrate it to the other participant.
        g.launch_sharded(
            &Scale {
                src,
                dst,
                factor: 1.0,
            },
            NdRange::new_1d(16, 4).unwrap(),
        )
        .unwrap();
        assert_eq!(g.stats().migrations, 1);
        assert_eq!(g.read_buffer::<f32>(dst).unwrap(), vec![5.0f32; 16]);
    }
}
