//! Global-memory coalescing model.
//!
//! GPUs service global-memory requests at the granularity of aligned
//! transactions (64 B on GCN-class hardware). All lanes of a wavefront that
//! touch the same aligned block in the same phase share one transaction;
//! scattered or misaligned accesses burn extra transactions and waste
//! bandwidth on bytes nobody asked for. This module counts exactly that:
//! unique `(wavefront, direction, block)` triples per work-group phase.
//!
//! Two tiers are tracked:
//!
//! * **L1 transactions** — unique `(granule, direction, block)` triples,
//!   where a granule is a quarter-wavefront (16 lanes on GCN). This models
//!   cache-port bandwidth: even an L1 hit costs an access cycle.
//! * **DRAM transactions** — unique `(direction, block)` pairs per work
//!   group, modeling the off-chip footprint after the per-CU cache has
//!   collapsed re-reads across wavefronts of the group.
//!
//! This is the mechanism behind most of the paper's observations:
//! * skipping tile rows halves the number of blocks touched (Rows1),
//! * halo rows/columns are misaligned and therefore disproportionately
//!   expensive, which is why the Stencil scheme pays off (§4.4),
//! * tall-skinny work groups request tiny slivers of many blocks, which is
//!   why work-group geometry matters (Fig. 9).

/// Direction of a global memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Load from global memory.
    Read,
    /// Store to global memory.
    Write,
}

/// Accumulates the global accesses of one work group within one phase and
/// reduces them to transaction counts.
#[derive(Debug, Default)]
pub struct CoalesceTracker {
    /// Packed keys: `granule << 41 | seq << 31 | dir << 30 | block`.
    keys: Vec<u64>,
    /// Total bytes the kernel actually requested (elements × size).
    pub bytes_requested: u64,
    /// Number of element-granular read accesses.
    pub element_reads: u64,
    /// Number of element-granular write accesses.
    pub element_writes: u64,
}

const DIR_SHIFT: u32 = 30;
const SEQ_SHIFT: u32 = 31;
const GRANULE_SHIFT: u32 = 41;
const BLOCK_MASK: u64 = (1 << DIR_SHIFT) - 1;
/// Mask keeping only `dir | block` (the DRAM-tier key).
const DRAM_MASK: u64 = (1 << SEQ_SHIFT) - 1;

/// Result of collapsing one phase's accesses into transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceSummary {
    /// Unique L1 (per-granule) read transactions in this phase.
    pub read_transactions: u64,
    /// Unique L1 (per-granule) write transactions in this phase.
    pub write_transactions: u64,
    /// Unique DRAM (per-group) read transactions in this phase.
    pub dram_read_transactions: u64,
    /// Unique DRAM (per-group) write transactions in this phase.
    pub dram_write_transactions: u64,
    /// DRAM read transactions that *continue* a contiguous run: their block
    /// is exactly one past the previous same-direction block touched by the
    /// group this phase. The memory controller streams such runs as open-row
    /// bursts; [`crate::DeviceConfig::burst_issue_cycles`] prices them.
    /// Always `< dram_read_transactions` unless both are zero.
    pub dram_read_burst_transactions: u64,
    /// DRAM write transactions continuing a contiguous same-direction run.
    pub dram_write_burst_transactions: u64,
    /// Bytes requested by kernel code (useful payload).
    pub bytes_requested: u64,
    /// Element-granular read count.
    pub element_reads: u64,
    /// Element-granular write count.
    pub element_writes: u64,
}

impl CoalesceSummary {
    /// Total L1 transactions (reads + writes).
    pub fn transactions(&self) -> u64 {
        self.read_transactions + self.write_transactions
    }

    /// Total DRAM transactions (reads + writes).
    pub fn dram_transactions(&self) -> u64 {
        self.dram_read_transactions + self.dram_write_transactions
    }

    /// Bytes moved off-chip: `dram transactions × transaction_bytes`.
    pub fn bytes_transferred(&self, transaction_bytes: usize) -> u64 {
        self.dram_transactions() * transaction_bytes as u64
    }

    /// Bytes fetched from DRAM but never requested by any lane (bandwidth
    /// waste). Re-reads of the same element can make the requested figure
    /// exceed the transferred one, in which case waste is zero.
    pub fn wasted_bytes(&self, transaction_bytes: usize) -> u64 {
        self.bytes_transferred(transaction_bytes)
            .saturating_sub(self.bytes_requested)
    }
}

impl CoalesceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access of `bytes` bytes at flat device address `addr` by
    /// a lane of coalescing granule `granule`, issued as the lane's
    /// `seq`-th global-memory instruction of the phase. Lanes only share a
    /// transaction when the *same instruction* of the *same granule*
    /// touches the same block — scattered multi-store patterns (e.g.
    /// Paraprox's center-scheme output copies) therefore pay per
    /// instruction, as on hardware.
    ///
    /// An access spanning a block boundary touches every covered block
    /// (possible for multi-byte elements at the edge of a block).
    pub fn record(
        &mut self,
        granule: u32,
        seq: u32,
        dir: Dir,
        addr: u64,
        bytes: u32,
        txn_bytes: u64,
    ) {
        debug_assert!(txn_bytes.is_power_of_two());
        let first = addr / txn_bytes;
        let last = (addr + u64::from(bytes) - 1) / txn_bytes;
        let dir_bit = match dir {
            Dir::Read => 0u64,
            Dir::Write => 1u64,
        };
        let seq = u64::from(seq) & 0x3FF; // 10 bits; wraps for huge loops
        for block in first..=last {
            debug_assert!(block <= BLOCK_MASK, "address space exhausted");
            self.keys.push(
                (u64::from(granule) << GRANULE_SHIFT)
                    | (seq << SEQ_SHIFT)
                    | (dir_bit << DIR_SHIFT)
                    | block,
            );
        }
        self.bytes_requested += u64::from(bytes);
        match dir {
            Dir::Read => self.element_reads += 1,
            Dir::Write => self.element_writes += 1,
        }
    }

    /// Collapses recorded accesses into unique transactions and resets the
    /// tracker for the next phase.
    pub fn finish_phase(&mut self) -> CoalesceSummary {
        self.keys.sort_unstable();
        let mut read_transactions = 0u64;
        let mut write_transactions = 0u64;
        let mut prev = None;
        for &k in &self.keys {
            if prev == Some(k) {
                continue;
            }
            prev = Some(k);
            if (k >> DIR_SHIFT) & 1 == 0 {
                read_transactions += 1;
            } else {
                write_transactions += 1;
            }
        }
        // DRAM tier: strip granule and instruction ids, dedup
        // (direction, block) pairs across the whole group. The masked keys
        // are sorted, so a transaction whose block is exactly one past the
        // previous unique same-direction block continues a contiguous run —
        // a burst the memory controller can stream without re-issuing a row
        // activation. Run heads always pay full price.
        let mut dram_read_transactions = 0u64;
        let mut dram_write_transactions = 0u64;
        let mut dram_read_burst_transactions = 0u64;
        let mut dram_write_burst_transactions = 0u64;
        for k in self.keys.iter_mut() {
            *k &= DRAM_MASK; // keep dir|block only
        }
        self.keys.sort_unstable();
        let mut prev = None;
        for &k in &self.keys {
            if prev == Some(k) {
                continue;
            }
            let burst = prev.is_some_and(|p: u64| k == p + 1 && k >> DIR_SHIFT == p >> DIR_SHIFT);
            prev = Some(k);
            if (k >> DIR_SHIFT) & 1 == 0 {
                dram_read_transactions += 1;
                dram_read_burst_transactions += u64::from(burst);
            } else {
                dram_write_transactions += 1;
                dram_write_burst_transactions += u64::from(burst);
            }
        }
        let summary = CoalesceSummary {
            read_transactions,
            write_transactions,
            dram_read_transactions,
            dram_write_transactions,
            dram_read_burst_transactions,
            dram_write_burst_transactions,
            bytes_requested: self.bytes_requested,
            element_reads: self.element_reads,
            element_writes: self.element_writes,
        };
        self.keys.clear();
        self.bytes_requested = 0;
        self.element_reads = 0;
        self.element_writes = 0;
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TXN: u64 = 64;

    #[test]
    fn contiguous_row_coalesces_into_one_transaction() {
        let mut t = CoalesceTracker::new();
        // 16 f32 elements starting at an aligned address: exactly 64 bytes.
        for i in 0..16u64 {
            t.record(0, 0, Dir::Read, i * 4, 4, TXN);
        }
        let s = t.finish_phase();
        assert_eq!(s.read_transactions, 1);
        assert_eq!(s.write_transactions, 0);
        assert_eq!(s.bytes_requested, 64);
        assert_eq!(s.wasted_bytes(64), 0);
    }

    #[test]
    fn misaligned_row_spans_two_transactions() {
        let mut t = CoalesceTracker::new();
        // Same 16 elements but starting 8 bytes into a block (halo-style).
        for i in 0..16u64 {
            t.record(0, 0, Dir::Read, 8 + i * 4, 4, TXN);
        }
        let s = t.finish_phase();
        assert_eq!(s.read_transactions, 2);
        assert_eq!(s.wasted_bytes(64), 128 - 64);
    }

    #[test]
    fn strided_column_burns_one_transaction_per_element() {
        let mut t = CoalesceTracker::new();
        // A column in a 1024-wide f32 image: stride 4096 bytes.
        for i in 0..8u64 {
            t.record(0, 0, Dir::Read, i * 4096, 4, TXN);
        }
        let s = t.finish_phase();
        assert_eq!(s.read_transactions, 8);
        assert_eq!(s.wasted_bytes(64), 8 * 64 - 8 * 4);
    }

    #[test]
    fn reads_and_writes_counted_separately() {
        let mut t = CoalesceTracker::new();
        t.record(0, 0, Dir::Read, 0, 4, TXN);
        t.record(0, 0, Dir::Write, 0, 4, TXN);
        let s = t.finish_phase();
        assert_eq!(s.read_transactions, 1);
        assert_eq!(s.write_transactions, 1);
        assert_eq!(s.transactions(), 2);
        assert_eq!(s.dram_read_transactions, 1);
        assert_eq!(s.dram_write_transactions, 1);
        assert_eq!(s.dram_transactions(), 2);
    }

    #[test]
    fn different_granules_do_not_share_l1_transactions() {
        let mut t = CoalesceTracker::new();
        t.record(0, 0, Dir::Read, 0, 4, TXN);
        t.record(1, 0, Dir::Read, 0, 4, TXN);
        let s = t.finish_phase();
        assert_eq!(s.read_transactions, 2);
        // ... but they do share the DRAM transaction (cached per group).
        assert_eq!(s.dram_read_transactions, 1);
    }

    #[test]
    fn element_spanning_block_boundary_touches_both() {
        let mut t = CoalesceTracker::new();
        t.record(0, 0, Dir::Read, 62, 4, TXN);
        let s = t.finish_phase();
        assert_eq!(s.read_transactions, 2);
    }

    #[test]
    fn duplicate_accesses_collapse() {
        let mut t = CoalesceTracker::new();
        for _ in 0..100 {
            t.record(0, 0, Dir::Read, 4, 4, TXN);
        }
        let s = t.finish_phase();
        assert_eq!(s.read_transactions, 1);
        assert_eq!(s.element_reads, 100);
        // Re-reads mean requested >> transferred; waste saturates at zero.
        assert_eq!(s.wasted_bytes(64), 0);
    }

    #[test]
    fn different_instructions_do_not_share_l1_transactions() {
        let mut t = CoalesceTracker::new();
        // Same granule, same block, but two different store instructions
        // (e.g. a scattered multi-store): two L1 transactions, one DRAM.
        t.record(0, 0, Dir::Write, 0, 4, TXN);
        t.record(0, 1, Dir::Write, 4, 4, TXN);
        let s = t.finish_phase();
        assert_eq!(s.write_transactions, 2);
        assert_eq!(s.dram_write_transactions, 1);
    }

    #[test]
    fn contiguous_blocks_count_as_burst_continuations() {
        let mut t = CoalesceTracker::new();
        // 8 consecutive 64 B blocks: one run head + 7 continuations.
        for b in 0..8u64 {
            t.record(0, 0, Dir::Read, b * 64, 4, TXN);
        }
        let s = t.finish_phase();
        assert_eq!(s.dram_read_transactions, 8);
        assert_eq!(s.dram_read_burst_transactions, 7);
    }

    #[test]
    fn strided_blocks_have_no_burst_continuations() {
        let mut t = CoalesceTracker::new();
        // Every other block: all run heads.
        for b in 0..8u64 {
            t.record(0, 0, Dir::Read, b * 128, 4, TXN);
        }
        let s = t.finish_phase();
        assert_eq!(s.dram_read_transactions, 8);
        assert_eq!(s.dram_read_burst_transactions, 0);
    }

    #[test]
    fn burst_runs_do_not_cross_directions() {
        let mut t = CoalesceTracker::new();
        t.record(0, 0, Dir::Read, 0, 4, TXN);
        t.record(0, 0, Dir::Read, 64, 4, TXN);
        t.record(0, 0, Dir::Write, 128, 4, TXN);
        t.record(0, 0, Dir::Write, 192, 4, TXN);
        let s = t.finish_phase();
        assert_eq!(s.dram_read_burst_transactions, 1);
        // The first write block is a run head even though its block number
        // follows the last read block.
        assert_eq!(s.dram_write_burst_transactions, 1);
    }

    #[test]
    fn interleaved_granules_still_form_one_dram_burst_run() {
        let mut t = CoalesceTracker::new();
        // Two granules touching alternating blocks of one contiguous span:
        // the DRAM tier sees the union as a single run.
        for b in 0..8u64 {
            t.record((b % 2) as u32, 0, Dir::Read, b * 64, 4, TXN);
        }
        let s = t.finish_phase();
        assert_eq!(s.dram_read_transactions, 8);
        assert_eq!(s.dram_read_burst_transactions, 7);
    }

    #[test]
    fn finish_phase_resets_state() {
        let mut t = CoalesceTracker::new();
        t.record(0, 0, Dir::Read, 0, 4, TXN);
        let _ = t.finish_phase();
        let s = t.finish_phase();
        assert_eq!(s, CoalesceSummary::default());
    }
}
