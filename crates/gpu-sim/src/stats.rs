//! Launch reports: everything the timing model and the experiment harness
//! need to know about one kernel execution.

use serde::{Deserialize, Serialize};

use crate::config::DeviceConfig;

/// Aggregated memory/compute statistics of one launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// L1 (per-granule) read transactions across all groups and phases.
    pub global_read_transactions: u64,
    /// L1 (per-granule) write transactions.
    pub global_write_transactions: u64,
    /// DRAM (per-group footprint) read transactions.
    pub dram_read_transactions: u64,
    /// DRAM (per-group footprint) write transactions.
    pub dram_write_transactions: u64,
    /// DRAM read transactions that continued a contiguous block run (open-row
    /// bursts, priced at [`DeviceConfig::burst_issue_cycles`]).
    pub dram_read_burst_transactions: u64,
    /// DRAM write transactions that continued a contiguous block run.
    pub dram_write_burst_transactions: u64,
    /// Halo elements shifted in from a neighboring group's tile (systolic
    /// prefetch layout) instead of being re-fetched from global memory.
    pub shifted_elements: u64,
    /// Bytes requested by kernel code (element loads/stores × size).
    pub global_bytes_requested: u64,
    /// Bytes moved over the memory bus (transactions × transaction size).
    pub global_bytes_transferred: u64,
    /// Element-granular global reads.
    pub global_element_reads: u64,
    /// Element-granular global writes.
    pub global_element_writes: u64,
    /// Element-granular local-memory accesses (reads + writes).
    pub local_accesses: u64,
    /// Serialized local access steps (includes conflict expansion).
    pub local_steps: u64,
    /// Extra local steps caused by bank conflicts.
    pub local_conflict_steps: u64,
    /// Total ALU operations reported by kernel code.
    pub alu_ops: u64,
    /// Reads of local memory elements never written in the current group.
    pub uninit_local_reads: u64,
}

impl LaunchStats {
    /// Total global transactions (reads + writes).
    pub fn global_transactions(&self) -> u64 {
        self.global_read_transactions + self.global_write_transactions
    }

    /// Fraction of transferred bytes that no lane requested, in `[0, 1]`.
    /// Zero when nothing was transferred.
    pub fn waste_ratio(&self) -> f64 {
        if self.global_bytes_transferred == 0 {
            return 0.0;
        }
        let wasted = self
            .global_bytes_transferred
            .saturating_sub(self.global_bytes_requested);
        wasted as f64 / self.global_bytes_transferred as f64
    }

    pub(crate) fn accumulate(&mut self, other: &LaunchStats) {
        self.global_read_transactions += other.global_read_transactions;
        self.global_write_transactions += other.global_write_transactions;
        self.dram_read_transactions += other.dram_read_transactions;
        self.dram_write_transactions += other.dram_write_transactions;
        self.dram_read_burst_transactions += other.dram_read_burst_transactions;
        self.dram_write_burst_transactions += other.dram_write_burst_transactions;
        self.shifted_elements += other.shifted_elements;
        self.global_bytes_requested += other.global_bytes_requested;
        self.global_bytes_transferred += other.global_bytes_transferred;
        self.global_element_reads += other.global_element_reads;
        self.global_element_writes += other.global_element_writes;
        self.local_accesses += other.local_accesses;
        self.local_steps += other.local_steps;
        self.local_conflict_steps += other.local_conflict_steps;
        self.alu_ops += other.alu_ops;
        self.uninit_local_reads += other.uninit_local_reads;
    }
}

/// Cycle breakdown of one launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Cycles spent in global-memory-bound portions (summed over groups).
    pub memory_cycles: u64,
    /// Cycles spent in ALU + local-memory portions (summed over groups).
    pub compute_cycles: u64,
    /// Barrier and dispatch overhead cycles (summed over groups).
    pub overhead_cycles: u64,
    /// Per-group serialized cycles before device-level parallelism
    /// (sum over all groups of each group's critical path).
    pub group_cycles_total: u64,
    /// Final device cycles after dividing by compute-unit parallelism.
    pub device_cycles: u64,
}

/// Occupancy figures derived from the kernel's resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Wavefronts per work group.
    pub waves_per_group: usize,
    /// Concurrent work groups per compute unit.
    pub groups_per_cu: usize,
    /// Local memory bytes used per work group.
    pub local_bytes_per_group: usize,
}

impl Default for Occupancy {
    fn default() -> Self {
        Self {
            waves_per_group: 1,
            groups_per_cu: 1,
            local_bytes_per_group: 0,
        }
    }
}

/// Aggregated multi-device counters of one [`crate::DeviceGroup`].
///
/// Kept separate from [`LaunchReport`] on purpose: a sharded launch's
/// report must stay bit-identical to the single-device run at any member
/// count, so fleet-level costs (buffer migrations over the interconnect)
/// accumulate here instead of inside per-launch timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Whole-buffer copies moved between member devices.
    pub migrations: u64,
    /// Bytes those migrations transferred.
    pub migrated_bytes: u64,
    /// Interconnect cycles the charge model prices those transfers at
    /// (see [`GroupStats::migration_cost_cycles`]).
    pub migration_cycles: u64,
    /// Launches sharded across members by group ranges.
    pub sharded_launches: u64,
    /// Launches placed whole on a single member device.
    pub placed_launches: u64,
}

impl GroupStats {
    /// Prices one migration of `bytes` with the same DMA-flavored charge
    /// model the launch engine uses for global memory: the transfer moves
    /// `ceil(bytes / transaction_bytes)` bus transactions, each costing
    /// one global issue slot. Latency is ignored (migrations are bulk
    /// transfers, fully pipelined).
    pub fn migration_cost_cycles(cfg: &DeviceConfig, bytes: usize) -> u64 {
        bytes.div_ceil(cfg.transaction_bytes) as u64 * cfg.global_issue_cycles
    }

    pub(crate) fn record_migration(&mut self, cfg: &DeviceConfig, bytes: usize) {
        self.migrations += 1;
        self.migrated_bytes += bytes as u64;
        self.migration_cycles += Self::migration_cost_cycles(cfg, bytes);
    }

    /// The accumulated [`GroupStats::migration_cycles`] expressed in
    /// simulated seconds at `cfg`'s clock — the fleet-level cost term a
    /// serving loop adds on top of the per-launch
    /// [`LaunchReport::seconds`] when it breaks down what a request
    /// stream actually paid. Kept out of the per-launch reports
    /// themselves so sharded/placed reports stay bit-identical to
    /// single-device runs (see the struct docs).
    pub fn migration_seconds(&self, cfg: &DeviceConfig) -> f64 {
        cfg.cycles_to_seconds(self.migration_cycles)
    }
}

/// Full report of one kernel launch: functional side effects live in the
/// device's buffers; this captures the performance model's view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchReport {
    /// Kernel name as reported by [`crate::Kernel::name`].
    pub kernel: String,
    /// Number of work groups executed.
    pub groups: usize,
    /// Number of barrier-separated phases.
    pub phases: usize,
    /// Whether profiling (transaction/bank tracking) was enabled. When
    /// false the stats and timing fields are zero.
    pub profiled: bool,
    /// Aggregated statistics.
    pub stats: LaunchStats,
    /// Cycle accounting.
    pub timing: TimingBreakdown,
    /// Occupancy snapshot.
    pub occupancy: Occupancy,
    /// Simulated wall-clock seconds for the launch.
    pub seconds: f64,
}

impl LaunchReport {
    pub(crate) fn finalize(&mut self, cfg: &DeviceConfig) {
        self.seconds = cfg.cycles_to_seconds(self.timing.device_cycles);
    }

    /// Simulated execution time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.seconds * 1e3
    }

    /// Combines several launches (e.g. iterative solvers that launch one
    /// kernel per step) into a single aggregate report.
    pub fn combine<'a>(reports: impl IntoIterator<Item = &'a LaunchReport>) -> LaunchReport {
        let mut out: Option<LaunchReport> = None;
        for r in reports {
            match &mut out {
                None => out = Some(r.clone()),
                Some(acc) => {
                    acc.groups += r.groups;
                    acc.stats.accumulate(&r.stats);
                    acc.timing.memory_cycles += r.timing.memory_cycles;
                    acc.timing.compute_cycles += r.timing.compute_cycles;
                    acc.timing.overhead_cycles += r.timing.overhead_cycles;
                    acc.timing.group_cycles_total += r.timing.group_cycles_total;
                    acc.timing.device_cycles += r.timing.device_cycles;
                    acc.seconds += r.seconds;
                    acc.profiled &= r.profiled;
                }
            }
        }
        out.unwrap_or_else(|| LaunchReport {
            kernel: "<empty>".to_owned(),
            groups: 0,
            phases: 0,
            profiled: false,
            stats: LaunchStats::default(),
            timing: TimingBreakdown::default(),
            occupancy: Occupancy::default(),
            seconds: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> LaunchReport {
        LaunchReport {
            kernel: "k".into(),
            groups: 2,
            phases: 1,
            profiled: true,
            stats: LaunchStats {
                alu_ops: 10,
                ..Default::default()
            },
            timing: TimingBreakdown {
                device_cycles: cycles,
                ..Default::default()
            },
            occupancy: Occupancy::default(),
            seconds: 0.0,
        }
    }

    #[test]
    fn waste_ratio_zero_when_idle() {
        assert_eq!(LaunchStats::default().waste_ratio(), 0.0);
    }

    #[test]
    fn waste_ratio_computed() {
        let s = LaunchStats {
            global_bytes_transferred: 200,
            global_bytes_requested: 150,
            ..Default::default()
        };
        assert!((s.waste_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn waste_ratio_clamps_on_rereads() {
        let s = LaunchStats {
            global_bytes_transferred: 100,
            global_bytes_requested: 400,
            ..Default::default()
        };
        assert_eq!(s.waste_ratio(), 0.0);
    }

    #[test]
    fn combine_sums_cycles_and_stats() {
        let a = report(100);
        let b = report(250);
        let c = LaunchReport::combine([&a, &b]);
        assert_eq!(c.timing.device_cycles, 350);
        assert_eq!(c.groups, 4);
        assert_eq!(c.stats.alu_ops, 20);
    }

    #[test]
    fn combine_empty_is_identity() {
        let c = LaunchReport::combine([]);
        assert_eq!(c.groups, 0);
        assert_eq!(c.seconds, 0.0);
    }

    #[test]
    fn finalize_converts_cycles() {
        let cfg = DeviceConfig::test_tiny(); // 1000 MHz
        let mut r = report(1_000_000);
        r.finalize(&cfg);
        assert!((r.seconds - 1e-3).abs() < 1e-12);
        assert!((r.millis() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn migration_seconds_folds_priced_cycles_into_simulated_time() {
        let cfg = DeviceConfig::test_tiny(); // 1000 MHz
        let mut s = GroupStats::default();
        assert_eq!(s.migration_seconds(&cfg), 0.0);
        s.record_migration(&cfg, 4096);
        s.record_migration(&cfg, 1); // partial transaction still pays one
        let expected_cycles = GroupStats::migration_cost_cycles(&cfg, 4096)
            + GroupStats::migration_cost_cycles(&cfg, 1);
        assert_eq!(s.migration_cycles, expected_cycles);
        // The simulated-time view is exactly the priced cycles at the
        // configured clock — the same conversion LaunchReport::finalize
        // applies to device cycles.
        let expected = cfg.cycles_to_seconds(expected_cycles);
        assert!((s.migration_seconds(&cfg) - expected).abs() < 1e-18);
        assert!(s.migration_seconds(&cfg) > 0.0);
    }
}
