//! Error types for the simulator.

use crate::buffer::{BufferId, ElemKind};
use crate::kernel::Fault;
use crate::ndrange::NdRangeError;

/// Errors returned by [`crate::Device`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The device configuration is inconsistent.
    Config(String),
    /// The launch geometry is invalid.
    NdRange(NdRangeError),
    /// The launch violates a device limit (work-group size, local memory).
    Launch(String),
    /// A host-side buffer operation referenced an unknown handle.
    UnknownBuffer(BufferId),
    /// A host-side buffer operation used the wrong element type.
    BufferKind {
        /// The offending buffer.
        buffer: BufferId,
        /// Kind the caller asked for.
        expected: ElemKind,
        /// Kind the buffer actually holds.
        actual: ElemKind,
    },
    /// A host-side write had the wrong length.
    SizeMismatch {
        /// The offending buffer.
        buffer: BufferId,
        /// Length of the buffer.
        buffer_len: usize,
        /// Length of the host data.
        data_len: usize,
    },
    /// Allocation would exceed the device's global memory.
    OutOfMemory {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// Kernel code performed invalid accesses during a launch. Buffers may
    /// have been partially written.
    KernelFaults {
        /// Kernel name.
        kernel: String,
        /// First few faults (bounded log).
        faults: Vec<Fault>,
        /// Total number of faults, possibly larger than `faults.len()`.
        total: usize,
    },
    /// A queue or event operation referenced a [`crate::Device`] that has
    /// been dropped. Queues and events hold weak device handles, so the
    /// device owner is never kept alive by leftover command-stream
    /// handles; using them afterwards is this error, not a panic.
    DeviceLost,
    /// The queue that owned this command was released while the command
    /// was still pending; the command was cancelled and never executed.
    /// Release queues only after `finish()` (or after waiting every event)
    /// to guarantee execution.
    QueueReleased {
        /// Id of the released queue (see [`crate::Queue::id`]).
        queue: u64,
    },
    /// An event-result accessor did not match the command kind (e.g.
    /// `wait_read` on a launch event, or a read result that was already
    /// taken by an earlier `wait_read`).
    EventResult {
        /// What the accessor expected (`"read"`, `"launch report"`, …).
        expected: &'static str,
        /// What the event actually holds.
        actual: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "invalid device configuration: {msg}"),
            SimError::NdRange(e) => write!(f, "invalid ndrange: {e}"),
            SimError::Launch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::UnknownBuffer(id) => write!(f, "unknown buffer {id}"),
            SimError::BufferKind { buffer, expected, actual } => write!(
                f,
                "buffer {buffer} holds {actual} elements, not {expected}"
            ),
            SimError::SizeMismatch { buffer, buffer_len, data_len } => write!(
                f,
                "buffer {buffer} has {buffer_len} elements but host data has {data_len}"
            ),
            SimError::OutOfMemory { requested, available } => write!(
                f,
                "allocation of {requested} bytes exceeds available global memory ({available} bytes)"
            ),
            SimError::KernelFaults { kernel, faults, total } => {
                write!(f, "kernel '{kernel}' raised {total} fault(s)")?;
                if let Some(first) = faults.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            SimError::DeviceLost => {
                write!(f, "the device behind this queue/event has been dropped")
            }
            SimError::QueueReleased { queue } => write!(
                f,
                "queue #{queue} was released while this command was still pending; \
                 the command was cancelled"
            ),
            SimError::EventResult { expected, actual } => write!(
                f,
                "event holds a {actual} result, but a {expected} was requested"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::NdRange(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NdRangeError> for SimError {
    fn from(e: NdRangeError) -> Self {
        SimError::NdRange(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FaultKind;

    #[test]
    fn display_variants_are_nonempty() {
        let errs: Vec<SimError> = vec![
            SimError::Config("x".into()),
            SimError::NdRange(NdRangeError::BadDims(0)),
            SimError::Launch("y".into()),
            SimError::UnknownBuffer(BufferId(1)),
            SimError::BufferKind {
                buffer: BufferId(0),
                expected: ElemKind::F32,
                actual: ElemKind::I32,
            },
            SimError::SizeMismatch {
                buffer: BufferId(0),
                buffer_len: 4,
                data_len: 5,
            },
            SimError::OutOfMemory {
                requested: 100,
                available: 10,
            },
            SimError::KernelFaults {
                kernel: "k".into(),
                faults: vec![Fault {
                    kind: FaultKind::UnknownBuffer {
                        buffer: BufferId(9),
                    },
                    group: [0; 3],
                    local: [0; 3],
                    phase: 0,
                }],
                total: 3,
            },
            SimError::DeviceLost,
            SimError::QueueReleased { queue: 4 },
            SimError::EventResult {
                expected: "read",
                actual: "launch report",
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn ndrange_error_converts() {
        let e: SimError = NdRangeError::BadDims(7).into();
        assert!(matches!(e, SimError::NdRange(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn kernel_faults_display_includes_first_fault() {
        let e = SimError::KernelFaults {
            kernel: "gauss".into(),
            faults: vec![Fault {
                kind: FaultKind::GlobalOutOfBounds {
                    buffer: BufferId(0),
                    index: 4,
                    len: 4,
                },
                group: [0; 3],
                local: [0; 3],
                phase: 0,
            }],
            total: 1,
        };
        let s = e.to_string();
        assert!(s.contains("gauss"));
        assert!(s.contains("out of bounds"));
    }
}
