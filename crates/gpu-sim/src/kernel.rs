//! The kernel programming model: phase kernels and the work-item context.
//!
//! OpenCL kernels synchronize work groups with `barrier(CLK_LOCAL_MEM_FENCE)`.
//! An interpreter cannot suspend a work item mid-function without coroutines,
//! so the simulator uses the *phase kernel* model: a kernel declares how many
//! barrier-separated phases it has, and the scheduler runs phase `p` for
//! every work item of a group before advancing to phase `p + 1`. This is
//! exactly the structure of the paper's perforation pipeline:
//!
//! * phase 0 — data perforation: cooperative (sparse) load into local memory,
//! * phase 1 — data reconstruction in local memory,
//! * phase 2 — original kernel body reading from local memory.

use std::any::Any;

use crate::buffer::{BufferId, ElemKind, Scalar};
use crate::coalesce::{CoalesceTracker, Dir};
use crate::config::DeviceConfig;
use crate::engine::WriteLog;
use crate::local::{BankTracker, LocalArena, LocalId, LocalSpec};
use crate::ndrange::NdRange;

/// A simulated GPU kernel.
///
/// Implementations hold their buffer handles as struct fields (there is no
/// positional argument binding). `run_phase` is called once per work item
/// per phase, in deterministic row-major order.
///
/// # Examples
///
/// ```
/// use kp_gpu_sim::{Device, DeviceConfig, ItemCtx, Kernel, NdRange, BufferId};
///
/// struct Scale { src: BufferId, dst: BufferId, factor: f32 }
///
/// impl Kernel for Scale {
///     fn name(&self) -> &str { "scale" }
///     fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
///         let i = ctx.global_id(0);
///         let v: f32 = ctx.read_global(self.src, i);
///         ctx.write_global(self.dst, i, v * self.factor);
///         ctx.ops(1);
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dev = Device::new(DeviceConfig::test_tiny())?;
/// let src = dev.create_buffer_from("src", &[1.0f32, 2.0, 3.0, 4.0])?;
/// let dst = dev.create_buffer::<f32>("dst", 4)?;
/// let kernel = Scale { src, dst, factor: 2.0 };
/// dev.launch(&kernel, NdRange::new_1d(4, 4)?)?;
/// assert_eq!(dev.read_buffer::<f32>(dst)?, vec![2.0, 4.0, 6.0, 8.0]);
/// # Ok(())
/// # }
/// ```
pub trait Kernel {
    /// Kernel name, used in reports and fault messages.
    fn name(&self) -> &str;

    /// Number of barrier-separated phases (≥ 1). Defaults to 1.
    fn phases(&self) -> usize {
        1
    }

    /// Local-memory arrays required per work group. Defaults to none.
    fn local_buffers(&self) -> Vec<LocalSpec> {
        Vec::new()
    }

    /// The global buffers this kernel may touch, split into read and write
    /// sets — the command-queue scheduler's hazard-inference input (see
    /// [`crate::Queue`]).
    ///
    /// `None` (the default) means "unknown": an enqueued launch is then
    /// ordered after *every* earlier command and before every later one,
    /// which is always correct but never overlaps. Kernels that declare
    /// their usage can overlap with commands touching disjoint buffers;
    /// in exchange, the declaration is **enforced** — a queued launch that
    /// accesses an undeclared buffer faults deterministically
    /// ([`FaultKind::UndeclaredBuffer`]) instead of reading
    /// schedule-dependent data. Reading a buffer that is only in the write
    /// set is allowed (its pre-launch contents are hazard-ordered too).
    ///
    /// Blocking launches ([`crate::Device::launch`]) ignore the
    /// declaration entirely.
    fn buffer_usage(&self) -> Option<crate::queue::BufferUse> {
        None
    }

    /// Executes one phase for one work item.
    fn run_phase(&self, phase: usize, ctx: &mut ItemCtx<'_>);

    /// Executes one phase for a lockstep wavefront batch of work items
    /// (see [`crate::ExecMode::Vectorized`]).
    ///
    /// The engine calls this instead of [`Kernel::run_phase`] when the
    /// device executes in vectorized mode. The default implementation runs
    /// each lane through `run_phase` one at a time — always correct, no
    /// faster. Kernels with a genuinely lane-batched path (the `kp-ir`
    /// bytecode VM) override it and dispatch each instruction once for the
    /// whole wave.
    fn run_phase_wave(&self, phase: usize, wave: &mut WaveCtx<'_>) {
        for lane in 0..wave.lanes() {
            wave.with_lane(lane, |ctx| self.run_phase(phase, ctx));
        }
    }
}

/// Forwarding impl so shared kernels (`Arc<K>`, `Arc<dyn Kernel + ..>`)
/// can be enqueued while the caller keeps a handle for post-run
/// inspection (e.g. `IrKernel::opt_stats`).
impl<K: Kernel + ?Sized> Kernel for std::sync::Arc<K> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn phases(&self) -> usize {
        (**self).phases()
    }

    fn local_buffers(&self) -> Vec<LocalSpec> {
        (**self).local_buffers()
    }

    fn buffer_usage(&self) -> Option<crate::queue::BufferUse> {
        (**self).buffer_usage()
    }

    fn run_phase(&self, phase: usize, ctx: &mut ItemCtx<'_>) {
        (**self).run_phase(phase, ctx);
    }

    fn run_phase_wave(&self, phase: usize, wave: &mut WaveCtx<'_>) {
        (**self).run_phase_wave(phase, wave);
    }
}

/// Per-launch access-control mask compiled from a kernel's declared
/// [`Kernel::buffer_usage`]: which buffer slots the launch may read and
/// write. Enforced on queued launches only — it is what lets the scheduler
/// prove that overlapping two launches cannot change their results.
#[derive(Debug, Clone)]
pub(crate) struct AccessMask {
    read_ok: Vec<bool>,
    write_ok: Vec<bool>,
}

impl AccessMask {
    /// Builds the mask over `nbufs` slots. Reads are allowed on the read
    /// *and* write sets (a declared output's pre-launch contents are
    /// hazard-ordered, so reading them back is deterministic); writes only
    /// on the write set.
    pub fn new(nbufs: usize, reads: &[usize], writes: &[usize]) -> Self {
        let mut read_ok = vec![false; nbufs];
        let mut write_ok = vec![false; nbufs];
        for &s in reads {
            if let Some(r) = read_ok.get_mut(s) {
                *r = true;
            }
        }
        for &s in writes {
            if let Some(w) = write_ok.get_mut(s) {
                *w = true;
            }
            if let Some(r) = read_ok.get_mut(s) {
                *r = true;
            }
        }
        Self { read_ok, write_ok }
    }

    fn allows(&self, slot: usize, dir: Dir) -> bool {
        let table = match dir {
            Dir::Read => &self.read_ok,
            Dir::Write => &self.write_ok,
        };
        table.get(slot).copied().unwrap_or(false)
    }
}

/// What went wrong inside a kernel. Faulting accesses return
/// `Default::default()` so execution can continue and collect more faults.
///
/// Marked `#[non_exhaustive]`: new fault categories may be added without a
/// breaking change. External code should match with a wildcard arm or key
/// on [`FaultKind::label`] instead of enumerating every variant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Access to a buffer handle this device never created (or released).
    UnknownBuffer {
        /// The offending handle.
        buffer: BufferId,
    },
    /// Element type of the access does not match the buffer.
    BufferKindMismatch {
        /// The offending handle.
        buffer: BufferId,
        /// Kind the kernel asked for.
        expected: ElemKind,
        /// Kind the buffer actually holds.
        actual: ElemKind,
    },
    /// Out-of-bounds global access.
    GlobalOutOfBounds {
        /// The offending handle.
        buffer: BufferId,
        /// Index the kernel accessed.
        index: usize,
        /// Length of the buffer.
        len: usize,
    },
    /// Access to an undeclared local array.
    UnknownLocal {
        /// The offending handle.
        local: LocalId,
    },
    /// Element type of the access does not match the local array.
    LocalKindMismatch {
        /// The offending handle.
        local: LocalId,
        /// Kind the kernel asked for.
        expected: ElemKind,
        /// Kind the array actually holds.
        actual: ElemKind,
    },
    /// Out-of-bounds local access.
    LocalOutOfBounds {
        /// The offending handle.
        local: LocalId,
        /// Index the kernel accessed.
        index: usize,
        /// Length of the array.
        len: usize,
    },
    /// A queued launch accessed a buffer outside its declared
    /// [`Kernel::buffer_usage`]. Raised instead of returning
    /// schedule-dependent data, so declared launches stay bit-identical to
    /// in-order execution no matter how the scheduler overlaps them.
    UndeclaredBuffer {
        /// The offending handle.
        buffer: BufferId,
        /// Whether the access was a write (`true`) or a read (`false`).
        write: bool,
    },
}

impl FaultKind {
    /// Stable short name of the fault category, for logs and counters.
    ///
    /// Downstream code that only needs to bucket faults should use this
    /// instead of matching the `#[non_exhaustive]` enum exhaustively.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::UnknownBuffer { .. } => "unknown-buffer",
            FaultKind::BufferKindMismatch { .. } => "buffer-kind-mismatch",
            FaultKind::GlobalOutOfBounds { .. } => "global-out-of-bounds",
            FaultKind::UnknownLocal { .. } => "unknown-local",
            FaultKind::LocalKindMismatch { .. } => "local-kind-mismatch",
            FaultKind::LocalOutOfBounds { .. } => "local-out-of-bounds",
            FaultKind::UndeclaredBuffer { .. } => "undeclared-buffer",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::UnknownBuffer { buffer } => write!(f, "unknown buffer {buffer}"),
            FaultKind::BufferKindMismatch {
                buffer,
                expected,
                actual,
            } => write!(
                f,
                "buffer {buffer} holds {actual} elements but was accessed as {expected}"
            ),
            FaultKind::GlobalOutOfBounds { buffer, index, len } => {
                write!(
                    f,
                    "global access to {buffer}[{index}] out of bounds (len {len})"
                )
            }
            FaultKind::UnknownLocal { local } => {
                write!(f, "unknown local array #{}", local.0)
            }
            FaultKind::LocalKindMismatch {
                local,
                expected,
                actual,
            } => write!(
                f,
                "local array #{} holds {actual} elements but was accessed as {expected}",
                local.0
            ),
            FaultKind::LocalOutOfBounds { local, index, len } => write!(
                f,
                "local access to #{}[{index}] out of bounds (len {len})",
                local.0
            ),
            FaultKind::UndeclaredBuffer { buffer, write } => write!(
                f,
                "{} of {buffer} outside the launch's declared buffer usage",
                if *write { "write" } else { "read" }
            ),
        }
    }
}

/// A fault with the coordinates of the offending work item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The fault category and parameters.
    pub kind: FaultKind,
    /// Work-group coordinate.
    pub group: [usize; 3],
    /// Local work-item coordinate within the group.
    pub local: [usize; 3],
    /// Phase in which the fault occurred.
    pub phase: usize,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (group {:?}, item {:?}, phase {})",
            self.kind, self.group, self.local, self.phase
        )
    }
}

/// Bounded log of kernel faults for one launch.
#[derive(Debug, Default)]
pub(crate) struct FaultLog {
    pub faults: Vec<Fault>,
    pub total: usize,
}

impl FaultLog {
    const LIMIT: usize = 16;

    pub fn push(&mut self, fault: Fault) {
        self.total += 1;
        if self.faults.len() < Self::LIMIT {
            self.faults.push(fault);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Folds another log into this one, preserving the storage cap. Called
    /// in row-major group order, this reproduces exactly the log a serial
    /// execution would have built.
    pub fn merge(&mut self, other: FaultLog) {
        self.total += other.total;
        for fault in other.faults {
            if self.faults.len() < Self::LIMIT {
                self.faults.push(fault);
            }
        }
    }
}

/// Engine-owned, type-erased per-worker scratch storage for stateful
/// kernels.
///
/// Kernels that carry per-item state across phases (the `kp-ir`
/// interpreter's register files and variable maps, for example) used to
/// keep that state behind a `Mutex` inside the kernel itself, which
/// serialized every work item of every worker on one lock. Instead, the
/// launch engine now owns one `KernelScratch` per worker thread, handed to
/// the kernel through [`ItemCtx::kernel_scratch`]: the kernel stores
/// whatever state type it needs with [`KernelScratch::get_or_default`] and
/// the engine guarantees the **sequential-group contract** — one worker
/// executes all items of all phases of a group before starting its next
/// group, and no two workers ever share a scratch — so access is lock-free
/// by construction.
///
/// The scratch persists across the groups (and launches) a worker
/// executes; kernels must re-initialize whatever is per-group at
/// `(phase 0, item)` time rather than assume a fresh value. Stateless
/// hand-written kernels simply never touch it.
#[derive(Default)]
pub struct KernelScratch(Option<Box<dyn Any + Send>>);

impl KernelScratch {
    /// Returns the stored `T`, creating it via `Default` if the scratch is
    /// empty or currently holds a different type (e.g. after the worker
    /// ran a different kernel).
    pub fn get_or_default<T: Any + Send + Default>(&mut self) -> &mut T {
        if !matches!(&self.0, Some(b) if b.is::<T>()) {
            self.0 = Some(Box::<T>::default());
        }
        self.0
            .as_mut()
            .and_then(|b| b.downcast_mut::<T>())
            .expect("slot was just ensured to hold a T")
    }
}

impl std::fmt::Debug for KernelScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("KernelScratch")
            .field(&self.0.as_ref().map(|_| "..."))
            .finish()
    }
}

/// Per-phase profiling accumulators (only allocated when profiling is on).
#[derive(Debug)]
pub(crate) struct PhaseProfile {
    pub coalesce: CoalesceTracker,
    pub banks: BankTracker,
    /// Per-wavefront maximum of per-lane op counts in the current phase.
    pub wf_max_ops: Vec<u64>,
    /// Elements shifted in from a neighbor group's tile this phase
    /// ([`ItemCtx::read_shifted`]); priced on the local/exchange pipeline
    /// instead of producing coalesce traffic.
    pub shifted_elements: u64,
}

impl PhaseProfile {
    pub fn new(waves_per_group: usize) -> Self {
        Self {
            coalesce: CoalesceTracker::new(),
            banks: BankTracker::new(),
            wf_max_ops: vec![0; waves_per_group],
            shifted_elements: 0,
        }
    }

    pub fn reset_phase(&mut self) {
        self.wf_max_ops.iter_mut().for_each(|v| *v = 0);
        self.shifted_elements = 0;
    }
}

/// Execution context handed to a kernel for one work item in one phase.
///
/// All accessors are infallible from the kernel's perspective: invalid
/// accesses are recorded as [`Fault`]s (surfaced as an error when the launch
/// finishes) and reads return `Default::default()`.
///
/// Global memory is a read-only snapshot plus the owning group's write
/// log: stores go to the log, loads consult the log first (so a group
/// always observes its own earlier writes) and fall back to the snapshot.
/// This is what makes work groups executable in parallel without changing
/// any result — see the crate-level "Execution model" documentation.
pub struct ItemCtx<'a> {
    pub(crate) range: &'a NdRange,
    pub(crate) cfg: &'a DeviceConfig,
    pub(crate) group: [usize; 3],
    pub(crate) local: [usize; 3],
    pub(crate) phase: usize,
    pub(crate) wavefront: u32,
    /// Memory coalescing granule id (quarter-wavefront on GCN-class
    /// configurations).
    pub(crate) granule: u32,
    pub(crate) bufs: &'a crate::engine::BufTable,
    /// Declared-usage mask of a queued launch, if any (see [`AccessMask`]).
    pub(crate) access: Option<&'a AccessMask>,
    pub(crate) writes: &'a mut WriteLog,
    pub(crate) arena: &'a mut LocalArena,
    pub(crate) profile: Option<&'a mut PhaseProfile>,
    pub(crate) faults: &'a mut FaultLog,
    pub(crate) scratch: &'a mut KernelScratch,
    pub(crate) local_seq: u32,
    pub(crate) global_seq: u32,
    pub(crate) item_ops: u64,
}

impl std::fmt::Debug for ItemCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ItemCtx")
            .field("group", &self.group)
            .field("local", &self.local)
            .field("phase", &self.phase)
            .field("wavefront", &self.wavefront)
            .finish_non_exhaustive()
    }
}

impl<'a> ItemCtx<'a> {
    /// Global work-item id in dimension `d` (OpenCL `get_global_id`).
    pub fn global_id(&self, d: usize) -> usize {
        self.group.get(d).copied().unwrap_or(0) * self.range.local_size(d)
            + self.local.get(d).copied().unwrap_or(0)
    }

    /// Local work-item id in dimension `d` (OpenCL `get_local_id`).
    pub fn local_id(&self, d: usize) -> usize {
        self.local.get(d).copied().unwrap_or(0)
    }

    /// Work-group id in dimension `d` (OpenCL `get_group_id`).
    pub fn group_id(&self, d: usize) -> usize {
        self.group.get(d).copied().unwrap_or(0)
    }

    /// Global size in dimension `d` (OpenCL `get_global_size`).
    pub fn global_size(&self, d: usize) -> usize {
        self.range.global_size(d)
    }

    /// Local (work-group) size in dimension `d` (OpenCL `get_local_size`).
    pub fn local_size(&self, d: usize) -> usize {
        self.range.local_size(d)
    }

    /// Number of work groups in dimension `d` (OpenCL `get_num_groups`).
    pub fn num_groups(&self, d: usize) -> usize {
        self.range.num_groups(d)
    }

    /// Flat index of this work item within its group (dimension 0 fastest).
    pub fn flat_local_id(&self) -> usize {
        self.range.flatten_local(self.local)
    }

    /// Total number of work items in the group.
    pub fn group_size(&self) -> usize {
        self.range.group_size_total()
    }

    /// The current phase index.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// The device's execution strategy for kernels that have both a
    /// compiled and an interpreted path (see [`crate::ExecMode`]). Kernels
    /// with a single implementation are free to ignore it.
    pub fn exec_mode(&self) -> crate::ExecMode {
        self.cfg.exec_mode
    }

    /// The device's bytecode optimization level for kernels that carry
    /// both an optimized and an as-lowered compiled form (see
    /// [`crate::OptLevel`]). Kernels without an optimizer are free to
    /// ignore it.
    pub fn opt_level(&self) -> crate::OptLevel {
        self.cfg.opt_level
    }

    /// The engine-owned per-worker scratch store (see [`KernelScratch`]).
    ///
    /// The returned storage is private to the worker executing this item
    /// and persists across the items, phases, groups and launches that
    /// worker runs — reset whatever is per-group at `(phase 0, item)`
    /// time.
    pub fn kernel_scratch(&mut self) -> &mut KernelScratch {
        self.scratch
    }

    fn fault(&mut self, kind: FaultKind) {
        self.faults.push(Fault {
            kind,
            group: self.group,
            local: self.local,
            phase: self.phase,
        });
    }

    /// Reads one element from a global buffer.
    ///
    /// Faults (recorded, returns default): unknown buffer, element-kind
    /// mismatch, out-of-bounds index.
    pub fn read_global<T: Scalar>(&mut self, buffer: BufferId, index: usize) -> T {
        match self.global_access(buffer, index, T::KIND, Dir::Read, false) {
            Some(slot) => T::from_bits64(slot),
            None => T::default(),
        }
    }

    /// Reads one element from a global buffer as a **systolic shift** from
    /// a neighboring work group's resident tile.
    ///
    /// The returned value is exactly what [`ItemCtx::read_global`] would
    /// return (same snapshot-plus-write-log semantics, same fault rules) —
    /// the neighbor's tile holds the same global data, so shifting is
    /// bit-identical to re-fetching by construction. Only the accounting
    /// differs: the access contributes **no** global-memory transactions
    /// and is instead counted as one shifted element, priced at
    /// [`DeviceConfig::shift_issue_cycles`] on the local/exchange pipeline.
    ///
    /// Callers are responsible for only shifting elements a neighboring
    /// group actually holds (the perforation schemes guarantee this by
    /// keying load decisions on global coordinates).
    pub fn read_shifted<T: Scalar>(&mut self, buffer: BufferId, index: usize) -> T {
        match self.global_access(buffer, index, T::KIND, Dir::Read, true) {
            Some(slot) => T::from_bits64(slot),
            None => T::default(),
        }
    }

    /// Writes one element to a global buffer. Faults as
    /// [`ItemCtx::read_global`].
    pub fn write_global<T: Scalar>(&mut self, buffer: BufferId, index: usize, value: T) {
        let bits = value.to_bits64();
        if let Some(slot) = self.check_global(buffer, index, T::KIND, Dir::Write, false) {
            self.writes.record(slot, index, bits);
        }
    }

    fn global_access(
        &mut self,
        buffer: BufferId,
        index: usize,
        kind: ElemKind,
        dir: Dir,
        shifted: bool,
    ) -> Option<u64> {
        let slot = self.check_global(buffer, index, kind, dir, shifted)?;
        // The group's own stores shadow the launch-entry snapshot.
        Some(match self.writes.lookup(slot, index) {
            Some(bits) => bits,
            None => self.bufs[slot].as_ref().expect("checked").data[index],
        })
    }

    /// Validates the access, records it for profiling (as coalesce traffic,
    /// or as one shifted element when `shifted`), and returns the buffer
    /// slot index if valid.
    fn check_global(
        &mut self,
        buffer: BufferId,
        index: usize,
        kind: ElemKind,
        dir: Dir,
        shifted: bool,
    ) -> Option<usize> {
        let slot = buffer.index();
        if let Some(mask) = self.access {
            if !mask.allows(slot, dir) {
                self.fault(FaultKind::UndeclaredBuffer {
                    buffer,
                    write: matches!(dir, Dir::Write),
                });
                return None;
            }
        }
        let raw = match self.bufs.get(slot).and_then(Option::as_ref) {
            Some(raw) => raw,
            None => {
                self.fault(FaultKind::UnknownBuffer { buffer });
                return None;
            }
        };
        if raw.kind != kind {
            let actual = raw.kind;
            self.fault(FaultKind::BufferKindMismatch {
                buffer,
                expected: kind,
                actual,
            });
            return None;
        }
        if index >= raw.len() {
            let len = raw.len();
            self.fault(FaultKind::GlobalOutOfBounds { buffer, index, len });
            return None;
        }
        if shifted {
            // A neighbor-tile shift: no coalesce traffic, no instruction
            // slot on the global pipeline — one element on the exchange
            // pipeline.
            if let Some(p) = self.profile.as_deref_mut() {
                p.shifted_elements += 1;
            }
            return Some(slot);
        }
        let addr = raw.elem_addr(index);
        let bytes = raw.kind.bytes() as u32;
        let (granule, txn) = (self.granule, self.cfg.transaction_bytes as u64);
        let seq = self.global_seq;
        self.global_seq += 1;
        if let Some(p) = self.profile.as_deref_mut() {
            p.coalesce.record(granule, seq, dir, addr, bytes, txn);
        }
        Some(slot)
    }

    /// Reads one element from a local array.
    ///
    /// Faults (recorded, returns default): undeclared array, element-kind
    /// mismatch, out-of-bounds index.
    pub fn read_local<T: Scalar>(&mut self, local: LocalId, index: usize) -> T {
        if !self.check_local(local, index, T::KIND) {
            return T::default();
        }
        self.record_local(local, index);
        T::from_bits64(self.arena.read(local, index).expect("checked"))
    }

    /// Writes one element to a local array. Faults as
    /// [`ItemCtx::read_local`].
    pub fn write_local<T: Scalar>(&mut self, local: LocalId, index: usize, value: T) {
        if !self.check_local(local, index, T::KIND) {
            return;
        }
        self.record_local(local, index);
        self.arena
            .write(local, index, value.to_bits64())
            .expect("checked");
    }

    fn check_local(&mut self, local: LocalId, index: usize, kind: ElemKind) -> bool {
        let spec = match self.arena.spec(local) {
            Some(spec) => spec,
            None => {
                self.fault(FaultKind::UnknownLocal { local });
                return false;
            }
        };
        if spec.kind != kind {
            self.fault(FaultKind::LocalKindMismatch {
                local,
                expected: kind,
                actual: spec.kind,
            });
            return false;
        }
        if index >= spec.len {
            self.fault(FaultKind::LocalOutOfBounds {
                local,
                index,
                len: spec.len,
            });
            return false;
        }
        true
    }

    fn record_local(&mut self, local: LocalId, index: usize) {
        let word = self.arena.word_addr(local, index);
        let seq = self.local_seq;
        self.local_seq += 1;
        let (wf, banks) = (self.wavefront, self.cfg.local_banks as u64);
        if let Some(p) = self.profile.as_deref_mut() {
            p.banks.record(wf, seq, word, banks);
        }
    }

    /// Reports `n` ALU operations executed by this work item. The timing
    /// model charges each wavefront the maximum op count among its lanes
    /// (SIMD lockstep), so divergent lanes slow their whole wavefront.
    pub fn ops(&mut self, n: u64) {
        self.item_ops += n;
    }
}

/// Per-lane state of a [`WaveCtx`]: the slice of an [`ItemCtx`] that is
/// private to one work item of a wavefront batch.
#[derive(Debug, Default)]
pub(crate) struct LaneSlot {
    /// Local work-item coordinate of this lane.
    pub local: [usize; 3],
    /// Hardware wavefront id (timing model), not the batch id.
    pub wavefront: u32,
    /// Memory coalescing granule id.
    pub granule: u32,
    pub local_seq: u32,
    pub global_seq: u32,
    pub item_ops: u64,
    /// Per-lane fault buffer; the engine merges these into the group log
    /// in lane order at the end of each wave's phase, reproducing exactly
    /// the item order a scalar execution records.
    pub faults: FaultLog,
}

/// Execution context handed to a kernel for one lockstep wavefront batch of
/// work items in one phase (see [`crate::ExecMode::Vectorized`]).
///
/// A wave bundles the state shared by its lanes (group coordinates, buffer
/// table, write log, local arena, profiling accumulators) plus one
/// `LaneSlot` per lane holding what is private to a work item: local
/// coordinates, profiling sequence counters, op charges and a fault
/// buffer. Kernels without a lane-batched path use [`WaveCtx::with_lane`]
/// to materialize a full per-item [`ItemCtx`] for one lane at a time;
/// vectorized kernels dispatch each instruction once for the whole wave
/// and drop down to `with_lane` only for memory traffic and builtins.
pub struct WaveCtx<'a> {
    pub(crate) range: &'a NdRange,
    pub(crate) cfg: &'a DeviceConfig,
    pub(crate) group: [usize; 3],
    pub(crate) phase: usize,
    pub(crate) bufs: &'a crate::engine::BufTable,
    pub(crate) access: Option<&'a AccessMask>,
    pub(crate) writes: &'a mut WriteLog,
    pub(crate) arena: &'a mut LocalArena,
    pub(crate) profile: Option<&'a mut PhaseProfile>,
    pub(crate) scratch: &'a mut KernelScratch,
    pub(crate) slots: &'a mut [LaneSlot],
    /// Flat local id of lane 0; lane `j` is flat item `base_flat + j`.
    pub(crate) base_flat: usize,
}

impl std::fmt::Debug for WaveCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaveCtx")
            .field("group", &self.group)
            .field("phase", &self.phase)
            .field("base_flat", &self.base_flat)
            .field("lanes", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl<'a> WaveCtx<'a> {
    /// Number of lanes in this wave. The last wave of a group may be a
    /// shorter *tail* wave when the group size is not a multiple of the
    /// configured lane count.
    pub fn lanes(&self) -> usize {
        self.slots.len()
    }

    /// The current phase index.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Flat local id (within the group) of lane 0; lane `j` of this wave
    /// is the work item with flat local id `first_flat_id() + j`.
    pub fn first_flat_id(&self) -> usize {
        self.base_flat
    }

    /// Work-group id in dimension `d` (OpenCL `get_group_id`).
    pub fn group_id(&self, d: usize) -> usize {
        self.group.get(d).copied().unwrap_or(0)
    }

    /// Total number of work items in the group.
    pub fn group_size(&self) -> usize {
        self.range.group_size_total()
    }

    /// The device's execution strategy (see [`crate::ExecMode`]).
    pub fn exec_mode(&self) -> crate::ExecMode {
        self.cfg.exec_mode
    }

    /// The device's bytecode optimization level (see [`crate::OptLevel`]).
    pub fn opt_level(&self) -> crate::OptLevel {
        self.cfg.opt_level
    }

    /// The engine-owned per-worker scratch store (see [`KernelScratch`]).
    /// Shared by all lanes — one wave is always executed by one worker.
    pub fn kernel_scratch(&mut self) -> &mut KernelScratch {
        self.scratch
    }

    /// Charges `n` ALU operations to one lane without materializing an
    /// [`ItemCtx`] (equivalent to [`ItemCtx::ops`] on that lane).
    pub fn lane_ops(&mut self, lane: usize, n: u64) {
        self.slots[lane].item_ops += n;
    }

    /// Runs `f` with a full per-item [`ItemCtx`] for one lane, then folds
    /// the context's counters back into the lane's slot. This is how
    /// non-lockstep work (memory accesses, builtins, whole scalar
    /// fallbacks) executes inside a wave: the materialized context is
    /// indistinguishable from the one a scalar execution would have built
    /// for the same item at the same point.
    pub fn with_lane<R>(&mut self, lane: usize, f: impl FnOnce(&mut ItemCtx<'_>) -> R) -> R {
        let slot = &mut self.slots[lane];
        let mut ctx = ItemCtx {
            range: self.range,
            cfg: self.cfg,
            group: self.group,
            local: slot.local,
            phase: self.phase,
            wavefront: slot.wavefront,
            granule: slot.granule,
            bufs: self.bufs,
            access: self.access,
            writes: &mut *self.writes,
            arena: &mut *self.arena,
            profile: self.profile.as_deref_mut(),
            faults: &mut slot.faults,
            scratch: &mut *self.scratch,
            local_seq: slot.local_seq,
            global_seq: slot.global_seq,
            item_ops: slot.item_ops,
        };
        let out = f(&mut ctx);
        let (local_seq, global_seq, item_ops) = (ctx.local_seq, ctx.global_seq, ctx.item_ops);
        slot.local_seq = local_seq;
        slot.global_seq = global_seq;
        slot.item_ops = item_ops;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_log_caps_stored_faults() {
        let mut log = FaultLog::default();
        for i in 0..100 {
            log.push(Fault {
                kind: FaultKind::GlobalOutOfBounds {
                    buffer: BufferId(0),
                    index: i,
                    len: 1,
                },
                group: [0; 3],
                local: [0; 3],
                phase: 0,
            });
        }
        assert_eq!(log.total, 100);
        assert_eq!(log.faults.len(), 16);
        assert!(!log.is_empty());
    }

    #[test]
    fn kernel_scratch_roundtrips_and_resets_on_type_change() {
        let mut scratch = KernelScratch::default();
        *scratch.get_or_default::<u32>() = 7;
        assert_eq!(*scratch.get_or_default::<u32>(), 7);
        // Asking for a different type replaces the stored value…
        assert_eq!(*scratch.get_or_default::<String>(), String::new());
        // …and the original type starts over from Default.
        assert_eq!(*scratch.get_or_default::<u32>(), 0);
        assert!(!format!("{scratch:?}").is_empty());
    }

    #[test]
    fn fault_display_is_informative() {
        let f = Fault {
            kind: FaultKind::GlobalOutOfBounds {
                buffer: BufferId(2),
                index: 9,
                len: 4,
            },
            group: [1, 0, 0],
            local: [3, 0, 0],
            phase: 1,
        };
        let s = f.to_string();
        assert!(s.contains("buf#2"), "{s}");
        assert!(s.contains("out of bounds"), "{s}");
        assert!(s.contains("phase 1"), "{s}");
    }

    #[test]
    fn fault_kind_display_variants() {
        let cases: Vec<FaultKind> = vec![
            FaultKind::UnknownBuffer {
                buffer: BufferId(0),
            },
            FaultKind::BufferKindMismatch {
                buffer: BufferId(0),
                expected: ElemKind::F32,
                actual: ElemKind::I32,
            },
            FaultKind::UnknownLocal { local: LocalId(3) },
            FaultKind::LocalKindMismatch {
                local: LocalId(1),
                expected: ElemKind::I32,
                actual: ElemKind::F32,
            },
            FaultKind::LocalOutOfBounds {
                local: LocalId(0),
                index: 8,
                len: 8,
            },
            FaultKind::UndeclaredBuffer {
                buffer: BufferId(1),
                write: true,
            },
        ];
        for kind in cases {
            assert!(!kind.to_string().is_empty());
        }
    }
}
