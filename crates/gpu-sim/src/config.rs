//! Device configuration: the architectural parameters of the simulated GPU.
//!
//! The timing model in [`crate::timing`] is analytic: it converts memory
//! transaction counts, local-memory traffic and ALU operation counts into
//! cycles using the parameters defined here. The default preset,
//! [`DeviceConfig::firepro_w5100`], approximates the AMD FirePro W5100
//! (GCN 1.1, 4 CUs… the real card has 12 CUs @ 930 MHz; we keep the
//! parameters in that family) used in the paper's evaluation.

use serde::{Deserialize, Serialize};

/// How interpreter-backed kernels execute their phases.
///
/// The simulator itself runs any [`crate::Kernel`] implementation; this
/// knob is advisory state for kernels that *have* more than one execution
/// strategy (notably `kp-ir`'s `IrKernel`, which compiles its AST to a
/// register bytecode at construction and keeps the tree-walking evaluator
/// as a differential reference). Hand-written Rust kernels ignore it.
///
/// All modes are required to produce bit-identical outputs, statistics
/// and fault logs; `Interpreted` exists for differential testing and as
/// the known-good reference when debugging the compiler, and `Vectorized`
/// batches work-items through each bytecode instruction in lockstep
/// wavefronts (the CPU analogue of SIMT execution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// Execute compiled register bytecode, one work item at a time (the
    /// scalar VM default).
    #[default]
    Compiled,
    /// Re-walk the AST for every statement (slow reference path).
    Interpreted,
    /// Execute compiled register bytecode for `lanes` work items of a
    /// group in lockstep per instruction, with a structure-of-arrays
    /// register file shared across the lanes. `lanes: 0` resolves
    /// automatically (the `KP_SIM_LANES` environment variable, else a
    /// built-in default — see `resolve_lanes`). Bit-identical to the
    /// other modes for race-free kernels (same-phase cross-item memory
    /// races are undefined under the OpenCL barrier contract to begin
    /// with).
    Vectorized {
        /// Work items per wavefront batch; `0` = auto.
        lanes: usize,
    },
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Compiled => write!(f, "compiled"),
            ExecMode::Interpreted => write!(f, "interpreted"),
            ExecMode::Vectorized { lanes: 0 } => write!(f, "vectorized"),
            ExecMode::Vectorized { lanes } => write!(f, "vectorized({lanes})"),
        }
    }
}

/// How aggressively compiled bytecode is optimized before execution.
///
/// Like [`ExecMode`], this is advisory state for kernels that carry more
/// than one compiled form (notably `kp-ir`'s `IrKernel`, which lowers its
/// AST to naive bytecode and then runs an optimization pass pipeline over
/// it). All levels are required to produce bit-identical outputs,
/// statistics and fault logs — the optimizer may only remove *host-side*
/// work, never change what the simulated GPU observably does. `None`
/// exists for differential testing and as the known-good reference when
/// debugging the optimizer, mirroring how [`ExecMode::Interpreted`]
/// anchors the VM and `Device::launch_serial` anchors the parallel engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// Execute the bytecode exactly as lowered (reference).
    None,
    /// Run the full pass pipeline: constant folding, algebraic
    /// simplification, common-subexpression elimination, dead-code and
    /// dead-phase elimination, ALU-charge coalescing (the fast default).
    #[default]
    Full,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::None => write!(f, "O0"),
            OptLevel::Full => write!(f, "O2"),
        }
    }
}

/// Architectural parameters of a simulated GPU device.
///
/// All latency/throughput values are in clock cycles. The model only cares
/// about *ratios* (global vs. local vs. ALU), so the absolute values do not
/// need to match any datasheet exactly; they are chosen so that the
/// memory-bound/compute-bound crossover matches GCN-class hardware.
///
/// # Examples
///
/// ```
/// use kp_gpu_sim::DeviceConfig;
///
/// let cfg = DeviceConfig::firepro_w5100();
/// assert_eq!(cfg.wavefront_size, 64);
/// assert!(cfg.local_mem_bytes >= 32 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name (reported in launch reports).
    pub name: String,
    /// Number of compute units (CUs). Work groups are distributed across CUs.
    pub compute_units: usize,
    /// SIMD execution width: threads per wavefront (AMD) / warp (NVIDIA).
    pub wavefront_size: usize,
    /// Maximum number of work items in one work group.
    pub max_work_group_size: usize,
    /// Local (shared) memory available per work group, in bytes.
    pub local_mem_bytes: usize,
    /// Total global memory, in bytes. Buffer allocation fails beyond this.
    pub global_mem_bytes: usize,
    /// Global memory transaction granularity in bytes (cache-line sized
    /// coalescing window; 64 B on GCN).
    pub transaction_bytes: usize,
    /// Issue cost of one DRAM transaction (per-group unique block), in
    /// cycles. This is the off-chip bandwidth term.
    pub global_issue_cycles: u64,
    /// Issue cost of a DRAM transaction that *continues* a contiguous
    /// same-direction run of blocks (an open-row burst), in cycles. Run
    /// heads always pay [`Self::global_issue_cycles`]. Must not exceed
    /// `global_issue_cycles`; both presets default it **equal**, making
    /// burst pricing neutral until a config opts into a discount (e.g. via
    /// [`Self::with_burst_discount`]) — this is the charge-model half of
    /// the burst-friendly prefetch layouts.
    pub burst_issue_cycles: u64,
    /// Issue cost of one L1 transaction (per-granule unique block), in
    /// cycles. Models cache-port bandwidth: re-reads served by the cache
    /// still occupy the pipeline.
    pub l1_issue_cycles: u64,
    /// Relative cost of a write transaction vs. a read (writes are
    /// fire-and-forget on GPUs: no lane waits for them, only bandwidth is
    /// consumed, so they are cheaper than reads).
    pub global_write_cost_factor: f64,
    /// Lanes per memory-coalescing granule. GCN issues memory requests per
    /// 16-lane quarter-wavefront, so lanes of different quarters never
    /// share a transaction even within one wavefront.
    pub coalesce_width: usize,
    /// Raw global-memory latency in cycles (mostly hidden by multithreading;
    /// only the `(1 - latency_hiding)` fraction is charged per phase).
    pub global_latency_cycles: u64,
    /// Fraction of the global latency hidden by wavefront interleaving,
    /// in `[0, 1]`.
    pub latency_hiding: f64,
    /// Cost of one local-memory access step per wavefront, in cycles.
    pub local_issue_cycles: u64,
    /// Cost of shifting one halo element in from a neighboring work
    /// group's resident tile (the software-systolic prefetch layout), in
    /// cycles per element on the local/exchange pipeline. Shifted elements
    /// pay this instead of contributing global-memory transactions.
    pub shift_issue_cycles: u64,
    /// Number of local memory banks (bank conflicts serialize accesses).
    pub local_banks: usize,
    /// Cycles per ALU op per wavefront (GCN executes a 64-lane wavefront on
    /// a 16-lane SIMD over 4 cycles, hence the default of 4).
    pub alu_cycles_per_op: u64,
    /// Fixed cost of a work-group barrier, in cycles.
    pub barrier_cycles: u64,
    /// Fixed per-work-group scheduling overhead, in cycles.
    pub group_dispatch_cycles: u64,
    /// Maximum wavefronts resident per CU (occupancy cap).
    pub max_waves_per_cu: usize,
    /// Maximum work groups resident per CU (occupancy cap).
    pub max_groups_per_cu: usize,
    /// Core clock in MHz, used to convert cycles to seconds.
    pub clock_mhz: f64,
    /// Host threads used to execute simulated work: `0` = one per
    /// available core, `1` = single-threaded, `n` = exactly `n` workers.
    /// This single budget sizes both the in-launch sharding of the
    /// parallel launch engine and the device's **persistent command-queue
    /// worker pool** (spawned lazily on first enqueue; enqueued commands
    /// start eagerly on it, before any wait). For kernels whose groups
    /// are independent within one launch (the OpenCL contract),
    /// functional results and reports are identical for every value (see
    /// the crate-level "Execution model" docs).
    pub parallelism: usize,
    /// Member-device count a [`crate::DeviceGroup`] built from this
    /// configuration owns: `0` = auto (the `KP_SIM_DEVICES` environment
    /// variable, else 1 — see [`crate::resolve_devices`]), `n` = exactly
    /// `n` devices. A plain [`crate::Device`] ignores the knob; host
    /// harnesses that route work through groups (the `kp-core` tuner)
    /// consult it so one `DeviceConfig` describes the whole fleet.
    pub devices: usize,
    /// Execution strategy for kernels that carry both a bytecode compiler
    /// and a reference interpreter (see [`ExecMode`]). Both strategies are
    /// bit-identical by contract; this selects speed vs. reference.
    pub exec_mode: ExecMode,
    /// Bytecode optimization level for kernels that carry both an
    /// optimized and an as-lowered compiled form (see [`OptLevel`]). All
    /// levels are bit-identical by contract; this selects speed vs.
    /// reference. Ignored when `exec_mode` is [`ExecMode::Interpreted`].
    pub opt_level: OptLevel,
}

impl DeviceConfig {
    /// Preset approximating the AMD FirePro W5100 used in the paper.
    ///
    /// GCN 1.1 ("Bonaire"): 12 CUs, 64-wide wavefronts, 32 KiB LDS per
    /// work group, 64 B memory transactions, 930 MHz.
    pub fn firepro_w5100() -> Self {
        Self {
            name: "AMD FirePro W5100 (simulated)".to_owned(),
            compute_units: 12,
            wavefront_size: 64,
            max_work_group_size: 256,
            local_mem_bytes: 32 * 1024,
            global_mem_bytes: 3_500_000_000,
            transaction_bytes: 64,
            global_issue_cycles: 48,
            burst_issue_cycles: 48,
            l1_issue_cycles: 8,
            global_write_cost_factor: 0.35,
            coalesce_width: 16,
            global_latency_cycles: 400,
            latency_hiding: 0.95,
            local_issue_cycles: 1,
            shift_issue_cycles: 1,
            local_banks: 32,
            alu_cycles_per_op: 2,
            barrier_cycles: 8,
            group_dispatch_cycles: 32,
            max_waves_per_cu: 40,
            max_groups_per_cu: 16,
            clock_mhz: 930.0,
            parallelism: 0,
            devices: 0,
            exec_mode: ExecMode::Compiled,
            opt_level: OptLevel::Full,
        }
    }

    /// A tiny configuration for unit tests: 1 CU, 4-wide wavefronts,
    /// 256 B transactions disabled down to 16 B so that small test grids
    /// produce interesting transaction counts.
    pub fn test_tiny() -> Self {
        Self {
            name: "test-tiny".to_owned(),
            compute_units: 1,
            wavefront_size: 4,
            max_work_group_size: 64,
            local_mem_bytes: 4 * 1024,
            global_mem_bytes: 64 * 1024 * 1024,
            transaction_bytes: 16,
            global_issue_cycles: 32,
            burst_issue_cycles: 32,
            l1_issue_cycles: 0,
            global_write_cost_factor: 1.0,
            coalesce_width: 4,
            global_latency_cycles: 400,
            latency_hiding: 0.95,
            local_issue_cycles: 2,
            shift_issue_cycles: 2,
            local_banks: 8,
            alu_cycles_per_op: 4,
            barrier_cycles: 16,
            group_dispatch_cycles: 64,
            max_waves_per_cu: 40,
            max_groups_per_cu: 16,
            clock_mhz: 1000.0,
            parallelism: 1,
            devices: 0,
            exec_mode: ExecMode::Compiled,
            opt_level: OptLevel::Full,
        }
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (zero-sized wavefronts, non-power-of-two transaction
    /// size, hiding factor outside `[0, 1]`, …).
    pub fn validate(&self) -> Result<(), String> {
        if self.compute_units == 0 {
            return Err("compute_units must be > 0".into());
        }
        if self.wavefront_size == 0 {
            return Err("wavefront_size must be > 0".into());
        }
        if self.max_work_group_size == 0 {
            return Err("max_work_group_size must be > 0".into());
        }
        if self.transaction_bytes == 0 || !self.transaction_bytes.is_power_of_two() {
            return Err(format!(
                "transaction_bytes must be a power of two, got {}",
                self.transaction_bytes
            ));
        }
        if !(0.0..=1.0).contains(&self.latency_hiding) {
            return Err(format!(
                "latency_hiding must be in [0, 1], got {}",
                self.latency_hiding
            ));
        }
        if self.local_banks == 0 {
            return Err("local_banks must be > 0".into());
        }
        if self.coalesce_width == 0 {
            return Err("coalesce_width must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.global_write_cost_factor) {
            return Err(format!(
                "global_write_cost_factor must be in [0, 1], got {}",
                self.global_write_cost_factor
            ));
        }
        if self.clock_mhz <= 0.0 {
            return Err(format!("clock_mhz must be > 0, got {}", self.clock_mhz));
        }
        if self.burst_issue_cycles > self.global_issue_cycles {
            return Err(format!(
                "burst_issue_cycles ({}) must not exceed global_issue_cycles ({}): \
                 a burst continuation can never cost more than a run head",
                self.burst_issue_cycles, self.global_issue_cycles
            ));
        }
        Ok(())
    }

    /// Returns this configuration with DRAM burst continuations priced at
    /// `burst_issue_cycles` instead of the full per-transaction cost —
    /// modeling a memory controller that streams contiguous blocks from an
    /// open row. Strided access patterns are unaffected (all run heads);
    /// contiguous layouts get cheaper.
    #[must_use]
    pub fn with_burst_discount(mut self, burst_issue_cycles: u64) -> Self {
        self.burst_issue_cycles = burst_issue_cycles;
        self
    }

    /// Converts a cycle count into seconds at this device's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1.0e6)
    }

    /// A stable 64-bit fingerprint of every parameter that can change a
    /// *simulated* number (transaction counts, cycles, seconds, errors).
    ///
    /// Persistent tuning caches key their entries by this value: an entry
    /// recorded on one device model must never be served for another.
    /// Parameters that are bit-identical by contract are deliberately
    /// **excluded**, so one cache entry serves every host configuration:
    ///
    /// * `name` — display only;
    /// * `parallelism` and `devices` — host-side execution budgets
    ///   (results are identical at any worker/member count);
    /// * `exec_mode` and `opt_level` — execution strategies for IR
    ///   kernels, bit-identical by contract (differentially tested).
    ///
    /// Floats are hashed by bit pattern, so any representable change to
    /// e.g. `latency_hiding` changes the fingerprint.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical, versioned rendering of the timing
        // parameters. Bump the leading tag when the timing model itself
        // changes meaning (it invalidates every cache).
        let canon = format!(
            "kp-device-v1|cu={}|wf={}|wg={}|lmem={}|gmem={}|tx={}|gic={}|l1c={}|wcf={:016x}\
             |cw={}|glat={}|lh={:016x}|lic={}|banks={}|alu={}|bar={}|disp={}|waves={}|groups={}\
             |clk={:016x}|bic={}|sic={}",
            self.compute_units,
            self.wavefront_size,
            self.max_work_group_size,
            self.local_mem_bytes,
            self.global_mem_bytes,
            self.transaction_bytes,
            self.global_issue_cycles,
            self.l1_issue_cycles,
            self.global_write_cost_factor.to_bits(),
            self.coalesce_width,
            self.global_latency_cycles,
            self.latency_hiding.to_bits(),
            self.local_issue_cycles,
            self.local_banks,
            self.alu_cycles_per_op,
            self.barrier_cycles,
            self.group_dispatch_cycles,
            self.max_waves_per_cu,
            self.max_groups_per_cu,
            self.clock_mhz.to_bits(),
            self.burst_issue_cycles,
            self.shift_issue_cycles,
        );
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in canon.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::firepro_w5100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w5100_preset_is_valid() {
        DeviceConfig::firepro_w5100().validate().unwrap();
    }

    #[test]
    fn test_tiny_preset_is_valid() {
        DeviceConfig::test_tiny().validate().unwrap();
    }

    #[test]
    fn default_is_w5100() {
        assert_eq!(DeviceConfig::default(), DeviceConfig::firepro_w5100());
    }

    #[test]
    fn rejects_zero_compute_units() {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.compute_units = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_non_power_of_two_transactions() {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.transaction_bytes = 48;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_out_of_range_hiding() {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.latency_hiding = 1.5;
        assert!(cfg.validate().is_err());
        cfg.latency_hiding = -0.1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn exec_mode_defaults_to_compiled() {
        assert_eq!(ExecMode::default(), ExecMode::Compiled);
        assert_eq!(DeviceConfig::firepro_w5100().exec_mode, ExecMode::Compiled);
        assert_eq!(DeviceConfig::test_tiny().exec_mode, ExecMode::Compiled);
        assert_eq!(ExecMode::Compiled.to_string(), "compiled");
        assert_eq!(ExecMode::Interpreted.to_string(), "interpreted");
        // `lanes: 0` means auto-resolve at launch time.
        assert_eq!(ExecMode::Vectorized { lanes: 0 }.to_string(), "vectorized");
        assert_eq!(
            ExecMode::Vectorized { lanes: 4 }.to_string(),
            "vectorized(4)"
        );
    }

    #[test]
    fn opt_level_defaults_to_full() {
        assert_eq!(OptLevel::default(), OptLevel::Full);
        assert_eq!(DeviceConfig::firepro_w5100().opt_level, OptLevel::Full);
        assert_eq!(DeviceConfig::test_tiny().opt_level, OptLevel::Full);
        assert_eq!(OptLevel::None.to_string(), "O0");
        assert_eq!(OptLevel::Full.to_string(), "O2");
    }

    #[test]
    fn fingerprint_ignores_host_side_knobs() {
        let base = DeviceConfig::firepro_w5100();
        let fp = base.fingerprint();
        let mut cfg = base.clone();
        cfg.name = "renamed".into();
        cfg.parallelism = 7;
        cfg.devices = 3;
        cfg.exec_mode = ExecMode::Interpreted;
        cfg.opt_level = OptLevel::None;
        assert_eq!(
            cfg.fingerprint(),
            fp,
            "bit-identical knobs must not fragment the cache"
        );
    }

    #[test]
    fn fingerprint_tracks_timing_parameters() {
        let base = DeviceConfig::firepro_w5100();
        let fp = base.fingerprint();
        let mut cfg = base.clone();
        cfg.global_issue_cycles += 1;
        assert_ne!(cfg.fingerprint(), fp);
        let mut cfg = base.clone();
        cfg.latency_hiding += 1e-9;
        assert_ne!(cfg.fingerprint(), fp, "float params hash by bit pattern");
        let mut cfg = base.clone();
        cfg.clock_mhz *= 2.0;
        assert_ne!(cfg.fingerprint(), fp);
        let cfg = base
            .clone()
            .with_burst_discount(base.burst_issue_cycles / 2);
        assert_ne!(cfg.fingerprint(), fp, "burst pricing is a timing parameter");
        let mut cfg = base.clone();
        cfg.shift_issue_cycles += 1;
        assert_ne!(cfg.fingerprint(), fp, "shift pricing is a timing parameter");
        assert_ne!(
            DeviceConfig::firepro_w5100().fingerprint(),
            DeviceConfig::test_tiny().fingerprint()
        );
    }

    #[test]
    fn rejects_burst_cost_above_full_cost() {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.burst_issue_cycles = cfg.global_issue_cycles + 1;
        assert!(cfg.validate().is_err());
        cfg.burst_issue_cycles = cfg.global_issue_cycles;
        assert!(cfg.validate().is_ok());
        assert!(cfg.with_burst_discount(0).validate().is_ok());
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let cfg = DeviceConfig::test_tiny();
        assert_eq!(cfg.fingerprint(), cfg.fingerprint());
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.clock_mhz = 1000.0; // 1 GHz -> 1 cycle == 1 ns
        let s = cfg.cycles_to_seconds(1_000_000_000);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
