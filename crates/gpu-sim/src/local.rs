//! Local (shared) memory: per-work-group scratchpad with bank accounting.
//!
//! Local memory is the centerpiece of the paper: the perforation pipeline
//! loads a sparse subset of the input tile into local memory, reconstructs
//! the missing elements there, and then runs the kernel body against the
//! reconstructed tile. Local memory is modeled as a banked scratchpad:
//! within one access step of a wavefront, lanes hitting different words in
//! the *same* bank serialize, while lanes reading the same word broadcast.

use crate::buffer::ElemKind;

/// Declaration of one local-memory array required by a kernel.
///
/// The simulator allocates one instance per work group (conceptually; the
/// arena is reused across groups since groups execute sequentially).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSpec {
    /// Element type of the array.
    pub kind: ElemKind,
    /// Number of elements.
    pub len: usize,
}

impl LocalSpec {
    /// Creates a spec for `len` elements of kind `kind`.
    pub fn new(kind: ElemKind, len: usize) -> Self {
        Self { kind, len }
    }

    /// Size of the array in bytes.
    pub fn bytes(&self) -> usize {
        self.len * self.kind.bytes()
    }
}

/// Handle to a local array declared by the running kernel.
///
/// The handle is the positional index of the array in
/// [`crate::Kernel::local_buffers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub usize);

/// Backing storage for the local arrays of the currently executing group.
#[derive(Debug)]
pub(crate) struct LocalArena {
    specs: Vec<LocalSpec>,
    data: Vec<Vec<u64>>,
    written: Vec<Vec<bool>>,
    /// Word offset of each array in the flat banked address space, in
    /// 4-byte words (banking granularity).
    word_base: Vec<u64>,
    pub uninit_reads: u64,
}

impl LocalArena {
    pub fn new(specs: &[LocalSpec]) -> Self {
        let mut word_base = Vec::with_capacity(specs.len());
        let mut base = 0u64;
        for s in specs {
            word_base.push(base);
            base += s.bytes().div_ceil(4) as u64;
        }
        Self {
            specs: specs.to_vec(),
            data: specs.iter().map(|s| vec![0; s.len]).collect(),
            written: specs.iter().map(|s| vec![false; s.len]).collect(),
            word_base,
            uninit_reads: 0,
        }
    }

    /// Resets contents between work groups. OpenCL local memory is
    /// uninitialized at group start; we zero it and track "written" bits so
    /// reads of never-written elements can be surfaced as a statistic. The
    /// uninitialized-read counter restarts too: each group's launch
    /// accounting reads it after the group finishes, so counts survive
    /// arena reuse across groups (and across parallel shards, where every
    /// worker owns its own arena).
    pub fn reset(&mut self) {
        for arr in &mut self.data {
            arr.iter_mut().for_each(|v| *v = 0);
        }
        for w in &mut self.written {
            w.iter_mut().for_each(|v| *v = false);
        }
        self.uninit_reads = 0;
    }

    pub fn spec(&self, id: LocalId) -> Option<LocalSpec> {
        self.specs.get(id.0).copied()
    }

    pub fn read(&mut self, id: LocalId, idx: usize) -> Option<u64> {
        let arr = self.data.get(id.0)?;
        let v = *arr.get(idx)?;
        if !self.written[id.0][idx] {
            self.uninit_reads += 1;
        }
        Some(v)
    }

    pub fn write(&mut self, id: LocalId, idx: usize, bits: u64) -> Option<()> {
        let arr = self.data.get_mut(id.0)?;
        let slot = arr.get_mut(idx)?;
        *slot = bits;
        self.written[id.0][idx] = true;
        Some(())
    }

    /// Flat word address of element `idx` of array `id`, for banking.
    pub fn word_addr(&self, id: LocalId, idx: usize) -> u64 {
        let byte = (idx * self.specs[id.0].kind.bytes()) as u64;
        self.word_base[id.0] + byte / 4
    }
}

/// Records local-memory accesses of one work group within one phase and
/// computes the serialized access-step count including bank conflicts.
///
/// Lanes of a wavefront are aligned by their access sequence number: the
/// k-th local access of every lane forms one hardware access step. Within a
/// step, the cost factor is the maximum number of *distinct words* mapped
/// to any single bank (same-word accesses broadcast for reads; we apply the
/// broadcast rule uniformly, which is the common case in the perforation
/// kernels where conflicts come from strided tile columns).
#[derive(Debug, Default)]
pub struct BankTracker {
    /// Packed entries: (wavefront << 32 | seq, bank, word).
    entries: Vec<(u64, u32, u64)>,
    /// Total element accesses (reads + writes).
    pub accesses: u64,
}

/// Bank-conflict reduction of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankSummary {
    /// Number of serialized access steps after conflict expansion.
    pub steps: u64,
    /// Steps that would have been needed with zero conflicts.
    pub ideal_steps: u64,
    /// Element accesses in this phase.
    pub accesses: u64,
}

impl BankSummary {
    /// Extra steps caused purely by bank conflicts.
    pub fn conflict_steps(&self) -> u64 {
        self.steps.saturating_sub(self.ideal_steps)
    }
}

impl BankTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the `seq`-th local access of a lane in `wavefront` touching
    /// flat word address `word` given `banks` local banks.
    pub fn record(&mut self, wavefront: u32, seq: u32, word: u64, banks: u64) {
        let bank = (word % banks) as u32;
        self.entries
            .push(((u64::from(wavefront) << 32) | u64::from(seq), bank, word));
        self.accesses += 1;
    }

    /// Collapses the phase into serialized step counts and resets.
    pub fn finish_phase(&mut self) -> BankSummary {
        self.entries.sort_unstable();
        let mut steps = 0u64;
        let mut ideal_steps = 0u64;
        let mut i = 0;
        while i < self.entries.len() {
            let step_key = self.entries[i].0;
            let mut j = i;
            while j < self.entries.len() && self.entries[j].0 == step_key {
                j += 1;
            }
            // Within one step: count distinct words per bank.
            let mut slice: Vec<(u32, u64)> =
                self.entries[i..j].iter().map(|&(_, b, w)| (b, w)).collect();
            slice.sort_unstable();
            slice.dedup();
            let mut worst = 1u64;
            let mut k = 0;
            while k < slice.len() {
                let bank = slice[k].0;
                let mut m = k;
                while m < slice.len() && slice[m].0 == bank {
                    m += 1;
                }
                worst = worst.max((m - k) as u64);
                k = m;
            }
            steps += worst;
            ideal_steps += 1;
            i = j;
        }
        let summary = BankSummary {
            steps,
            ideal_steps,
            accesses: self.accesses,
        };
        self.entries.clear();
        self.accesses = 0;
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_spec_bytes() {
        assert_eq!(LocalSpec::new(ElemKind::F32, 100).bytes(), 400);
        assert_eq!(LocalSpec::new(ElemKind::U8, 100).bytes(), 100);
    }

    #[test]
    fn arena_read_write_roundtrip() {
        let mut a = LocalArena::new(&[LocalSpec::new(ElemKind::F32, 8)]);
        a.write(LocalId(0), 3, 42).unwrap();
        assert_eq!(a.read(LocalId(0), 3), Some(42));
        assert_eq!(a.uninit_reads, 0);
    }

    #[test]
    fn arena_counts_uninitialized_reads() {
        let mut a = LocalArena::new(&[LocalSpec::new(ElemKind::F32, 8)]);
        let _ = a.read(LocalId(0), 0);
        assert_eq!(a.uninit_reads, 1);
    }

    #[test]
    fn arena_reset_clears_written_bits() {
        let mut a = LocalArena::new(&[LocalSpec::new(ElemKind::F32, 4)]);
        a.write(LocalId(0), 0, 7).unwrap();
        a.reset();
        assert_eq!(a.read(LocalId(0), 0), Some(0));
        assert_eq!(a.uninit_reads, 1);
    }

    #[test]
    fn arena_out_of_bounds_is_none() {
        let mut a = LocalArena::new(&[LocalSpec::new(ElemKind::F32, 4)]);
        assert!(a.read(LocalId(0), 4).is_none());
        assert!(a.read(LocalId(1), 0).is_none());
        assert!(a.write(LocalId(0), 10, 0).is_none());
    }

    #[test]
    fn word_addresses_are_disjoint_across_arrays() {
        let a = LocalArena::new(&[
            LocalSpec::new(ElemKind::F32, 4),
            LocalSpec::new(ElemKind::F32, 4),
        ]);
        assert_eq!(a.word_addr(LocalId(0), 3), 3);
        assert_eq!(a.word_addr(LocalId(1), 0), 4);
    }

    #[test]
    fn conflict_free_step_costs_one() {
        let mut t = BankTracker::new();
        // 4 lanes hit 4 consecutive words -> 4 different banks.
        for lane_word in 0..4u64 {
            t.record(0, 0, lane_word, 8);
        }
        let s = t.finish_phase();
        assert_eq!(s.steps, 1);
        assert_eq!(s.ideal_steps, 1);
        assert_eq!(s.conflict_steps(), 0);
    }

    #[test]
    fn same_word_broadcasts() {
        let mut t = BankTracker::new();
        for _ in 0..4 {
            t.record(0, 0, 5, 8);
        }
        let s = t.finish_phase();
        assert_eq!(s.steps, 1);
    }

    #[test]
    fn stride_equal_to_banks_serializes() {
        let mut t = BankTracker::new();
        // 4 lanes, stride 8 words with 8 banks: all map to bank 0.
        for lane in 0..4u64 {
            t.record(0, 0, lane * 8, 8);
        }
        let s = t.finish_phase();
        assert_eq!(s.steps, 4);
        assert_eq!(s.conflict_steps(), 3);
    }

    #[test]
    fn separate_seq_numbers_are_separate_steps() {
        let mut t = BankTracker::new();
        t.record(0, 0, 0, 8);
        t.record(0, 1, 8, 8); // same bank, different step: no conflict
        let s = t.finish_phase();
        assert_eq!(s.steps, 2);
        assert_eq!(s.ideal_steps, 2);
    }

    #[test]
    fn different_wavefronts_do_not_conflict() {
        let mut t = BankTracker::new();
        t.record(0, 0, 0, 8);
        t.record(1, 0, 8, 8);
        let s = t.finish_phase();
        assert_eq!(s.steps, 2);
        assert_eq!(s.ideal_steps, 2);
    }

    #[test]
    fn finish_phase_resets() {
        let mut t = BankTracker::new();
        t.record(0, 0, 0, 8);
        let _ = t.finish_phase();
        let s = t.finish_phase();
        assert_eq!(s, BankSummary::default());
    }
}
