//! NDRange geometry: global/local sizes, work-group and work-item
//! coordinates, in up to three dimensions (OpenCL semantics).

use std::fmt;

/// Up to three dimensions of global and local work sizes.
///
/// As in OpenCL 1.x, every global size must be a multiple of the
/// corresponding local size; [`NdRange::new`] enforces this.
///
/// # Examples
///
/// ```
/// use kp_gpu_sim::NdRange;
///
/// let r = NdRange::new_2d((1024, 1024), (16, 16)).unwrap();
/// assert_eq!(r.num_groups_total(), 64 * 64);
/// assert_eq!(r.group_size_total(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NdRange {
    dims: usize,
    global: [usize; 3],
    local: [usize; 3],
}

/// Error produced when an [`NdRange`] is geometrically invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NdRangeError {
    /// Number of dimensions outside `1..=3`.
    BadDims(usize),
    /// A size component was zero.
    ZeroSize {
        /// The offending dimension.
        dim: usize,
    },
    /// `global[dim]` is not a multiple of `local[dim]`.
    NotDivisible {
        /// The offending dimension.
        dim: usize,
        /// Global size in that dimension.
        global: usize,
        /// Local size in that dimension.
        local: usize,
    },
}

impl fmt::Display for NdRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NdRangeError::BadDims(d) => write!(f, "ndrange dimensions must be 1..=3, got {d}"),
            NdRangeError::ZeroSize { dim } => write!(f, "ndrange size in dimension {dim} is zero"),
            NdRangeError::NotDivisible { dim, global, local } => write!(
                f,
                "global size {global} not divisible by local size {local} in dimension {dim}"
            ),
        }
    }
}

impl std::error::Error for NdRangeError {}

impl NdRange {
    /// Creates an NDRange with explicit dimension count.
    ///
    /// # Errors
    ///
    /// Returns [`NdRangeError`] if `dims` is not in `1..=3`, any used size
    /// component is zero, or a global size is not divisible by the local
    /// size (OpenCL 1.x uniform work-group requirement).
    pub fn new(dims: usize, global: [usize; 3], local: [usize; 3]) -> Result<Self, NdRangeError> {
        if !(1..=3).contains(&dims) {
            return Err(NdRangeError::BadDims(dims));
        }
        let mut g = [1usize; 3];
        let mut l = [1usize; 3];
        for d in 0..dims {
            if global[d] == 0 || local[d] == 0 {
                return Err(NdRangeError::ZeroSize { dim: d });
            }
            if !global[d].is_multiple_of(local[d]) {
                return Err(NdRangeError::NotDivisible {
                    dim: d,
                    global: global[d],
                    local: local[d],
                });
            }
            g[d] = global[d];
            l[d] = local[d];
        }
        Ok(Self {
            dims,
            global: g,
            local: l,
        })
    }

    /// Convenience constructor for a 1D range.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NdRange::new`].
    pub fn new_1d(global: usize, local: usize) -> Result<Self, NdRangeError> {
        Self::new(1, [global, 1, 1], [local, 1, 1])
    }

    /// Convenience constructor for a 2D range.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NdRange::new`].
    pub fn new_2d(global: (usize, usize), local: (usize, usize)) -> Result<Self, NdRangeError> {
        Self::new(2, [global.0, global.1, 1], [local.0, local.1, 1])
    }

    /// Number of dimensions (1, 2 or 3).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Global size in dimension `d` (1 for unused dimensions).
    pub fn global_size(&self, d: usize) -> usize {
        self.global.get(d).copied().unwrap_or(1)
    }

    /// Local (work-group) size in dimension `d` (1 for unused dimensions).
    pub fn local_size(&self, d: usize) -> usize {
        self.local.get(d).copied().unwrap_or(1)
    }

    /// Number of work groups in dimension `d`.
    pub fn num_groups(&self, d: usize) -> usize {
        self.global_size(d) / self.local_size(d)
    }

    /// Total number of work items in one work group.
    pub fn group_size_total(&self) -> usize {
        self.local.iter().product()
    }

    /// Total number of work groups in the launch.
    pub fn num_groups_total(&self) -> usize {
        (0..3).map(|d| self.num_groups(d)).product()
    }

    /// Total number of work items in the launch.
    pub fn global_size_total(&self) -> usize {
        self.global.iter().product()
    }

    /// Iterates over all work-group coordinates in row-major order
    /// (dimension 0 fastest), matching the simulator's deterministic
    /// execution order.
    pub fn group_coords(&self) -> impl Iterator<Item = [usize; 3]> + '_ {
        let (gx, gy, gz) = (self.num_groups(0), self.num_groups(1), self.num_groups(2));
        (0..gz).flat_map(move |z| (0..gy).flat_map(move |y| (0..gx).map(move |x| [x, y, z])))
    }

    /// Iterates over all local work-item coordinates of one group in
    /// row-major order (dimension 0 fastest).
    pub fn local_coords(&self) -> impl Iterator<Item = [usize; 3]> + '_ {
        let (lx, ly, lz) = (self.local_size(0), self.local_size(1), self.local_size(2));
        (0..lz).flat_map(move |z| (0..ly).flat_map(move |y| (0..lx).map(move |x| [x, y, z])))
    }

    /// Flat (linearized) index of a local coordinate within its work group,
    /// dimension 0 fastest. This is the index used to assign work items to
    /// wavefronts, mirroring how hardware linearizes work groups.
    pub fn flatten_local(&self, local: [usize; 3]) -> usize {
        local[0] + self.local_size(0) * (local[1] + self.local_size(1) * local[2])
    }
}

impl fmt::Display for NdRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dims {
            1 => write!(f, "global {} / local {}", self.global[0], self.local[0]),
            2 => write!(
                f,
                "global {}x{} / local {}x{}",
                self.global[0], self.global[1], self.local[0], self.local[1]
            ),
            _ => write!(
                f,
                "global {}x{}x{} / local {}x{}x{}",
                self.global[0],
                self.global[1],
                self.global[2],
                self.local[0],
                self.local[1],
                self.local[2]
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_2d_geometry() {
        let r = NdRange::new_2d((64, 32), (16, 8)).unwrap();
        assert_eq!(r.dims(), 2);
        assert_eq!(r.num_groups(0), 4);
        assert_eq!(r.num_groups(1), 4);
        assert_eq!(r.num_groups_total(), 16);
        assert_eq!(r.group_size_total(), 128);
        assert_eq!(r.global_size_total(), 2048);
    }

    #[test]
    fn unused_dimensions_are_one() {
        let r = NdRange::new_1d(100, 10).unwrap();
        assert_eq!(r.global_size(1), 1);
        assert_eq!(r.local_size(2), 1);
        assert_eq!(r.num_groups(1), 1);
    }

    #[test]
    fn rejects_indivisible() {
        let err = NdRange::new_2d((100, 100), (16, 10)).unwrap_err();
        assert_eq!(
            err,
            NdRangeError::NotDivisible {
                dim: 0,
                global: 100,
                local: 16
            }
        );
    }

    #[test]
    fn rejects_zero_sizes() {
        assert!(matches!(
            NdRange::new_1d(0, 1),
            Err(NdRangeError::ZeroSize { dim: 0 })
        ));
        assert!(matches!(
            NdRange::new_1d(16, 0),
            Err(NdRangeError::ZeroSize { dim: 0 })
        ));
    }

    #[test]
    fn rejects_bad_dims() {
        assert!(matches!(
            NdRange::new(0, [1, 1, 1], [1, 1, 1]),
            Err(NdRangeError::BadDims(0))
        ));
        assert!(matches!(
            NdRange::new(4, [1, 1, 1], [1, 1, 1]),
            Err(NdRangeError::BadDims(4))
        ));
    }

    #[test]
    fn group_coords_are_row_major_and_complete() {
        let r = NdRange::new_2d((4, 4), (2, 2)).unwrap();
        let coords: Vec<_> = r.group_coords().collect();
        assert_eq!(coords, vec![[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]]);
    }

    #[test]
    fn local_coords_match_flatten() {
        let r = NdRange::new_2d((8, 8), (4, 2)).unwrap();
        for (i, c) in r.local_coords().enumerate() {
            assert_eq!(r.flatten_local(c), i);
        }
    }

    #[test]
    fn display_is_compact() {
        let r = NdRange::new_2d((64, 32), (16, 8)).unwrap();
        assert_eq!(r.to_string(), "global 64x32 / local 16x8");
    }
}
