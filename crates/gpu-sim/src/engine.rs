//! The parallel deterministic launch engine.
//!
//! Work groups are independent between barriers: each owns its local-memory
//! arena, and inter-group communication through global memory within one
//! launch is undefined behavior on real hardware (OpenCL gives no ordering
//! between groups). The engine exploits exactly that freedom:
//!
//! * every group executes against a **read-only snapshot** of global
//!   memory, recording its stores into a per-group [`WriteLog`] (reads
//!   observe the group's own earlier writes through the log's overlay,
//!   preserving intra-group read-after-write),
//! * groups are sharded across scoped worker threads in contiguous chunks,
//! * write logs, statistics, cycle accounting and fault logs are reduced
//!   **in row-major group order**, so the result is bit-identical no matter
//!   how many workers ran.
//!
//! The geometry of a launch (group/item coordinate lists, wavefront and
//! coalescing-granule assignments) is immutable per [`NdRange`] and device
//! configuration; [`LaunchPlan`] captures it once and `Device` caches plans
//! keyed on the range, so sweeps re-launching the same geometry skip the
//! setup entirely.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::buffer::RawBuffer;
use crate::config::{DeviceConfig, ExecMode};
use crate::error::SimError;
use crate::kernel::{
    AccessMask, FaultLog, ItemCtx, Kernel, KernelScratch, LaneSlot, PhaseProfile, WaveCtx,
};
use crate::local::{LocalArena, LocalSpec};
use crate::ndrange::NdRange;
use crate::stats::{LaunchReport, LaunchStats, Occupancy, TimingBreakdown};
use crate::timing;

/// The device's buffer table: one slot per lifetime allocation. Slots hold
/// `Arc`s so that launches can execute against a cheap snapshot (a clone of
/// the table, not of the data) while the device stays free to apply other
/// commands' writes copy-on-write.
pub(crate) type BufTable = Vec<Option<Arc<RawBuffer>>>;

/// Precomputed per-launch geometry, cached per [`NdRange`].
#[derive(Debug)]
pub(crate) struct LaunchPlan {
    pub range: NdRange,
    /// All work-group coordinates in row-major order.
    pub group_coords: Vec<[usize; 3]>,
    /// All local work-item coordinates of one group in row-major order.
    pub local_coords: Vec<[usize; 3]>,
    /// Wavefront id of each local item (index-aligned with `local_coords`).
    pub wf_of: Vec<u32>,
    /// Memory coalescing granule of each local item (quarter-wavefront on
    /// GCN-class configurations).
    pub granule_of: Vec<u32>,
}

impl LaunchPlan {
    pub fn new(cfg: &DeviceConfig, range: NdRange) -> Self {
        let group_coords: Vec<[usize; 3]> = range.group_coords().collect();
        let local_coords: Vec<[usize; 3]> = range.local_coords().collect();
        let wf_of: Vec<u32> = local_coords
            .iter()
            .map(|&c| (range.flatten_local(c) / cfg.wavefront_size) as u32)
            .collect();
        let granule_of: Vec<u32> = local_coords
            .iter()
            .map(|&c| (range.flatten_local(c) / cfg.coalesce_width) as u32)
            .collect();
        Self {
            range,
            group_coords,
            local_coords,
            wf_of,
            granule_of,
        }
    }
}

/// Small bounded cache of launch plans. The device configuration is fixed
/// for the lifetime of a `Device`, so the range alone is the key.
#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    plans: HashMap<NdRange, Arc<LaunchPlan>>,
}

impl PlanCache {
    /// A sweep touches a handful of geometries; anything past this is
    /// pathological and we just start over rather than tracking LRU order.
    const CAPACITY: usize = 64;

    pub fn get(&mut self, cfg: &DeviceConfig, range: NdRange) -> Arc<LaunchPlan> {
        if let Some(plan) = self.plans.get(&range) {
            return Arc::clone(plan);
        }
        if self.plans.len() >= Self::CAPACITY {
            self.plans.clear();
        }
        let plan = Arc::new(LaunchPlan::new(cfg, range));
        self.plans.insert(range, Arc::clone(&plan));
        plan
    }
}

/// Multiply-shift hasher for the write-log overlay keys (pre-mixed u64
/// keys; SipHash would dominate the read path).
#[derive(Debug, Default)]
pub(crate) struct FxHasher64 {
    state: u64,
}

impl Hasher for FxHasher64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.state = (self.state ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.state ^= self.state >> 32;
    }
}

/// One logged global-memory store. Kept at 16 bytes — a big launch holds
/// one entry per store until the logs are replayed, so entry size bounds
/// the engine's transient memory. `u32` element indices are sufficient:
/// the largest allocatable buffer (whole global memory as single bytes)
/// stays below 2^32 elements.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WriteEntry {
    /// Buffer slot index (validated at record time).
    pub slot: u32,
    /// Element index within the buffer.
    pub index: u32,
    /// Stored bit pattern.
    pub bits: u64,
}

/// Per-group log of global-memory stores with an overlay index.
///
/// Stores append to `entries` in program order (replaying them in order
/// reproduces serial last-write-wins semantics exactly) and update the
/// overlay map so later reads by the *same group* observe them. `dirty`
/// tracks which buffer slots have any logged store, letting the hot read
/// path skip the map probe for never-written buffers (the common case:
/// stencil kernels read inputs and write a disjoint output).
#[derive(Debug, Default)]
pub(crate) struct WriteLog {
    entries: Vec<WriteEntry>,
    overlay: HashMap<u64, u64, BuildHasherDefault<FxHasher64>>,
    dirty: Vec<bool>,
}

impl WriteLog {
    fn key(slot: u32, index: usize) -> u64 {
        // Buffer count < 2^24 and element index < 2^40 (a 3.5 GB device
        // holds < 2^30 four-byte elements), so the pair packs into 64 bits.
        debug_assert!(index < (1 << 40), "element index exceeds packed key");
        (u64::from(slot) << 40) | index as u64
    }

    /// Prepares the log for a group, sizing the dirty map to `nbufs`.
    pub fn reset(&mut self, nbufs: usize) {
        self.entries.clear();
        self.overlay.clear();
        self.dirty.clear();
        self.dirty.resize(nbufs, false);
    }

    /// Records a store. Indices fit `u32` by construction: `Device::alloc`
    /// rejects buffers with more than `u32::MAX` elements and stores are
    /// bounds-checked against the buffer before being recorded.
    pub fn record(&mut self, slot: usize, index: usize, bits: u64) {
        let slot32 = slot as u32;
        debug_assert!(u32::try_from(index).is_ok(), "element index exceeds u32");
        self.entries.push(WriteEntry {
            slot: slot32,
            index: index as u32,
            bits,
        });
        self.overlay.insert(Self::key(slot32, index), bits);
        self.dirty[slot] = true;
    }

    /// The latest store to `(slot, index)`, if this group made one.
    #[inline]
    pub fn lookup(&self, slot: usize, index: usize) -> Option<u64> {
        if !self.dirty[slot] {
            return None;
        }
        self.overlay.get(&Self::key(slot as u32, index)).copied()
    }

    /// Moves the entries out (used to keep parallel group results alive
    /// after their worker's scratch state is reused).
    pub fn take_entries(&mut self) -> Vec<WriteEntry> {
        std::mem::take(&mut self.entries)
    }
}

/// Replays logged stores into the backing buffers, in program order (later
/// entries overwrite earlier ones, reproducing serial last-write-wins).
///
/// Targets are written copy-on-write: a buffer whose `Arc` is still shared
/// (a concurrently executing command holds it in its snapshot) is cloned
/// once, so snapshots never observe partial replays.
pub(crate) fn apply_writes(entries: &[WriteEntry], bufs: &mut BufTable) {
    for e in entries {
        let slot = bufs[e.slot as usize]
            .as_mut()
            .expect("write target validated at record time");
        Arc::make_mut(slot).data[e.index as usize] = e.bits;
    }
}

/// Everything one group's execution produced, in reducible form.
#[derive(Debug, Default)]
pub(crate) struct GroupOutcome {
    pub writes: Vec<WriteEntry>,
    pub stats: LaunchStats,
    pub timing: TimingBreakdown,
    pub faults: FaultLog,
}

/// Per-worker scratch state, reused across the groups of one shard.
///
/// `kernel` is the worker's [`KernelScratch`]: engine-owned storage that
/// stateful kernels reach through [`ItemCtx::kernel_scratch`] instead of
/// keeping (and locking) their own cross-thread state. Each worker owns
/// exactly one, and a worker runs its groups to completion one at a time,
/// so kernels can use it lock-free.
pub(crate) struct WorkerScratch {
    pub arena: LocalArena,
    pub profile: Option<PhaseProfile>,
    pub log: WriteLog,
    pub kernel: KernelScratch,
}

impl WorkerScratch {
    pub fn new(
        kernel_locals: &[crate::local::LocalSpec],
        waves_per_group: usize,
        profiling: bool,
    ) -> Self {
        Self {
            arena: LocalArena::new(kernel_locals),
            profile: profiling.then(|| PhaseProfile::new(waves_per_group)),
            log: WriteLog::default(),
            kernel: KernelScratch::default(),
        }
    }
}

/// Executes one work group against the global-memory snapshot `bufs`,
/// returning its write log, statistics and cycle accounting.
///
/// This is the single execution path shared by the serial and parallel
/// frontends in [`crate::Device`] and by the command-queue scheduler: the
/// only difference between them is *when* the returned write log is applied
/// to the backing buffers. `mask` carries the launch's declared buffer
/// usage, if any — accesses outside it fault deterministically (see
/// [`crate::Kernel::buffer_usage`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_group<K: Kernel + ?Sized>(
    kernel: &K,
    phases: usize,
    cfg: &DeviceConfig,
    plan: &LaunchPlan,
    bufs: &BufTable,
    mask: Option<&AccessMask>,
    group: [usize; 3],
    scratch: &mut WorkerScratch,
) -> GroupOutcome {
    let mut stats = LaunchStats::default();
    let mut breakdown = TimingBreakdown::default();
    let mut faults = FaultLog::default();

    scratch.arena.reset();
    scratch.log.reset(bufs.len());
    // In vectorized mode work items run in lockstep wavefront batches of
    // `lanes` items; otherwise one item at a time (the scalar reference).
    let lanes = match cfg.exec_mode {
        ExecMode::Vectorized { lanes } => resolve_lanes(lanes),
        _ => 0,
    };
    let mut group_cycles = cfg.group_dispatch_cycles;
    for phase in 0..phases {
        if let Some(p) = scratch.profile.as_mut() {
            p.reset_phase();
        }
        if lanes > 0 {
            run_phase_waves(
                kernel,
                phase,
                lanes,
                cfg,
                plan,
                bufs,
                mask,
                group,
                scratch,
                &mut faults,
            );
        } else {
            for (li, &local) in plan.local_coords.iter().enumerate() {
                let mut ctx = ItemCtx {
                    range: &plan.range,
                    cfg,
                    group,
                    local,
                    phase,
                    wavefront: plan.wf_of[li],
                    granule: plan.granule_of[li],
                    bufs,
                    access: mask,
                    writes: &mut scratch.log,
                    arena: &mut scratch.arena,
                    profile: scratch.profile.as_mut(),
                    faults: &mut faults,
                    scratch: &mut scratch.kernel,
                    local_seq: 0,
                    global_seq: 0,
                    item_ops: 0,
                };
                kernel.run_phase(phase, &mut ctx);
                let item_ops = ctx.item_ops;
                if let Some(p) = scratch.profile.as_mut() {
                    let wf = plan.wf_of[li] as usize;
                    p.wf_max_ops[wf] = p.wf_max_ops[wf].max(item_ops);
                }
            }
        }
        if let Some(p) = scratch.profile.as_mut() {
            let mem = p.coalesce.finish_phase();
            let banks = p.banks.finish_phase();
            let cost = timing::phase_cost(cfg, &mem, &banks, &p.wf_max_ops, p.shifted_elements);
            stats.global_read_transactions += mem.read_transactions;
            stats.global_write_transactions += mem.write_transactions;
            stats.dram_read_transactions += mem.dram_read_transactions;
            stats.dram_write_transactions += mem.dram_write_transactions;
            stats.dram_read_burst_transactions += mem.dram_read_burst_transactions;
            stats.dram_write_burst_transactions += mem.dram_write_burst_transactions;
            stats.shifted_elements += p.shifted_elements;
            stats.global_bytes_requested += mem.bytes_requested;
            stats.global_bytes_transferred += mem.bytes_transferred(cfg.transaction_bytes);
            stats.global_element_reads += mem.element_reads;
            stats.global_element_writes += mem.element_writes;
            stats.local_accesses += banks.accesses;
            stats.local_steps += banks.steps;
            stats.local_conflict_steps += banks.conflict_steps();
            stats.alu_ops += p.wf_max_ops.iter().sum::<u64>();
            breakdown.memory_cycles += cost.memory_cycles;
            breakdown.compute_cycles += cost.alu_cycles + cost.local_cycles;
            group_cycles += cost.critical_path();
        }
    }
    let barriers = cfg.barrier_cycles * (phases as u64 - 1);
    breakdown.overhead_cycles += barriers + cfg.group_dispatch_cycles;
    group_cycles += barriers;
    breakdown.group_cycles_total += group_cycles;
    // Local memory tracks uninitialized reads independently of profiling
    // (it is a correctness signal, not a performance counter).
    stats.uninit_local_reads = scratch.arena.uninit_reads;

    GroupOutcome {
        writes: scratch.log.take_entries(),
        stats,
        timing: breakdown,
        faults,
    }
}

/// Runs one phase of one group in lockstep wavefront batches of `lanes`
/// work items (the [`ExecMode::Vectorized`] execution path of
/// [`run_group`]). Waves cover the group's flat item ids in row-major
/// chunks — the last wave is a shorter *tail* when the group size is not a
/// multiple of `lanes` — and after each wave the per-lane fault buffers
/// are merged into the group log in lane order, so the log is identical
/// to the one the scalar item loop records.
#[allow(clippy::too_many_arguments)]
fn run_phase_waves<K: Kernel + ?Sized>(
    kernel: &K,
    phase: usize,
    lanes: usize,
    cfg: &DeviceConfig,
    plan: &LaunchPlan,
    bufs: &BufTable,
    mask: Option<&AccessMask>,
    group: [usize; 3],
    scratch: &mut WorkerScratch,
    faults: &mut FaultLog,
) {
    let mut slots: Vec<LaneSlot> = Vec::with_capacity(lanes);
    for (wave_idx, chunk) in plan.local_coords.chunks(lanes).enumerate() {
        let base = wave_idx * lanes;
        slots.clear();
        slots.extend(chunk.iter().enumerate().map(|(j, &local)| LaneSlot {
            local,
            wavefront: plan.wf_of[base + j],
            granule: plan.granule_of[base + j],
            ..LaneSlot::default()
        }));
        let mut wave = WaveCtx {
            range: &plan.range,
            cfg,
            group,
            phase,
            bufs,
            access: mask,
            writes: &mut scratch.log,
            arena: &mut scratch.arena,
            profile: scratch.profile.as_mut(),
            scratch: &mut scratch.kernel,
            slots: &mut slots,
            base_flat: base,
        };
        kernel.run_phase_wave(phase, &mut wave);
        for (j, slot) in slots.iter_mut().enumerate() {
            faults.merge(std::mem::take(&mut slot.faults));
            if let Some(p) = scratch.profile.as_mut() {
                let wf = plan.wf_of[base + j] as usize;
                p.wf_max_ops[wf] = p.wf_max_ops[wf].max(slot.item_ops);
            }
        }
    }
}

/// Validated, precomputed launch parameters shared by every launch
/// frontend: the blocking shims, the serial reference and the queue
/// scheduler.
#[derive(Debug)]
pub(crate) struct LaunchSetup {
    pub local_specs: Vec<LocalSpec>,
    pub phases: usize,
    pub occ: Occupancy,
}

/// Runs every group of a launch one at a time on the calling thread,
/// applying each group's writes to the (private) `snapshot` before the
/// next group starts. This reproduces the legacy serial semantics exactly:
/// even (non-deterministic on real hardware) cross-group dependencies
/// observe the row-major order. Returns the per-group outcomes plus the
/// concatenated write entries, ready to replay onto the device's backing
/// buffers.
pub(crate) fn execute_groups_serial<K: Kernel + ?Sized>(
    kernel: &K,
    cfg: &DeviceConfig,
    plan: &LaunchPlan,
    setup: &LaunchSetup,
    snapshot: &mut BufTable,
    profiling: bool,
    mask: Option<&AccessMask>,
) -> (Vec<GroupOutcome>, Vec<WriteEntry>) {
    let mut scratch = WorkerScratch::new(&setup.local_specs, setup.occ.waves_per_group, profiling);
    let mut outcomes = Vec::with_capacity(plan.group_coords.len());
    let mut entries = Vec::new();
    for &group in &plan.group_coords {
        let mut outcome = run_group(
            kernel,
            setup.phases,
            cfg,
            plan,
            snapshot,
            mask,
            group,
            &mut scratch,
        );
        let writes = std::mem::take(&mut outcome.writes);
        apply_writes(&writes, snapshot);
        entries.extend(writes);
        outcomes.push(outcome);
    }
    (outcomes, entries)
}

/// Runs the groups of a launch sharded over `workers` scoped threads, all
/// against the same read-only `snapshot`. Outcomes and write entries come
/// back in row-major group order, so replaying the entries produces the
/// exact buffers a serial execution of independent groups would.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_groups_parallel<K: Kernel + Sync + ?Sized>(
    kernel: &K,
    cfg: &DeviceConfig,
    plan: &LaunchPlan,
    setup: &LaunchSetup,
    snapshot: &BufTable,
    profiling: bool,
    workers: usize,
    mask: Option<&AccessMask>,
) -> (Vec<GroupOutcome>, Vec<WriteEntry>) {
    execute_groups_span(
        kernel,
        cfg,
        plan,
        setup,
        snapshot,
        profiling,
        workers,
        mask,
        0,
        plan.group_coords.len(),
    )
}

/// Runs the row-major span `lo..hi` of a launch's groups, sharded over
/// `workers` scoped threads against the read-only `snapshot`. This is the
/// primitive a [`crate::DeviceGroup`] shards one launch across member
/// devices with: each member executes a contiguous span, and concatenating
/// the spans in device order restores full row-major group order —
/// bit-identical to [`execute_groups_parallel`] over `0..n` on one device,
/// because per-group execution never observes which span (or device) it
/// ran in.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_groups_span<K: Kernel + Sync + ?Sized>(
    kernel: &K,
    cfg: &DeviceConfig,
    plan: &LaunchPlan,
    setup: &LaunchSetup,
    snapshot: &BufTable,
    profiling: bool,
    workers: usize,
    mask: Option<&AccessMask>,
    lo: usize,
    hi: usize,
) -> (Vec<GroupOutcome>, Vec<WriteEntry>) {
    let groups = &plan.group_coords[lo..hi];
    // Contiguous shards keep the group -> worker assignment, and thus
    // every worker-local accumulation, independent of scheduling.
    let chunk = groups.len().div_ceil(workers.max(1)).max(1);
    let phases = setup.phases;
    let sharded: Vec<Vec<GroupOutcome>> = std::thread::scope(|s| {
        let handles: Vec<_> = groups
            .chunks(chunk)
            .map(|shard| {
                let local_specs = &setup.local_specs;
                s.spawn(move || {
                    let mut scratch =
                        WorkerScratch::new(local_specs, setup.occ.waves_per_group, profiling);
                    shard
                        .iter()
                        .map(|&group| {
                            run_group(
                                kernel,
                                phases,
                                cfg,
                                plan,
                                snapshot,
                                mask,
                                group,
                                &mut scratch,
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("launch worker panicked"))
            .collect()
    });
    let mut outcomes = Vec::with_capacity(groups.len());
    let mut entries = Vec::new();
    for mut outcome in sharded.into_iter().flatten() {
        entries.extend(std::mem::take(&mut outcome.writes));
        outcomes.push(outcome);
    }
    (outcomes, entries)
}

/// Folds per-group outcomes (visited in row-major group order) into the
/// final report, or the fault error. Write application is the caller's
/// business — buffers may be partially written when this returns
/// [`SimError::KernelFaults`], matching real-GPU behavior.
pub(crate) fn reduce_outcomes(
    kernel_name: &str,
    cfg: &DeviceConfig,
    profiling: bool,
    range: &NdRange,
    setup: &LaunchSetup,
    outcomes: impl IntoIterator<Item = GroupOutcome>,
) -> Result<LaunchReport, SimError> {
    let mut stats = LaunchStats::default();
    let mut breakdown = TimingBreakdown::default();
    let mut faults = FaultLog::default();
    let mut groups = 0usize;
    for outcome in outcomes {
        groups += 1;
        stats.accumulate(&outcome.stats);
        breakdown.memory_cycles += outcome.timing.memory_cycles;
        breakdown.compute_cycles += outcome.timing.compute_cycles;
        breakdown.overhead_cycles += outcome.timing.overhead_cycles;
        breakdown.group_cycles_total += outcome.timing.group_cycles_total;
        faults.merge(outcome.faults);
    }
    debug_assert_eq!(groups, range.num_groups_total());

    if profiling {
        breakdown.device_cycles =
            timing::device_cycles(cfg, &setup.occ, breakdown.group_cycles_total);
    } else {
        // Without profiling no memory/ALU accounting happened, so a
        // partial cycle count would be misleading; report zero time —
        // but keep the uninitialized-read counter, which is a
        // correctness signal tracked independently of profiling.
        let uninit = stats.uninit_local_reads;
        stats = LaunchStats::default();
        stats.uninit_local_reads = uninit;
        breakdown = TimingBreakdown::default();
    }

    if !faults.is_empty() {
        return Err(SimError::KernelFaults {
            kernel: kernel_name.to_owned(),
            faults: faults.faults,
            total: faults.total,
        });
    }

    let mut report = LaunchReport {
        kernel: kernel_name.to_owned(),
        groups,
        phases: setup.phases,
        profiled: profiling,
        stats,
        timing: breakdown,
        occupancy: setup.occ,
        seconds: 0.0,
    };
    report.finalize(cfg);
    Ok(report)
}

/// Resolves a parallelism knob to a concrete worker count
/// (`0` = one per available core). Shared policy for the launch engine,
/// the persistent command-queue worker pool and host-side harnesses
/// (`kp_core::par` delegates here).
///
/// The `KP_SIM_PARALLELISM` environment variable, when set to a positive
/// integer, overrides the *auto* resolution (`requested == 0`) only — CI
/// uses it to force wide queue/engine schedules onto single-core runners
/// so scheduling races cannot hide there. Explicit worker counts are never
/// overridden.
pub fn resolve_parallelism(requested: usize) -> usize {
    if requested == 0 {
        static OVERRIDE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
        let forced =
            OVERRIDE.get_or_init(|| parse_env_override(std::env::var("KP_SIM_PARALLELISM").ok()));
        if let Some(n) = forced {
            return *n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// The lane count [`resolve_lanes`] picks when nothing overrides it: wide
/// enough to amortize instruction dispatch across a wave, narrow enough
/// that divergence scans stay cheap on small test groups.
pub const DEFAULT_LANES: usize = 8;

/// Resolves an [`ExecMode::Vectorized`] lane-count knob to a concrete
/// wavefront batch width (`0` = auto).
///
/// The `KP_SIM_LANES` environment variable, when set to a positive
/// integer, overrides the *auto* resolution (`lanes == 0`) only — the
/// exact policy [`resolve_parallelism`] applies to `KP_SIM_PARALLELISM`.
/// Explicit lane counts are never overridden. Without an override, auto
/// resolves to [`DEFAULT_LANES`].
pub fn resolve_lanes(requested: usize) -> usize {
    if requested == 0 {
        static OVERRIDE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
        let forced =
            OVERRIDE.get_or_init(|| parse_env_override(std::env::var("KP_SIM_LANES").ok()));
        forced.unwrap_or(DEFAULT_LANES)
    } else {
        requested
    }
}

/// Resolves a [`crate::DeviceConfig::devices`] group-size knob to a
/// concrete member-device count (`0` = auto).
///
/// The `KP_SIM_DEVICES` environment variable, when set to a positive
/// integer, overrides the *auto* resolution (`requested == 0`) only — the
/// exact policy [`resolve_parallelism`] applies to `KP_SIM_PARALLELISM`.
/// Explicit counts are never overridden. Without an override, auto
/// resolves to **1** (a single device), not the core count: member
/// devices each own a worker pool already, so defaulting the fleet size
/// to the host width would square the thread count.
pub fn resolve_devices(requested: usize) -> usize {
    if requested == 0 {
        static OVERRIDE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
        let forced =
            OVERRIDE.get_or_init(|| parse_env_override(std::env::var("KP_SIM_DEVICES").ok()));
        forced.unwrap_or(1)
    } else {
        requested
    }
}

/// Shared parse policy behind the `KP_SIM_PARALLELISM`, `KP_SIM_LANES`
/// and `KP_SIM_DEVICES` environment overrides: a positive integer wins,
/// anything else (unset, non-numeric, zero) is ignored. Split out of the
/// `OnceLock` wrappers so precedence is unit-testable without mutating
/// the process environment.
fn parse_env_override(raw: Option<String>) -> Option<usize> {
    raw.and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_log_overlay_reads_back_latest() {
        let mut log = WriteLog::default();
        log.reset(2);
        assert_eq!(log.lookup(0, 3), None);
        log.record(0, 3, 7);
        log.record(0, 3, 9);
        assert_eq!(log.lookup(0, 3), Some(9));
        assert_eq!(log.lookup(0, 4), None);
        assert_eq!(log.lookup(1, 3), None);
    }

    #[test]
    fn write_log_reset_clears_state() {
        let mut log = WriteLog::default();
        log.reset(1);
        log.record(0, 0, 1);
        log.reset(1);
        assert_eq!(log.lookup(0, 0), None);
        assert!(log.take_entries().is_empty());
    }

    #[test]
    fn write_log_apply_replays_in_order() {
        let mut log = WriteLog::default();
        log.reset(1);
        log.record(0, 1, 11);
        log.record(0, 1, 22); // later store wins
        let mut bufs: BufTable = vec![Some(Arc::new(RawBuffer {
            kind: crate::buffer::ElemKind::F32,
            data: vec![0; 4],
            base_addr: 0,
            label: "".into(),
        }))];
        apply_writes(&log.take_entries(), &mut bufs);
        assert_eq!(bufs[0].as_ref().unwrap().data[1], 22);
    }

    #[test]
    fn plan_cache_reuses_plans() {
        let cfg = DeviceConfig::test_tiny();
        let mut cache = PlanCache::default();
        let r = NdRange::new_1d(64, 16).unwrap();
        let a = cache.get(&cfg, r);
        let b = cache.get(&cfg, r);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.group_coords.len(), 4);
        assert_eq!(a.local_coords.len(), 16);
    }

    #[test]
    fn plan_assigns_wavefronts_row_major() {
        let cfg = DeviceConfig::test_tiny(); // wavefront 4, granule 4
        let plan = LaunchPlan::new(&cfg, NdRange::new_1d(16, 8).unwrap());
        assert_eq!(plan.wf_of, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(plan.granule_of, plan.wf_of);
    }

    #[test]
    fn resolve_parallelism_zero_is_auto() {
        assert!(resolve_parallelism(0) >= 1);
        assert_eq!(resolve_parallelism(5), 5);
    }

    #[test]
    fn resolve_lanes_zero_is_auto() {
        assert!(resolve_lanes(0) >= 1);
        assert_eq!(resolve_lanes(4), 4);
    }

    /// Pins the precedence contract of the `KP_SIM_PARALLELISM` /
    /// `KP_SIM_LANES` overrides: an explicit `DeviceConfig` knob is never
    /// overridden (the `requested != 0` arm never consults the
    /// environment), and the override itself only accepts positive
    /// integers. The parse policy is tested directly because the resolver
    /// caches the environment in a `OnceLock` at first use.
    #[test]
    fn env_override_parse_policy() {
        assert_eq!(parse_env_override(Some("6".into())), Some(6));
        assert_eq!(parse_env_override(Some("0".into())), None);
        assert_eq!(parse_env_override(Some("-2".into())), None);
        assert_eq!(parse_env_override(Some("eight".into())), None);
        assert_eq!(parse_env_override(Some("".into())), None);
        assert_eq!(parse_env_override(None), None);
        // Explicit knobs win regardless of what the environment says.
        assert_eq!(resolve_parallelism(3), 3);
        assert_eq!(resolve_lanes(7), 7);
        assert_eq!(resolve_devices(5), 5);
    }

    #[test]
    fn resolve_devices_zero_is_auto() {
        // Auto defaults to a single device (or the KP_SIM_DEVICES
        // override in CI's multi-device legs) — never zero.
        assert!(resolve_devices(0) >= 1);
        assert_eq!(resolve_devices(2), 2);
    }
}
