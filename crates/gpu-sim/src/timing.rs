//! Analytic timing model.
//!
//! The model is a per-phase roofline: inside one barrier-delimited phase a
//! work group's memory pipeline and ALU pipeline overlap, so the phase
//! costs `max(memory, alu + local)` cycles. Phases are serialized by
//! barriers. Device time divides the summed group time by the number of
//! groups that execute concurrently (compute units × occupancy).
//!
//! The absolute constants live in [`DeviceConfig`]; only ratios matter for
//! the paper's results (speedups are *relative* to a baseline run on the
//! same model).

use crate::coalesce::CoalesceSummary;
use crate::config::DeviceConfig;
use crate::local::BankSummary;
use crate::stats::Occupancy;

/// Cost of one phase of one work group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Cycles on the global-memory pipeline.
    pub memory_cycles: u64,
    /// Cycles on the ALU pipeline.
    pub alu_cycles: u64,
    /// Cycles on the local-memory pipeline.
    pub local_cycles: u64,
}

impl PhaseCost {
    /// The phase's contribution to the group's critical path:
    /// memory overlaps with ALU + local memory.
    pub fn critical_path(&self) -> u64 {
        self.memory_cycles.max(self.alu_cycles + self.local_cycles)
    }
}

/// Computes the cost of one phase from its access summaries.
///
/// `wf_max_ops` is the per-wavefront maximum of per-lane ALU op counts:
/// SIMD execution runs at the pace of the slowest lane (this is where
/// data-dependent divergence, e.g. in the median's selection network,
/// shows up).
///
/// `shifted_elements` counts halo elements shifted in from a neighboring
/// group's tile (the systolic prefetch layout): they contribute no
/// global-memory traffic and are charged on the local/exchange pipeline at
/// [`DeviceConfig::shift_issue_cycles`] each.
///
/// DRAM transactions that continue a contiguous same-direction block run
/// (`mem.dram_*_burst_transactions`) are discounted from
/// [`DeviceConfig::global_issue_cycles`] down to
/// [`DeviceConfig::burst_issue_cycles`]. With both prices equal (the
/// preset default) the discount term is exactly zero and the cost is
/// bit-identical to the pre-burst model.
pub fn phase_cost(
    cfg: &DeviceConfig,
    mem: &CoalesceSummary,
    banks: &BankSummary,
    wf_max_ops: &[u64],
    shifted_elements: u64,
) -> PhaseCost {
    let transactions = mem.transactions();
    let dram_weighted = mem.dram_read_transactions as f64
        + mem.dram_write_transactions as f64 * cfg.global_write_cost_factor;
    let l1_weighted =
        mem.read_transactions as f64 + mem.write_transactions as f64 * cfg.global_write_cost_factor;
    let burst_weighted = mem.dram_read_burst_transactions as f64
        + mem.dram_write_burst_transactions as f64 * cfg.global_write_cost_factor;
    let burst_discount = cfg
        .global_issue_cycles
        .saturating_sub(cfg.burst_issue_cycles) as f64;
    let mut memory_cycles = (dram_weighted * cfg.global_issue_cycles as f64
        + l1_weighted * cfg.l1_issue_cycles as f64
        - burst_weighted * burst_discount)
        .round() as u64;
    if transactions > 0 {
        let exposed = (cfg.global_latency_cycles as f64 * (1.0 - cfg.latency_hiding)).round();
        memory_cycles += exposed as u64;
    }
    let alu_cycles: u64 = wf_max_ops
        .iter()
        .map(|&ops| ops * cfg.alu_cycles_per_op)
        .sum();
    let local_cycles =
        banks.steps * cfg.local_issue_cycles + shifted_elements * cfg.shift_issue_cycles;
    PhaseCost {
        memory_cycles,
        alu_cycles,
        local_cycles,
    }
}

/// Computes occupancy: how many groups run concurrently per compute unit,
/// limited by local-memory capacity and resident-wavefront caps.
pub fn occupancy(cfg: &DeviceConfig, group_size: usize, local_bytes: usize) -> Occupancy {
    let waves_per_group = group_size.div_ceil(cfg.wavefront_size).max(1);
    let by_waves = (cfg.max_waves_per_cu / waves_per_group).max(1);
    let by_lds = cfg
        .local_mem_bytes
        .checked_div(local_bytes)
        .map_or(cfg.max_groups_per_cu, |n| n.max(1));
    let groups_per_cu = by_waves.min(by_lds).min(cfg.max_groups_per_cu).max(1);
    Occupancy {
        waves_per_group,
        groups_per_cu,
        local_bytes_per_group: local_bytes,
    }
}

/// Converts the total serialized group cycles into device cycles given the
/// machine's group-level parallelism.
///
/// The device executes `compute_units × groups_per_cu` groups concurrently;
/// with thousands of uniform groups the steady-state throughput model
/// `total / parallelism` is accurate to within one group's latency.
pub fn device_cycles(cfg: &DeviceConfig, occ: &Occupancy, group_cycles_total: u64) -> u64 {
    let parallelism = (cfg.compute_units * occ.groups_per_cu).max(1) as u64;
    group_cycles_total.div_ceil(parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::test_tiny()
    }

    #[test]
    fn phase_cost_zero_for_idle_phase() {
        let c = phase_cost(
            &cfg(),
            &CoalesceSummary::default(),
            &BankSummary::default(),
            &[],
            0,
        );
        assert_eq!(c, PhaseCost::default());
        assert_eq!(c.critical_path(), 0);
    }

    #[test]
    fn memory_cycles_scale_with_transactions() {
        let mem1 = CoalesceSummary {
            read_transactions: 10,
            dram_read_transactions: 10,
            ..Default::default()
        };
        let mem2 = CoalesceSummary {
            read_transactions: 20,
            dram_read_transactions: 20,
            ..Default::default()
        };
        let c1 = phase_cost(&cfg(), &mem1, &BankSummary::default(), &[], 0);
        let c2 = phase_cost(&cfg(), &mem2, &BankSummary::default(), &[], 0);
        // Both pay the same exposed latency; the issue cost doubles.
        let issue = cfg().global_issue_cycles;
        assert_eq!(c2.memory_cycles - c1.memory_cycles, 10 * issue);
    }

    #[test]
    fn exposed_latency_charged_once_per_phase() {
        let mem = CoalesceSummary {
            read_transactions: 1,
            dram_read_transactions: 1,
            ..Default::default()
        };
        let c = phase_cost(&cfg(), &mem, &BankSummary::default(), &[], 0);
        let exposed =
            (cfg().global_latency_cycles as f64 * (1.0 - cfg().latency_hiding)).round() as u64;
        assert_eq!(c.memory_cycles, cfg().global_issue_cycles + exposed);
    }

    #[test]
    fn alu_uses_wavefront_maxima() {
        let c = phase_cost(
            &cfg(),
            &CoalesceSummary::default(),
            &BankSummary::default(),
            &[10, 3],
            0,
        );
        assert_eq!(c.alu_cycles, 13 * cfg().alu_cycles_per_op);
    }

    #[test]
    fn burst_discount_neutral_when_prices_equal_and_active_when_cheaper() {
        let mem = CoalesceSummary {
            read_transactions: 10,
            dram_read_transactions: 10,
            dram_read_burst_transactions: 8,
            ..Default::default()
        };
        let base = cfg(); // presets price bursts at full cost
        assert_eq!(base.burst_issue_cycles, base.global_issue_cycles);
        let neutral = phase_cost(&base, &mem, &BankSummary::default(), &[], 0);
        let mut no_burst_info = mem;
        no_burst_info.dram_read_burst_transactions = 0;
        let reference = phase_cost(&base, &no_burst_info, &BankSummary::default(), &[], 0);
        assert_eq!(neutral, reference, "equal prices must be bit-neutral");

        let discounted = base
            .clone()
            .with_burst_discount(base.global_issue_cycles / 2);
        let cheap = phase_cost(&discounted, &mem, &BankSummary::default(), &[], 0);
        let saved = 8 * (base.global_issue_cycles - discounted.burst_issue_cycles);
        assert_eq!(neutral.memory_cycles - cheap.memory_cycles, saved);
    }

    #[test]
    fn shifted_elements_charge_the_local_pipeline() {
        let c = phase_cost(
            &cfg(),
            &CoalesceSummary::default(),
            &BankSummary::default(),
            &[],
            5,
        );
        assert_eq!(c.memory_cycles, 0, "shifts cost no global traffic");
        assert_eq!(c.local_cycles, 5 * cfg().shift_issue_cycles);
    }

    #[test]
    fn critical_path_takes_roofline_max() {
        let a = PhaseCost {
            memory_cycles: 100,
            alu_cycles: 30,
            local_cycles: 20,
        };
        assert_eq!(a.critical_path(), 100);
        let b = PhaseCost {
            memory_cycles: 40,
            alu_cycles: 30,
            local_cycles: 20,
        };
        assert_eq!(b.critical_path(), 50);
    }

    #[test]
    fn occupancy_limited_by_local_memory() {
        let cfg = cfg(); // 4 KiB local memory
        let occ = occupancy(&cfg, 16, 2048);
        assert_eq!(occ.groups_per_cu, 2);
        let occ = occupancy(&cfg, 16, 4096);
        assert_eq!(occ.groups_per_cu, 1);
    }

    #[test]
    fn occupancy_without_local_memory_hits_group_cap() {
        let cfg = cfg();
        let occ = occupancy(&cfg, 4, 0);
        assert_eq!(occ.groups_per_cu, cfg.max_groups_per_cu);
    }

    #[test]
    fn occupancy_limited_by_waves() {
        let cfg = cfg(); // wavefront 4, max 40 waves/cu
        let occ = occupancy(&cfg, 64, 0); // 16 waves per group
        assert_eq!(occ.waves_per_group, 16);
        assert_eq!(occ.groups_per_cu, 2);
    }

    #[test]
    fn occupancy_never_zero_even_when_oversubscribed() {
        let cfg = cfg();
        let occ = occupancy(&cfg, 64, cfg.local_mem_bytes * 2);
        assert_eq!(occ.groups_per_cu, 1);
    }

    #[test]
    fn device_cycles_divide_by_parallelism() {
        let cfg = cfg(); // 1 CU
        let occ = Occupancy {
            waves_per_group: 1,
            groups_per_cu: 4,
            local_bytes_per_group: 0,
        };
        assert_eq!(device_cycles(&cfg, &occ, 400), 100);
        assert_eq!(device_cycles(&cfg, &occ, 401), 101);
    }

    #[test]
    fn more_local_memory_means_fewer_concurrent_groups_and_more_time() {
        let cfg = cfg();
        let small = occupancy(&cfg, 16, 512);
        let big = occupancy(&cfg, 16, 2048);
        assert!(small.groups_per_cu > big.groups_per_cu);
        assert!(device_cycles(&cfg, &small, 10_000) <= device_cycles(&cfg, &big, 10_000));
    }
}
