//! # kp-gpu-sim — a deterministic OpenCL-style GPU simulator
//!
//! This crate is the hardware substrate of the
//! [kernel-perforation](https://doi.org/10.1145/3168814) reproduction: a
//! software model of a GCN-class GPU with
//!
//! * an OpenCL execution model — NDRanges, work groups, work items,
//!   barriers (expressed as *phase kernels*, see [`Kernel`]),
//! * three memory spaces — **global** (buffers, high latency, transaction
//!   coalescing), **local** (per-group scratchpad, banked, low latency) and
//!   **private** (plain Rust locals in kernel code, free),
//! * an analytic timing model — per-phase roofline of memory vs.
//!   ALU+local cycles, wavefront-granular divergence, occupancy from
//!   local-memory usage (see [`crate::timing`]).
//!
//! Functional execution is exact and deterministic; only *time* is modeled.
//! This mirrors how the paper's numbers decompose: output **error** comes
//! from real data flowing through real kernels, while **speedup** comes
//! from the memory system (fewer coalesced transactions when loads are
//! perforated).
//!
//! ## Execution model: parallel but deterministic
//!
//! [`Device::launch`] runs work groups on a parallel engine while keeping
//! every observable result — output buffers, statistics, cycle counts,
//! fault logs — **bit-identical** across worker-thread counts, runs and
//! platforms. The mechanism:
//!
//! 1. Every group executes against a **read-only snapshot** of global
//!    memory taken at launch entry. Stores go into a per-group write log;
//!    loads consult that log first, so a group always observes *its own*
//!    earlier writes (intra-group read-after-write across phases and
//!    items works exactly as in serial execution).
//! 2. Groups are sharded over scoped worker threads in contiguous
//!    row-major chunks; each worker owns its local-memory arena, profiling
//!    trackers and fault log, so no state is shared between groups.
//! 3. After all groups finish, write logs are **replayed in row-major
//!    group order**, and statistics / cycles / faults are reduced in that
//!    same order — the exact order serial execution produces.
//!
//! The contract this relies on is OpenCL's own: work groups of one launch
//! must not communicate through global memory (there is no inter-group
//! ordering on real hardware either). Kernels honoring that contract get
//! identical results at any [`DeviceConfig::parallelism`] setting; the
//! pathological exception — a group reading what *another group* wrote in
//! the same launch — is only defined on the legacy reference path.
//!
//! [`Device::launch_serial`] keeps that legacy path alive: one group at a
//! time, writes applied before the next group starts. It is the
//! differential-testing reference (`tests/parallel_determinism.rs` asserts
//! bit-equality against it at several thread counts) and the fallback for
//! kernels that are not [`Sync`]. Setting `parallelism = 1` makes
//! [`Device::launch`] degenerate to the same semantics.
//!
//! Launch geometry (group/item coordinate lists, wavefront and coalescing
//! granule assignments) is precomputed once per [`NdRange`] and cached on
//! the device, so parameter sweeps re-launching the same shape skip that
//! setup entirely.
//!
//! ## Command queues: enqueue, overlap, stay deterministic
//!
//! The primary host API is OpenCL-style **command streams**:
//! [`Device::create_queue`] returns a [`Queue`] whose
//! `enqueue_launch` / `enqueue_read` / `enqueue_write` / `enqueue_copy`
//! methods append commands and return [`Event`]s immediately. Commands
//! declare wait-lists (events), the scheduler additionally infers buffer
//! read/write hazards from each kernel's declared
//! [`Kernel::buffer_usage`], and everything whose dependencies are
//! satisfied executes **eagerly, out of order and concurrently** on a
//! persistent per-device worker pool — commands start *before* the first
//! wait, so host code between enqueue and wait overlaps with the device,
//! and [`Queue::set_priority`] steers which ready command a free worker
//! picks first. Every observable result stays bit-identical to executing
//! the stream one command at a time in enqueue order. See the
//! [`queue`][Queue] docs for the pool lifecycle and the full determinism
//! argument, and [`Event::timing`] for per-command profiling timestamps.
//!
//! The blocking API remains as documented shims over the stream:
//! [`Device::launch`] ≡ enqueue + wait, [`Device::read_buffer`] ≡
//! `enqueue_read` + wait, and so on — each joins the pending stream
//! first, so mixing the two styles preserves enqueue-order semantics.
//!
//! ## Non-blocking completion: poll, callbacks, completion queues
//!
//! A serving loop with thousands of commands in flight never parks on
//! individual events. [`Event::poll`] is a non-parking readiness check
//! returning the settled outcome; [`Event::on_complete`] registers a
//! callback fired exactly once from the resolving worker with the device
//! lock released; and a [`CompletionQueue`] multiplexes any number of
//! events — across all devices of a [`DeviceGroup`] — into one drainable
//! ready-stream ([`CompletionQueue::drain`] / [`CompletionQueue::next`]).
//! Completion *order* follows the actual schedule and is not
//! deterministic, but every outcome, report and fault log observed
//! through these paths is bit-identical to blocking waits — the
//! `queue_graph` differential suite pins this at several worker counts.
//!
//! ## Multi-device: `DeviceGroup`
//!
//! [`DeviceGroup`] owns a fleet of N identically configured devices
//! behind one handle (fleet size: [`DeviceConfig::devices`], the
//! `KP_SIM_DEVICES` environment variable, or
//! [`DeviceGroup::with_devices`]). One large launch shards across the
//! members by contiguous row-major group ranges with bit-identical
//! outputs, reports and fault logs at any member count
//! ([`DeviceGroup::launch_sharded`]); independent commands go to the
//! least-loaded member ([`DeviceGroup::place`] /
//! [`DeviceGroup::launch_on`]); and group buffers keep one copy per
//! member with on-demand migration, counted and priced in
//! [`GroupStats`]. Events may cross devices in wait-lists — see
//! [`Queue`]'s "Cross-device waits" docs.
//!
//! ## Kernel execution: compile once, execute per item
//!
//! Hand-written Rust kernels are plain `run_phase` implementations and the
//! engine calls them directly. Language-level kernels (the `kp-ir` crate's
//! PerfCL interpreter) follow a **compile-optimize-execute** pipeline
//! instead: at kernel construction the checked AST is lowered once to a
//! flat register bytecode (resolved variable slots, pre-bound buffer
//! handles and builtins, jump-target control flow), an optimizer pass
//! pipeline rewrites it (constant folding, CSE, dead-code/dead-phase
//! elimination), and `run_phase` then drives a tight-loop VM over that
//! bytecode — no name lookups or tree walks on the per-item hot path.
//! Two knobs keep the slower strategies alive as differential
//! references, exactly like [`Device::launch_serial`] is for the
//! parallel engine: [`DeviceConfig::exec_mode`] (surfaced through
//! [`ItemCtx::exec_mode`]) selects the original tree-walking evaluator,
//! and [`DeviceConfig::opt_level`] ([`ItemCtx::opt_level`]) selects the
//! as-lowered, unoptimized bytecode. All strategies must produce
//! bit-identical outputs, statistics and fault logs, and the cross-crate
//! `vm_differential` suite asserts it.
//!
//! Stateful kernels keep their per-item execution state in
//! **engine-owned per-worker scratch** ([`KernelScratch`], reached via
//! [`ItemCtx::kernel_scratch`]) rather than behind their own locks: the
//! engine guarantees a worker runs all items of all phases of a group
//! before its next group and never shares scratch between workers, so
//! access is lock-free by construction at any worker count.
//!
//! ## Quick start
//!
//! ```
//! use kp_gpu_sim::{Device, DeviceConfig, ItemCtx, Kernel, NdRange, BufferId};
//!
//! struct Saxpy { x: BufferId, y: BufferId, a: f32 }
//!
//! impl Kernel for Saxpy {
//!     fn name(&self) -> &str { "saxpy" }
//!     fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
//!         let i = ctx.global_id(0);
//!         let x: f32 = ctx.read_global(self.x, i);
//!         let y: f32 = ctx.read_global(self.y, i);
//!         ctx.write_global(self.y, i, self.a * x + y);
//!         ctx.ops(2);
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dev = Device::new(DeviceConfig::firepro_w5100())?;
//! let x = dev.create_buffer_from("x", &[1.0f32; 1024])?;
//! let y = dev.create_buffer_from("y", &[2.0f32; 1024])?;
//! let report = dev.launch(&Saxpy { x, y, a: 3.0 }, NdRange::new_1d(1024, 64)?)?;
//! assert_eq!(dev.read_buffer::<f32>(y)?[0], 5.0);
//! assert!(report.stats.global_read_transactions > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod completion;
mod config;
mod device;
mod engine;
mod error;
mod event;
mod group;
mod kernel;
mod ndrange;
mod queue;
mod stats;

pub mod coalesce;
pub mod local;
pub mod timing;

pub use buffer::{BufferId, ElemKind, Scalar};
pub use completion::{Completion, CompletionQueue};
pub use config::{DeviceConfig, ExecMode, OptLevel};
pub use device::Device;
pub use engine::{resolve_devices, resolve_lanes, resolve_parallelism, DEFAULT_LANES};
pub use error::SimError;
pub use event::{Event, EventTiming};
pub use group::DeviceGroup;
pub use kernel::{Fault, FaultKind, ItemCtx, Kernel, KernelScratch, WaveCtx};
pub use local::{LocalId, LocalSpec};
pub use ndrange::{NdRange, NdRangeError};
pub use queue::{BufferUse, Queue};
pub use stats::{GroupStats, LaunchReport, LaunchStats, Occupancy, TimingBreakdown};
