//! # kp-gpu-sim — a deterministic OpenCL-style GPU simulator
//!
//! This crate is the hardware substrate of the
//! [kernel-perforation](https://doi.org/10.1145/3168814) reproduction: a
//! software model of a GCN-class GPU with
//!
//! * an OpenCL execution model — NDRanges, work groups, work items,
//!   barriers (expressed as *phase kernels*, see [`Kernel`]),
//! * three memory spaces — **global** (buffers, high latency, transaction
//!   coalescing), **local** (per-group scratchpad, banked, low latency) and
//!   **private** (plain Rust locals in kernel code, free),
//! * an analytic timing model — per-phase roofline of memory vs.
//!   ALU+local cycles, wavefront-granular divergence, occupancy from
//!   local-memory usage (see [`crate::timing`]).
//!
//! Functional execution is exact and deterministic; only *time* is modeled.
//! This mirrors how the paper's numbers decompose: output **error** comes
//! from real data flowing through real kernels, while **speedup** comes
//! from the memory system (fewer coalesced transactions when loads are
//! perforated).
//!
//! ## Quick start
//!
//! ```
//! use kp_gpu_sim::{Device, DeviceConfig, ItemCtx, Kernel, NdRange, BufferId};
//!
//! struct Saxpy { x: BufferId, y: BufferId, a: f32 }
//!
//! impl Kernel for Saxpy {
//!     fn name(&self) -> &str { "saxpy" }
//!     fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
//!         let i = ctx.global_id(0);
//!         let x: f32 = ctx.read_global(self.x, i);
//!         let y: f32 = ctx.read_global(self.y, i);
//!         ctx.write_global(self.y, i, self.a * x + y);
//!         ctx.ops(2);
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dev = Device::new(DeviceConfig::firepro_w5100())?;
//! let x = dev.create_buffer_from("x", &[1.0f32; 1024])?;
//! let y = dev.create_buffer_from("y", &[2.0f32; 1024])?;
//! let report = dev.launch(&Saxpy { x, y, a: 3.0 }, NdRange::new_1d(1024, 64)?)?;
//! assert_eq!(dev.read_buffer::<f32>(y)?[0], 5.0);
//! assert!(report.stats.global_read_transactions > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod config;
mod device;
mod error;
mod kernel;
mod ndrange;
mod stats;

pub mod coalesce;
pub mod local;
pub mod timing;

pub use buffer::{BufferId, ElemKind, Scalar};
pub use config::DeviceConfig;
pub use device::Device;
pub use error::SimError;
pub use kernel::{Fault, FaultKind, ItemCtx, Kernel};
pub use local::{LocalId, LocalSpec};
pub use ndrange::{NdRange, NdRangeError};
pub use stats::{LaunchReport, LaunchStats, Occupancy, TimingBreakdown};
