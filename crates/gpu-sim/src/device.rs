//! The simulated device: buffer lifecycle and the launch loop.

use crate::buffer::{BufferId, ElemKind, RawBuffer, Scalar};
use crate::config::DeviceConfig;
use crate::error::SimError;
use crate::kernel::{FaultLog, ItemCtx, Kernel, PhaseProfile};
use crate::local::LocalArena;
use crate::ndrange::NdRange;
use crate::stats::{LaunchReport, LaunchStats, TimingBreakdown};
use crate::timing;

/// A simulated GPU device.
///
/// Owns global-memory buffers and executes [`Kernel`]s over [`NdRange`]s.
/// Execution is deterministic: work groups run in row-major order, work
/// items within a group run in row-major order within each phase, and a
/// barrier separates phases. Functional results are therefore exactly
/// reproducible across runs and platforms.
///
/// # Examples
///
/// See [`Kernel`] for an end-to-end example.
#[derive(Debug)]
pub struct Device {
    cfg: DeviceConfig,
    bufs: Vec<Option<RawBuffer>>,
    next_addr: u64,
    used_bytes: usize,
    profiling: bool,
}

impl Device {
    /// Creates a device with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is inconsistent.
    pub fn new(cfg: DeviceConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::Config)?;
        Ok(Self {
            cfg,
            bufs: Vec::new(),
            next_addr: 0,
            used_bytes: 0,
            profiling: true,
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Enables or disables profiling. With profiling off, launches skip
    /// transaction/bank/op accounting and the report contains zeros for
    /// stats and timing — useful when only the functional result matters
    /// (error measurements are roughly twice as fast).
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profiling = enabled;
    }

    /// Whether profiling is currently enabled.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Bytes of global memory currently allocated.
    pub fn used_global_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Allocates an uninitialized (zeroed) buffer of `len` elements.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the allocation would exceed the
    /// device's global memory.
    pub fn create_buffer<T: Scalar>(
        &mut self,
        label: &str,
        len: usize,
    ) -> Result<BufferId, SimError> {
        self.alloc(T::KIND, label, vec![0u64; len])
    }

    /// Allocates a buffer initialized from host data.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the allocation would exceed the
    /// device's global memory.
    pub fn create_buffer_from<T: Scalar>(
        &mut self,
        label: &str,
        data: &[T],
    ) -> Result<BufferId, SimError> {
        self.alloc(T::KIND, label, data.iter().map(|v| v.to_bits64()).collect())
    }

    fn alloc(&mut self, kind: ElemKind, label: &str, data: Vec<u64>) -> Result<BufferId, SimError> {
        let bytes = data.len() * kind.bytes();
        let available = self.cfg.global_mem_bytes.saturating_sub(self.used_bytes);
        if bytes > available {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                available,
            });
        }
        // Align each buffer to a transaction boundary so two buffers never
        // share a coalescing block.
        let txn = self.cfg.transaction_bytes as u64;
        let base_addr = self.next_addr.div_ceil(txn) * txn;
        self.next_addr = base_addr + bytes as u64;
        self.used_bytes += bytes;
        let id = BufferId(self.bufs.len() as u32);
        self.bufs.push(Some(RawBuffer {
            kind,
            data,
            base_addr,
            label: label.to_owned(),
        }));
        Ok(id)
    }

    /// Releases a buffer, making its bytes available again. The handle
    /// becomes invalid; later use is an error (host) or fault (kernel).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] if the handle is invalid.
    pub fn release_buffer(&mut self, id: BufferId) -> Result<(), SimError> {
        let slot = self
            .bufs
            .get_mut(id.index())
            .ok_or(SimError::UnknownBuffer(id))?;
        match slot.take() {
            Some(raw) => {
                self.used_bytes -= raw.byte_len();
                Ok(())
            }
            None => Err(SimError::UnknownBuffer(id)),
        }
    }

    fn raw(&self, id: BufferId) -> Result<&RawBuffer, SimError> {
        self.bufs
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(SimError::UnknownBuffer(id))
    }

    /// Number of elements in a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] if the handle is invalid.
    pub fn buffer_len(&self, id: BufferId) -> Result<usize, SimError> {
        Ok(self.raw(id)?.len())
    }

    /// Element kind of a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] if the handle is invalid.
    pub fn buffer_kind(&self, id: BufferId) -> Result<ElemKind, SimError> {
        Ok(self.raw(id)?.kind)
    }

    /// The label given to a buffer at creation time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] if the handle is invalid.
    pub fn buffer_label(&self, id: BufferId) -> Result<&str, SimError> {
        Ok(&self.raw(id)?.label)
    }

    /// Copies a buffer's contents to the host.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] or [`SimError::BufferKind`].
    pub fn read_buffer<T: Scalar>(&self, id: BufferId) -> Result<Vec<T>, SimError> {
        let raw = self.raw(id)?;
        if raw.kind != T::KIND {
            return Err(SimError::BufferKind {
                buffer: id,
                expected: T::KIND,
                actual: raw.kind,
            });
        }
        Ok(raw.data.iter().map(|&b| T::from_bits64(b)).collect())
    }

    /// Overwrites a buffer's contents from the host.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`], [`SimError::BufferKind`] or
    /// [`SimError::SizeMismatch`].
    pub fn write_buffer<T: Scalar>(&mut self, id: BufferId, data: &[T]) -> Result<(), SimError> {
        let raw = self
            .bufs
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(SimError::UnknownBuffer(id))?;
        if raw.kind != T::KIND {
            return Err(SimError::BufferKind {
                buffer: id,
                expected: T::KIND,
                actual: raw.kind,
            });
        }
        if raw.data.len() != data.len() {
            return Err(SimError::SizeMismatch {
                buffer: id,
                buffer_len: raw.data.len(),
                data_len: data.len(),
            });
        }
        for (slot, v) in raw.data.iter_mut().zip(data) {
            *slot = v.to_bits64();
        }
        Ok(())
    }

    /// Copies the contents of buffer `src` into buffer `dst` (device-side
    /// `clEnqueueCopyBuffer` equivalent; not charged by the timing model).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`], [`SimError::BufferKind`] or
    /// [`SimError::SizeMismatch`].
    pub fn copy_buffer(&mut self, src: BufferId, dst: BufferId) -> Result<(), SimError> {
        let src_raw = self.raw(src)?;
        let (kind, data) = (src_raw.kind, src_raw.data.clone());
        let dst_raw = self
            .bufs
            .get_mut(dst.index())
            .and_then(Option::as_mut)
            .ok_or(SimError::UnknownBuffer(dst))?;
        if dst_raw.kind != kind {
            return Err(SimError::BufferKind {
                buffer: dst,
                expected: kind,
                actual: dst_raw.kind,
            });
        }
        if dst_raw.data.len() != data.len() {
            return Err(SimError::SizeMismatch {
                buffer: dst,
                buffer_len: dst_raw.data.len(),
                data_len: data.len(),
            });
        }
        dst_raw.data = data;
        Ok(())
    }

    fn validate_launch(
        &self,
        name: &str,
        phases: usize,
        range: &NdRange,
        local_bytes: usize,
    ) -> Result<(), SimError> {
        if range.group_size_total() > self.cfg.max_work_group_size {
            return Err(SimError::Launch(format!(
                "work group of {} items exceeds device limit {}",
                range.group_size_total(),
                self.cfg.max_work_group_size
            )));
        }
        if local_bytes > self.cfg.local_mem_bytes {
            return Err(SimError::Launch(format!(
                "kernel '{name}' uses {local_bytes} bytes of local memory, device limit is {}",
                self.cfg.local_mem_bytes
            )));
        }
        if phases == 0 {
            return Err(SimError::Launch(format!(
                "kernel '{name}' declares zero phases"
            )));
        }
        Ok(())
    }

    /// Executes a kernel over the given range and returns its report.
    ///
    /// Functional effects (buffer writes) are applied in deterministic
    /// order. With profiling enabled the report carries full transaction /
    /// bank / timing accounting.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Launch`] for geometry or resource violations and
    /// [`SimError::KernelFaults`] if kernel code performed invalid accesses
    /// (buffers may be partially written in that case).
    pub fn launch<K: Kernel + ?Sized>(
        &mut self,
        kernel: &K,
        range: NdRange,
    ) -> Result<LaunchReport, SimError> {
        let specs = kernel.local_buffers();
        let mut arena = LocalArena::new(&specs);
        let local_bytes = arena.total_bytes();
        let phases = kernel.phases();
        self.validate_launch(kernel.name(), phases, &range, local_bytes)?;
        let group_size = range.group_size_total();
        let occ = timing::occupancy(&self.cfg, group_size, local_bytes);
        let mut profile = self
            .profiling
            .then(|| PhaseProfile::new(occ.waves_per_group));

        let mut stats = LaunchStats::default();
        let mut breakdown = TimingBreakdown::default();
        let mut faults = FaultLog::default();

        let group_coords: Vec<[usize; 3]> = range.group_coords().collect();
        let local_coords: Vec<[usize; 3]> = range.local_coords().collect();
        let wf_of: Vec<u32> = local_coords
            .iter()
            .map(|&c| (range.flatten_local(c) / self.cfg.wavefront_size) as u32)
            .collect();
        // Memory coalescing granule (quarter-wavefront on GCN).
        let granule_of: Vec<u32> = local_coords
            .iter()
            .map(|&c| (range.flatten_local(c) / self.cfg.coalesce_width) as u32)
            .collect();

        for &group in &group_coords {
            arena.reset();
            let mut group_cycles = self.cfg.group_dispatch_cycles;
            for phase in 0..phases {
                if let Some(p) = profile.as_mut() {
                    p.reset_phase();
                }
                for (li, &local) in local_coords.iter().enumerate() {
                    let mut ctx = ItemCtx {
                        range: &range,
                        cfg: &self.cfg,
                        group,
                        local,
                        phase,
                        wavefront: wf_of[li],
                        granule: granule_of[li],
                        bufs: &mut self.bufs,
                        arena: &mut arena,
                        profile: profile.as_mut(),
                        faults: &mut faults,
                        local_seq: 0,
                        global_seq: 0,
                        item_ops: 0,
                    };
                    kernel.run_phase(phase, &mut ctx);
                    let item_ops = ctx.item_ops;
                    if let Some(p) = profile.as_mut() {
                        let wf = wf_of[li] as usize;
                        p.wf_max_ops[wf] = p.wf_max_ops[wf].max(item_ops);
                    }
                }
                if let Some(p) = profile.as_mut() {
                    let mem = p.coalesce.finish_phase();
                    let banks = p.banks.finish_phase();
                    let cost = timing::phase_cost(&self.cfg, &mem, &banks, &p.wf_max_ops);
                    stats.global_read_transactions += mem.read_transactions;
                    stats.global_write_transactions += mem.write_transactions;
                    stats.dram_read_transactions += mem.dram_read_transactions;
                    stats.dram_write_transactions += mem.dram_write_transactions;
                    stats.global_bytes_requested += mem.bytes_requested;
                    stats.global_bytes_transferred +=
                        mem.bytes_transferred(self.cfg.transaction_bytes);
                    stats.global_element_reads += mem.element_reads;
                    stats.global_element_writes += mem.element_writes;
                    stats.local_accesses += banks.accesses;
                    stats.local_steps += banks.steps;
                    stats.local_conflict_steps += banks.conflict_steps();
                    stats.alu_ops += p.wf_max_ops.iter().sum::<u64>();
                    breakdown.memory_cycles += cost.memory_cycles;
                    breakdown.compute_cycles += cost.alu_cycles + cost.local_cycles;
                    group_cycles += cost.critical_path();
                }
            }
            let barriers = self.cfg.barrier_cycles * (phases as u64 - 1);
            breakdown.overhead_cycles += barriers + self.cfg.group_dispatch_cycles;
            group_cycles += barriers;
            breakdown.group_cycles_total += group_cycles;
        }
        stats.uninit_local_reads = arena.uninit_reads;

        if self.profiling {
            breakdown.device_cycles =
                timing::device_cycles(&self.cfg, &occ, breakdown.group_cycles_total);
        } else {
            // Without profiling no memory/ALU accounting happened, so a
            // partial cycle count would be misleading; report zero time.
            breakdown = TimingBreakdown::default();
        }

        if !faults.is_empty() {
            return Err(SimError::KernelFaults {
                kernel: kernel.name().to_owned(),
                faults: faults.faults,
                total: faults.total,
            });
        }

        let mut report = LaunchReport {
            kernel: kernel.name().to_owned(),
            groups: group_coords.len(),
            phases,
            profiled: self.profiling,
            stats,
            timing: breakdown,
            occupancy: occ,
            seconds: 0.0,
        };
        report.finalize(&self.cfg);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::{LocalId, LocalSpec};

    struct Copy1D {
        src: BufferId,
        dst: BufferId,
    }

    impl Kernel for Copy1D {
        fn name(&self) -> &str {
            "copy1d"
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            let i = ctx.global_id(0);
            let v: f32 = ctx.read_global(self.src, i);
            ctx.write_global(self.dst, i, v);
            ctx.ops(1);
        }
    }

    fn device() -> Device {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    #[test]
    fn buffer_roundtrip() {
        let mut dev = device();
        let data = vec![1.0f32, 2.0, 3.0];
        let id = dev.create_buffer_from("x", &data).unwrap();
        assert_eq!(dev.read_buffer::<f32>(id).unwrap(), data);
        assert_eq!(dev.buffer_len(id).unwrap(), 3);
        assert_eq!(dev.buffer_kind(id).unwrap(), ElemKind::F32);
    }

    #[test]
    fn buffer_kind_checked_on_host_reads() {
        let mut dev = device();
        let id = dev.create_buffer_from("x", &[1.0f32]).unwrap();
        assert!(matches!(
            dev.read_buffer::<i32>(id),
            Err(SimError::BufferKind { .. })
        ));
    }

    #[test]
    fn write_buffer_checks_length() {
        let mut dev = device();
        let id = dev.create_buffer::<f32>("x", 4).unwrap();
        assert!(matches!(
            dev.write_buffer(id, &[1.0f32; 3]),
            Err(SimError::SizeMismatch { .. })
        ));
        dev.write_buffer(id, &[9.0f32; 4]).unwrap();
        assert_eq!(dev.read_buffer::<f32>(id).unwrap(), vec![9.0; 4]);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut dev = device();
        let too_big = dev.config().global_mem_bytes / 4 + 1;
        assert!(matches!(
            dev.create_buffer::<f32>("big", too_big),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn release_buffer_reclaims_capacity() {
        let mut dev = device();
        let id = dev.create_buffer::<f32>("x", 1024).unwrap();
        let used = dev.used_global_bytes();
        dev.release_buffer(id).unwrap();
        assert_eq!(dev.used_global_bytes(), used - 4096);
        assert!(matches!(
            dev.read_buffer::<f32>(id),
            Err(SimError::UnknownBuffer(_))
        ));
        assert!(matches!(
            dev.release_buffer(id),
            Err(SimError::UnknownBuffer(_))
        ));
    }

    #[test]
    fn copy_buffer_copies() {
        let mut dev = device();
        let a = dev.create_buffer_from("a", &[1.0f32, 2.0]).unwrap();
        let b = dev.create_buffer::<f32>("b", 2).unwrap();
        dev.copy_buffer(a, b).unwrap();
        assert_eq!(dev.read_buffer::<f32>(b).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn launch_copies_data_functionally() {
        let mut dev = device();
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let src = dev.create_buffer_from("src", &data).unwrap();
        let dst = dev.create_buffer::<f32>("dst", 64).unwrap();
        let report = dev
            .launch(&Copy1D { src, dst }, NdRange::new_1d(64, 16).unwrap())
            .unwrap();
        assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), data);
        assert_eq!(report.groups, 4);
        assert!(report.profiled);
        assert!(report.timing.device_cycles > 0);
        assert!(report.seconds > 0.0);
        // 64 contiguous f32 = 256 bytes = 16 txn-bytes blocks of 16 bytes,
        // per wavefront of 4 items one block read and one written.
        assert_eq!(report.stats.global_element_reads, 64);
        assert_eq!(report.stats.global_element_writes, 64);
        assert_eq!(report.stats.global_read_transactions, 16);
        assert_eq!(report.stats.global_write_transactions, 16);
    }

    #[test]
    fn profiling_off_skips_stats_but_keeps_function() {
        let mut dev = device();
        dev.set_profiling(false);
        assert!(!dev.profiling());
        let data = vec![3.0f32; 16];
        let src = dev.create_buffer_from("src", &data).unwrap();
        let dst = dev.create_buffer::<f32>("dst", 16).unwrap();
        let report = dev
            .launch(&Copy1D { src, dst }, NdRange::new_1d(16, 4).unwrap())
            .unwrap();
        assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), data);
        assert!(!report.profiled);
        assert_eq!(report.stats.global_read_transactions, 0);
        assert_eq!(report.timing.device_cycles, 0);
    }

    #[test]
    fn oversized_work_group_rejected() {
        let mut dev = device();
        let src = dev.create_buffer::<f32>("src", 256).unwrap();
        let dst = dev.create_buffer::<f32>("dst", 256).unwrap();
        let err = dev
            .launch(&Copy1D { src, dst }, NdRange::new_1d(256, 128).unwrap())
            .unwrap_err();
        assert!(matches!(err, SimError::Launch(_)));
    }

    struct LocalHog;

    impl Kernel for LocalHog {
        fn name(&self) -> &str {
            "local-hog"
        }

        fn local_buffers(&self) -> Vec<LocalSpec> {
            vec![LocalSpec::new(ElemKind::F32, 1 << 20)]
        }

        fn run_phase(&self, _phase: usize, _ctx: &mut ItemCtx<'_>) {}
    }

    #[test]
    fn local_memory_overflow_rejected() {
        let mut dev = device();
        let err = dev
            .launch(&LocalHog, NdRange::new_1d(4, 4).unwrap())
            .unwrap_err();
        assert!(matches!(err, SimError::Launch(_)));
    }

    struct OobKernel {
        buf: BufferId,
    }

    impl Kernel for OobKernel {
        fn name(&self) -> &str {
            "oob"
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            let i = ctx.global_id(0);
            // Off-by-one: reads one element past the end on the last item.
            let v: f32 = ctx.read_global(self.buf, i + 1);
            ctx.write_global(self.buf, i, v);
        }
    }

    #[test]
    fn kernel_faults_surface_as_errors() {
        let mut dev = device();
        let buf = dev.create_buffer::<f32>("b", 8).unwrap();
        let err = dev
            .launch(&OobKernel { buf }, NdRange::new_1d(8, 4).unwrap())
            .unwrap_err();
        match err {
            SimError::KernelFaults {
                kernel,
                faults,
                total,
            } => {
                assert_eq!(kernel, "oob");
                assert_eq!(total, 1);
                assert_eq!(faults.len(), 1);
            }
            other => panic!("expected KernelFaults, got {other:?}"),
        }
    }

    struct TwoPhase {
        buf: BufferId,
        tile: LocalId,
    }

    impl Kernel for TwoPhase {
        fn name(&self) -> &str {
            "two-phase"
        }

        fn phases(&self) -> usize {
            2
        }

        fn local_buffers(&self) -> Vec<LocalSpec> {
            vec![LocalSpec::new(ElemKind::F32, 4)]
        }

        fn run_phase(&self, phase: usize, ctx: &mut ItemCtx<'_>) {
            let li = ctx.local_id(0);
            match phase {
                0 => {
                    let v: f32 = ctx.read_global(self.buf, ctx.global_id(0));
                    ctx.write_local(self.tile, li, v);
                }
                _ => {
                    // Read the neighbor written by another item in phase 0:
                    // only correct if the barrier separated the phases.
                    let v: f32 = ctx.read_local(self.tile, (li + 1) % 4);
                    ctx.write_global(self.buf, ctx.global_id(0), v);
                }
            }
        }
    }

    #[test]
    fn phases_act_as_barriers() {
        let mut dev = device();
        let buf = dev
            .create_buffer_from("b", &[10.0f32, 20.0, 30.0, 40.0])
            .unwrap();
        let kernel = TwoPhase {
            buf,
            tile: LocalId(0),
        };
        let report = dev.launch(&kernel, NdRange::new_1d(4, 4).unwrap()).unwrap();
        assert_eq!(
            dev.read_buffer::<f32>(buf).unwrap(),
            vec![20.0, 30.0, 40.0, 10.0]
        );
        assert_eq!(report.phases, 2);
        assert_eq!(report.stats.uninit_local_reads, 0);
        assert_eq!(report.stats.local_accesses, 8);
    }

    #[test]
    fn determinism_identical_reports() {
        let run = || {
            let mut dev = device();
            let data: Vec<f32> = (0..256).map(|i| (i * 7 % 13) as f32).collect();
            let src = dev.create_buffer_from("src", &data).unwrap();
            let dst = dev.create_buffer::<f32>("dst", 256).unwrap();
            let r = dev
                .launch(&Copy1D { src, dst }, NdRange::new_1d(256, 16).unwrap())
                .unwrap();
            (r, dev.read_buffer::<f32>(dst).unwrap())
        };
        let (r1, d1) = run();
        let (r2, d2) = run();
        assert_eq!(r1, r2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.compute_units = 0;
        assert!(matches!(Device::new(cfg), Err(SimError::Config(_))));
    }

    #[test]
    fn rejects_zero_phase_kernel() {
        struct NoPhases;
        impl Kernel for NoPhases {
            fn name(&self) -> &str {
                "none"
            }
            fn phases(&self) -> usize {
                0
            }
            fn run_phase(&self, _: usize, _: &mut ItemCtx<'_>) {}
        }
        let mut dev = device();
        assert!(matches!(
            dev.launch(&NoPhases, NdRange::new_1d(4, 4).unwrap()),
            Err(SimError::Launch(_))
        ));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::local::LocalSpec;

    fn device() -> Device {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    struct Fill3D {
        dst: BufferId,
        dims: (usize, usize, usize),
    }

    impl Kernel for Fill3D {
        fn name(&self) -> &str {
            "fill3d"
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            let (x, y, z) = (ctx.global_id(0), ctx.global_id(1), ctx.global_id(2));
            let (w, h, _) = self.dims;
            let idx = (z * h + y) * w + x;
            ctx.write_global(self.dst, idx, (x + 10 * y + 100 * z) as i32);
        }
    }

    #[test]
    fn three_dimensional_ranges_execute() {
        let mut dev = device();
        let (w, h, d) = (4, 4, 2);
        let dst = dev.create_buffer::<i32>("dst", w * h * d).unwrap();
        let kernel = Fill3D {
            dst,
            dims: (w, h, d),
        };
        let range = NdRange::new(3, [w, h, d], [2, 2, 1]).unwrap();
        let report = dev.launch(&kernel, range).unwrap();
        assert_eq!(report.groups, 2 * 2 * 2);
        let out = dev.read_buffer::<i32>(dst).unwrap();
        assert_eq!(out[0], 0);
        assert_eq!(out[(h + 2) * w + 3], 3 + 20 + 100);
    }

    struct MixedTypes {
        floats: BufferId,
        ints: BufferId,
        bytes: BufferId,
    }

    impl Kernel for MixedTypes {
        fn name(&self) -> &str {
            "mixed"
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            let i = ctx.global_id(0);
            let f: f32 = ctx.read_global(self.floats, i);
            let n: i32 = ctx.read_global(self.ints, i);
            let b: u8 = ctx.read_global(self.bytes, i);
            ctx.write_global(self.floats, i, f + n as f32 + b as f32);
        }
    }

    #[test]
    fn kernels_can_mix_buffer_element_types() {
        let mut dev = device();
        let floats = dev.create_buffer_from("f", &[0.5f32; 8]).unwrap();
        let ints = dev.create_buffer_from("i", &[2i32; 8]).unwrap();
        let bytes = dev.create_buffer_from("b", &[3u8; 8]).unwrap();
        dev.launch(
            &MixedTypes {
                floats,
                ints,
                bytes,
            },
            NdRange::new_1d(8, 4).unwrap(),
        )
        .unwrap();
        assert_eq!(dev.read_buffer::<f32>(floats).unwrap(), vec![5.5; 8]);
        // u8 elements occupy one byte each: 8 bytes requested from that
        // buffer in total.
        assert_eq!(dev.buffer_kind(bytes).unwrap(), ElemKind::U8);
    }

    struct WrongTypeKernel {
        buf: BufferId,
    }

    impl Kernel for WrongTypeKernel {
        fn name(&self) -> &str {
            "wrong-type"
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            // Buffer holds f32; reading i32 must fault.
            let _: i32 = ctx.read_global(self.buf, ctx.global_id(0));
        }
    }

    #[test]
    fn kind_mismatch_inside_kernel_faults() {
        let mut dev = device();
        let buf = dev.create_buffer_from("f", &[1.0f32; 4]).unwrap();
        let err = dev
            .launch(&WrongTypeKernel { buf }, NdRange::new_1d(4, 4).unwrap())
            .unwrap_err();
        match err {
            SimError::KernelFaults { faults, .. } => {
                assert!(matches!(
                    faults[0].kind,
                    crate::kernel::FaultKind::BufferKindMismatch { .. }
                ));
            }
            other => panic!("expected faults, got {other:?}"),
        }
    }

    struct LocalWrongType;

    impl Kernel for LocalWrongType {
        fn name(&self) -> &str {
            "local-wrong-type"
        }

        fn local_buffers(&self) -> Vec<LocalSpec> {
            vec![LocalSpec::new(ElemKind::F32, 8)]
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            ctx.write_local::<i32>(crate::LocalId(0), 0, 7);
            let _: f32 = ctx.read_local(crate::LocalId(1), 0);
        }
    }

    #[test]
    fn local_misuse_faults() {
        let mut dev = device();
        let err = dev
            .launch(&LocalWrongType, NdRange::new_1d(1, 1).unwrap())
            .unwrap_err();
        match err {
            SimError::KernelFaults { total, .. } => assert_eq!(total, 2),
            other => panic!("expected faults, got {other:?}"),
        }
    }

    struct Noop;

    impl Kernel for Noop {
        fn name(&self) -> &str {
            "noop"
        }

        fn run_phase(&self, _: usize, _: &mut ItemCtx<'_>) {}
    }

    #[test]
    fn occupancy_reported_in_launch() {
        let mut dev = device();
        let report = dev.launch(&Noop, NdRange::new_1d(64, 16).unwrap()).unwrap();
        // 16 items / 4-wide wavefronts = 4 waves per group.
        assert_eq!(report.occupancy.waves_per_group, 4);
        assert!(report.occupancy.groups_per_cu >= 1);
        assert_eq!(report.occupancy.local_bytes_per_group, 0);
    }

    #[test]
    fn copy_buffer_rejects_kind_and_size_mismatches() {
        let mut dev = device();
        let f = dev.create_buffer_from("f", &[1.0f32; 4]).unwrap();
        let i = dev.create_buffer_from("i", &[1i32; 4]).unwrap();
        let small = dev.create_buffer::<f32>("s", 2).unwrap();
        assert!(matches!(
            dev.copy_buffer(f, i),
            Err(SimError::BufferKind { .. })
        ));
        assert!(matches!(
            dev.copy_buffer(f, small),
            Err(SimError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn buffer_labels_are_kept() {
        let mut dev = device();
        let id = dev.create_buffer::<f32>("my-label", 1).unwrap();
        assert_eq!(dev.buffer_label(id).unwrap(), "my-label");
    }

    #[test]
    fn overhead_cycles_accumulate_per_group() {
        let mut dev = device();
        let r1 = dev.launch(&Noop, NdRange::new_1d(16, 16).unwrap()).unwrap();
        let r4 = dev.launch(&Noop, NdRange::new_1d(64, 16).unwrap()).unwrap();
        assert_eq!(r4.timing.overhead_cycles, 4 * r1.timing.overhead_cycles);
    }
}
