//! The simulated device: buffer lifecycle, command queues and the
//! blocking launch shims.
//!
//! The execution machinery lives in [`crate::engine`]; command scheduling
//! lives in [`crate::queue`]. This module owns the shared device state
//! (buffer table, configuration, command stream) and exposes:
//!
//! * [`Device::create_queue`] — the asynchronous command-stream API
//!   ([`crate::Queue`] / [`crate::Event`]), the primary interface;
//! * [`Device::launch`] / [`Device::launch_serial`] — thin blocking shims,
//!   semantically `enqueue_launch` + wait, kept for the many call sites
//!   that run one kernel at a time (and, for `launch_serial`, for kernels
//!   that are not [`Sync`]);
//! * blocking buffer operations ([`Device::read_buffer`],
//!   [`Device::write_buffer`], [`Device::copy_buffer`]) — shims over the
//!   corresponding enqueued commands: each first waits for every pending
//!   command to complete (execution is eager, so this is a pure join), and
//!   therefore observes exactly the state an in-order execution would have
//!   produced.
//!
//! Fleets of devices are managed by [`crate::DeviceGroup`], which shards
//! launches across members and keeps buffers coherent; this module only
//! provides the single-device primitives it builds on.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::buffer::{BufferId, ElemKind, RawBuffer, Scalar};
use crate::config::DeviceConfig;
use crate::engine::{self, resolve_parallelism, BufTable, LaunchPlan, LaunchSetup, PlanCache};
use crate::error::SimError;
use crate::kernel::Kernel;
use crate::local::LocalSpec;
use crate::ndrange::NdRange;
use crate::queue::{drain_all, Queue, Sched};
use crate::stats::LaunchReport;
use crate::timing;

/// Device state shared between the [`Device`] handle, its queues and its
/// events. Queues and events hold [`std::sync::Weak`] references: dropping
/// the `Device` frees the state and turns every leftover handle into
/// [`SimError::DeviceLost`].
pub(crate) struct DeviceShared {
    pub(crate) state: Mutex<DeviceState>,
    /// Signalled whenever a command completes or is cancelled; drains
    /// block on it while other threads execute their dependencies.
    pub(crate) cv: Condvar,
    /// Origin of every [`crate::EventTiming`] timestamp.
    pub(crate) epoch: Instant,
}

impl std::fmt::Debug for DeviceShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceShared").finish_non_exhaustive()
    }
}

/// The mutable device state behind the lock.
pub(crate) struct DeviceState {
    pub(crate) cfg: DeviceConfig,
    pub(crate) bufs: BufTable,
    pub(crate) next_addr: u64,
    pub(crate) used_bytes: usize,
    pub(crate) profiling: bool,
    pub(crate) plans: PlanCache,
    pub(crate) sched: Sched,
    /// Set by [`Device`]'s drop: workers exit instead of picking new
    /// commands, and blocked waits return [`SimError::DeviceLost`].
    pub(crate) shutdown: bool,
    /// Join handles of the persistent worker pool (spawned lazily on
    /// first enqueue; joined by [`Device`]'s drop). Workers never touch
    /// this field themselves. Pool sizing counts `workers.len()`, so
    /// only pool threads may live here — bridges go in `bridges`.
    pub(crate) workers: Vec<std::thread::JoinHandle<()>>,
    /// Join handles of one-shot cross-device bridge threads (spawned per
    /// foreign wait-list event; joined by [`Device`]'s drop). Kept apart
    /// from `workers` so they never count toward the pool target.
    pub(crate) bridges: Vec<std::thread::JoinHandle<()>>,
}

/// Validates a launch against device limits and captures its immutable
/// setup (plan, occupancy, local specs). Shared by the blocking shims and
/// [`crate::Queue::enqueue_launch`], so a queued launch fails at enqueue
/// time with exactly the error its blocking twin would return.
pub(crate) fn prepare_launch(
    st: &mut DeviceState,
    name: &str,
    phases: usize,
    local_specs: Vec<LocalSpec>,
    range: NdRange,
) -> Result<(Arc<LaunchPlan>, LaunchSetup), SimError> {
    let local_bytes = local_specs.iter().map(LocalSpec::bytes).sum();
    if range.group_size_total() > st.cfg.max_work_group_size {
        return Err(SimError::Launch(format!(
            "work group of {} items exceeds device limit {}",
            range.group_size_total(),
            st.cfg.max_work_group_size
        )));
    }
    if local_bytes > st.cfg.local_mem_bytes {
        return Err(SimError::Launch(format!(
            "kernel '{name}' uses {local_bytes} bytes of local memory, device limit is {}",
            st.cfg.local_mem_bytes
        )));
    }
    if phases == 0 {
        return Err(SimError::Launch(format!(
            "kernel '{name}' declares zero phases"
        )));
    }
    let occ = timing::occupancy(&st.cfg, range.group_size_total(), local_bytes);
    let plan = st.plans.get(&st.cfg, range);
    Ok((
        plan,
        LaunchSetup {
            local_specs,
            phases,
            occ,
        },
    ))
}

/// A simulated GPU device.
///
/// Owns global-memory buffers and executes [`Kernel`]s over [`NdRange`]s,
/// either through enqueued command streams ([`Device::create_queue`]) or
/// through the blocking shims ([`Device::launch`]). Execution is
/// deterministic: results are bit-identical across runs, platforms,
/// worker-thread counts *and command schedules* (see the crate-level
/// "Execution model" documentation and [`crate::Queue`]).
///
/// # Examples
///
/// See [`crate::Queue`] for the command-stream API and [`Kernel`] for a
/// blocking end-to-end example.
#[derive(Debug)]
pub struct Device {
    shared: Arc<DeviceShared>,
    /// Host-side copies of the locked configuration, kept in sync by the
    /// `&mut self` setters so [`Device::config`] can hand out references.
    cfg: DeviceConfig,
    profiling: bool,
}

impl Device {
    /// Creates a device with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is inconsistent.
    pub fn new(cfg: DeviceConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::Config)?;
        Ok(Self {
            shared: Arc::new(DeviceShared {
                state: Mutex::new(DeviceState {
                    cfg: cfg.clone(),
                    bufs: Vec::new(),
                    next_addr: 0,
                    used_bytes: 0,
                    profiling: true,
                    plans: PlanCache::default(),
                    sched: Sched::default(),
                    shutdown: false,
                    workers: Vec::new(),
                    bridges: Vec::new(),
                }),
                cv: Condvar::new(),
                epoch: Instant::now(),
            }),
            cfg,
            profiling: true,
        })
    }

    fn state(&self) -> std::sync::MutexGuard<'_, DeviceState> {
        self.shared.state.lock().expect("device state poisoned")
    }

    /// Creates a command queue on this device (see [`Queue`]).
    ///
    /// Any number of queues may coexist; they share one command stream
    /// (one global enqueue order) and exist as grouping/lifetime scopes —
    /// commands on different queues overlap exactly as freely as commands
    /// on one queue, ordering comes from events and buffer hazards alone.
    pub fn create_queue(&self) -> Queue {
        let id = self.state().sched.new_queue();
        Queue {
            shared: Arc::downgrade(&self.shared),
            id,
        }
    }

    /// Blocks until every pending enqueued command has completed.
    /// Execution itself is eager — the persistent worker pool starts
    /// commands as soon as their dependencies clear — so this is a pure
    /// join, not a trigger. Blocking operations call it internally; it is
    /// public for host code that wants a full barrier across all queues
    /// without tracking events.
    pub fn finish(&self) {
        drain_all(&self.shared);
    }

    /// Sets the number of worker threads the launch engine uses
    /// (`0` = one per available core). The same budget bounds how many
    /// enqueued commands execute concurrently: the persistent worker
    /// pool grows lazily on enqueue (and its threads persist until the
    /// device drops), but workers only *pick* commands while fewer than
    /// the current budget are running — so lowering the knob takes
    /// effect immediately, surplus workers simply park. For kernels
    /// whose groups are independent within one launch — the OpenCL
    /// contract, see the crate-level "Execution model" docs — results
    /// are identical for every value; only wall-clock time changes.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.cfg.parallelism = threads;
        self.state().cfg.parallelism = threads;
    }

    /// Sets the execution strategy for kernels that carry both a bytecode
    /// compiler and a reference interpreter (see [`crate::ExecMode`]).
    /// Both strategies are bit-identical by contract; `Interpreted` is the
    /// slow differential reference.
    pub fn set_exec_mode(&mut self, mode: crate::ExecMode) {
        self.cfg.exec_mode = mode;
        self.state().cfg.exec_mode = mode;
    }

    /// Sets the bytecode optimization level for kernels that carry both an
    /// optimized and an as-lowered compiled form (see [`crate::OptLevel`]).
    /// All levels are bit-identical by contract; `None` is the as-lowered
    /// differential reference.
    pub fn set_opt_level(&mut self, level: crate::OptLevel) {
        self.cfg.opt_level = level;
        self.state().cfg.opt_level = level;
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Enables or disables profiling. With profiling off, launches skip
    /// transaction/bank/op accounting and the report contains zeros for
    /// stats and timing — useful when only the functional result matters
    /// (error measurements are roughly twice as fast). The flag is
    /// captured per command at enqueue time; per-event wall-clock
    /// timestamps ([`crate::Event::timing`]) are always available,
    /// independent of this knob.
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profiling = enabled;
        self.state().profiling = enabled;
    }

    /// Whether profiling is currently enabled.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Bytes of global memory currently allocated.
    pub fn used_global_bytes(&self) -> usize {
        self.state().used_bytes
    }

    /// Allocates an uninitialized (zeroed) buffer of `len` elements.
    ///
    /// Allocation is immediate (host order) and never waits on pending
    /// commands — a fresh buffer cannot conflict with any of them.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the allocation would exceed the
    /// device's global memory.
    pub fn create_buffer<T: Scalar>(
        &mut self,
        label: &str,
        len: usize,
    ) -> Result<BufferId, SimError> {
        self.alloc(T::KIND, label, vec![0u64; len])
    }

    /// Allocates a buffer initialized from host data.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the allocation would exceed the
    /// device's global memory.
    pub fn create_buffer_from<T: Scalar>(
        &mut self,
        label: &str,
        data: &[T],
    ) -> Result<BufferId, SimError> {
        self.alloc(T::KIND, label, data.iter().map(|v| v.to_bits64()).collect())
    }

    fn alloc(&mut self, kind: ElemKind, label: &str, data: Vec<u64>) -> Result<BufferId, SimError> {
        let mut st = self.state();
        // The launch engine packs element indices into 32 bits (write-log
        // entries); cap per-buffer length so that packing can never
        // truncate, whatever global_mem_bytes a custom config allows.
        if u32::try_from(data.len()).is_err() {
            return Err(SimError::Launch(format!(
                "buffer '{label}' has {} elements; the device supports at most {} per buffer",
                data.len(),
                u32::MAX
            )));
        }
        // Slots are packed into 24 bits alongside the 40-bit element index
        // in write-log keys, and released slots are never reused, so cap
        // the lifetime allocation count symmetrically.
        if st.bufs.len() >= (1 << 24) {
            return Err(SimError::Launch(format!(
                "buffer '{label}' exceeds the device's lifetime limit of {} allocations",
                1 << 24
            )));
        }
        let bytes = data.len() * kind.bytes();
        let available = st.cfg.global_mem_bytes.saturating_sub(st.used_bytes);
        if bytes > available {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                available,
            });
        }
        // Align each buffer to a transaction boundary so two buffers never
        // share a coalescing block.
        let txn = st.cfg.transaction_bytes as u64;
        let base_addr = st.next_addr.div_ceil(txn) * txn;
        st.next_addr = base_addr + bytes as u64;
        st.used_bytes += bytes;
        let id = BufferId(st.bufs.len() as u32);
        st.bufs.push(Some(Arc::new(RawBuffer {
            kind,
            data,
            base_addr,
            label: label.into(),
        })));
        Ok(id)
    }

    /// Releases a buffer, making its bytes available again. Completion of
    /// every pending enqueued command is awaited first, so every command
    /// that could reference the buffer has finished. The handle becomes
    /// invalid; later use is an error (host) or fault (kernel).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] if the handle is invalid.
    pub fn release_buffer(&mut self, id: BufferId) -> Result<(), SimError> {
        self.finish();
        let mut st = self.state();
        let slot = st
            .bufs
            .get_mut(id.index())
            .ok_or(SimError::UnknownBuffer(id))?;
        match slot.take() {
            Some(raw) => {
                let bytes = raw.byte_len();
                drop(raw);
                st.used_bytes -= bytes;
                Ok(())
            }
            None => Err(SimError::UnknownBuffer(id)),
        }
    }

    /// Number of elements in a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] if the handle is invalid.
    pub fn buffer_len(&self, id: BufferId) -> Result<usize, SimError> {
        let st = self.state();
        st.bufs
            .get(id.index())
            .and_then(Option::as_ref)
            .map(|raw| raw.len())
            .ok_or(SimError::UnknownBuffer(id))
    }

    /// Element kind of a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] if the handle is invalid.
    pub fn buffer_kind(&self, id: BufferId) -> Result<ElemKind, SimError> {
        let st = self.state();
        st.bufs
            .get(id.index())
            .and_then(Option::as_ref)
            .map(|raw| raw.kind)
            .ok_or(SimError::UnknownBuffer(id))
    }

    /// The label given to a buffer at creation time. Returned as a shared
    /// `Arc<str>` handle — a refcount bump, not an allocation — so
    /// diagnostics can query labels on hot paths freely.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] if the handle is invalid.
    pub fn buffer_label(&self, id: BufferId) -> Result<Arc<str>, SimError> {
        let st = self.state();
        st.bufs
            .get(id.index())
            .and_then(Option::as_ref)
            .map(|raw| Arc::clone(&raw.label))
            .ok_or(SimError::UnknownBuffer(id))
    }

    /// Copies a buffer's contents to the host — the blocking shim over
    /// [`Queue::enqueue_read`]: it waits for the (eagerly executing)
    /// pending commands to complete first, so the data is exactly what
    /// in-order execution would have produced.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`] or [`SimError::BufferKind`].
    pub fn read_buffer<T: Scalar>(&self, id: BufferId) -> Result<Vec<T>, SimError> {
        self.finish();
        let st = self.state();
        let raw = st
            .bufs
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(SimError::UnknownBuffer(id))?;
        if raw.kind != T::KIND {
            return Err(SimError::BufferKind {
                buffer: id,
                expected: T::KIND,
                actual: raw.kind,
            });
        }
        Ok(raw.data.iter().map(|&b| T::from_bits64(b)).collect())
    }

    /// Overwrites a buffer's contents from the host — the blocking shim
    /// over [`Queue::enqueue_write`] (pending commands complete first).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`], [`SimError::BufferKind`] or
    /// [`SimError::SizeMismatch`].
    pub fn write_buffer<T: Scalar>(&mut self, id: BufferId, data: &[T]) -> Result<(), SimError> {
        self.finish();
        let mut st = self.state();
        let raw = st
            .bufs
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(SimError::UnknownBuffer(id))?;
        if raw.kind != T::KIND {
            return Err(SimError::BufferKind {
                buffer: id,
                expected: T::KIND,
                actual: raw.kind,
            });
        }
        if raw.len() != data.len() {
            return Err(SimError::SizeMismatch {
                buffer: id,
                buffer_len: raw.len(),
                data_len: data.len(),
            });
        }
        let raw = Arc::make_mut(raw);
        for (slot, v) in raw.data.iter_mut().zip(data) {
            *slot = v.to_bits64();
        }
        Ok(())
    }

    /// Copies the contents of buffer `src` into buffer `dst` — the
    /// blocking shim over [`Queue::enqueue_copy`] (pending commands
    /// complete first; not charged by the timing model).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBuffer`], [`SimError::BufferKind`] or
    /// [`SimError::SizeMismatch`].
    pub fn copy_buffer(&mut self, src: BufferId, dst: BufferId) -> Result<(), SimError> {
        self.finish();
        let mut st = self.state();
        let src_raw = st
            .bufs
            .get(src.index())
            .and_then(Option::as_ref)
            .ok_or(SimError::UnknownBuffer(src))?;
        let (kind, data) = (src_raw.kind, src_raw.data.clone());
        let dst_raw = st
            .bufs
            .get_mut(dst.index())
            .and_then(Option::as_mut)
            .ok_or(SimError::UnknownBuffer(dst))?;
        if dst_raw.kind != kind {
            return Err(SimError::BufferKind {
                buffer: dst,
                expected: kind,
                actual: dst_raw.kind,
            });
        }
        if dst_raw.len() != data.len() {
            return Err(SimError::SizeMismatch {
                buffer: dst,
                buffer_len: dst_raw.len(),
                data_len: data.len(),
            });
        }
        Arc::make_mut(dst_raw).data = data;
        Ok(())
    }

    /// Captures everything a blocking launch needs from the locked state.
    fn prepare_blocking<K: Kernel + ?Sized>(
        &mut self,
        kernel: &K,
        range: NdRange,
    ) -> Result<(Arc<LaunchPlan>, LaunchSetup, BufTable, bool), SimError> {
        let mut st = self.state();
        let (plan, setup) = prepare_launch(
            &mut st,
            kernel.name(),
            kernel.phases(),
            kernel.local_buffers(),
            range,
        )?;
        let snapshot = st.bufs.clone();
        let profiling = st.profiling;
        Ok((plan, setup, snapshot, profiling))
    }

    /// Applies a finished launch's writes to the backing buffers.
    fn apply_blocking(&mut self, entries: &[engine::WriteEntry]) {
        let mut st = self.state();
        engine::apply_writes(entries, &mut st.bufs);
    }

    /// Executes a kernel over the given range and returns its report —
    /// the blocking shim: semantically [`Queue::enqueue_launch`]
    /// immediately followed by [`crate::Event::wait_report`]. Completion
    /// of pending enqueued commands is awaited first (preserving
    /// enqueue-order semantics); the kernel itself is borrowed for the
    /// call, which is why the shim exists — the command stream proper
    /// stores only `'static` kernels.
    ///
    /// Work groups execute on the parallel launch engine: sharded across
    /// up to [`DeviceConfig::parallelism`] scoped worker threads, each
    /// group running against a read-only snapshot of global memory with
    /// its stores logged and applied in row-major group order afterwards.
    /// Results — buffers, statistics, timing, faults — are bit-identical
    /// for every thread count, provided groups are independent within one
    /// launch (no group reads what another group wrote during the same
    /// launch; OpenCL makes the same demand of real kernels). With one
    /// worker the engine degenerates to [`Device::launch_serial`]
    /// semantics exactly.
    ///
    /// With profiling enabled the report carries full transaction / bank /
    /// timing accounting.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Launch`] for geometry or resource violations and
    /// [`SimError::KernelFaults`] if kernel code performed invalid accesses
    /// (buffers may be partially written in that case).
    pub fn launch<K: Kernel + Sync + ?Sized>(
        &mut self,
        kernel: &K,
        range: NdRange,
    ) -> Result<LaunchReport, SimError> {
        self.finish();
        let (plan, setup, mut snapshot, profiling) = self.prepare_blocking(kernel, range)?;
        let workers = resolve_parallelism(self.cfg.parallelism).min(plan.group_coords.len());
        let (outcomes, entries) = if workers <= 1 {
            engine::execute_groups_serial(
                kernel,
                &self.cfg,
                &plan,
                &setup,
                &mut snapshot,
                profiling,
                None,
            )
        } else {
            engine::execute_groups_parallel(
                kernel, &self.cfg, &plan, &setup, &snapshot, profiling, workers, None,
            )
        };
        // Drop the snapshot before applying so unshared buffers are
        // written in place rather than copy-on-write.
        drop(snapshot);
        self.apply_blocking(&entries);
        engine::reduce_outcomes(
            kernel.name(),
            &self.cfg,
            profiling,
            &range,
            &setup,
            outcomes,
        )
    }

    /// Executes the row-major span `lo..hi` of a launch's work groups and
    /// returns the *unreduced* per-group outcomes plus their concatenated
    /// write entries — the member-device primitive behind
    /// [`crate::DeviceGroup::launch_sharded`]. Nothing is applied to this
    /// device's buffers: the group concatenates every member's spans in
    /// device order (restoring full row-major order), applies the writes
    /// on the gather device and reduces the outcomes exactly once, so a
    /// sharded launch's report and fault log are bit-identical to a
    /// single-device run.
    pub(crate) fn launch_span<K: Kernel + Sync + ?Sized>(
        &mut self,
        kernel: &K,
        range: NdRange,
        lo: usize,
        hi: usize,
    ) -> Result<
        (
            LaunchSetup,
            Vec<engine::GroupOutcome>,
            Vec<engine::WriteEntry>,
        ),
        SimError,
    > {
        self.finish();
        let (plan, setup, snapshot, profiling) = self.prepare_blocking(kernel, range)?;
        let workers = resolve_parallelism(self.cfg.parallelism)
            .min(hi.saturating_sub(lo))
            .max(1);
        let (outcomes, entries) = engine::execute_groups_span(
            kernel, &self.cfg, &plan, &setup, &snapshot, profiling, workers, None, lo, hi,
        );
        Ok((setup, outcomes, entries))
    }

    /// Applies write entries produced by another member's span to this
    /// device's backing buffers (slot indices agree fleet-wide because
    /// group members allocate in identical order).
    pub(crate) fn apply_entries(&mut self, entries: &[engine::WriteEntry]) {
        self.apply_blocking(entries);
    }

    /// Raw bit patterns of a buffer, for inter-device migration. Waits
    /// for pending commands like [`Device::read_buffer`] but skips the
    /// element-type conversion — a migration moves bits, not values.
    pub(crate) fn read_buffer_bits(&self, id: BufferId) -> Result<Vec<u64>, SimError> {
        self.finish();
        let st = self.state();
        st.bufs
            .get(id.index())
            .and_then(Option::as_ref)
            .map(|raw| raw.data.clone())
            .ok_or(SimError::UnknownBuffer(id))
    }

    /// Overwrites a buffer with raw bit patterns, for inter-device
    /// migration. The caller (the group's coherence layer) guarantees the
    /// source buffer has the same kind and length.
    pub(crate) fn write_buffer_bits(&mut self, id: BufferId, bits: &[u64]) -> Result<(), SimError> {
        self.finish();
        let mut st = self.state();
        let raw = st
            .bufs
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(SimError::UnknownBuffer(id))?;
        debug_assert_eq!(raw.len(), bits.len(), "migration size mismatch");
        Arc::make_mut(raw).data = bits.to_vec();
        Ok(())
    }

    /// Number of enqueued commands not yet completed (pending + running).
    /// The load signal behind [`crate::DeviceGroup`]'s least-loaded
    /// placement.
    pub(crate) fn pending_commands(&self) -> usize {
        self.state().sched.pending_len()
    }

    /// Executes a kernel one work group at a time on the calling thread.
    ///
    /// Semantics match pre-engine serial execution exactly: each group's
    /// writes are visible to the next group, so even (non-deterministic on
    /// real hardware) cross-group dependencies observe the row-major
    /// order. Kept as the differential-testing reference for
    /// [`Device::launch`] and for kernels that are not [`Sync`].
    ///
    /// # Errors
    ///
    /// As [`Device::launch`].
    pub fn launch_serial<K: Kernel + ?Sized>(
        &mut self,
        kernel: &K,
        range: NdRange,
    ) -> Result<LaunchReport, SimError> {
        self.finish();
        let (plan, setup, mut snapshot, profiling) = self.prepare_blocking(kernel, range)?;
        let (outcomes, entries) = engine::execute_groups_serial(
            kernel,
            &self.cfg,
            &plan,
            &setup,
            &mut snapshot,
            profiling,
            None,
        );
        drop(snapshot);
        self.apply_blocking(&entries);
        engine::reduce_outcomes(
            kernel.name(),
            &self.cfg,
            profiling,
            &range,
            &setup,
            outcomes,
        )
    }
}

impl Drop for Device {
    /// Shuts the persistent command-queue worker pool down cleanly: sets
    /// the shutdown flag (workers finish the command they are executing,
    /// then exit instead of picking another) and joins every worker — no
    /// thread outlives its device. Commands still pending at this point
    /// never run; their events observe [`SimError::DeviceLost`] once the
    /// shared state is freed, and any thread blocked in a `wait` is woken
    /// and gets the same typed error. Completion callbacks
    /// ([`crate::Event::on_complete`]) still registered for those
    /// never-to-run commands fire exactly once with
    /// [`SimError::DeviceLost`] — after the workers have been joined, so
    /// commands that were mid-execution resolve their callbacks through
    /// the normal completion path first.
    fn drop(&mut self) {
        let (workers, bridges) = {
            // Tolerate a poisoned lock here: drop must still join the
            // surviving workers even if one panicked.
            let mut st = match self.shared.state.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            st.shutdown = true;
            (
                std::mem::take(&mut st.workers),
                std::mem::take(&mut st.bridges),
            )
        };
        self.shared.cv.notify_all();
        for worker in workers.into_iter().chain(bridges) {
            let _ = worker.join();
        }
        // With the pool gone, whatever callbacks remain belong to
        // commands that will never run. Take them under the lock, fire
        // them outside it (the registration path checks `shutdown` under
        // this same lock, so a late `on_complete` either lands in this
        // batch or self-fires — never both, never neither).
        let leftover = {
            let mut st = match self.shared.state.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            st.sched.take_all_callbacks()
        };
        crate::queue::fire_callbacks(leftover, &Err(SimError::DeviceLost));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ItemCtx;
    use crate::local::{LocalId, LocalSpec};

    struct Copy1D {
        src: BufferId,
        dst: BufferId,
    }

    impl Kernel for Copy1D {
        fn name(&self) -> &str {
            "copy1d"
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            let i = ctx.global_id(0);
            let v: f32 = ctx.read_global(self.src, i);
            ctx.write_global(self.dst, i, v);
            ctx.ops(1);
        }
    }

    fn device() -> Device {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    #[test]
    fn buffer_roundtrip() {
        let mut dev = device();
        let data = vec![1.0f32, 2.0, 3.0];
        let id = dev.create_buffer_from("x", &data).unwrap();
        assert_eq!(dev.read_buffer::<f32>(id).unwrap(), data);
        assert_eq!(dev.buffer_len(id).unwrap(), 3);
        assert_eq!(dev.buffer_kind(id).unwrap(), ElemKind::F32);
    }

    #[test]
    fn buffer_kind_checked_on_host_reads() {
        let mut dev = device();
        let id = dev.create_buffer_from("x", &[1.0f32]).unwrap();
        assert!(matches!(
            dev.read_buffer::<i32>(id),
            Err(SimError::BufferKind { .. })
        ));
    }

    #[test]
    fn write_buffer_checks_length() {
        let mut dev = device();
        let id = dev.create_buffer::<f32>("x", 4).unwrap();
        assert!(matches!(
            dev.write_buffer(id, &[1.0f32; 3]),
            Err(SimError::SizeMismatch { .. })
        ));
        dev.write_buffer(id, &[9.0f32; 4]).unwrap();
        assert_eq!(dev.read_buffer::<f32>(id).unwrap(), vec![9.0; 4]);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut dev = device();
        let too_big = dev.config().global_mem_bytes / 4 + 1;
        assert!(matches!(
            dev.create_buffer::<f32>("big", too_big),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn release_buffer_reclaims_capacity() {
        let mut dev = device();
        let id = dev.create_buffer::<f32>("x", 1024).unwrap();
        let used = dev.used_global_bytes();
        dev.release_buffer(id).unwrap();
        assert_eq!(dev.used_global_bytes(), used - 4096);
        assert!(matches!(
            dev.read_buffer::<f32>(id),
            Err(SimError::UnknownBuffer(_))
        ));
        assert!(matches!(
            dev.release_buffer(id),
            Err(SimError::UnknownBuffer(_))
        ));
    }

    #[test]
    fn copy_buffer_copies() {
        let mut dev = device();
        let a = dev.create_buffer_from("a", &[1.0f32, 2.0]).unwrap();
        let b = dev.create_buffer::<f32>("b", 2).unwrap();
        dev.copy_buffer(a, b).unwrap();
        assert_eq!(dev.read_buffer::<f32>(b).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn launch_copies_data_functionally() {
        let mut dev = device();
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let src = dev.create_buffer_from("src", &data).unwrap();
        let dst = dev.create_buffer::<f32>("dst", 64).unwrap();
        let report = dev
            .launch(&Copy1D { src, dst }, NdRange::new_1d(64, 16).unwrap())
            .unwrap();
        assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), data);
        assert_eq!(report.groups, 4);
        assert!(report.profiled);
        assert!(report.timing.device_cycles > 0);
        assert!(report.seconds > 0.0);
        // 64 contiguous f32 = 256 bytes = 16 txn-bytes blocks of 16 bytes,
        // per wavefront of 4 items one block read and one written.
        assert_eq!(report.stats.global_element_reads, 64);
        assert_eq!(report.stats.global_element_writes, 64);
        assert_eq!(report.stats.global_read_transactions, 16);
        assert_eq!(report.stats.global_write_transactions, 16);
    }

    #[test]
    fn profiling_off_skips_stats_but_keeps_function() {
        let mut dev = device();
        dev.set_profiling(false);
        assert!(!dev.profiling());
        let data = vec![3.0f32; 16];
        let src = dev.create_buffer_from("src", &data).unwrap();
        let dst = dev.create_buffer::<f32>("dst", 16).unwrap();
        let report = dev
            .launch(&Copy1D { src, dst }, NdRange::new_1d(16, 4).unwrap())
            .unwrap();
        assert_eq!(dev.read_buffer::<f32>(dst).unwrap(), data);
        assert!(!report.profiled);
        assert_eq!(report.stats.global_read_transactions, 0);
        assert_eq!(report.timing.device_cycles, 0);
    }

    #[test]
    fn oversized_work_group_rejected() {
        let mut dev = device();
        let src = dev.create_buffer::<f32>("src", 256).unwrap();
        let dst = dev.create_buffer::<f32>("dst", 256).unwrap();
        let err = dev
            .launch(&Copy1D { src, dst }, NdRange::new_1d(256, 128).unwrap())
            .unwrap_err();
        assert!(matches!(err, SimError::Launch(_)));
    }

    struct LocalHog;

    impl Kernel for LocalHog {
        fn name(&self) -> &str {
            "local-hog"
        }

        fn local_buffers(&self) -> Vec<LocalSpec> {
            vec![LocalSpec::new(ElemKind::F32, 1 << 20)]
        }

        fn run_phase(&self, _phase: usize, _ctx: &mut ItemCtx<'_>) {}
    }

    #[test]
    fn local_memory_overflow_rejected() {
        let mut dev = device();
        let err = dev
            .launch(&LocalHog, NdRange::new_1d(4, 4).unwrap())
            .unwrap_err();
        assert!(matches!(err, SimError::Launch(_)));
    }

    struct OobKernel {
        buf: BufferId,
    }

    impl Kernel for OobKernel {
        fn name(&self) -> &str {
            "oob"
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            let i = ctx.global_id(0);
            // Off-by-one: reads one element past the end on the last item.
            let v: f32 = ctx.read_global(self.buf, i + 1);
            ctx.write_global(self.buf, i, v);
        }
    }

    #[test]
    fn kernel_faults_surface_as_errors() {
        let mut dev = device();
        let buf = dev.create_buffer::<f32>("b", 8).unwrap();
        let err = dev
            .launch(&OobKernel { buf }, NdRange::new_1d(8, 4).unwrap())
            .unwrap_err();
        match err {
            SimError::KernelFaults {
                kernel,
                faults,
                total,
            } => {
                assert_eq!(kernel, "oob");
                assert_eq!(total, 1);
                assert_eq!(faults.len(), 1);
            }
            other => panic!("expected KernelFaults, got {other:?}"),
        }
    }

    struct TwoPhase {
        buf: BufferId,
        tile: LocalId,
    }

    impl Kernel for TwoPhase {
        fn name(&self) -> &str {
            "two-phase"
        }

        fn phases(&self) -> usize {
            2
        }

        fn local_buffers(&self) -> Vec<LocalSpec> {
            vec![LocalSpec::new(ElemKind::F32, 4)]
        }

        fn run_phase(&self, phase: usize, ctx: &mut ItemCtx<'_>) {
            let li = ctx.local_id(0);
            match phase {
                0 => {
                    let v: f32 = ctx.read_global(self.buf, ctx.global_id(0));
                    ctx.write_local(self.tile, li, v);
                }
                _ => {
                    // Read the neighbor written by another item in phase 0:
                    // only correct if the barrier separated the phases.
                    let v: f32 = ctx.read_local(self.tile, (li + 1) % 4);
                    ctx.write_global(self.buf, ctx.global_id(0), v);
                }
            }
        }
    }

    #[test]
    fn phases_act_as_barriers() {
        let mut dev = device();
        let buf = dev
            .create_buffer_from("b", &[10.0f32, 20.0, 30.0, 40.0])
            .unwrap();
        let kernel = TwoPhase {
            buf,
            tile: LocalId(0),
        };
        let report = dev.launch(&kernel, NdRange::new_1d(4, 4).unwrap()).unwrap();
        assert_eq!(
            dev.read_buffer::<f32>(buf).unwrap(),
            vec![20.0, 30.0, 40.0, 10.0]
        );
        assert_eq!(report.phases, 2);
        assert_eq!(report.stats.uninit_local_reads, 0);
        assert_eq!(report.stats.local_accesses, 8);
    }

    #[test]
    fn determinism_identical_reports() {
        let run = || {
            let mut dev = device();
            let data: Vec<f32> = (0..256).map(|i| (i * 7 % 13) as f32).collect();
            let src = dev.create_buffer_from("src", &data).unwrap();
            let dst = dev.create_buffer::<f32>("dst", 256).unwrap();
            let r = dev
                .launch(&Copy1D { src, dst }, NdRange::new_1d(256, 16).unwrap())
                .unwrap();
            (r, dev.read_buffer::<f32>(dst).unwrap())
        };
        let (r1, d1) = run();
        let (r2, d2) = run();
        assert_eq!(r1, r2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.compute_units = 0;
        assert!(matches!(Device::new(cfg), Err(SimError::Config(_))));
    }

    #[test]
    fn rejects_zero_phase_kernel() {
        struct NoPhases;
        impl Kernel for NoPhases {
            fn name(&self) -> &str {
                "none"
            }
            fn phases(&self) -> usize {
                0
            }
            fn run_phase(&self, _: usize, _: &mut ItemCtx<'_>) {}
        }
        let mut dev = device();
        assert!(matches!(
            dev.launch(&NoPhases, NdRange::new_1d(4, 4).unwrap()),
            Err(SimError::Launch(_))
        ));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::kernel::ItemCtx;
    use crate::local::LocalSpec;

    fn device() -> Device {
        Device::new(DeviceConfig::test_tiny()).unwrap()
    }

    struct Fill3D {
        dst: BufferId,
        dims: (usize, usize, usize),
    }

    impl Kernel for Fill3D {
        fn name(&self) -> &str {
            "fill3d"
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            let (x, y, z) = (ctx.global_id(0), ctx.global_id(1), ctx.global_id(2));
            let (w, h, _) = self.dims;
            let idx = (z * h + y) * w + x;
            ctx.write_global(self.dst, idx, (x + 10 * y + 100 * z) as i32);
        }
    }

    #[test]
    fn three_dimensional_ranges_execute() {
        let mut dev = device();
        let (w, h, d) = (4, 4, 2);
        let dst = dev.create_buffer::<i32>("dst", w * h * d).unwrap();
        let kernel = Fill3D {
            dst,
            dims: (w, h, d),
        };
        let range = NdRange::new(3, [w, h, d], [2, 2, 1]).unwrap();
        let report = dev.launch(&kernel, range).unwrap();
        assert_eq!(report.groups, 2 * 2 * 2);
        let out = dev.read_buffer::<i32>(dst).unwrap();
        assert_eq!(out[0], 0);
        assert_eq!(out[(h + 2) * w + 3], 3 + 20 + 100);
    }

    struct MixedTypes {
        floats: BufferId,
        ints: BufferId,
        bytes: BufferId,
    }

    impl Kernel for MixedTypes {
        fn name(&self) -> &str {
            "mixed"
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            let i = ctx.global_id(0);
            let f: f32 = ctx.read_global(self.floats, i);
            let n: i32 = ctx.read_global(self.ints, i);
            let b: u8 = ctx.read_global(self.bytes, i);
            ctx.write_global(self.floats, i, f + n as f32 + b as f32);
        }
    }

    #[test]
    fn kernels_can_mix_buffer_element_types() {
        let mut dev = device();
        let floats = dev.create_buffer_from("f", &[0.5f32; 8]).unwrap();
        let ints = dev.create_buffer_from("i", &[2i32; 8]).unwrap();
        let bytes = dev.create_buffer_from("b", &[3u8; 8]).unwrap();
        dev.launch(
            &MixedTypes {
                floats,
                ints,
                bytes,
            },
            NdRange::new_1d(8, 4).unwrap(),
        )
        .unwrap();
        assert_eq!(dev.read_buffer::<f32>(floats).unwrap(), vec![5.5; 8]);
        // u8 elements occupy one byte each: 8 bytes requested from that
        // buffer in total.
        assert_eq!(dev.buffer_kind(bytes).unwrap(), ElemKind::U8);
    }

    struct WrongTypeKernel {
        buf: BufferId,
    }

    impl Kernel for WrongTypeKernel {
        fn name(&self) -> &str {
            "wrong-type"
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            // Buffer holds f32; reading i32 must fault.
            let _: i32 = ctx.read_global(self.buf, ctx.global_id(0));
        }
    }

    #[test]
    fn kind_mismatch_inside_kernel_faults() {
        let mut dev = device();
        let buf = dev.create_buffer_from("f", &[1.0f32; 4]).unwrap();
        let err = dev
            .launch(&WrongTypeKernel { buf }, NdRange::new_1d(4, 4).unwrap())
            .unwrap_err();
        match err {
            SimError::KernelFaults { faults, .. } => {
                assert!(matches!(
                    faults[0].kind,
                    crate::kernel::FaultKind::BufferKindMismatch { .. }
                ));
            }
            other => panic!("expected faults, got {other:?}"),
        }
    }

    struct LocalWrongType;

    impl Kernel for LocalWrongType {
        fn name(&self) -> &str {
            "local-wrong-type"
        }

        fn local_buffers(&self) -> Vec<LocalSpec> {
            vec![LocalSpec::new(ElemKind::F32, 8)]
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            ctx.write_local::<i32>(crate::LocalId(0), 0, 7);
            let _: f32 = ctx.read_local(crate::LocalId(1), 0);
        }
    }

    #[test]
    fn local_misuse_faults() {
        let mut dev = device();
        let err = dev
            .launch(&LocalWrongType, NdRange::new_1d(1, 1).unwrap())
            .unwrap_err();
        match err {
            SimError::KernelFaults { total, .. } => assert_eq!(total, 2),
            other => panic!("expected faults, got {other:?}"),
        }
    }

    struct Noop;

    impl Kernel for Noop {
        fn name(&self) -> &str {
            "noop"
        }

        fn run_phase(&self, _: usize, _: &mut ItemCtx<'_>) {}
    }

    #[test]
    fn occupancy_reported_in_launch() {
        let mut dev = device();
        let report = dev.launch(&Noop, NdRange::new_1d(64, 16).unwrap()).unwrap();
        // 16 items / 4-wide wavefronts = 4 waves per group.
        assert_eq!(report.occupancy.waves_per_group, 4);
        assert!(report.occupancy.groups_per_cu >= 1);
        assert_eq!(report.occupancy.local_bytes_per_group, 0);
    }

    #[test]
    fn copy_buffer_rejects_kind_and_size_mismatches() {
        let mut dev = device();
        let f = dev.create_buffer_from("f", &[1.0f32; 4]).unwrap();
        let i = dev.create_buffer_from("i", &[1i32; 4]).unwrap();
        let small = dev.create_buffer::<f32>("s", 2).unwrap();
        assert!(matches!(
            dev.copy_buffer(f, i),
            Err(SimError::BufferKind { .. })
        ));
        assert!(matches!(
            dev.copy_buffer(f, small),
            Err(SimError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn buffer_labels_are_kept() {
        let mut dev = device();
        let id = dev.create_buffer::<f32>("my-label", 1).unwrap();
        assert_eq!(&*dev.buffer_label(id).unwrap(), "my-label");
        // Repeated queries share one allocation (refcounted handle).
        let a = dev.buffer_label(id).unwrap();
        let b = dev.buffer_label(id).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }

    /// Regression: each group reads local memory it never wrote, and the
    /// counter must accumulate across groups — surviving the arena reset
    /// between groups on one worker and the per-group arenas of parallel
    /// shards alike.
    struct UninitReader {
        reads_per_item: usize,
    }

    impl Kernel for UninitReader {
        fn name(&self) -> &str {
            "uninit-reader"
        }

        fn local_buffers(&self) -> Vec<LocalSpec> {
            vec![LocalSpec::new(ElemKind::F32, 16)]
        }

        fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
            for k in 0..self.reads_per_item {
                let _: f32 = ctx.read_local(crate::LocalId(0), (ctx.local_id(0) + k) % 16);
            }
        }
    }

    #[test]
    fn uninit_local_reads_accumulate_across_groups() {
        let mut dev = device();
        // 2 groups x 4 items x 3 reads, all of never-written elements.
        let report = dev
            .launch(
                &UninitReader { reads_per_item: 3 },
                NdRange::new_1d(8, 4).unwrap(),
            )
            .unwrap();
        assert_eq!(report.groups, 2);
        assert_eq!(report.stats.uninit_local_reads, 2 * 4 * 3);
    }

    #[test]
    fn uninit_local_reads_survive_parallel_sharding_and_profiling_off() {
        let run = |parallelism: usize, profiling: bool| {
            let mut cfg = DeviceConfig::test_tiny();
            cfg.parallelism = parallelism;
            let mut dev = Device::new(cfg).unwrap();
            dev.set_profiling(profiling);
            dev.launch(
                &UninitReader { reads_per_item: 2 },
                NdRange::new_1d(16, 4).unwrap(),
            )
            .unwrap()
            .stats
            .uninit_local_reads
        };
        for parallelism in [1, 2, 4] {
            for profiling in [true, false] {
                assert_eq!(run(parallelism, profiling), 4 * 4 * 2, "p={parallelism}");
            }
        }
    }

    #[test]
    fn overhead_cycles_accumulate_per_group() {
        let mut dev = device();
        let r1 = dev.launch(&Noop, NdRange::new_1d(16, 16).unwrap()).unwrap();
        let r4 = dev.launch(&Noop, NdRange::new_1d(64, 16).unwrap()).unwrap();
        assert_eq!(r4.timing.overhead_cycles, 4 * r1.timing.overhead_cycles);
    }
}
