//! Global-memory buffers.
//!
//! Buffers live in the simulated device's global memory. They are typed at
//! the API level via the [`Scalar`] trait but stored uniformly as 64-bit
//! bit patterns so that one arena can hold `f32`, `i32` and `u8` buffers.
//! Byte-level addresses (element index × element size) are what the
//! coalescing model in [`crate::coalesce`] consumes.

use std::fmt;

/// Element types storable in simulated device memory.
///
/// The trait is sealed: the memory model needs to know the byte width of
/// every element kind, so only the built-in scalar types implement it.
pub trait Scalar: Copy + Default + PartialEq + fmt::Debug + sealed::Sealed + 'static {
    /// The runtime tag for this element type.
    const KIND: ElemKind;

    /// Converts the value to a uniform 64-bit bit pattern.
    fn to_bits64(self) -> u64;

    /// Recovers the value from a 64-bit bit pattern produced by
    /// [`Scalar::to_bits64`].
    fn from_bits64(bits: u64) -> Self;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for i32 {}
    impl Sealed for u8 {}
}

impl Scalar for f32 {
    const KIND: ElemKind = ElemKind::F32;

    fn to_bits64(self) -> u64 {
        u64::from(self.to_bits())
    }

    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Scalar for i32 {
    const KIND: ElemKind = ElemKind::I32;

    fn to_bits64(self) -> u64 {
        u64::from(self as u32)
    }

    fn from_bits64(bits: u64) -> Self {
        bits as u32 as i32
    }
}

impl Scalar for u8 {
    const KIND: ElemKind = ElemKind::U8;

    fn to_bits64(self) -> u64 {
        u64::from(self)
    }

    fn from_bits64(bits: u64) -> Self {
        bits as u8
    }
}

/// Runtime tag describing the element type of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemKind {
    /// 32-bit IEEE-754 float.
    F32,
    /// 32-bit signed integer.
    I32,
    /// 8-bit unsigned integer.
    U8,
}

impl ElemKind {
    /// Size of one element of this kind, in bytes.
    pub fn bytes(self) -> usize {
        match self {
            ElemKind::F32 | ElemKind::I32 => 4,
            ElemKind::U8 => 1,
        }
    }

    /// Lower-case OpenCL-style name of the type.
    pub fn name(self) -> &'static str {
        match self {
            ElemKind::F32 => "float",
            ElemKind::I32 => "int",
            ElemKind::U8 => "uchar",
        }
    }
}

impl fmt::Display for ElemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Opaque handle to a buffer in a device's global memory.
///
/// Handles are only meaningful for the [`crate::Device`] that created them;
/// using one on a different device is detected at access time and reported
/// as a kernel fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub(crate) u32);

impl BufferId {
    /// Raw index of the buffer inside its device. Stable for the lifetime
    /// of the device; exposed for logging and debugging.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf#{}", self.0)
    }
}

/// The untyped storage behind one buffer.
#[derive(Debug, Clone)]
pub(crate) struct RawBuffer {
    pub kind: ElemKind,
    pub data: Vec<u64>,
    /// Starting byte address of this buffer in the flat global address
    /// space. Used so that distinct buffers never share a coalescing block.
    pub base_addr: u64,
    /// Shared label handle: cloning a buffer snapshot (or handing the
    /// label to diagnostics) bumps a refcount instead of allocating.
    pub label: std::sync::Arc<str>,
}

/// Coherence state of one group-level buffer across the member devices of
/// a [`crate::DeviceGroup`].
///
/// Every member device holds its own allocation for the buffer (created in
/// identical order on each member, so slot indices and base addresses
/// agree fleet-wide). `copies[d]` says whether device `d`'s allocation
/// currently holds the latest contents; `latest_source` names one device
/// that is guaranteed valid (the last writer, or the creation device for
/// a fresh buffer). Migration is on demand: a device's copy is refreshed
/// from `latest_source` only when a launch or host access actually needs
/// it there — the MSI-flavored protocol described in
/// `docs/ARCHITECTURE.md`.
#[derive(Debug, Clone)]
pub(crate) struct GroupBuffer {
    /// The per-device handle — identical on every member by construction.
    pub id: BufferId,
    /// Element kind, kept for migration byte accounting.
    pub kind: ElemKind,
    /// Element count, kept for migration byte accounting.
    pub len: usize,
    /// `copies[d]` is true when member device `d` holds the latest bits.
    pub copies: Vec<bool>,
    /// A member index whose copy is always valid.
    pub latest_source: usize,
}

impl GroupBuffer {
    /// A freshly created buffer: every member was initialized with the
    /// same contents, so all copies start valid and no migration is ever
    /// needed until the first write diverges them.
    pub fn fresh(id: BufferId, kind: ElemKind, len: usize, devices: usize) -> Self {
        Self {
            id,
            kind,
            len,
            copies: vec![true; devices],
            latest_source: 0,
        }
    }

    /// Byte size of one full copy (what a migration moves).
    pub fn byte_len(&self) -> usize {
        self.len * self.kind.bytes()
    }

    /// Records that device `writer` produced new contents: its copy is the
    /// single valid one and every other member's copy is stale.
    pub fn mark_written(&mut self, writer: usize) {
        for (d, valid) in self.copies.iter_mut().enumerate() {
            *valid = d == writer;
        }
        self.latest_source = writer;
    }

    /// Records that device `dest` received a copy of the latest contents
    /// (its copy becomes valid alongside the source's).
    pub fn mark_migrated(&mut self, dest: usize) {
        self.copies[dest] = true;
    }
}

impl RawBuffer {
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn byte_len(&self) -> usize {
        self.data.len() * self.kind.bytes()
    }

    /// Byte address of element `idx` in the device's flat address space.
    pub fn elem_addr(&self, idx: usize) -> u64 {
        self.base_addr + (idx * self.kind.bytes()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrips_through_bits() {
        for v in [0.0_f32, -1.5, 3.25e7, f32::MIN_POSITIVE, -0.0] {
            assert_eq!(f32::from_bits64(v.to_bits64()).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn nan_roundtrips_through_bits() {
        let v = f32::NAN;
        assert!(f32::from_bits64(v.to_bits64()).is_nan());
    }

    #[test]
    fn i32_roundtrips_through_bits() {
        for v in [0_i32, -1, i32::MAX, i32::MIN, 42] {
            assert_eq!(i32::from_bits64(v.to_bits64()), v);
        }
    }

    #[test]
    fn u8_roundtrips_through_bits() {
        for v in [0_u8, 1, 127, 255] {
            assert_eq!(u8::from_bits64(v.to_bits64()), v);
        }
    }

    #[test]
    fn elem_kind_sizes() {
        assert_eq!(ElemKind::F32.bytes(), 4);
        assert_eq!(ElemKind::I32.bytes(), 4);
        assert_eq!(ElemKind::U8.bytes(), 1);
    }

    #[test]
    fn elem_addr_offsets_by_kind() {
        let raw = RawBuffer {
            kind: ElemKind::F32,
            data: vec![0; 8],
            base_addr: 1024,
            label: "".into(),
        };
        assert_eq!(raw.elem_addr(0), 1024);
        assert_eq!(raw.elem_addr(3), 1024 + 12);
        assert_eq!(raw.byte_len(), 32);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BufferId(7).to_string(), "buf#7");
        assert_eq!(ElemKind::F32.to_string(), "float");
    }

    #[test]
    fn group_buffer_fresh_is_valid_everywhere() {
        let gb = GroupBuffer::fresh(BufferId(0), ElemKind::F32, 16, 3);
        assert!(gb.copies.iter().all(|&v| v));
        assert_eq!(gb.latest_source, 0);
        assert_eq!(gb.byte_len(), 64);
    }

    #[test]
    fn group_buffer_write_invalidates_others() {
        let mut gb = GroupBuffer::fresh(BufferId(1), ElemKind::U8, 8, 3);
        gb.mark_written(2);
        assert_eq!(gb.copies, vec![false, false, true]);
        assert_eq!(gb.latest_source, 2);
        gb.mark_migrated(0);
        assert_eq!(gb.copies, vec![true, false, true]);
        assert_eq!(gb.latest_source, 2);
    }
}
