//! Events: completion handles for enqueued commands.
//!
//! Every `enqueue_*` call on a [`crate::Queue`] returns an [`Event`].
//! Events serve three purposes, mirroring OpenCL's `cl_event`:
//!
//! * **synchronization** — [`Event::wait`] blocks until the command has
//!   completed (execution is eager: the device's persistent worker pool
//!   starts commands as soon as their dependencies clear, so a wait is a
//!   pure join, never a trigger);
//! * **ordering** — events go into the wait-lists of later `enqueue_*`
//!   calls, adding explicit edges to the scheduler's dependency DAG on top
//!   of the inferred buffer hazards;
//! * **results & profiling** — [`Event::wait_report`] /
//!   [`Event::wait_read`] retrieve a launch's [`LaunchReport`] or a read's
//!   data, and [`Event::timing`] exposes per-command queued/start/end
//!   timestamps (host wall clock, relative to device creation) without any
//!   device-wide profiling toggles.
//!
//! Events are cheap to clone and hold only a weak device handle: they
//! never keep a dropped [`crate::Device`] alive, and using one afterwards
//! yields [`SimError::DeviceLost`] rather than a panic.

use std::sync::Weak;
use std::time::Duration;

use crate::buffer::Scalar;
use crate::device::DeviceShared;
use crate::error::SimError;
use crate::queue::{fire_callbacks, wait_seq, CommandResult, CompletionCallback};
use crate::stats::LaunchReport;

/// Per-command wall-clock timestamps, relative to device creation.
///
/// These profile the *host-side scheduler* (when the command was enqueued,
/// picked up and completed), complementing the simulated-GPU cycle model
/// in [`LaunchReport`]. They are real wall-clock measurements and — unlike
/// every functional result — are **not** part of the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventTiming {
    /// When the command was enqueued.
    pub queued: Duration,
    /// When a worker picked the command up for execution.
    pub started: Duration,
    /// When the command completed.
    pub ended: Duration,
}

impl EventTiming {
    /// Time the command spent waiting in the stream (dependencies and
    /// worker availability — with the eager pool this is pure scheduling
    /// delay, not laziness).
    pub fn queue_delay(&self) -> Duration {
        self.started.saturating_sub(self.queued)
    }

    /// Host wall-clock time the command spent executing.
    pub fn execution(&self) -> Duration {
        self.ended.saturating_sub(self.started)
    }
}

/// Completion handle for one enqueued command (see the module docs).
///
/// Handles are counted: a command's stored result (report or read-back
/// snapshot) is freed when its last event clone drops, so reusing one
/// device for millions of commands does not accumulate results.
#[derive(Debug)]
pub struct Event {
    pub(crate) shared: Weak<DeviceShared>,
    pub(crate) seq: u64,
    pub(crate) queue: u64,
}

impl Clone for Event {
    fn clone(&self) -> Self {
        if let Some(shared) = self.shared.upgrade() {
            let mut st = shared.state.lock().expect("device state poisoned");
            st.sched.retain_event(self.seq);
        }
        Self {
            shared: self.shared.clone(),
            seq: self.seq,
            queue: self.queue,
        }
    }
}

impl Drop for Event {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.upgrade() {
            let mut st = shared.state.lock().expect("device state poisoned");
            st.sched.release_event(self.seq);
        }
    }
}

impl Event {
    /// The command's device-wide sequence number (its position in enqueue
    /// order) — useful in logs.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Id of the queue this command was enqueued on.
    pub fn queue_id(&self) -> u64 {
        self.queue
    }

    fn complete(&self) -> Result<std::sync::Arc<DeviceShared>, SimError> {
        let shared = self.shared.upgrade().ok_or(SimError::DeviceLost)?;
        wait_seq(&shared, self.seq);
        Ok(shared)
    }

    /// Waits for the command to complete — a pure blocking join.
    /// Execution is eager: the device's persistent worker pool started
    /// the command (and its dependencies) the moment they became ready,
    /// so by the time host code waits, the work is typically already in
    /// flight or done. The [`Event::timing`] timestamps record exactly
    /// that schedule.
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`], [`SimError::QueueReleased`] if the
    /// owning queue was released before the command ran, or the command's
    /// own failure (e.g. [`SimError::KernelFaults`]).
    pub fn wait(&self) -> Result<(), SimError> {
        let shared = self.complete()?;
        let st = shared.state.lock().expect("device state poisoned");
        match st.sched.event_slot(self.seq) {
            Some(slot) => slot.result.as_ref().map(|_| ()).map_err(Clone::clone),
            None => Err(SimError::DeviceLost),
        }
    }

    /// Waits for a launch command and returns its [`LaunchReport`].
    ///
    /// # Errors
    ///
    /// As [`Event::wait`]; additionally [`SimError::EventResult`] if this
    /// event does not belong to a launch.
    pub fn wait_report(&self) -> Result<LaunchReport, SimError> {
        let shared = self.complete()?;
        let st = shared.state.lock().expect("device state poisoned");
        match st.sched.event_slot(self.seq) {
            Some(slot) => match &slot.result {
                Ok(CommandResult::Launch(report)) => Ok((**report).clone()),
                Ok(other) => Err(SimError::EventResult {
                    expected: "launch report",
                    actual: other.describe(),
                }),
                Err(e) => Err(e.clone()),
            },
            None => Err(SimError::DeviceLost),
        }
    }

    /// Waits for a read command and returns its data.
    ///
    /// The data is *moved out* of the event on the first call (large
    /// read-backs are not retained for the device's lifetime); a second
    /// `wait_read` on the same command returns [`SimError::EventResult`].
    ///
    /// # Errors
    ///
    /// As [`Event::wait`]; additionally [`SimError::EventResult`] for a
    /// non-read event or an already-taken result and
    /// [`SimError::BufferKind`] if `T` does not match the buffer.
    pub fn wait_read<T: Scalar>(&self) -> Result<Vec<T>, SimError> {
        let shared = self.complete()?;
        let snapshot = {
            let mut st = shared.state.lock().expect("device state poisoned");
            match st.sched.event_slot_mut(self.seq) {
                Some(slot) => match &mut slot.result {
                    Ok(CommandResult::Read { buffer, snapshot }) => {
                        if snapshot.as_deref().is_some_and(|raw| raw.kind != T::KIND) {
                            return Err(SimError::BufferKind {
                                buffer: *buffer,
                                expected: T::KIND,
                                actual: snapshot.as_deref().expect("checked above").kind,
                            });
                        }
                        match snapshot.take() {
                            Some(raw) => raw,
                            None => {
                                return Err(SimError::EventResult {
                                    expected: "read",
                                    actual: "read (already taken)",
                                })
                            }
                        }
                    }
                    Ok(other) => {
                        return Err(SimError::EventResult {
                            expected: "read",
                            actual: other.describe(),
                        })
                    }
                    Err(e) => return Err(e.clone()),
                },
                None => return Err(SimError::DeviceLost),
            }
        };
        // Materialize the host vector outside the device lock — the
        // snapshot `Arc` is immutable (later writers copy-on-write).
        Ok(snapshot.data.iter().map(|&b| T::from_bits64(b)).collect())
    }

    /// Waits for the command and returns its scheduler timestamps.
    /// Available for failed commands too (the timing of a faulting launch
    /// is still meaningful).
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`].
    pub fn timing(&self) -> Result<EventTiming, SimError> {
        let shared = self.complete()?;
        let st = shared.state.lock().expect("device state poisoned");
        match st.sched.event_slot(self.seq) {
            Some(slot) => Ok(slot.timing),
            None => Err(SimError::DeviceLost),
        }
    }

    /// Whether the command has already completed (a non-blocking poll;
    /// with eager execution this flips to `true` on its own, without any
    /// wait).
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`].
    pub fn is_complete(&self) -> Result<bool, SimError> {
        let shared = self.shared.upgrade().ok_or(SimError::DeviceLost)?;
        let st = shared.state.lock().expect("device state poisoned");
        Ok(st.sched.event_slot(self.seq).is_some())
    }

    /// Non-parking readiness check: `None` while the command is still
    /// pending (queued or executing), `Some(outcome)` once it has
    /// settled — `Ok(())` for success, or the command's own failure
    /// (e.g. [`SimError::KernelFaults`]), [`SimError::QueueReleased`]
    /// for a cancelled command, [`SimError::DeviceLost`] if the device
    /// was (or is being) dropped first.
    ///
    /// `poll` never blocks beyond the device mutex: with eager execution
    /// the worker pool drives the command on its own, so a poll loop
    /// observes the same outcome a blocking [`Event::wait`] would —
    /// bit-identically, just without parking the calling thread.
    /// Completion *order* across events is scheduling-dependent;
    /// outcomes are not.
    pub fn poll(&self) -> Option<Result<(), SimError>> {
        let Some(shared) = self.shared.upgrade() else {
            return Some(Err(SimError::DeviceLost));
        };
        let st = shared.state.lock().expect("device state poisoned");
        if let Some(slot) = st.sched.event_slot(self.seq) {
            Some(slot.result.as_ref().map(|_| ()).map_err(Clone::clone))
        } else if st.shutdown || !st.sched.is_pending(self.seq) {
            // Shutdown in progress (the command will never run), or the
            // result slot was already discarded — either way the command
            // cannot be usefully observed anymore.
            Some(Err(SimError::DeviceLost))
        } else {
            None
        }
    }

    /// Registers `callback` to run **exactly once** when this command
    /// settles, receiving the same outcome [`Event::poll`] would report.
    ///
    /// Delivery:
    ///
    /// * A command that settles later fires the callback from the
    ///   resolving pool worker (or the thread dropping the queue/device),
    ///   with the device lock **not held** — the callback may enqueue
    ///   follow-up commands, wait on other events, or take its own locks
    ///   without deadlocking.
    /// * A command that has *already* settled (including on a dropped
    ///   device — the callback then gets [`SimError::DeviceLost`]) fires
    ///   the callback immediately on the calling thread, before
    ///   `on_complete` returns.
    /// * A panicking callback is caught: it never kills the resolving
    ///   worker, and remaining callbacks still fire.
    ///
    /// Callback *order* across commands follows the actual completion
    /// schedule and is not deterministic; every functional outcome it
    /// can observe is (see the crate docs' determinism argument).
    pub fn on_complete<F>(&self, callback: F)
    where
        F: FnOnce(Result<(), SimError>) + Send + 'static,
    {
        let cb: CompletionCallback = Box::new(callback);
        let Some(shared) = self.shared.upgrade() else {
            fire_callbacks(vec![cb], &Err(SimError::DeviceLost));
            return;
        };
        let immediate = {
            let mut st = shared.state.lock().expect("device state poisoned");
            if !st.shutdown && st.sched.is_pending(self.seq) {
                st.sched.add_callback(self.seq, cb);
                None
            } else if let Some(slot) = st.sched.event_slot(self.seq) {
                Some((cb, slot.result.as_ref().map(|_| ()).map_err(Clone::clone)))
            } else {
                Some((cb, Err(SimError::DeviceLost)))
            }
        };
        if let Some((cb, outcome)) = immediate {
            fire_callbacks(vec![cb], &outcome);
        }
    }
}
