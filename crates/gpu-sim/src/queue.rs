//! Command queues: the asynchronous, overlappable host API.
//!
//! OpenCL hosts do not *call* kernels — they **enqueue** commands (kernel
//! launches, buffer reads/writes/copies) on command queues and order them
//! with events. This module brings that model to the simulator:
//!
//! * [`Queue::enqueue_launch`] / [`Queue::enqueue_read`] /
//!   [`Queue::enqueue_write`] / [`Queue::enqueue_copy`] append commands to
//!   the device's command stream and return an [`Event`](crate::Event)
//!   immediately;
//! * commands may declare explicit wait-lists (events), and the scheduler
//!   additionally **infers buffer hazards**: a command that reads buffer
//!   `B` is ordered after the last earlier command that writes `B`
//!   (read-after-write), a writer after earlier readers and writers
//!   (write-after-read, write-after-write);
//! * commands whose dependencies are satisfied execute **out of order and
//!   concurrently** across worker threads — yet every observable result
//!   (buffers, launch reports, fault logs, read data) is **bit-identical
//!   to executing the commands one at a time in enqueue order**.
//!
//! # Eager execution: the persistent worker pool
//!
//! Execution is **eager**: every device owns a persistent pool of
//! [`crate::resolve_parallelism`]`(parallelism)` background workers,
//! spawned lazily on the first enqueue and parked on the device's
//! Mutex+Condvar state. A worker picks a ready command — all hazard and
//! wait-list predecessors complete — the moment one exists, so commands
//! **start before the first `wait`**: host code between enqueue and wait
//! runs concurrently with the device (observable through the per-event
//! `queued`/`started`/`ended` timestamps, [`crate::Event::timing`]).
//! `wait`/`finish` are pure blocking joins on completion; they never
//! execute commands themselves.
//!
//! When several commands are ready at once, workers pick them in a
//! **deterministic ready-list order**: descending queue priority
//! ([`Queue::set_priority`], captured per command at enqueue time), then
//! ascending enqueue sequence. Priorities steer latency only — they can
//! never change results, because results are schedule-independent (below).
//!
//! Dropping the [`crate::Device`] shuts the pool down cleanly: workers
//! finish the command they are executing and exit; no thread outlives the
//! device, and leftover events resolve to typed
//! [`SimError::DeviceLost`] errors instead of hanging.
//!
//! # The determinism argument
//!
//! Each launch executes against a snapshot of the buffer table taken when
//! all its hazard predecessors have completed, so every buffer it is
//! *allowed* to touch holds exactly the bytes in-order execution would
//! have produced. Buffers outside a launch's declared
//! [`crate::Kernel::buffer_usage`] are unreachable — the engine faults
//! such accesses deterministically instead of returning
//! schedule-dependent data. Kernels that do not declare usage are treated
//! as touching everything and simply never overlap. Within one launch the
//! engine's snapshot/write-log discipline applies unchanged, and write
//! logs are replayed in row-major group order, so a queued launch is
//! bit-identical to [`crate::Device::launch`] of the same kernel. None of
//! this depends on *when* a ready command starts, which is why the eager
//! pool (and any priority assignment) preserves bit-identical results,
//! reports and fault logs at every worker count.
//!
//! Multiple queues on one device share a single command stream (one global
//! enqueue order); queues are grouping/lifetime scopes, not ordering
//! domains — ordering comes *only* from events and hazards, which is what
//! lets independent commands overlap even on a single queue.
//!
//! # Cross-device waits
//!
//! Wait-lists may contain events from **other** devices (e.g. other
//! members of a [`crate::DeviceGroup`]). Such a foreign event does not
//! enter the local hazard DAG; instead a bridge thread waits for it to
//! settle on its own device and then marks the local command's foreign
//! dependency satisfied. Any settled outcome — success, failure,
//! cancellation, or the foreign device being dropped — counts, mirroring
//! the local rule that a cancelled dependency is a satisfied one.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, MutexGuard, Weak};
use std::time::Duration;

use crate::buffer::{BufferId, Scalar};
use crate::config::DeviceConfig;
use crate::device::{DeviceShared, DeviceState};
use crate::engine::{
    self, execute_groups_parallel, resolve_parallelism, BufTable, LaunchPlan, LaunchSetup,
};
use crate::error::SimError;
use crate::event::{Event, EventTiming};
use crate::kernel::{AccessMask, Kernel};
use crate::ndrange::NdRange;
use crate::stats::LaunchReport;

/// Declared global-buffer usage of one kernel launch: the hazard-inference
/// input of the command-queue scheduler (see [`Kernel::buffer_usage`]).
#[derive(Debug, Clone, Default)]
pub struct BufferUse {
    /// Buffers the kernel may read.
    pub reads: Vec<BufferId>,
    /// Buffers the kernel may write (reading them back is allowed too).
    pub writes: Vec<BufferId>,
}

impl BufferUse {
    /// Convenience constructor.
    pub fn new(reads: impl Into<Vec<BufferId>>, writes: impl Into<Vec<BufferId>>) -> Self {
        Self {
            reads: reads.into(),
            writes: writes.into(),
        }
    }
}

/// Resolved per-command access sets, in buffer-slot space. `None` means
/// "may touch anything" (undeclared usage): such a command serializes
/// against every other command.
#[derive(Debug, Clone)]
enum Access {
    All,
    Declared {
        reads: Vec<usize>,
        writes: Vec<usize>,
    },
}

/// One enqueued command.
pub(crate) struct Command {
    queue: u64,
    /// Unsatisfied-at-enqueue-time dependencies (seq numbers). A dep is
    /// satisfied once its seq leaves the pending map.
    deps: Vec<u64>,
    /// Count of wait-list events that live on *other* devices and have
    /// not yet settled. Decremented by the bridge threads spawned at
    /// enqueue time; the command is not ready until it reaches zero.
    foreign_pending: usize,
    access: Access,
    kind: CommandKind,
    queued_at: Duration,
    profiling: bool,
    /// Scheduling priority, captured from the owning queue at enqueue
    /// time (higher = picked earlier among simultaneously ready
    /// commands). Latency steering only — never affects results.
    priority: u8,
    /// Times this command was ready but a pool worker picked another
    /// one. At [`STARVATION_AGE`] the command jumps the priority order —
    /// the starvation bypass that keeps a closed-loop high-priority
    /// client from starving low-priority work forever.
    skipped: u32,
}

/// Completions a ready launch may be passed over before it is picked
/// regardless of priority. Strict priority order holds below this age,
/// so a burst of simultaneously ready high-priority commands still runs
/// first; a *sustained* stream stops cutting the line after this many
/// picks. Bounds low-priority completion latency to `STARVATION_AGE + 1`
/// picks without giving up results determinism (pick order never affects
/// outcomes — see the determinism tests).
const STARVATION_AGE: u32 = 64;

enum CommandKind {
    Launch {
        kernel: Arc<dyn Kernel + Send + Sync>,
        range: NdRange,
        plan: Arc<LaunchPlan>,
        setup: LaunchSetup,
    },
    Read {
        buffer: BufferId,
    },
    Write {
        slot: usize,
        bits: Vec<u64>,
    },
    Copy {
        src: usize,
        dst: usize,
    },
}

impl CommandKind {
    fn is_launch(&self) -> bool {
        matches!(self, CommandKind::Launch { .. })
    }
}

/// What a completed command produced. Slots live only as long as an
/// [`Event`] handle for the command exists — the last event drop frees
/// the result, so long-lived devices do not accumulate reports.
#[derive(Debug, Clone)]
pub(crate) enum CommandResult {
    /// A launch's report (boxed: reports are an order of magnitude
    /// larger than the other variants).
    Launch(Box<LaunchReport>),
    /// A buffer read. `snapshot` is an O(1) handle to the buffer version
    /// at execution time (later writers copy-on-write around it); it is
    /// taken by the first `wait_read`, which materializes the host vector
    /// outside the device lock.
    Read {
        buffer: BufferId,
        snapshot: Option<Arc<crate::buffer::RawBuffer>>,
    },
    /// A buffer write completed.
    Write,
    /// A buffer copy completed.
    Copy,
}

impl CommandResult {
    pub(crate) fn describe(&self) -> &'static str {
        match self {
            CommandResult::Launch(_) => "launch report",
            CommandResult::Read {
                snapshot: Some(_), ..
            } => "read",
            CommandResult::Read { snapshot: None, .. } => "read (already taken)",
            CommandResult::Write => "write completion",
            CommandResult::Copy => "copy completion",
        }
    }
}

/// Completion record of one command, reachable through its [`Event`].
pub(crate) struct EventSlot {
    pub result: Result<CommandResult, SimError>,
    pub timing: EventTiming,
}

/// A completion callback registered through [`Event::on_complete`] (or,
/// indirectly, [`crate::CompletionQueue::watch`]). Receives the command's
/// settled outcome: `Ok(())`, the command's own failure, or
/// [`SimError::QueueReleased`] / [`SimError::DeviceLost`] if it was
/// cancelled / the device dropped first.
pub(crate) type CompletionCallback = Box<dyn FnOnce(Result<(), SimError>) + Send>;

/// Invokes a batch of completion callbacks with the command's settled
/// outcome. The caller must **not** hold the device lock — this is the
/// single choke point behind the documented no-lock-held guarantee, and
/// every completion path releases the lock before calling it.
///
/// A panicking callback must not kill the resolving pool worker (a dead
/// worker would strand every waiter), so each invocation is wrapped in
/// `catch_unwind` — mirroring the treatment of panicking kernels in
/// [`execute_launch`]. Remaining callbacks in the batch still run.
pub(crate) fn fire_callbacks(callbacks: Vec<CompletionCallback>, outcome: &Result<(), SimError>) {
    for cb in callbacks {
        let outcome = outcome.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || cb(outcome)));
    }
}

/// The device's command-stream scheduler state.
#[derive(Default)]
pub(crate) struct Sched {
    next_seq: u64,
    next_queue: u64,
    /// Commands not yet completed (including currently running ones).
    pending: BTreeMap<u64, Command>,
    /// Seqs currently executing on some thread.
    running: BTreeSet<u64>,
    /// Completed (or cancelled) commands, keyed by seq. Entries exist
    /// only while `event_refs` holds a live handle count for the seq.
    finished: HashMap<u64, EventSlot>,
    /// Live [`Event`] handle count per command. Enqueue starts at 1;
    /// event clones/drops adjust it; at 0 the command's `finished` slot
    /// (if any) is discarded, bounding result memory by live handles
    /// instead of device lifetime.
    event_refs: HashMap<u64, usize>,
    /// Per-slot seq of the last enqueued writer.
    last_writer: HashMap<usize, u64>,
    /// Per-slot seqs of readers enqueued since the last writer.
    readers: HashMap<usize, Vec<u64>>,
    /// Seq of the last enqueued undeclared-usage command, if any.
    last_universal: Option<u64>,
    /// Per-queue scheduling priority (see [`Queue::set_priority`]);
    /// absent means the default, 0.
    queue_prio: HashMap<u64, u8>,
    /// Completion callbacks of still-pending commands, keyed by seq.
    /// Taken (exactly once) by whichever path settles the command —
    /// execution, queue cancellation, or device shutdown — and fired
    /// *after* the device lock is released (see [`fire_callbacks`]).
    callbacks: HashMap<u64, Vec<CompletionCallback>>,
}

impl Sched {
    pub(crate) fn new_queue(&mut self) -> u64 {
        let id = self.next_queue;
        self.next_queue += 1;
        id
    }

    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether command `seq` is still pending (queued or running).
    pub(crate) fn is_pending(&self, seq: u64) -> bool {
        self.pending.contains_key(&seq)
    }

    pub(crate) fn event_slot(&self, seq: u64) -> Option<&EventSlot> {
        self.finished.get(&seq)
    }

    pub(crate) fn event_slot_mut(&mut self, seq: u64) -> Option<&mut EventSlot> {
        self.finished.get_mut(&seq)
    }

    /// Hazard + explicit dependencies of a new command, pruned to
    /// still-incomplete seqs.
    fn collect_deps(&mut self, access: &Access, explicit: &[u64]) -> Vec<u64> {
        let mut deps: Vec<u64> = explicit.to_vec();
        match access {
            Access::All => deps.extend(self.pending.keys().copied()),
            Access::Declared { reads, writes } => {
                if let Some(u) = self.last_universal {
                    deps.push(u);
                }
                for s in reads {
                    if let Some(&w) = self.last_writer.get(s) {
                        deps.push(w);
                    }
                }
                for s in writes {
                    if let Some(&w) = self.last_writer.get(s) {
                        deps.push(w);
                    }
                    if let Some(rs) = self.readers.get(s) {
                        deps.extend(rs.iter().copied());
                    }
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        deps.retain(|d| self.pending.contains_key(d));
        deps
    }

    /// Records a new command's access sets in the hazard ledgers.
    fn record_access(&mut self, seq: u64, access: &Access) {
        match access {
            Access::All => self.last_universal = Some(seq),
            Access::Declared { reads, writes } => {
                for &s in writes {
                    self.last_writer.insert(s, seq);
                    self.readers.remove(&s);
                }
                for &s in reads {
                    self.readers.entry(s).or_default().push(seq);
                }
            }
        }
    }

    fn insert(&mut self, cmd: Command) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.record_access(seq, &cmd.access);
        self.pending.insert(seq, cmd);
        seq
    }

    fn is_ready(&self, seq: u64, cmd: &Command) -> bool {
        !self.running.contains(&seq)
            && cmd.foreign_pending == 0
            && cmd.deps.iter().all(|d| !self.pending.contains_key(d))
    }

    /// Commands not yet completed (pending + running) — the load signal
    /// behind [`crate::DeviceGroup`]'s least-loaded placement.
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Scheduling priority of a queue (default 0).
    fn queue_priority(&self, queue: u64) -> u8 {
        self.queue_prio.get(&queue).copied().unwrap_or(0)
    }

    /// Every ready host-side (non-launch) command, in deterministic
    /// ready-list order: descending priority, then enqueue sequence.
    /// Ready commands are pairwise hazard-independent, so this order only
    /// decides who gets their event resolved first.
    fn ready_host_commands(&self) -> Vec<u64> {
        let mut ready: Vec<(std::cmp::Reverse<u8>, u64)> = self
            .pending
            .iter()
            .filter(|(&seq, cmd)| !cmd.kind.is_launch() && self.is_ready(seq, cmd))
            .map(|(&seq, cmd)| (std::cmp::Reverse(cmd.priority), seq))
            .collect();
        ready.sort_unstable();
        ready.into_iter().map(|(_, seq)| seq).collect()
    }

    /// The ready launch a free worker should pick next: highest priority
    /// first, enqueue order within one priority — unless a ready command
    /// has been passed over [`STARVATION_AGE`] times, in which case the
    /// oldest such command wins outright (anti-starvation aging). Every
    /// ready launch that loses this pick ages by one.
    fn pick_ready_launch(&mut self) -> Option<u64> {
        // BTreeMap iteration order: `ready` is ascending by seq.
        let ready: Vec<(u64, u8)> = self
            .pending
            .iter()
            .filter(|(&seq, cmd)| cmd.kind.is_launch() && self.is_ready(seq, cmd))
            .map(|(&seq, cmd)| (seq, cmd.priority))
            .collect();
        let aged = ready
            .iter()
            .find(|&&(seq, _)| self.pending[&seq].skipped >= STARVATION_AGE)
            .map(|&(seq, _)| seq);
        let winner = aged.or_else(|| {
            ready
                .iter()
                .min_by_key(|&&(seq, prio)| (std::cmp::Reverse(prio), seq))
                .map(|&(seq, _)| seq)
        })?;
        for &(seq, _) in &ready {
            if seq != winner {
                if let Some(cmd) = self.pending.get_mut(&seq) {
                    cmd.skipped += 1;
                }
            }
        }
        Some(winner)
    }

    fn complete(&mut self, seq: u64, slot: EventSlot) {
        self.pending.remove(&seq);
        self.running.remove(&seq);
        // No live event handle means nobody can ever observe the result.
        if self.event_refs.contains_key(&seq) {
            self.finished.insert(seq, slot);
        }
    }

    /// Registers a completion callback for a still-pending command. The
    /// caller ([`Event::on_complete`]) has already verified `seq` is
    /// pending and the device is not shutting down — callbacks for
    /// settled commands fire immediately on the registering thread
    /// instead of going through this ledger.
    pub(crate) fn add_callback(&mut self, seq: u64, cb: CompletionCallback) {
        self.callbacks.entry(seq).or_default().push(cb);
    }

    /// Takes the callbacks of a command that just settled (empty for
    /// most commands). Exactly-once: whichever completion path gets here
    /// first owns the batch.
    pub(crate) fn take_callbacks(&mut self, seq: u64) -> Vec<CompletionCallback> {
        self.callbacks.remove(&seq).unwrap_or_default()
    }

    /// Takes every remaining callback — the device-shutdown path, where
    /// pending commands will never run and their callbacks must fire
    /// with [`SimError::DeviceLost`].
    pub(crate) fn take_all_callbacks(&mut self) -> Vec<CompletionCallback> {
        self.callbacks.drain().flat_map(|(_, cbs)| cbs).collect()
    }

    /// Registers the first [`Event`] handle of a fresh command.
    fn track_event(&mut self, seq: u64) {
        self.event_refs.insert(seq, 1);
    }

    /// Called by [`Event::clone`].
    pub(crate) fn retain_event(&mut self, seq: u64) {
        if let Some(n) = self.event_refs.get_mut(&seq) {
            *n += 1;
        }
    }

    /// Called by [`Event`]'s drop: the last handle going away frees the
    /// command's stored result.
    pub(crate) fn release_event(&mut self, seq: u64) {
        if let Some(n) = self.event_refs.get_mut(&seq) {
            *n -= 1;
            if *n == 0 {
                self.event_refs.remove(&seq);
                self.finished.remove(&seq);
            }
        }
    }

    /// Cancels every not-yet-running pending command of `queue`,
    /// resolving their events to [`SimError::QueueReleased`]. Running
    /// commands complete normally. Dependents of a cancelled command are
    /// *not* cancelled — a cancelled dependency counts as satisfied.
    ///
    /// Returns the cancelled commands' completion callbacks; the caller
    /// fires them with [`SimError::QueueReleased`] after releasing the
    /// device lock.
    pub(crate) fn cancel_queue(&mut self, queue: u64, now: Duration) -> Vec<CompletionCallback> {
        let doomed: Vec<u64> = self
            .pending
            .iter()
            .filter(|(seq, cmd)| cmd.queue == queue && !self.running.contains(seq))
            .map(|(&seq, _)| seq)
            .collect();
        let mut callbacks = Vec::new();
        for seq in doomed {
            let cmd = self.pending.remove(&seq).expect("collected above");
            callbacks.extend(self.take_callbacks(seq));
            let slot = EventSlot {
                result: Err(SimError::QueueReleased { queue }),
                timing: EventTiming {
                    queued: cmd.queued_at,
                    started: now,
                    ended: now,
                },
            };
            if self.event_refs.contains_key(&seq) {
                self.finished.insert(seq, slot);
            }
        }
        callbacks
    }
}

/// A command queue on a [`crate::Device`].
///
/// Created with [`crate::Device::create_queue`]; any number of queues may
/// coexist on one device and their commands may overlap (subject to event
/// and hazard ordering — see the module docs). The queue holds only a
/// *weak* device handle: commands enqueued after the device is dropped
/// fail with [`SimError::DeviceLost`].
///
/// Dropping (or [`Queue::release`]-ing) a queue **cancels** its pending
/// commands — call [`Queue::finish`] or wait on the events first if the
/// work must run.
///
/// # Examples
///
/// ```
/// use kp_gpu_sim::{BufferId, BufferUse, Device, DeviceConfig, ItemCtx, Kernel, NdRange};
///
/// struct Double { src: BufferId, dst: BufferId }
///
/// impl Kernel for Double {
///     fn name(&self) -> &str { "double" }
///     fn buffer_usage(&self) -> Option<BufferUse> {
///         Some(BufferUse::new([self.src], [self.dst]))
///     }
///     fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
///         let i = ctx.global_id(0);
///         let v: f32 = ctx.read_global(self.src, i);
///         ctx.write_global(self.dst, i, 2.0 * v);
///         ctx.ops(1);
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dev = Device::new(DeviceConfig::test_tiny())?;
/// let src = dev.create_buffer_from("src", &[1.0f32, 2.0, 3.0, 4.0])?;
/// let dst = dev.create_buffer::<f32>("dst", 4)?;
///
/// let q = dev.create_queue();
/// let launch = q.enqueue_launch(Double { src, dst }, NdRange::new_1d(4, 4)?, &[])?;
/// // The read is hazard-ordered after the launch automatically; the
/// // explicit wait-list is optional documentation.
/// let read = q.enqueue_read::<f32>(dst, &[launch.clone()])?;
///
/// let report = launch.wait_report()?;
/// assert_eq!(read.wait_read::<f32>()?, vec![2.0, 4.0, 6.0, 8.0]);
/// assert_eq!(report.groups, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Queue {
    pub(crate) shared: Weak<DeviceShared>,
    pub(crate) id: u64,
}

impl Queue {
    /// This queue's device-unique id (used in [`SimError::QueueReleased`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    fn upgrade(&self) -> Result<Arc<DeviceShared>, SimError> {
        self.shared.upgrade().ok_or(SimError::DeviceLost)
    }

    /// Splits a wait-list into same-device dependencies (seq numbers, fed
    /// to the hazard scheduler directly) and foreign events (events on
    /// *other* devices — e.g. other members of a [`crate::DeviceGroup`]).
    /// Each foreign event gets a bridge thread at enqueue time that waits
    /// for it to settle and then unblocks the command.
    fn check_wait_list(&self, wait: &[Event]) -> (Vec<u64>, Vec<Event>) {
        let mut seqs = Vec::with_capacity(wait.len());
        let mut foreign = Vec::new();
        for e in wait {
            if Weak::ptr_eq(&e.shared, &self.shared) {
                seqs.push(e.seq);
            } else {
                foreign.push(e.clone());
            }
        }
        (seqs, foreign)
    }

    fn event(&self, seq: u64) -> Event {
        Event {
            shared: self.shared.clone(),
            seq,
            queue: self.id,
        }
    }

    /// Enqueues a kernel launch and returns its event. The launch is
    /// validated (geometry, resources, declared buffers) immediately;
    /// execution starts **eagerly** — a background pool worker picks the
    /// command up as soon as its dependencies have completed, typically
    /// long before anything is waited on (see the module docs).
    ///
    /// If the kernel declares [`Kernel::buffer_usage`], the launch may
    /// overlap with commands touching disjoint buffers; otherwise it is
    /// conservatively ordered against everything.
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`], [`SimError::Launch`] for geometry or
    /// resource violations, [`SimError::UnknownBuffer`] for a declared
    /// buffer that does not exist. Kernel faults surface later, through
    /// the event.
    pub fn enqueue_launch<K>(
        &self,
        kernel: K,
        range: NdRange,
        wait: &[Event],
    ) -> Result<Event, SimError>
    where
        K: Kernel + Send + Sync + 'static,
    {
        let shared = self.upgrade()?;
        let (explicit, foreign) = self.check_wait_list(wait);
        let mut st = shared.state.lock().expect("device state poisoned");
        let access = match kernel.buffer_usage() {
            None => Access::All,
            Some(u) => {
                let resolve = |ids: &[BufferId]| -> Result<Vec<usize>, SimError> {
                    let mut slots = Vec::with_capacity(ids.len());
                    for &id in ids {
                        if st.bufs.get(id.index()).and_then(Option::as_ref).is_none() {
                            return Err(SimError::UnknownBuffer(id));
                        }
                        slots.push(id.index());
                    }
                    Ok(slots)
                };
                Access::Declared {
                    reads: resolve(&u.reads)?,
                    writes: resolve(&u.writes)?,
                }
            }
        };
        let (plan, setup) = crate::device::prepare_launch(
            &mut st,
            kernel.name(),
            kernel.phases(),
            kernel.local_buffers(),
            range,
        )?;
        let seq = self.insert_command(
            &shared,
            &mut st,
            access,
            explicit,
            foreign,
            CommandKind::Launch {
                kernel: Arc::new(kernel),
                range,
                plan,
                setup,
            },
        );
        Ok(self.event(seq))
    }

    /// Enqueues a read of `buffer` into host memory; the data is retrieved
    /// with [`Event::wait_read`].
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`], [`SimError::UnknownBuffer`],
    /// [`SimError::BufferKind`].
    pub fn enqueue_read<T: Scalar>(
        &self,
        buffer: BufferId,
        wait: &[Event],
    ) -> Result<Event, SimError> {
        let shared = self.upgrade()?;
        let (explicit, foreign) = self.check_wait_list(wait);
        let mut st = shared.state.lock().expect("device state poisoned");
        let raw = st
            .bufs
            .get(buffer.index())
            .and_then(Option::as_ref)
            .ok_or(SimError::UnknownBuffer(buffer))?;
        if raw.kind != T::KIND {
            return Err(SimError::BufferKind {
                buffer,
                expected: T::KIND,
                actual: raw.kind,
            });
        }
        let access = Access::Declared {
            reads: vec![buffer.index()],
            writes: vec![],
        };
        let seq = self.insert_command(
            &shared,
            &mut st,
            access,
            explicit,
            foreign,
            CommandKind::Read { buffer },
        );
        Ok(self.event(seq))
    }

    /// Enqueues an overwrite of `buffer` with `data` (copied out
    /// immediately, like OpenCL's blocking-write of the host pointer).
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`], [`SimError::UnknownBuffer`],
    /// [`SimError::BufferKind`], [`SimError::SizeMismatch`].
    pub fn enqueue_write<T: Scalar>(
        &self,
        buffer: BufferId,
        data: &[T],
        wait: &[Event],
    ) -> Result<Event, SimError> {
        let shared = self.upgrade()?;
        let (explicit, foreign) = self.check_wait_list(wait);
        let mut st = shared.state.lock().expect("device state poisoned");
        let raw = st
            .bufs
            .get(buffer.index())
            .and_then(Option::as_ref)
            .ok_or(SimError::UnknownBuffer(buffer))?;
        if raw.kind != T::KIND {
            return Err(SimError::BufferKind {
                buffer,
                expected: T::KIND,
                actual: raw.kind,
            });
        }
        if raw.len() != data.len() {
            return Err(SimError::SizeMismatch {
                buffer,
                buffer_len: raw.len(),
                data_len: data.len(),
            });
        }
        let access = Access::Declared {
            reads: vec![],
            writes: vec![buffer.index()],
        };
        let bits = data.iter().map(|v| v.to_bits64()).collect();
        let seq = self.insert_command(
            &shared,
            &mut st,
            access,
            explicit,
            foreign,
            CommandKind::Write {
                slot: buffer.index(),
                bits,
            },
        );
        Ok(self.event(seq))
    }

    /// Enqueues a device-side copy of `src` into `dst`.
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`], [`SimError::UnknownBuffer`],
    /// [`SimError::BufferKind`], [`SimError::SizeMismatch`].
    pub fn enqueue_copy(
        &self,
        src: BufferId,
        dst: BufferId,
        wait: &[Event],
    ) -> Result<Event, SimError> {
        let shared = self.upgrade()?;
        let (explicit, foreign) = self.check_wait_list(wait);
        let mut st = shared.state.lock().expect("device state poisoned");
        let src_raw = st
            .bufs
            .get(src.index())
            .and_then(Option::as_ref)
            .ok_or(SimError::UnknownBuffer(src))?;
        let (src_kind, src_len) = (src_raw.kind, src_raw.len());
        let dst_raw = st
            .bufs
            .get(dst.index())
            .and_then(Option::as_ref)
            .ok_or(SimError::UnknownBuffer(dst))?;
        if dst_raw.kind != src_kind {
            return Err(SimError::BufferKind {
                buffer: dst,
                expected: src_kind,
                actual: dst_raw.kind,
            });
        }
        if dst_raw.len() != src_len {
            return Err(SimError::SizeMismatch {
                buffer: dst,
                buffer_len: dst_raw.len(),
                data_len: src_len,
            });
        }
        let access = Access::Declared {
            reads: vec![src.index()],
            writes: vec![dst.index()],
        };
        let seq = self.insert_command(
            &shared,
            &mut st,
            access,
            explicit,
            foreign,
            CommandKind::Copy {
                src: src.index(),
                dst: dst.index(),
            },
        );
        Ok(self.event(seq))
    }

    fn insert_command(
        &self,
        shared: &Arc<DeviceShared>,
        st: &mut MutexGuard<'_, DeviceState>,
        access: Access,
        explicit: Vec<u64>,
        foreign: Vec<Event>,
        kind: CommandKind,
    ) -> u64 {
        let deps = st.sched.collect_deps(&access, &explicit);
        let profiling = st.profiling;
        let priority = st.sched.queue_priority(self.id);
        let seq = st.sched.insert(Command {
            queue: self.id,
            deps,
            foreign_pending: foreign.len(),
            access,
            kind,
            queued_at: shared.epoch.elapsed(),
            profiling,
            priority,
            skipped: 0,
        });
        st.sched.track_event(seq);
        // Cross-device waits: one bridge thread per foreign event waits
        // for the event to settle on its own device, then unblocks this
        // command. *Any* settled outcome counts as satisfied — completion,
        // cancellation, or a lost device — matching the cancelled-dep
        // semantics of same-device waits. Bridges go in the dedicated
        // bridge list (NOT `workers`: `ensure_workers` sizes the pool by
        // that list's length) so `Device::drop` reaps them; no deadlock
        // is possible because the cross-device wait graph only points at
        // already-created events (a DAG) and every device's drop/shutdown
        // wakes its waiters.
        for e in foreign {
            let local = Arc::clone(shared);
            let handle = std::thread::Builder::new()
                .name("kp-sim-bridge".into())
                .spawn(move || {
                    if let Some(theirs) = e.shared.upgrade() {
                        wait_seq(&theirs, e.seq);
                    }
                    let mut st = local.state.lock().expect("device state poisoned");
                    if let Some(cmd) = st.sched.pending.get_mut(&seq) {
                        cmd.foreign_pending -= 1;
                    }
                    drop(st);
                    local.cv.notify_all();
                })
                .expect("spawn cross-device bridge");
            st.bridges.push(handle);
        }
        // Eager execution: make sure the worker pool exists and wake it —
        // the command starts as soon as its dependencies are done, not
        // when somebody waits.
        ensure_workers(shared, st);
        shared.cv.notify_all();
        seq
    }

    /// Sets this queue's scheduling priority (default 0; higher runs
    /// earlier). When several commands are ready at the same time, pool
    /// workers pick them in descending priority, then enqueue order — a
    /// deterministic ready-list order. Priorities are strict but not
    /// starving: a ready command passed over often enough jumps the
    /// order (anti-starvation aging), so a sustained stream of
    /// high-priority work delays low-priority commands by a bounded
    /// number of picks instead of forever. The priority is captured per
    /// command **at enqueue time**: changing it affects commands enqueued
    /// afterwards, not ones already in the stream.
    ///
    /// Priorities steer latency only. Results, reports and fault logs are
    /// bit-identical for every priority assignment (see the module docs'
    /// determinism argument).
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`].
    pub fn set_priority(&self, priority: u8) -> Result<(), SimError> {
        let shared = self.upgrade()?;
        let mut st = shared.state.lock().expect("device state poisoned");
        st.sched.queue_prio.insert(self.id, priority);
        Ok(())
    }

    /// This queue's current scheduling priority (see
    /// [`Queue::set_priority`]).
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`].
    pub fn priority(&self) -> Result<u8, SimError> {
        let shared = self.upgrade()?;
        let st = shared.state.lock().expect("device state poisoned");
        Ok(st.sched.queue_priority(self.id))
    }

    /// Blocks until every still-pending command of this queue has
    /// completed (their dependencies on other queues complete first by
    /// construction). A pure join — the worker pool is already executing
    /// eagerly. Per-command outcomes — including kernel faults — stay on
    /// the individual events.
    ///
    /// # Errors
    ///
    /// [`SimError::DeviceLost`].
    pub fn finish(&self) -> Result<(), SimError> {
        let shared = self.upgrade()?;
        let mut st = shared.state.lock().expect("device state poisoned");
        while !st.shutdown && st.sched.pending.values().any(|cmd| cmd.queue == self.id) {
            st = shared.cv.wait(st).expect("device state poisoned");
        }
        if st.shutdown {
            return Err(SimError::DeviceLost);
        }
        Ok(())
    }

    /// Releases the queue, cancelling its pending commands (their events
    /// resolve to [`SimError::QueueReleased`]). Equivalent to dropping it;
    /// provided for explicitness at call sites.
    pub fn release(self) {}
}

impl Drop for Queue {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.upgrade() {
            let now = shared.epoch.elapsed();
            let mut st = shared.state.lock().expect("device state poisoned");
            let callbacks = st.sched.cancel_queue(self.id, now);
            drop(st);
            shared.cv.notify_all();
            fire_callbacks(callbacks, &Err(SimError::QueueReleased { queue: self.id }));
        }
    }
}

/// Everything a worker needs to run one launch command without holding
/// the device lock.
struct LaunchRun {
    seq: u64,
    kernel: Arc<dyn Kernel + Send + Sync>,
    range: NdRange,
    plan: Arc<LaunchPlan>,
    setup: LaunchSetup,
    snapshot: BufTable,
    mask: Option<AccessMask>,
    cfg: DeviceConfig,
    profiling: bool,
    workers: usize,
    queued_at: Duration,
    started: Duration,
}

/// Tops the device's persistent worker pool up to
/// [`resolve_parallelism`]`(cfg.parallelism)` threads. Called on every
/// enqueue (so the pool appears lazily, on first use, and grows if
/// [`crate::Device::set_parallelism`] raised the budget); it never
/// shrinks — surplus workers just park until the device drops.
pub(crate) fn ensure_workers(shared: &Arc<DeviceShared>, st: &mut MutexGuard<'_, DeviceState>) {
    if st.shutdown {
        return;
    }
    let target = resolve_parallelism(st.cfg.parallelism).max(1);
    while st.workers.len() < target {
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("kp-sim-worker".into())
            .spawn(move || worker_loop(&shared))
            .expect("spawn command-queue worker");
        st.workers.push(handle);
    }
}

/// Body of one persistent pool worker: park on the device condvar until
/// a command is ready, execute it, publish its event, repeat — until the
/// device shuts down. Host-side commands (reads/writes/copies) are
/// executed in batches under the lock; launches release the lock for the
/// duration of kernel execution.
fn worker_loop(shared: &Arc<DeviceShared>) {
    let mut st = shared.state.lock().expect("device state poisoned");
    loop {
        if st.shutdown {
            return;
        }
        // Host-side commands are cheap: resolve every ready one right
        // here, in ready-list order, before considering launches — they
        // never pile up behind a launch while any worker is free (with
        // every worker mid-launch they wait for the first to retire;
        // waits are pure joins and never execute commands themselves).
        let ready_host = st.sched.ready_host_commands();
        if !ready_host.is_empty() {
            let mut settled = Vec::new();
            for seq in ready_host {
                if let Some(batch) = execute_instant(shared, &mut st, seq) {
                    settled.push(batch);
                }
            }
            // Completions may have unblocked dependents (and waiters).
            shared.cv.notify_all();
            // Completion callbacks fire with the lock released (the
            // no-lock-held guarantee), after waiters were notified.
            if !settled.is_empty() {
                drop(st);
                for (callbacks, outcome) in settled {
                    fire_callbacks(callbacks, &outcome);
                }
                st = shared.state.lock().expect("device state poisoned");
            }
            continue;
        }
        // The *current* parallelism knob bounds how many commands run
        // concurrently — enforced here, not by pool size, so lowering
        // the knob after the pool has grown still takes effect (surplus
        // workers park until a running launch retires).
        let budget = resolve_parallelism(st.cfg.parallelism).max(1);
        if st.sched.running.len() >= budget {
            st = shared.cv.wait(st).expect("device state poisoned");
            continue;
        }
        match st.sched.pick_ready_launch() {
            Some(seq) => {
                // Divide the in-launch sharding budget across the
                // launches currently running AND the ones other workers
                // are about to pick (the still-ready set, which includes
                // this one), so overlapping two simultaneously ready
                // launches on an 8-worker device shards each over 4
                // threads — never slower than serializing them at 8. A
                // lone launch gets the full budget, exactly like the
                // blocking frontends; a launch enqueued *later*, while a
                // wide one is already running, may transiently
                // oversubscribe the budget until the wide launch
                // retires (results are unaffected; only scheduling
                // noise).
                let ready_launches = st
                    .sched
                    .pending
                    .iter()
                    .filter(|(&s, cmd)| cmd.kind.is_launch() && st.sched.is_ready(s, cmd))
                    .count();
                let inflight = st.sched.running.len() + ready_launches.max(1);
                let share = (budget / inflight).max(1);
                let run = prepare_launch_run(shared, &mut st, seq, share);
                drop(st);
                execute_launch(shared, run);
                st = shared.state.lock().expect("device state poisoned");
            }
            // Nothing ready: park until an enqueue, a completion or
            // shutdown changes that. A lost-progress deadlock is
            // impossible — dependencies always point at strictly earlier
            // sequence numbers, so some pending command is always ready
            // or running.
            None => st = shared.cv.wait(st).expect("device state poisoned"),
        }
    }
}

/// Blocks until command `seq` has left the pending map (completed or
/// cancelled) or the device shut down. Pure join: execution is the
/// worker pool's job.
pub(crate) fn wait_seq(shared: &Arc<DeviceShared>, seq: u64) {
    let mut st = shared.state.lock().expect("device state poisoned");
    while !st.shutdown && st.sched.pending.contains_key(&seq) {
        st = shared.cv.wait(st).expect("device state poisoned");
    }
}

/// Marks a ready launch as running and captures everything its execution
/// needs: kernel handle, plan, a snapshot of the buffer table, and the
/// access mask compiled from its declared usage.
fn prepare_launch_run(
    shared: &Arc<DeviceShared>,
    st: &mut MutexGuard<'_, DeviceState>,
    seq: u64,
    workers: usize,
) -> LaunchRun {
    st.sched.running.insert(seq);
    let cmd = st.sched.pending.get(&seq).expect("picked from pending");
    let mask = match &cmd.access {
        Access::All => None,
        Access::Declared { reads, writes } => Some(AccessMask::new(st.bufs.len(), reads, writes)),
    };
    let CommandKind::Launch {
        kernel,
        range,
        plan,
        setup,
    } = &cmd.kind
    else {
        unreachable!("prepare_launch_run called on a non-launch command")
    };
    LaunchRun {
        seq,
        kernel: Arc::clone(kernel),
        range: *range,
        plan: Arc::clone(plan),
        setup: LaunchSetup {
            local_specs: setup.local_specs.clone(),
            phases: setup.phases,
            occ: setup.occ,
        },
        snapshot: st.bufs.clone(),
        mask: mask.clone(),
        cfg: st.cfg.clone(),
        profiling: cmd.profiling,
        workers: workers.min(plan.group_coords.len()).max(1),
        queued_at: cmd.queued_at,
        started: shared.epoch.elapsed(),
    }
}

/// Runs one launch command (device lock *not* held), then applies its
/// writes and publishes its event under the lock.
///
/// A panicking kernel must not kill the pool worker executing it (a dead
/// worker would strand every waiter), so execution is wrapped in
/// `catch_unwind`: the panic becomes a typed [`SimError::Launch`] on the
/// event, no writes are applied, and the worker lives on.
fn execute_launch(shared: &Arc<DeviceShared>, run: LaunchRun) {
    let (seq, queued_at, started) = (run.seq, run.queued_at, run.started);
    let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut run = run;
        let (outcomes, entries) = if run.workers <= 1 {
            engine::execute_groups_serial(
                &*run.kernel,
                &run.cfg,
                &run.plan,
                &run.setup,
                &mut run.snapshot,
                run.profiling,
                run.mask.as_ref(),
            )
        } else {
            execute_groups_parallel(
                &*run.kernel,
                &run.cfg,
                &run.plan,
                &run.setup,
                &run.snapshot,
                run.profiling,
                run.workers,
                run.mask.as_ref(),
            )
        };
        let result = engine::reduce_outcomes(
            run.kernel.name(),
            &run.cfg,
            run.profiling,
            &run.range,
            &run.setup,
            outcomes,
        )
        .map(|report| CommandResult::Launch(Box::new(report)));
        // Drop the private snapshot before applying so unshared buffers
        // are written in place rather than copy-on-write.
        drop(run.snapshot);
        (result, entries)
    }));
    let (result, entries) = match executed {
        Ok((result, entries)) => (result, entries),
        Err(_) => (
            Err(SimError::Launch(
                "kernel panicked during a queued launch; no writes were applied".into(),
            )),
            Vec::new(),
        ),
    };
    let mut st = shared.state.lock().expect("device state poisoned");
    engine::apply_writes(&entries, &mut st.bufs);
    let outcome = result.as_ref().map(|_| ()).map_err(Clone::clone);
    let callbacks = st.sched.take_callbacks(seq);
    st.sched.complete(
        seq,
        EventSlot {
            result,
            timing: EventTiming {
                queued: queued_at,
                started,
                ended: shared.epoch.elapsed(),
            },
        },
    );
    drop(st);
    shared.cv.notify_all();
    // The no-lock-held guarantee of `Event::on_complete`: callbacks run
    // on the resolving worker *after* the lock is released and waiters
    // are notified, so a callback may freely enqueue follow-up commands
    // or wait on other events without deadlocking.
    fire_callbacks(callbacks, &outcome);
}

/// Executes a host-side command (read/write/copy) under the device lock.
/// Returns the command's completion callbacks (if any) paired with its
/// outcome — the caller fires them once the lock is released.
fn execute_instant(
    shared: &Arc<DeviceShared>,
    st: &mut MutexGuard<'_, DeviceState>,
    seq: u64,
) -> Option<(Vec<CompletionCallback>, Result<(), SimError>)> {
    let started = shared.epoch.elapsed();
    let cmd = st.sched.pending.remove(&seq).expect("picked from pending");
    let result = match cmd.kind {
        CommandKind::Read { buffer } => {
            // O(1) under the lock: keep an `Arc` to the buffer version at
            // execution time. Later writers copy-on-write around it, so
            // the snapshot stays exact; `wait_read` materializes the host
            // vector outside the lock.
            let raw = st.bufs[buffer.index()]
                .as_ref()
                .expect("validated at enqueue; releases drain first");
            Ok(CommandResult::Read {
                buffer,
                snapshot: Some(Arc::clone(raw)),
            })
        }
        CommandKind::Write { slot, bits } => {
            let raw = st.bufs[slot]
                .as_mut()
                .expect("validated at enqueue; releases drain first");
            Arc::make_mut(raw).data = bits;
            Ok(CommandResult::Write)
        }
        CommandKind::Copy { src, dst } => {
            let data = st.bufs[src]
                .as_ref()
                .expect("validated at enqueue; releases drain first")
                .data
                .clone();
            let raw = st.bufs[dst]
                .as_mut()
                .expect("validated at enqueue; releases drain first");
            Arc::make_mut(raw).data = data;
            Ok(CommandResult::Copy)
        }
        CommandKind::Launch { .. } => unreachable!("launches are not instant commands"),
    };
    st.sched.running.remove(&seq);
    let outcome = result.as_ref().map(|_| ()).map_err(Clone::clone);
    let callbacks = st.sched.take_callbacks(seq);
    let slot = EventSlot {
        result,
        timing: EventTiming {
            queued: cmd.queued_at,
            started,
            ended: shared.epoch.elapsed(),
        },
    };
    if st.sched.event_refs.contains_key(&seq) {
        st.sched.finished.insert(seq, slot);
    }
    if callbacks.is_empty() {
        None
    } else {
        Some((callbacks, outcome))
    }
}

/// Blocks until every pending command of the device has completed (used
/// by the blocking `Device` shims before they touch buffers directly).
/// Pure join: the worker pool is already executing eagerly.
pub(crate) fn drain_all(shared: &Arc<DeviceShared>) {
    let mut st = shared.state.lock().expect("device state poisoned");
    while !st.shutdown && st.sched.has_pending() {
        st = shared.cv.wait(st).expect("device state poisoned");
    }
}
