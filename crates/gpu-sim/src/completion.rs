//! Completion multiplexing: [`CompletionQueue`] — many in-flight events,
//! one drainable ready-stream.
//!
//! A serving loop that admits thousands of concurrent commands cannot
//! afford one parked thread per [`Event`]. [`CompletionQueue::watch`]
//! attaches a completion callback (see [`Event::on_complete`]) that
//! pushes a [`Completion`] record into a shared ready-queue the moment
//! the command settles; the loop then harvests finished work with
//! [`CompletionQueue::drain`] (non-blocking) or [`CompletionQueue::next`]
//! (parks only the *drainer*, never a request thread, and only when
//! nothing is ready).
//!
//! One queue may watch events from any number of devices — completions
//! from every member of a [`crate::DeviceGroup`] funnel into the same
//! stream, which is exactly what a least-loaded serving loop wants.
//!
//! **Ordering & determinism.** Completions arrive in the order commands
//! actually settle, which depends on worker count and scheduling — the
//! stream order is *not* deterministic. Every functional outcome in it
//! is: each [`Completion::result`] is bit-identical to what a blocking
//! [`Event::wait`] on the same command would have returned, and reports
//! or read-back data retrieved through the retained [`Event`] afterwards
//! are unchanged (see the crate docs' determinism argument).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::error::SimError;
use crate::event::Event;

/// One settled command, as drained from a [`CompletionQueue`].
#[derive(Debug, Clone)]
pub struct Completion {
    /// The caller-chosen token passed to [`CompletionQueue::watch`] —
    /// typically a request id that maps back to per-request state.
    pub token: u64,
    /// The command's device-wide sequence number (see [`Event::seq`]).
    pub seq: u64,
    /// Id of the queue the command was enqueued on.
    pub queue: u64,
    /// The command's settled outcome — exactly what [`Event::poll`] /
    /// [`Event::wait`] report: `Ok(())`, the command's own failure,
    /// [`SimError::QueueReleased`] or [`SimError::DeviceLost`].
    pub result: Result<(), SimError>,
}

#[derive(Default)]
struct CqState {
    ready: VecDeque<Completion>,
    /// Watched commands that have not yet reached `ready` — the signal
    /// that lets [`CompletionQueue::next`] distinguish "drained dry, more
    /// coming" from "nothing outstanding at all".
    outstanding: usize,
}

struct CqInner {
    state: Mutex<CqState>,
    cv: Condvar,
}

/// Multiplexes many [`Event`]s into one drainable ready-stream.
///
/// Cheap to clone (a shared handle): a serving loop typically keeps one
/// clone for watching and one for draining, possibly on different
/// threads. See the module docs for ordering guarantees.
///
/// # Examples
///
/// ```
/// use kp_gpu_sim::{BufferId, BufferUse, CompletionQueue, Device, DeviceConfig, ItemCtx, Kernel,
///                  NdRange};
///
/// struct Double { src: BufferId, dst: BufferId }
///
/// impl Kernel for Double {
///     fn name(&self) -> &str { "double" }
///     fn buffer_usage(&self) -> Option<BufferUse> {
///         Some(BufferUse::new([self.src], [self.dst]))
///     }
///     fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
///         let i = ctx.global_id(0);
///         let v: f32 = ctx.read_global(self.src, i);
///         ctx.write_global(self.dst, i, 2.0 * v);
///         ctx.ops(1);
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dev = Device::new(DeviceConfig::test_tiny())?;
/// let src = dev.create_buffer_from("src", &[1.0f32; 64])?;
/// let dst = dev.create_buffer::<f32>("dst", 64)?;
/// let queue = dev.create_queue();
/// let cq = CompletionQueue::new();
/// for token in 0..4u64 {
///     let ev = queue.enqueue_launch(Double { src, dst }, NdRange::new_1d(64, 4)?, &[])?;
///     cq.watch(&ev, token);
/// }
/// let mut done = 0;
/// while let Some(completion) = cq.next() {
///     completion.result?;
///     done += 1;
/// }
/// assert_eq!(done, 4);
/// # Ok(())
/// # }
/// ```
pub struct CompletionQueue {
    inner: Arc<CqInner>,
}

impl std::fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock().expect("completion queue poisoned");
        f.debug_struct("CompletionQueue")
            .field("ready", &st.ready.len())
            .field("outstanding", &st.outstanding)
            .finish()
    }
}

impl Clone for CompletionQueue {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Default for CompletionQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CompletionQueue {
    /// Creates an empty completion queue.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(CqInner {
                state: Mutex::new(CqState::default()),
                cv: Condvar::new(),
            }),
        }
    }

    /// Watches `event`: when its command settles, a [`Completion`]
    /// carrying `token` becomes drainable from this queue — exactly
    /// once, including for commands that already settled (or whose
    /// device is already gone: the completion then carries
    /// [`SimError::DeviceLost`]). The queue does not retain the event
    /// handle — keep a clone if the report or read-back data is needed
    /// after the completion is drained.
    pub fn watch(&self, event: &Event, token: u64) {
        let inner = Arc::clone(&self.inner);
        let (seq, queue) = (event.seq(), event.queue_id());
        {
            let mut st = self.inner.state.lock().expect("completion queue poisoned");
            st.outstanding += 1;
        }
        event.on_complete(move |result| {
            let mut st = inner.state.lock().expect("completion queue poisoned");
            st.outstanding -= 1;
            st.ready.push_back(Completion {
                token,
                seq,
                queue,
                result,
            });
            drop(st);
            inner.cv.notify_all();
        });
    }

    /// Takes every completion currently ready, without blocking. Returns
    /// an empty vector when nothing has settled since the last drain.
    pub fn drain(&self) -> Vec<Completion> {
        let mut st = self.inner.state.lock().expect("completion queue poisoned");
        st.ready.drain(..).collect()
    }

    /// Takes one ready completion without blocking, `None` if nothing is
    /// ready right now (watched commands may still be in flight — see
    /// [`CompletionQueue::outstanding`]).
    pub fn try_next(&self) -> Option<Completion> {
        let mut st = self.inner.state.lock().expect("completion queue poisoned");
        st.ready.pop_front()
    }

    /// Takes the next completion, parking the calling thread until one
    /// is ready. Returns `None` only when nothing is ready **and** no
    /// watched command is still outstanding — the natural termination of
    /// a `while let Some(c) = cq.next()` drain loop. Only the drainer
    /// ever parks here; threads enqueueing and watching new work never
    /// do.
    pub fn next(&self) -> Option<Completion> {
        let mut st = self.inner.state.lock().expect("completion queue poisoned");
        loop {
            if let Some(c) = st.ready.pop_front() {
                return Some(c);
            }
            if st.outstanding == 0 {
                return None;
            }
            st = self.inner.cv.wait(st).expect("completion queue poisoned");
        }
    }

    /// Watched commands that have not yet produced a drainable
    /// completion.
    pub fn outstanding(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("completion queue poisoned")
            .outstanding
    }

    /// Completions settled but not yet drained.
    pub fn ready_len(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("completion queue poisoned")
            .ready
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::device::Device;

    #[test]
    fn drain_empty_queue_is_empty() {
        let cq = CompletionQueue::new();
        assert!(cq.drain().is_empty());
        assert!(cq.try_next().is_none());
        assert_eq!(cq.outstanding(), 0);
        assert!(cq.next().is_none());
    }

    #[test]
    fn watch_settled_event_is_immediately_ready() {
        let mut dev = Device::new(DeviceConfig::test_tiny()).unwrap();
        let buf = dev.create_buffer::<f32>("b", 8).unwrap();
        let queue = dev.create_queue();
        let ev = queue.enqueue_write(buf, &[1.0f32; 8], &[]).unwrap();
        ev.wait().unwrap();
        let cq = CompletionQueue::new();
        cq.watch(&ev, 7);
        let c = cq.try_next().expect("settled watch is ready at once");
        assert_eq!(c.token, 7);
        assert_eq!(c.seq, ev.seq());
        assert!(c.result.is_ok());
        assert_eq!(cq.outstanding(), 0);
    }

    #[test]
    fn watch_after_device_drop_yields_device_lost() {
        let mut dev = Device::new(DeviceConfig::test_tiny()).unwrap();
        let buf = dev.create_buffer::<f32>("b", 8).unwrap();
        let queue = dev.create_queue();
        let ev = queue.enqueue_write(buf, &[2.0f32; 8], &[]).unwrap();
        drop(queue);
        drop(dev);
        let cq = CompletionQueue::new();
        cq.watch(&ev, 3);
        let c = cq.try_next().expect("lost device settles immediately");
        assert_eq!(c.token, 3);
        assert!(matches!(c.result, Err(SimError::DeviceLost)));
    }
}
