//! Synthetic image generators — the substitute for the USC-SIPI "misc" and
//! "pattern" catalogues used in the paper (§6.2, Fig. 6/7).
//!
//! The paper's finding is that perforation error tracks the *spatial
//! frequency* of the input: flat or smooth images reconstruct almost
//! perfectly, natural "countryside" photographs sit in the middle, and
//! high-frequency pattern images (stripes, checkerboards, zone plates)
//! perforate badly. The generators here span exactly that spectrum,
//! deterministically from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::image::Image;
use crate::noise::{add_gaussian_noise, add_salt_pepper, fbm};

/// Uniform image of the given value.
pub fn flat(width: usize, height: usize, value: f32) -> Image {
    Image::from_fn(width, height, |_, _| value)
}

/// Linear luminance ramp; `vertical` selects the gradient axis.
pub fn gradient(width: usize, height: usize, vertical: bool) -> Image {
    Image::from_fn(width, height, |x, y| {
        if vertical {
            y as f32 / (height.max(2) - 1) as f32
        } else {
            x as f32 / (width.max(2) - 1) as f32
        }
    })
}

/// Smooth "countryside" image: fractional Brownian motion with octaves
/// down to the pixel scale plus mild sensor noise — like rolling hills
/// photographed on real film (the paper's Fig. 7b class). Natural
/// photographs carry pixel-level texture and quantization noise (the
/// paper's §1 points at exactly this), which is what makes row perforation
/// visible in the error.
pub fn countryside(width: usize, height: usize, seed: u64) -> Image {
    let base = width.max(height) as f32 / 8.0;
    let octaves = (base.log2().ceil() as u32 + 1).clamp(4, 12);
    let mut img = Image::from_fn(width, height, |x, y| {
        fbm(x as f32, y as f32, base, octaves, 0.55, seed)
    });
    img.normalize();
    add_gaussian_noise(&mut img, 0.015, seed.wrapping_add(101));
    img
}

/// Detailed photo-like image: fBm down to pixel-scale texture, a soft
/// vignette and sensor noise — stands in for the USC-SIPI "misc"
/// photographs.
pub fn photo_like(width: usize, height: usize, seed: u64) -> Image {
    let base = width.max(height) as f32 / 16.0;
    let octaves = (base.log2().ceil() as u32 + 1).clamp(4, 12);
    let mut img = Image::from_fn(width, height, |x, y| {
        let coarse = fbm(x as f32, y as f32, base, octaves, 0.6, seed);
        let cx = x as f32 / width as f32 - 0.5;
        let cy = y as f32 / height as f32 - 0.5;
        let vignette = 1.0 - 0.5 * (cx * cx + cy * cy);
        coarse * vignette
    });
    img.normalize();
    add_gaussian_noise(&mut img, 0.02, seed.wrapping_add(103));
    img
}

/// Checkerboard with `cell`-pixel squares — the harshest input for
/// row-perforation (pure high frequency, Fig. 7c class). Levels are
/// photographic midtones (0.15 / 0.85) rather than pure black/white:
/// USC-SIPI pattern images are *photographs* of patterns, and midtone
/// levels also keep the mean-relative-error metric well-conditioned.
pub fn checkerboard(width: usize, height: usize, cell: usize) -> Image {
    let cell = cell.max(1);
    Image::from_fn(width, height, |x, y| {
        if ((x / cell) + (y / cell)).is_multiple_of(2) {
            0.15
        } else {
            0.85
        }
    })
}

/// Horizontal or vertical stripes with the given period in pixels.
/// Horizontal stripes (varying along y) are adversarial for row
/// perforation; vertical ones are nearly free.
pub fn stripes(width: usize, height: usize, period: usize, vertical: bool) -> Image {
    let period = period.max(2);
    Image::from_fn(width, height, |x, y| {
        let c = if vertical { x } else { y };
        if (c / (period / 2)).is_multiple_of(2) {
            0.15
        } else {
            0.85
        }
    })
}

/// Zone plate: `sin(r²)` chirp whose local frequency grows from the center
/// outward — sweeps every spatial frequency in one image.
pub fn zone_plate(width: usize, height: usize) -> Image {
    let km = 0.7 * std::f32::consts::PI;
    let (cw, ch) = (width as f32 / 2.0, height as f32 / 2.0);
    let rm = cw.min(ch);
    Image::from_fn(width, height, |x, y| {
        let dx = (x as f32 - cw) / rm;
        let dy = (y as f32 - ch) / rm;
        let r2 = dx * dx + dy * dy;
        0.5 + 0.35 * (km * rm * r2).cos()
    })
}

/// Document-like image: dark "text" strokes on a light background, made of
/// seeded random short horizontal runs on a line grid.
pub fn text_like(width: usize, height: usize, seed: u64) -> Image {
    let mut img = flat(width, height, 0.92);
    let mut rng = StdRng::seed_from_u64(seed);
    let line_height = 12.max(height / 48);
    let glyph_h = line_height * 2 / 3;
    let mut y = line_height / 2;
    while y + glyph_h < height {
        let mut x = rng.gen_range(2..width / 8 + 3);
        while x + 3 < width {
            let run: usize = rng.gen_range(2..9);
            let gap: usize = rng.gen_range(1..5);
            if rng.gen::<f64>() < 0.85 {
                for dy in 0..glyph_h {
                    for dx in 0..run.min(width - x - 1) {
                        let shade = 0.12 + 0.15 * rng.gen::<f32>();
                        img.set(x + dx, y + dy, shade);
                    }
                }
            }
            x += run + gap;
        }
        y += line_height;
    }
    img
}

/// Geometric test card: seeded random rectangles and discs of distinct
/// gray levels over a mid background — large flat areas with sharp edges
/// (the paper's Fig. 7a class scores tiny errors on these).
pub fn shapes(width: usize, height: usize, seed: u64) -> Image {
    let mut img = flat(width, height, 0.5);
    let mut rng = StdRng::seed_from_u64(seed);
    let count = 6 + (seed % 7) as usize;
    for _ in 0..count {
        let shade: f32 = rng.gen_range(0.1..0.95);
        let cx = rng.gen_range(0..width);
        let cy = rng.gen_range(0..height);
        let rw = rng.gen_range(width / 16..width / 3);
        let rh = rng.gen_range(height / 16..height / 3);
        if rng.gen::<bool>() {
            // Rectangle.
            for y in cy.saturating_sub(rh / 2)..(cy + rh / 2).min(height) {
                for x in cx.saturating_sub(rw / 2)..(cx + rw / 2).min(width) {
                    img.set(x, y, shade);
                }
            }
        } else {
            // Disc.
            let r = (rw.min(rh) / 2).max(2) as i64;
            for dy in -r..=r {
                for dx in -r..=r {
                    if dx * dx + dy * dy <= r * r {
                        let x = cx as i64 + dx;
                        let y = cy as i64 + dy;
                        if x >= 0 && y >= 0 && (x as usize) < width && (y as usize) < height {
                            img.set(x as usize, y as usize, shade);
                        }
                    }
                }
            }
        }
    }
    img
}

/// A natural scene: smooth fBm background with solid objects (sharp
/// edges) and faint sensor noise — the closest stand-in for a USC-SIPI
/// photograph: structure dominates, noise seasons. Edge content is what
/// separates input-side perforation (reconstruct, then filter smooths the
/// displacement) from Paraprox's output copying (displaces *filtered*
/// edges), so this is the canonical comparison input.
pub fn scene(width: usize, height: usize, seed: u64) -> Image {
    let background = countryside(width, height, seed);
    let objects = shapes(width, height, seed.wrapping_add(7));
    let mut img = Image::from_fn(width, height, |x, y| {
        0.45 * background.get(x, y) + 0.55 * objects.get(x, y)
    });
    add_gaussian_noise(&mut img, 0.008, seed.wrapping_add(9));
    img
}

/// A noisy photo: [`photo_like`] plus Gaussian sensor noise — exercises the
/// Gaussian filter's actual use case.
pub fn noisy_photo(width: usize, height: usize, seed: u64) -> Image {
    let mut img = photo_like(width, height, seed);
    add_gaussian_noise(&mut img, 0.03, seed.wrapping_add(1));
    img
}

/// A corrupted scan: [`shapes`] plus salt-and-pepper noise — the Median
/// filter's target workload.
pub fn corrupted_scan(width: usize, height: usize, seed: u64) -> Image {
    let mut img = shapes(width, height, seed);
    add_salt_pepper(&mut img, 0.02, seed.wrapping_add(2));
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 64;
    const H: usize = 64;

    #[test]
    fn all_generators_produce_unit_range() {
        let imgs = [
            flat(W, H, 0.3),
            gradient(W, H, true),
            gradient(W, H, false),
            countryside(W, H, 1),
            photo_like(W, H, 2),
            checkerboard(W, H, 4),
            stripes(W, H, 8, true),
            stripes(W, H, 8, false),
            zone_plate(W, H),
            text_like(W, H, 3),
            shapes(W, H, 4),
            noisy_photo(W, H, 5),
            corrupted_scan(W, H, 6),
        ];
        for (i, img) in imgs.iter().enumerate() {
            let (min, max) = img.min_max();
            assert!(
                min >= 0.0 && max <= 1.0,
                "generator {i}: range [{min}, {max}]"
            );
            assert_eq!(img.width(), W);
            assert_eq!(img.height(), H);
        }
    }

    #[test]
    fn scene_mixes_edges_and_smoothness() {
        let img = scene(W, H, 3);
        let (min, max) = img.min_max();
        assert!(min >= 0.0 && max <= 1.0);
        let f = img.frequency_score();
        let smooth = countryside(W, H, 3).frequency_score();
        let checker = checkerboard(W, H, 1).frequency_score();
        assert!(f < checker);
        assert!(f > 0.0 && smooth > 0.0);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(countryside(W, H, 9), countryside(W, H, 9));
        assert_eq!(text_like(W, H, 9), text_like(W, H, 9));
        assert_eq!(shapes(W, H, 9), shapes(W, H, 9));
        assert_ne!(countryside(W, H, 9), countryside(W, H, 10));
    }

    #[test]
    fn frequency_spectrum_matches_paper_classes() {
        // flat < countryside < checkerboard in high-frequency content —
        // the ordering behind Fig. 7's 0.12% / 5% / 19% error examples.
        let f = flat(W, H, 0.5).frequency_score();
        let c = countryside(W, H, 3).frequency_score();
        let p = checkerboard(W, H, 1).frequency_score();
        assert!(f < c, "flat {f} !< countryside {c}");
        assert!(c < p, "countryside {c} !< checkerboard {p}");
    }

    #[test]
    fn horizontal_stripes_vary_along_y() {
        let img = stripes(W, H, 4, false);
        assert_eq!(img.get(0, 0), img.get(W - 1, 0));
        assert_ne!(img.get(0, 0), img.get(0, 2));
    }

    #[test]
    fn vertical_stripes_vary_along_x() {
        let img = stripes(W, H, 4, true);
        assert_eq!(img.get(0, 0), img.get(0, H - 1));
        assert_ne!(img.get(0, 0), img.get(2, 0));
    }

    #[test]
    fn zone_plate_center_is_bright() {
        // Amplitude 0.35 around 0.5: the center peaks at 0.85.
        let img = zone_plate(W, H);
        assert!(img.get(W / 2, H / 2) > 0.8);
    }

    #[test]
    fn text_like_is_mostly_light() {
        let img = text_like(W, H, 7);
        assert!(img.mean() > 0.5);
    }
}
