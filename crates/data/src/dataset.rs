//! The 100-image evaluation dataset (substitute for the paper's USC-SIPI
//! misc + pattern subset, §6.2).

use crate::image::Image;
use crate::synth;

/// Input class, mirroring the paper's qualitative categories (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Flat or near-flat images — sub-percent perforation error.
    Flat,
    /// Smooth natural images ("countryside") — the median error class.
    Smooth,
    /// Photo-like images with mid/high detail.
    Photo,
    /// Geometric shapes and documents: flat areas with sharp edges.
    Graphic,
    /// High-frequency patterns — the adversarial class.
    Pattern,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::Flat => "flat",
            Category::Smooth => "smooth",
            Category::Photo => "photo",
            Category::Graphic => "graphic",
            Category::Pattern => "pattern",
        };
        f.write_str(s)
    }
}

/// One dataset entry.
#[derive(Debug, Clone)]
pub struct DatasetImage {
    /// Stable name, e.g. `"smooth_07"`.
    pub name: String,
    /// Input class.
    pub category: Category,
    /// The pixels.
    pub image: Image,
}

/// Generates the standard evaluation dataset: `count` images of
/// `size × size` pixels spanning the paper's input spectrum
/// (deterministic in `seed`).
///
/// Class mix approximates USC-SIPI misc+pattern: 8% flat, 30% smooth,
/// 27% photo, 20% graphic, 15% pattern.
pub fn standard_dataset(count: usize, size: usize, seed: u64) -> Vec<DatasetImage> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let s = seed.wrapping_mul(1_000_003).wrapping_add(i as u64);
        let slot = (i * 100) / count.max(1);
        let (category, image) = match slot {
            0..=7 => (
                Category::Flat,
                synth::flat(size, size, 0.1 + 0.8 * (i as f32 / count.max(1) as f32)),
            ),
            8..=37 => (Category::Smooth, pick_smooth(size, s, i)),
            38..=64 => (Category::Photo, pick_photo(size, s, i)),
            65..=84 => (Category::Graphic, pick_graphic(size, s, i)),
            _ => (Category::Pattern, pick_pattern(size, s, i)),
        };
        out.push(DatasetImage {
            name: format!("{category}_{i:03}"),
            category,
            image,
        });
    }
    out
}

fn pick_smooth(size: usize, seed: u64, i: usize) -> Image {
    match i % 3 {
        0 => synth::countryside(size, size, seed),
        1 => synth::gradient(size, size, i.is_multiple_of(2)),
        _ => {
            let mut img = synth::countryside(size, size, seed);
            // Mild blur-like flattening: average with a vertical gradient.
            let grad = synth::gradient(size, size, true);
            for (v, g) in img.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *v = 0.7 * *v + 0.3 * g;
            }
            img
        }
    }
}

fn pick_photo(size: usize, seed: u64, i: usize) -> Image {
    match i % 3 {
        0 => synth::photo_like(size, size, seed),
        1 => synth::noisy_photo(size, size, seed),
        _ => synth::corrupted_scan(size, size, seed),
    }
}

fn pick_graphic(size: usize, seed: u64, i: usize) -> Image {
    match i % 2 {
        0 => synth::shapes(size, size, seed),
        _ => synth::text_like(size, size, seed),
    }
}

fn pick_pattern(size: usize, seed: u64, i: usize) -> Image {
    let _ = seed;
    match i % 4 {
        0 => synth::checkerboard(size, size, 2 + i % 3),
        1 => synth::stripes(size, size, 4 + (i % 3) * 2, false),
        2 => synth::stripes(size, size, 4 + (i % 3) * 2, true),
        _ => synth::zone_plate(size, size),
    }
}

/// Returns one representative image per category, used by the Fig. 7
/// error-vs-input demonstration (`flat`, `smooth`, `pattern`).
pub fn fig7_examples(size: usize, seed: u64) -> [DatasetImage; 3] {
    [
        DatasetImage {
            name: "flat_example".into(),
            category: Category::Flat,
            image: synth::shapes(size, size, seed),
        },
        DatasetImage {
            name: "countryside_example".into(),
            category: Category::Smooth,
            image: synth::photo_like(size, size, seed.wrapping_add(1)),
        },
        DatasetImage {
            name: "pattern_example".into(),
            category: Category::Pattern,
            // Odd-period structure: even-period patterns alias perfectly
            // with the row-parity perforation and reconstruct for free.
            image: synth::checkerboard(size, size, 3),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_requested_count_and_size() {
        let ds = standard_dataset(100, 32, 7);
        assert_eq!(ds.len(), 100);
        for d in &ds {
            assert_eq!(d.image.width(), 32);
            assert_eq!(d.image.height(), 32);
        }
    }

    #[test]
    fn dataset_covers_all_categories() {
        let ds = standard_dataset(100, 16, 7);
        for cat in [
            Category::Flat,
            Category::Smooth,
            Category::Photo,
            Category::Graphic,
            Category::Pattern,
        ] {
            assert!(
                ds.iter().any(|d| d.category == cat),
                "missing category {cat}"
            );
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = standard_dataset(20, 16, 3);
        let b = standard_dataset(20, 16, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.image, y.image);
        }
    }

    #[test]
    fn dataset_seeds_differ() {
        let a = standard_dataset(20, 16, 3);
        let b = standard_dataset(20, 16, 4);
        assert!(a.iter().zip(&b).any(|(x, y)| x.image != y.image));
    }

    #[test]
    fn names_are_unique() {
        let ds = standard_dataset(50, 16, 1);
        let mut names: Vec<_> = ds.iter().map(|d| d.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn fig7_examples_span_frequencies() {
        let [a, b, c] = fig7_examples(32, 5);
        assert!(a.image.frequency_score() < c.image.frequency_score());
        assert!(b.image.frequency_score() < c.image.frequency_score());
    }

    #[test]
    fn small_counts_still_work() {
        let ds = standard_dataset(3, 8, 2);
        assert_eq!(ds.len(), 3);
    }
}
