//! Minimal PGM (portable graymap) reader/writer.
//!
//! Used by the harness to dump the Fig. 2 original/perforated/reconstructed
//! images and the Fig. 7 example inputs in a format any image viewer opens.
//! Supports binary `P5` (written) and both `P2`/`P5` (read), 8-bit only.

use std::io::{Read, Write};
use std::path::Path;

use crate::error::DataError;
use crate::image::Image;

/// Writes an image as binary PGM (`P5`, maxval 255). Samples are clamped
/// into `[0, 1]` and quantized to 8 bits.
///
/// # Errors
///
/// Returns [`DataError::Io`] on filesystem errors.
pub fn write_pgm(img: &Image, path: &Path) -> Result<(), DataError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_pgm_to(img, &mut file)
}

/// Writes an image as binary PGM to any writer.
///
/// # Errors
///
/// Returns [`DataError::Io`] on write errors.
pub fn write_pgm_to<W: Write>(img: &Image, mut out: W) -> Result<(), DataError> {
    writeln!(out, "P5")?;
    writeln!(out, "# kernel-perforation dump")?;
    writeln!(out, "{} {}", img.width(), img.height())?;
    writeln!(out, "255")?;
    let bytes: Vec<u8> = img
        .as_slice()
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect();
    out.write_all(&bytes)?;
    Ok(())
}

/// Reads a `P2` (ASCII) or `P5` (binary) PGM image, normalizing samples by
/// the file's maxval into `[0, 1]`.
///
/// # Errors
///
/// Returns [`DataError::Parse`] for malformed files and [`DataError::Io`]
/// for filesystem errors.
pub fn read_pgm(path: &Path) -> Result<Image, DataError> {
    let data = std::fs::read(path)?;
    read_pgm_from(&data[..])
}

/// Reads a PGM image from any reader.
///
/// # Errors
///
/// As [`read_pgm`].
pub fn read_pgm_from<R: Read>(mut input: R) -> Result<Image, DataError> {
    let mut data = Vec::new();
    input.read_to_end(&mut data)?;
    let mut cursor = &data[..];

    let magic = next_token(&mut cursor)?;
    let binary = match magic.as_str() {
        "P5" => true,
        "P2" => false,
        other => return Err(DataError::Parse(format!("unsupported magic '{other}'"))),
    };
    let width: usize = parse_number(&next_token(&mut cursor)?)?;
    let height: usize = parse_number(&next_token(&mut cursor)?)?;
    let maxval: usize = parse_number(&next_token(&mut cursor)?)?;
    if width == 0 || height == 0 {
        return Err(DataError::BadDimensions { width, height });
    }
    if maxval == 0 || maxval > 255 {
        return Err(DataError::Parse(format!("unsupported maxval {maxval}")));
    }
    let scale = 1.0 / maxval as f32;
    let n = width * height;
    let mut samples = Vec::with_capacity(n);
    if binary {
        // Exactly one whitespace byte separates the header from the raster.
        if cursor.len() < n {
            return Err(DataError::Parse(format!(
                "raster truncated: need {n} bytes, have {}",
                cursor.len()
            )));
        }
        samples.extend(cursor[..n].iter().map(|&b| b as f32 * scale));
    } else {
        for _ in 0..n {
            let tok = next_token(&mut cursor)?;
            let v: usize = parse_number(&tok)?;
            samples.push(v as f32 * scale);
        }
    }
    Image::from_vec(width, height, samples)
}

/// Reads the next whitespace-delimited token, skipping `#` comment lines.
/// For binary PGM this is only used in the header, which is ASCII.
fn next_token(cursor: &mut &[u8]) -> Result<String, DataError> {
    loop {
        // Skip whitespace.
        while let Some((&b, rest)) = cursor.split_first() {
            if b.is_ascii_whitespace() {
                *cursor = rest;
            } else {
                break;
            }
        }
        if cursor.first() == Some(&b'#') {
            // Comment until end of line.
            match cursor.iter().position(|&b| b == b'\n') {
                Some(nl) => *cursor = &cursor[nl + 1..],
                None => *cursor = &[],
            }
            continue;
        }
        break;
    }
    if cursor.is_empty() {
        return Err(DataError::Parse("unexpected end of file".into()));
    }
    let end = cursor
        .iter()
        .position(|b| b.is_ascii_whitespace())
        .unwrap_or(cursor.len());
    let tok = String::from_utf8_lossy(&cursor[..end]).into_owned();
    // Consume the token and exactly one trailing whitespace byte if present
    // (required so the binary raster is not eaten as "whitespace").
    let consumed = (end + 1).min(cursor.len());
    *cursor = &cursor[consumed..];
    Ok(tok)
}

fn parse_number(tok: &str) -> Result<usize, DataError> {
    tok.parse()
        .map_err(|_| DataError::Parse(format!("expected a number, got '{tok}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_roundtrip() {
        let img = Image::from_fn(5, 3, |x, y| (x as f32 + y as f32 * 5.0) / 14.0);
        let mut buf = Vec::new();
        write_pgm_to(&img, &mut buf).unwrap();
        let back = read_pgm_from(&buf[..]).unwrap();
        assert_eq!(back.width(), 5);
        assert_eq!(back.height(), 3);
        for (a, b) in img.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn ascii_pgm_parses() {
        let text = b"P2\n# comment\n3 2\n255\n0 128 255\n64 32 16\n";
        let img = read_pgm_from(&text[..]).unwrap();
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert!((img.get(1, 0) - 128.0 / 255.0).abs() < 1e-6);
        assert!((img.get(2, 1) - 16.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_magic() {
        let text = b"P6\n1 1\n255\n\xff";
        assert!(matches!(read_pgm_from(&text[..]), Err(DataError::Parse(_))));
    }

    #[test]
    fn rejects_truncated_raster() {
        let text = b"P5\n4 4\n255\nabc";
        assert!(matches!(read_pgm_from(&text[..]), Err(DataError::Parse(_))));
    }

    #[test]
    fn rejects_bad_maxval() {
        let text = b"P2\n1 1\n70000\n1\n";
        assert!(matches!(read_pgm_from(&text[..]), Err(DataError::Parse(_))));
    }

    #[test]
    fn rejects_zero_dimensions() {
        let text = b"P2\n0 4\n255\n";
        assert!(matches!(
            read_pgm_from(&text[..]),
            Err(DataError::BadDimensions { .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("kp_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pgm");
        let img = Image::from_fn(8, 8, |x, y| ((x * y) % 7) as f32 / 6.0);
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.width(), 8);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn values_clamped_on_write() {
        let img = Image::from_vec(2, 1, vec![-0.5, 1.5]).unwrap();
        let mut buf = Vec::new();
        write_pgm_to(&img, &mut buf).unwrap();
        let back = read_pgm_from(&buf[..]).unwrap();
        assert_eq!(back.get(0, 0), 0.0);
        assert_eq!(back.get(1, 0), 1.0);
    }
}
