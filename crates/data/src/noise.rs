//! Noise primitives: seeded value noise (fBm) and degradations
//! (salt-and-pepper, Gaussian) used to synthesize photo-like inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::image::Image;

/// Deterministic lattice hash in `[0, 1)` (SplitMix64 finalizer).
fn lattice(ix: i64, iy: i64, seed: u64) -> f32 {
    let mut z = seed
        .wrapping_add((ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 24) as f32
}

fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Single-octave value noise at continuous coordinates, smoothly
/// interpolating a seeded random lattice with cell size `scale` pixels.
pub fn value_noise(x: f32, y: f32, scale: f32, seed: u64) -> f32 {
    let fx = x / scale;
    let fy = y / scale;
    let ix = fx.floor() as i64;
    let iy = fy.floor() as i64;
    let tx = smoothstep(fx - ix as f32);
    let ty = smoothstep(fy - iy as f32);
    let v00 = lattice(ix, iy, seed);
    let v10 = lattice(ix + 1, iy, seed);
    let v01 = lattice(ix, iy + 1, seed);
    let v11 = lattice(ix + 1, iy + 1, seed);
    let a = v00 + (v10 - v00) * tx;
    let b = v01 + (v11 - v01) * tx;
    a + (b - a) * ty
}

/// Fractional Brownian motion: `octaves` octaves of value noise, each at
/// double frequency and `gain` amplitude of the previous one. Output is
/// normalized to roughly `[0, 1]`.
pub fn fbm(x: f32, y: f32, base_scale: f32, octaves: u32, gain: f32, seed: u64) -> f32 {
    let mut amplitude = 1.0f32;
    let mut scale = base_scale;
    let mut acc = 0.0f32;
    let mut norm = 0.0f32;
    for o in 0..octaves {
        acc += amplitude * value_noise(x, y, scale.max(1.0), seed.wrapping_add(o as u64 * 7919));
        norm += amplitude;
        amplitude *= gain;
        scale *= 0.5;
    }
    acc / norm
}

/// Replaces a `density` fraction of pixels with full black or full white —
/// the "salt-and-pepper" degradation the Median filter targets (§6.1).
pub fn add_salt_pepper(img: &mut Image, density: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (w, h) = (img.width(), img.height());
    for y in 0..h {
        for x in 0..w {
            if rng.gen::<f64>() < density {
                let v = if rng.gen::<bool>() { 1.0 } else { 0.0 };
                img.set(x, y, v);
            }
        }
    }
}

/// Adds zero-mean Gaussian noise with standard deviation `sigma`
/// (Box–Muller transform), clamping the result into `[0, 1]`.
pub fn add_gaussian_noise(img: &mut Image, sigma: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (w, h) = (img.width(), img.height());
    for y in 0..h {
        for x in 0..w {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = img.get(x, y) + sigma * z as f32;
            img.set(x, y, v.clamp(0.0, 1.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_noise_is_deterministic_and_bounded() {
        for i in 0..100 {
            let x = i as f32 * 1.7;
            let v1 = value_noise(x, x * 0.3, 16.0, 42);
            let v2 = value_noise(x, x * 0.3, 16.0, 42);
            assert_eq!(v1, v2);
            assert!((0.0..=1.0).contains(&v1), "noise out of range: {v1}");
        }
    }

    #[test]
    fn value_noise_changes_with_seed() {
        let a = value_noise(10.3, 4.2, 8.0, 1);
        let b = value_noise(10.3, 4.2, 8.0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn value_noise_is_smooth() {
        // Neighboring samples at a large scale differ by very little.
        let scale = 64.0;
        for i in 0..50 {
            let x = i as f32;
            let d = (value_noise(x, 7.0, scale, 9) - value_noise(x + 1.0, 7.0, scale, 9)).abs();
            assert!(d < 0.1, "noise too rough: {d}");
        }
    }

    #[test]
    fn fbm_bounded_and_rougher_with_octaves() {
        let mut d1 = 0.0f32;
        let mut d4 = 0.0f32;
        for i in 0..200 {
            let x = i as f32;
            let a1 = fbm(x, 3.0, 64.0, 1, 0.5, 5);
            let b1 = fbm(x + 1.0, 3.0, 64.0, 1, 0.5, 5);
            let a4 = fbm(x, 3.0, 64.0, 4, 0.5, 5);
            let b4 = fbm(x + 1.0, 3.0, 64.0, 4, 0.5, 5);
            assert!((0.0..=1.0).contains(&a1));
            assert!((0.0..=1.0).contains(&a4));
            d1 += (a1 - b1).abs();
            d4 += (a4 - b4).abs();
        }
        assert!(d4 > d1, "more octaves should add high-frequency detail");
    }

    #[test]
    fn salt_pepper_density_is_respected() {
        let mut img = Image::from_fn(64, 64, |_, _| 0.5);
        add_salt_pepper(&mut img, 0.1, 3);
        let extreme = img
            .as_slice()
            .iter()
            .filter(|&&v| v == 0.0 || v == 1.0)
            .count();
        let frac = extreme as f64 / img.len() as f64;
        assert!((frac - 0.1).abs() < 0.03, "got {frac}");
    }

    #[test]
    fn salt_pepper_is_deterministic() {
        let mut a = Image::from_fn(32, 32, |_, _| 0.5);
        let mut b = Image::from_fn(32, 32, |_, _| 0.5);
        add_salt_pepper(&mut a, 0.05, 11);
        add_salt_pepper(&mut b, 0.05, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn gaussian_noise_statistics() {
        let mut img = Image::from_fn(128, 128, |_, _| 0.5);
        add_gaussian_noise(&mut img, 0.05, 17);
        let mean = img.mean();
        assert!((mean - 0.5).abs() < 0.01, "mean drifted to {mean}");
        let (min, max) = img.min_max();
        assert!(min >= 0.0 && max <= 1.0);
        // Standard deviation near 0.05.
        let var: f64 = img
            .as_slice()
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / img.len() as f64;
        assert!((var.sqrt() - 0.05).abs() < 0.01, "sigma {}", var.sqrt());
    }
}
