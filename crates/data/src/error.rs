//! Error type for data loading and generation.

/// Errors from image construction, generation and PGM I/O.
#[derive(Debug)]
pub enum DataError {
    /// Dimensions and data length disagree.
    SizeMismatch {
        /// Expected element count (`width × height`).
        expected: usize,
        /// Actual element count provided.
        actual: usize,
    },
    /// Dimensions are zero or otherwise unusable.
    BadDimensions {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// A PGM file failed to parse.
    Parse(String),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::SizeMismatch { expected, actual } => {
                write!(f, "image data has {actual} elements, expected {expected}")
            }
            DataError::BadDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            DataError::Parse(msg) => write!(f, "invalid PGM data: {msg}"),
            DataError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::SizeMismatch {
            expected: 4,
            actual: 3
        }
        .to_string()
        .contains("expected 4"));
        assert!(DataError::BadDimensions {
            width: 0,
            height: 5
        }
        .to_string()
        .contains("0x5"));
        assert!(DataError::Parse("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let io = DataError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        use std::error::Error;
        assert!(io.source().is_some());
    }
}
