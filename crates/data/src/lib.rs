//! # kp-data — synthetic input-data substrate
//!
//! The paper evaluates on 100 grayscale images from the USC-SIPI database
//! (misc + pattern catalogues) and on Rodinia's Hotspot inputs — neither of
//! which can be redistributed here. This crate generates *seeded synthetic
//! equivalents* spanning the same spatial-frequency spectrum, which is the
//! property the paper's error analysis actually depends on (§6.2: "the
//! amount of error introduced by our approach can differ by orders of
//! magnitude depending on the input").
//!
//! * [`synth`] — flat, gradient, countryside (fBm), photo-like, pattern
//!   (checkerboard/stripes/zone plate), document and shape images;
//! * [`dataset`] — the standard 100-image evaluation set and the Fig. 7
//!   examples;
//! * [`hotspot`] — Rodinia-style temperature/power input pairs;
//! * [`noise`] — value noise, salt-and-pepper and Gaussian degradations;
//! * [`pgm`] — PGM I/O for dumping figure images.
//!
//! ## Example
//!
//! ```
//! use kp_data::{dataset, Image};
//!
//! let images = dataset::standard_dataset(10, 64, 42);
//! assert_eq!(images.len(), 10);
//! let flat: &Image = &images[0].image;
//! assert!(flat.frequency_score() < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod image;

pub mod dataset;
pub mod hotspot;
pub mod noise;
pub mod pgm;
pub mod synth;

pub use error::DataError;
pub use image::Image;
