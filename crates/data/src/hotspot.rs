//! Rodinia-style Hotspot inputs (substitute for the `hotspot` data sets
//! shipped with the Rodinia benchmark suite, §6.1).
//!
//! Hotspot consumes two square matrices: an initial **temperature** grid
//! (Kelvin, near ambient) and a **power** density grid (Watts, spiky —
//! functional units dissipate, whitespace does not). The Rodinia generator
//! produces these from a synthetic floorplan; we do the same with seeded
//! random rectangular "units".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::image::Image;
use crate::noise::fbm;

/// Ambient temperature in Kelvin (Rodinia's `amb_temp`).
pub const AMBIENT_K: f32 = 323.15; // 50°C, as in hotspot's sources

/// One Hotspot input pair.
#[derive(Debug, Clone)]
pub struct HotspotInput {
    /// Grid side length (`size × size` matrices).
    pub size: usize,
    /// Initial temperature grid in Kelvin.
    pub temperature: Image,
    /// Power density grid in Watts.
    pub power: Image,
}

/// Generates a Hotspot input of the given size, deterministically from
/// `seed`.
///
/// Temperature: ambient plus smooth ±5 K variation (chips are nearly
/// isothermal at steady state). Power: zero background with 6–14 random
/// rectangular units dissipating 0.5–8 W-scale densities, plus a mild
/// leakage floor — matching the structure (not the exact values) of the
/// Rodinia inputs.
pub fn hotspot_input(size: usize, seed: u64) -> HotspotInput {
    let mut rng = StdRng::seed_from_u64(seed);

    let temperature = Image::from_fn(size, size, |x, y| {
        AMBIENT_K + 10.0 * (fbm(x as f32, y as f32, size as f32 / 3.0, 3, 0.5, seed) - 0.5)
    });

    let mut power = Image::from_fn(size, size, |_, _| 0.001);
    let units = rng.gen_range(6..=14);
    for _ in 0..units {
        let w = rng.gen_range(size / 16..size / 3).max(1);
        let h = rng.gen_range(size / 16..size / 3).max(1);
        let x0 = rng.gen_range(0..size.saturating_sub(w).max(1));
        let y0 = rng.gen_range(0..size.saturating_sub(h).max(1));
        let density: f32 = rng.gen_range(0.5..8.0);
        for y in y0..(y0 + h).min(size) {
            for x in x0..(x0 + w).min(size) {
                power.set(x, y, density);
            }
        }
    }
    HotspotInput {
        size,
        temperature,
        power,
    }
}

/// The eight input sizes used for the Hotspot rows of Fig. 6 ("8 different
/// input data sets, that differ in their size").
pub fn fig6_sizes() -> [usize; 8] {
    [64, 128, 192, 256, 384, 512, 768, 1024]
}

/// Generates all eight Fig. 6 Hotspot inputs.
pub fn fig6_inputs(seed: u64) -> Vec<HotspotInput> {
    fig6_sizes()
        .iter()
        .enumerate()
        .map(|(i, &size)| hotspot_input(size, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_shapes_match() {
        let input = hotspot_input(64, 1);
        assert_eq!(input.size, 64);
        assert_eq!(input.temperature.width(), 64);
        assert_eq!(input.power.height(), 64);
    }

    #[test]
    fn temperature_is_near_ambient() {
        let input = hotspot_input(128, 2);
        let (min, max) = input.temperature.min_max();
        assert!(min > AMBIENT_K - 10.0, "min {min}");
        assert!(max < AMBIENT_K + 10.0, "max {max}");
    }

    #[test]
    fn power_is_sparse_and_positive() {
        let input = hotspot_input(128, 3);
        let (min, max) = input.power.min_max();
        assert!(min >= 0.0);
        assert!(max >= 0.5, "no hot units generated, max {max}");
        // Most of the die is background.
        let hot = input.power.as_slice().iter().filter(|&&v| v > 0.1).count();
        assert!(hot < input.power.len(), "die entirely hot");
        assert!(hot > 0, "no hot pixels");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = hotspot_input(64, 9);
        let b = hotspot_input(64, 9);
        assert_eq!(a.temperature, b.temperature);
        assert_eq!(a.power, b.power);
    }

    #[test]
    fn fig6_inputs_cover_eight_sizes() {
        let inputs = fig6_inputs(1);
        assert_eq!(inputs.len(), 8);
        let sizes: Vec<usize> = inputs.iter().map(|i| i.size).collect();
        assert_eq!(sizes, fig6_sizes().to_vec());
        // Strictly increasing.
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }
}
