//! Grayscale `f32` images, row-major, nominally in `[0, 1]`.

use crate::error::DataError;

/// A row-major grayscale image with `f32` samples.
///
/// # Examples
///
/// ```
/// use kp_data::Image;
///
/// let mut img = Image::new(4, 2);
/// img.set(3, 1, 0.5);
/// assert_eq!(img.get(3, 1), 0.5);
/// assert_eq!(img.as_slice().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Image {
    /// Creates a zero-filled image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Wraps existing row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadDimensions`] for zero sizes and
    /// [`DataError::SizeMismatch`] if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Result<Self, DataError> {
        if width == 0 || height == 0 {
            return Err(DataError::BadDimensions { width, height });
        }
        if data.len() != width * height {
            return Err(DataError::SizeMismatch {
                expected: width * height,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut img = Image::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false (images are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Writes the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x] = v;
    }

    /// The raw row-major samples.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw samples.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the image, returning its samples.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Minimum and maximum sample.
    pub fn min_max(&self) -> (f32, f32) {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in &self.data {
            min = min.min(v);
            max = max.max(v);
        }
        (min, max)
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v)).sum::<f64>() / self.data.len() as f64
    }

    /// Rescales samples linearly into `[0, 1]`. Constant images become 0.5.
    pub fn normalize(&mut self) {
        let (min, max) = self.min_max();
        if (max - min).abs() < f32::EPSILON {
            self.data.iter_mut().for_each(|v| *v = 0.5);
            return;
        }
        let scale = 1.0 / (max - min);
        self.data.iter_mut().for_each(|v| *v = (*v - min) * scale);
    }

    /// Clamps every sample into `[lo, hi]`.
    pub fn clamp(&mut self, lo: f32, hi: f32) {
        self.data.iter_mut().for_each(|v| *v = v.clamp(lo, hi));
    }

    /// Applies `f` to every sample in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|v| *v = f(*v));
    }

    /// A rough measure of high-frequency content: mean absolute horizontal
    /// plus vertical gradient. Flat images score 0; checkerboards score
    /// near the value range. Used to sort the synthetic dataset into the
    /// paper's low/medium/high-frequency input classes.
    pub fn frequency_score(&self) -> f64 {
        let mut acc = 0.0f64;
        let mut n = 0u64;
        for y in 0..self.height {
            for x in 0..self.width {
                let v = f64::from(self.get(x, y));
                if x + 1 < self.width {
                    acc += (f64::from(self.get(x + 1, y)) - v).abs();
                    n += 1;
                }
                if y + 1 < self.height {
                    acc += (f64::from(self.get(x, y + 1)) - v).abs();
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            acc / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let img = Image::from_fn(3, 2, |x, y| (x + 10 * y) as f32);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.len(), 6);
        assert!(!img.is_empty());
        assert_eq!(img.get(2, 1), 12.0);
        assert_eq!(img.as_slice()[5], 12.0);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Image::from_vec(2, 2, vec![0.0; 4]).is_ok());
        assert!(matches!(
            Image::from_vec(2, 2, vec![0.0; 5]),
            Err(DataError::SizeMismatch { .. })
        ));
        assert!(matches!(
            Image::from_vec(0, 2, vec![]),
            Err(DataError::BadDimensions { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = Image::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn min_max_and_mean() {
        let img = Image::from_vec(2, 2, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(img.min_max(), (0.0, 3.0));
        assert!((img.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_rescales() {
        let mut img = Image::from_vec(2, 2, vec![2.0, 4.0, 6.0, 10.0]).unwrap();
        img.normalize();
        assert_eq!(img.min_max(), (0.0, 1.0));
        assert_eq!(img.get(1, 0), 0.25);
    }

    #[test]
    fn normalize_constant_image() {
        let mut img = Image::from_vec(2, 1, vec![7.0, 7.0]).unwrap();
        img.normalize();
        assert_eq!(img.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn clamp_and_map() {
        let mut img = Image::from_vec(3, 1, vec![-1.0, 0.5, 2.0]).unwrap();
        img.clamp(0.0, 1.0);
        assert_eq!(img.as_slice(), &[0.0, 0.5, 1.0]);
        img.map_in_place(|v| 1.0 - v);
        assert_eq!(img.as_slice(), &[1.0, 0.5, 0.0]);
    }

    #[test]
    fn frequency_score_orders_flat_smooth_pattern() {
        let flat = Image::from_fn(16, 16, |_, _| 0.5);
        let smooth = Image::from_fn(16, 16, |x, _| x as f32 / 16.0);
        let checker = Image::from_fn(16, 16, |x, y| ((x + y) % 2) as f32);
        assert_eq!(flat.frequency_score(), 0.0);
        assert!(smooth.frequency_score() > 0.0);
        assert!(checker.frequency_score() > smooth.frequency_score());
    }

    #[test]
    fn into_vec_roundtrip() {
        let img = Image::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        assert_eq!(img.clone().into_vec(), vec![1.0, 2.0]);
    }
}
