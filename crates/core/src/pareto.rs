//! Pareto-front extraction over (speedup, error) points (paper §6.4,
//! Fig. 10).
//!
//! A configuration is Pareto-optimal if no other configuration is at least
//! as fast *and* at least as accurate, with strict improvement in at least
//! one of the two.

/// A 2D trade-off point: higher `speedup` is better, lower `error` is
/// better.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeOff {
    /// Speedup over the accurate baseline (higher is better).
    pub speedup: f64,
    /// Output error (lower is better).
    pub error: f64,
}

impl TradeOff {
    /// Creates a trade-off point.
    pub fn new(speedup: f64, error: f64) -> Self {
        Self { speedup, error }
    }

    /// Whether `self` dominates `other` (no worse in both axes, strictly
    /// better in at least one).
    pub fn dominates(&self, other: &TradeOff) -> bool {
        self.speedup >= other.speedup
            && self.error <= other.error
            && (self.speedup > other.speedup || self.error < other.error)
    }
}

/// Returns the indices of the Pareto-optimal points, sorted by increasing
/// speedup. Duplicate points are all kept (none dominates its twin).
pub fn pareto_front(points: &[TradeOff]) -> Vec<usize> {
    let mut front: Vec<usize> = (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && q.dominates(&points[i]))
        })
        .collect();
    front.sort_by(|&a, &b| {
        points[a]
            .speedup
            .partial_cmp(&points[b].speedup)
            .expect("NaN speedup")
            .then(
                points[a]
                    .error
                    .partial_cmp(&points[b].error)
                    .expect("NaN error"),
            )
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_optimal() {
        let pts = [TradeOff::new(1.0, 0.1)];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn dominated_point_is_dropped() {
        let pts = [
            TradeOff::new(2.0, 0.01), // dominates the next one
            TradeOff::new(1.5, 0.05),
        ];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn incomparable_points_are_both_kept() {
        let pts = [
            TradeOff::new(2.0, 0.05), // faster but less accurate
            TradeOff::new(1.5, 0.01), // slower but more accurate
        ];
        assert_eq!(pareto_front(&pts), vec![1, 0]);
    }

    #[test]
    fn classic_staircase() {
        let pts = [
            TradeOff::new(1.0, 0.00), // accurate
            TradeOff::new(1.3, 0.02),
            TradeOff::new(1.2, 0.03), // dominated by the previous one
            TradeOff::new(2.0, 0.05),
            TradeOff::new(1.9, 0.20), // dominated
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn duplicates_are_kept() {
        let pts = [TradeOff::new(1.5, 0.1), TradeOff::new(1.5, 0.1)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        let a = TradeOff::new(1.0, 0.1);
        assert!(!a.dominates(&a));
        assert!(TradeOff::new(1.0, 0.05).dominates(&a));
        assert!(TradeOff::new(1.1, 0.1).dominates(&a));
        assert!(!TradeOff::new(1.1, 0.2).dominates(&a));
    }

    #[test]
    fn empty_input_empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }
}
