//! Work-group tile geometry.
//!
//! A 2D kernel with a stencil of radius `halo` needs, for a work group of
//! `tile_w × tile_h` output elements, an input *tile* of
//! `(tile_w + 2·halo) × (tile_h + 2·halo)` elements — the group's outputs
//! plus the surrounding halo ring (paper §4.4, Fig. 5). This module owns
//! the coordinate algebra between
//!
//! * **padded coordinates** `(px, py)` in `[0, padded_w) × [0, padded_h)`
//!   indexing the local-memory tile, and
//! * **global coordinates** of the image, where the tile's origin is the
//!   group origin shifted left/up by `halo`.

use serde::{Deserialize, Serialize};

/// Geometry of one work-group tile including its halo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileGeometry {
    /// Work-group width (output elements per row).
    pub tile_w: usize,
    /// Work-group height (output rows).
    pub tile_h: usize,
    /// Stencil radius: rows/columns of extra input on each side.
    pub halo: usize,
}

impl TileGeometry {
    /// Creates a tile geometry for a `tile_w × tile_h` work group and a
    /// stencil radius of `halo`.
    pub fn new(tile_w: usize, tile_h: usize, halo: usize) -> Self {
        Self {
            tile_w,
            tile_h,
            halo,
        }
    }

    /// Width of the padded tile (`tile_w + 2·halo`).
    pub fn padded_w(&self) -> usize {
        self.tile_w + 2 * self.halo
    }

    /// Height of the padded tile (`tile_h + 2·halo`).
    pub fn padded_h(&self) -> usize {
        self.tile_h + 2 * self.halo
    }

    /// Number of elements in the padded tile.
    pub fn padded_len(&self) -> usize {
        self.padded_w() * self.padded_h()
    }

    /// Flat local-memory index of padded coordinate `(px, py)`.
    ///
    /// # Panics
    ///
    /// Debug-panics if the coordinate is outside the padded tile.
    pub fn index(&self, px: usize, py: usize) -> usize {
        debug_assert!(px < self.padded_w() && py < self.padded_h());
        py * self.padded_w() + px
    }

    /// Splits a flat padded index back into `(px, py)`.
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx % self.padded_w(), idx / self.padded_w())
    }

    /// Global coordinate (possibly out of image bounds, for edge tiles) of
    /// padded coordinate `(px, py)` for the work group at
    /// `(group_x, group_y)`.
    pub fn global_of(&self, group: (usize, usize), px: usize, py: usize) -> (i64, i64) {
        let gx = (group.0 * self.tile_w + px) as i64 - self.halo as i64;
        let gy = (group.1 * self.tile_h + py) as i64 - self.halo as i64;
        (gx, gy)
    }

    /// Padded coordinate of the element computed by the work item with
    /// local id `(lx, ly)` — the tile interior starts at `(halo, halo)`.
    pub fn interior_of(&self, lx: usize, ly: usize) -> (usize, usize) {
        (lx + self.halo, ly + self.halo)
    }

    /// Whether padded coordinate `(px, py)` lies in the interior (i.e. is
    /// one of the group's own output positions, not halo).
    pub fn is_interior(&self, px: usize, py: usize) -> bool {
        px >= self.halo
            && px < self.halo + self.tile_w
            && py >= self.halo
            && py < self.halo + self.tile_h
    }

    /// Local-memory bytes needed for one `f32` tile.
    pub fn bytes_f32(&self) -> usize {
        self.padded_len() * 4
    }
}

/// Clamps a possibly out-of-bounds global coordinate to the image
/// (clamp-to-edge addressing, the standard sampler behaviour for image
/// filters).
pub fn clamp_coord(v: i64, size: usize) -> usize {
    v.clamp(0, size as i64 - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_dimensions() {
        let t = TileGeometry::new(16, 16, 1);
        assert_eq!(t.padded_w(), 18);
        assert_eq!(t.padded_h(), 18);
        assert_eq!(t.padded_len(), 324);
        assert_eq!(t.bytes_f32(), 1296);
    }

    #[test]
    fn no_halo_tile_is_group_sized() {
        let t = TileGeometry::new(8, 4, 0);
        assert_eq!(t.padded_w(), 8);
        assert_eq!(t.padded_h(), 4);
    }

    #[test]
    fn index_coords_roundtrip() {
        let t = TileGeometry::new(5, 3, 2);
        for idx in 0..t.padded_len() {
            let (px, py) = t.coords(idx);
            assert_eq!(t.index(px, py), idx);
        }
    }

    #[test]
    fn global_of_shifts_by_halo() {
        let t = TileGeometry::new(16, 16, 1);
        // First group's padded origin is (-1, -1).
        assert_eq!(t.global_of((0, 0), 0, 0), (-1, -1));
        // Interior origin maps to the group origin.
        assert_eq!(t.global_of((0, 0), 1, 1), (0, 0));
        // Second group in x starts 16 to the right.
        assert_eq!(t.global_of((1, 0), 1, 1), (16, 0));
    }

    #[test]
    fn interior_predicate_matches_interior_of() {
        let t = TileGeometry::new(4, 4, 2);
        for ly in 0..4 {
            for lx in 0..4 {
                let (px, py) = t.interior_of(lx, ly);
                assert!(t.is_interior(px, py));
            }
        }
        assert!(!t.is_interior(0, 0));
        assert!(!t.is_interior(1, 3));
        assert!(!t.is_interior(6, 3));
    }

    #[test]
    fn adjacent_groups_tile_the_plane() {
        // The interiors of adjacent groups must partition global space.
        let t = TileGeometry::new(8, 8, 1);
        let mut seen = std::collections::HashSet::new();
        for group_y in 0..2 {
            for group_x in 0..2 {
                for ly in 0..8 {
                    for lx in 0..8 {
                        let (px, py) = t.interior_of(lx, ly);
                        let g = t.global_of((group_x, group_y), px, py);
                        assert!(seen.insert(g), "duplicate global coord {g:?}");
                    }
                }
            }
        }
        assert_eq!(seen.len(), 16 * 16);
    }

    #[test]
    fn clamp_coord_clamps() {
        assert_eq!(clamp_coord(-3, 10), 0);
        assert_eq!(clamp_coord(0, 10), 0);
        assert_eq!(clamp_coord(9, 10), 9);
        assert_eq!(clamp_coord(10, 10), 9);
        assert_eq!(clamp_coord(100, 10), 9);
    }
}
