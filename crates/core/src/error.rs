//! Error types for the perforation library.

use kp_gpu_sim::SimError;

/// Errors returned by the perforation pipeline, tuner and helpers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying simulated device reported an error.
    Sim(SimError),
    /// A scheme/reconstruction/geometry combination is not legal
    /// (e.g. `Stencil` on an app without a halo, see the paper §6.4).
    IllegalConfig(String),
    /// Host-side input data is inconsistent (wrong length, zero size, …).
    Input(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "device error: {e}"),
            CoreError::IllegalConfig(msg) => write!(f, "illegal configuration: {msg}"),
            CoreError::Input(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::IllegalConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(CoreError::Input("y".into()).to_string().contains("y"));
        let e = CoreError::from(SimError::Launch("z".into()));
        assert!(e.to_string().contains("z"));
    }

    #[test]
    fn sim_error_has_source() {
        use std::error::Error;
        let e = CoreError::from(SimError::Launch("z".into()));
        assert!(e.source().is_some());
        assert!(CoreError::Input("i".into()).source().is_none());
    }
}
