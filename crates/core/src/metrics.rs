//! Error metrics (paper §6.1, Table 1).
//!
//! The paper reports the **mean relative error** (MRE) for Gaussian,
//! Median, Hotspot and Inversion, and the **mean (absolute) error** for
//! Sobel3/Sobel5 whose outputs are frequently (near-)zero, where a relative
//! metric degenerates. Both metrics plus common auxiliaries (RMSE, PSNR,
//! max error) and box-plot summaries for Fig. 6 are implemented here.

use serde::{Deserialize, Serialize};

/// Denominator guard for the mean relative error: reference magnitudes
/// below this are clamped up to it, preventing division blow-ups near
/// zero (the issue that made the paper switch metrics for Sobel).
pub const MRE_EPSILON: f32 = 1e-2;

/// Which error metric an application reports (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorMetric {
    /// Mean relative error, `mean(|ref − test| / max(|ref|, ε))`.
    MeanRelative,
    /// Mean absolute error, `mean(|ref − test|)`.
    MeanAbsolute,
}

impl ErrorMetric {
    /// Evaluates the metric over a reference/test pair.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn evaluate(&self, reference: &[f32], test: &[f32]) -> f64 {
        match self {
            ErrorMetric::MeanRelative => mean_relative_error(reference, test),
            ErrorMetric::MeanAbsolute => mean_absolute_error(reference, test),
        }
    }

    /// Human-readable name as used in Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorMetric::MeanRelative => "Mean relative error",
            ErrorMetric::MeanAbsolute => "Mean error",
        }
    }
}

impl std::fmt::Display for ErrorMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn check_pair(reference: &[f32], test: &[f32]) {
    assert_eq!(
        reference.len(),
        test.len(),
        "reference and test must have the same length"
    );
    assert!(
        !reference.is_empty(),
        "error metrics need at least one element"
    );
}

/// Mean relative error with an ε-guarded denominator:
/// `mean(|r − t| / max(|r|, ε))`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_relative_error(reference: &[f32], test: &[f32]) -> f64 {
    check_pair(reference, test);
    let sum: f64 = reference
        .iter()
        .zip(test)
        .map(|(&r, &t)| (f64::from(r) - f64::from(t)).abs() / f64::from(r.abs().max(MRE_EPSILON)))
        .sum();
    sum / reference.len() as f64
}

/// Mean absolute error `mean(|r − t|)`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_absolute_error(reference: &[f32], test: &[f32]) -> f64 {
    check_pair(reference, test);
    let sum: f64 = reference
        .iter()
        .zip(test)
        .map(|(&r, &t)| (f64::from(r) - f64::from(t)).abs())
        .sum();
    sum / reference.len() as f64
}

/// Root-mean-square error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(reference: &[f32], test: &[f32]) -> f64 {
    check_pair(reference, test);
    let sum: f64 = reference
        .iter()
        .zip(test)
        .map(|(&r, &t)| {
            let d = f64::from(r) - f64::from(t);
            d * d
        })
        .sum();
    (sum / reference.len() as f64).sqrt()
}

/// Peak signal-to-noise ratio in dB for signals with the given peak value
/// (1.0 for normalized grayscale). Returns `f64::INFINITY` for identical
/// inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn psnr(reference: &[f32], test: &[f32], peak: f32) -> f64 {
    let e = rmse(reference, test);
    if e == 0.0 {
        return f64::INFINITY;
    }
    20.0 * (f64::from(peak) / e).log10()
}

/// Largest absolute difference.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn max_abs_error(reference: &[f32], test: &[f32]) -> f64 {
    check_pair(reference, test);
    reference
        .iter()
        .zip(test)
        .map(|(&r, &t)| (f64::from(r) - f64::from(t)).abs())
        .fold(0.0, f64::max)
}

/// Five-number summary (plus mean) of an error sample — the box-and-whisker
/// data behind the paper's Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// Minimum value.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl Distribution {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in error sample"));
        let q = |p: f64| -> f64 {
            // Linear interpolation between closest ranks (type-7 quantile).
            let h = p * (sorted.len() as f64 - 1.0);
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
            }
        };
        Self {
            min: sorted[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *sorted.last().expect("nonempty"),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            count: sorted.len(),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.4} | q1 {:.4} | med {:.4} | q3 {:.4} | max {:.4} (mean {:.4}, n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_have_zero_error() {
        let a = [1.0f32, 2.0, 3.0];
        assert_eq!(mean_relative_error(&a, &a), 0.0);
        assert_eq!(mean_absolute_error(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(max_abs_error(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a, 1.0), f64::INFINITY);
    }

    #[test]
    fn mre_is_relative() {
        let r = [10.0f32, 100.0];
        let t = [11.0f32, 110.0];
        // Both elements are 10% off -> MRE 0.1 regardless of magnitude.
        assert!((mean_relative_error(&r, &t) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn mre_guards_near_zero_references() {
        let r = [0.0f32];
        let t = [0.005f32];
        // Without the guard this would be infinite; with ε=1e-2 it is 0.5.
        assert!((mean_relative_error(&r, &t) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mae_is_absolute() {
        let r = [0.0f32, 1.0];
        let t = [0.5f32, 0.5];
        assert!((mean_absolute_error(&r, &t) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        let r = [0.0f32; 4];
        let t = [0.0f32, 0.0, 0.0, 1.0];
        assert!(rmse(&r, &t) > mean_absolute_error(&r, &t));
    }

    #[test]
    fn psnr_of_known_noise() {
        let r = [0.0f32; 100];
        let t = [0.1f32; 100];
        // RMSE = 0.1, peak 1.0 -> 20 dB (up to f32 rounding of 0.1).
        assert!((psnr(&r, &t, 1.0) - 20.0).abs() < 1e-4);
    }

    #[test]
    fn max_error_finds_the_peak() {
        let r = [1.0f32, 2.0, 3.0];
        let t = [1.0f32, 4.5, 3.0];
        assert!((max_abs_error(&r, &t) - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = mean_absolute_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_inputs_panic() {
        let _ = mean_absolute_error(&[], &[]);
    }

    #[test]
    fn metric_enum_dispatches() {
        let r = [2.0f32];
        let t = [1.0f32];
        assert!((ErrorMetric::MeanRelative.evaluate(&r, &t) - 0.5).abs() < 1e-9);
        assert!((ErrorMetric::MeanAbsolute.evaluate(&r, &t) - 1.0).abs() < 1e-9);
        assert_eq!(ErrorMetric::MeanRelative.to_string(), "Mean relative error");
    }

    #[test]
    fn distribution_of_uniform_ramp() {
        let values: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let d = Distribution::from_values(&values);
        assert_eq!(d.min, 0.0);
        assert_eq!(d.max, 100.0);
        assert_eq!(d.median, 50.0);
        assert_eq!(d.q1, 25.0);
        assert_eq!(d.q3, 75.0);
        assert_eq!(d.mean, 50.0);
        assert_eq!(d.count, 101);
        assert_eq!(d.iqr(), 50.0);
    }

    #[test]
    fn distribution_single_value() {
        let d = Distribution::from_values(&[3.5]);
        assert_eq!(d.min, 3.5);
        assert_eq!(d.q1, 3.5);
        assert_eq!(d.median, 3.5);
        assert_eq!(d.max, 3.5);
    }

    #[test]
    fn distribution_interpolates_quartiles() {
        let d = Distribution::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert!((d.q1 - 1.75).abs() < 1e-12);
        assert!((d.median - 2.5).abs() < 1e-12);
        assert!((d.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn distribution_display() {
        let d = Distribution::from_values(&[1.0, 2.0]);
        assert!(d.to_string().contains("med"));
    }
}
