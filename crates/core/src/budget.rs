//! Error-budget configuration selection.
//!
//! Paraprox ships a runtime helper that picks, at run time, the fastest
//! kernel variant whose output quality meets a user-specified target. The
//! paper's §7 sketches the same for kernel perforation: calibrate the
//! candidate configurations on sample inputs, then deploy the fastest one
//! within the error budget. This module implements that selection.

use kp_gpu_sim::DeviceConfig;
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::metrics::ErrorMetric;
use crate::pipeline::WorkloadRef;
use crate::runner::{ImageInput, RunSpec};
use crate::tuner::{sweep, SweepContext, SweepOutcome};

/// Outcome of a budget-driven selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetSelection {
    /// Label of the chosen variant.
    pub label: String,
    /// Index of the chosen variant in the candidate list.
    pub index: usize,
    /// Mean error of the chosen variant over the calibration inputs.
    pub mean_error: f64,
    /// Speedup of the chosen variant (from the first calibration input).
    pub speedup: f64,
    /// Per-candidate mean errors (diagnostics).
    pub candidate_errors: Vec<f64>,
}

/// Picks the fastest outcome whose error is within `budget`.
///
/// Returns `None` if no outcome meets the budget — callers should then fall
/// back to the accurate kernel. Outcomes with non-finite error or speedup
/// never qualify (a NaN measurement must not win a selection or poison
/// the ordering), and a NaN budget admits nothing; no input panics.
pub fn best_under_budget(outcomes: &[SweepOutcome], budget: f64) -> Option<&SweepOutcome> {
    outcomes
        .iter()
        .filter(|o| o.error.is_finite() && o.speedup.is_finite() && o.error <= budget)
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
}

/// Calibrates `specs` over several sample inputs and picks the fastest
/// variant whose *mean* error over the calibration set is within `budget`.
///
/// This mirrors Paraprox's tuning loop: error depends strongly on input
/// data (paper §6.2), so calibrating on one image risks overfitting; the
/// mean over a small set is the paper's implied procedure.
///
/// # Errors
///
/// Propagates sweep errors; returns [`CoreError::Input`] if
/// `calibration_inputs` is empty.
pub fn select_with_budget(
    app: WorkloadRef,
    calibration_inputs: &[ImageInput<'_>],
    specs: &[RunSpec],
    metric: ErrorMetric,
    device: &DeviceConfig,
    baseline: RunSpec,
    budget: f64,
) -> Result<Option<BudgetSelection>, CoreError> {
    if calibration_inputs.is_empty() {
        return Err(CoreError::Input("calibration set must not be empty".into()));
    }
    let mut error_sums = vec![0.0f64; specs.len()];
    let mut speedups = vec![0.0f64; specs.len()];
    for (k, input) in calibration_inputs.iter().enumerate() {
        let ctx = SweepContext {
            app,
            input: *input,
            metric,
            device: device.clone(),
            baseline,
        };
        let outcomes = sweep(&ctx, specs)?;
        for (i, o) in outcomes.iter().enumerate() {
            error_sums[i] += o.error;
            if k == 0 {
                speedups[i] = o.speedup;
            }
        }
    }
    let n = calibration_inputs.len() as f64;
    let candidate_errors: Vec<f64> = error_sums.iter().map(|e| e / n).collect();

    // Same non-finite guards as `best_under_budget`: a NaN mean error or
    // speedup disqualifies the candidate instead of panicking the
    // selection.
    let chosen = candidate_errors
        .iter()
        .enumerate()
        .filter(|(i, &e)| e.is_finite() && e <= budget && speedups[*i].is_finite())
        .max_by(|(i, _), (j, _)| speedups[*i].total_cmp(&speedups[*j]))
        .map(|(i, _)| i);

    Ok(chosen.map(|index| BudgetSelection {
        label: specs[index].label(),
        index,
        mean_error: candidate_errors[index],
        speedup: speedups[index],
        candidate_errors,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ApproxConfig;
    use crate::pipeline::{StencilApp, Window};
    use crate::tuner::fig8_specs;

    struct Blur;

    impl StencilApp for Blur {
        fn name(&self) -> &str {
            "blur"
        }

        fn halo(&self) -> usize {
            1
        }

        fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
            let mut acc = 0.0;
            for dy in -1..=1 {
                for dx in -1..=1 {
                    acc += win.at(dx, dy);
                }
            }
            win.ops(9);
            acc / 9.0
        }
    }

    fn mk_outcome(label: &str, speedup: f64, error: f64) -> SweepOutcome {
        SweepOutcome {
            label: label.into(),
            group: (16, 16),
            seconds: 1.0 / speedup,
            speedup,
            error,
            read_transactions: 0,
        }
    }

    #[test]
    fn best_under_budget_picks_fastest_within() {
        let outcomes = vec![
            mk_outcome("slow-accurate", 1.1, 0.001),
            mk_outcome("fast-sloppy", 3.0, 0.2),
            mk_outcome("medium", 2.0, 0.04),
        ];
        let best = best_under_budget(&outcomes, 0.05).unwrap();
        assert_eq!(best.label, "medium");
    }

    #[test]
    fn best_under_budget_none_when_unreachable() {
        let outcomes = vec![mk_outcome("sloppy", 3.0, 0.5)];
        assert!(best_under_budget(&outcomes, 0.01).is_none());
    }

    #[test]
    fn best_under_budget_empty_set_is_none() {
        assert!(best_under_budget(&[], 1.0).is_none());
        assert!(best_under_budget(&[], f64::INFINITY).is_none());
    }

    #[test]
    fn best_under_budget_budget_below_every_outcome() {
        let outcomes = vec![
            mk_outcome("a", 1.5, 0.10),
            mk_outcome("b", 2.0, 0.20),
            mk_outcome("c", 3.0, 0.30),
        ];
        assert!(best_under_budget(&outcomes, 0.05).is_none());
        // Exactly at the smallest error: inclusive comparison admits it.
        assert_eq!(best_under_budget(&outcomes, 0.10).unwrap().label, "a");
    }

    #[test]
    fn best_under_budget_guards_non_finite_values() {
        // NaN/inf errors never qualify; NaN speedups never win and never
        // panic the ordering.
        let outcomes = vec![
            mk_outcome("nan-error", 9.0, f64::NAN),
            mk_outcome("inf-error", 9.0, f64::INFINITY),
            mk_outcome("nan-speedup", f64::NAN, 0.01),
            mk_outcome("inf-speedup", f64::INFINITY, 0.01),
            mk_outcome("sane", 2.0, 0.02),
        ];
        assert_eq!(best_under_budget(&outcomes, 0.05).unwrap().label, "sane");
        // Only poisoned candidates in budget: selection is None, not a
        // panic.
        let poisoned = vec![
            mk_outcome("nan-error", 9.0, f64::NAN),
            mk_outcome("nan-speedup", f64::NAN, 0.01),
        ];
        assert!(best_under_budget(&poisoned, 0.05).is_none());
        // NaN budget admits nothing.
        assert!(best_under_budget(&outcomes, f64::NAN).is_none());
        // An infinite budget admits everything finite.
        assert_eq!(
            best_under_budget(&outcomes, f64::INFINITY).unwrap().label,
            "sane"
        );
    }

    #[test]
    fn select_with_budget_end_to_end() {
        let (w, h) = (32, 32);
        let img_a: Vec<f32> = (0..w * h).map(|i| ((i % 7) as f32) / 7.0).collect();
        let img_b: Vec<f32> = (0..w * h).map(|i| ((i % 13) as f32) / 13.0).collect();
        let inputs = [
            ImageInput::new(&img_a, w, h).unwrap(),
            ImageInput::new(&img_b, w, h).unwrap(),
        ];
        let specs = fig8_specs((16, 16), 1);
        let selection = select_with_budget(
            &Blur,
            &inputs,
            &specs,
            ErrorMetric::MeanRelative,
            &DeviceConfig::firepro_w5100(),
            RunSpec::Baseline { group: (16, 16) },
            // Generous budget: every config qualifies; the fastest wins.
            1.0,
        )
        .unwrap()
        .expect("selection within budget");
        assert_eq!(selection.candidate_errors.len(), specs.len());
        assert!(selection.speedup >= 1.0);
        // With a zero budget nothing qualifies (perforation always errs on
        // a high-frequency pattern).
        let none = select_with_budget(
            &Blur,
            &inputs,
            &specs,
            ErrorMetric::MeanRelative,
            &DeviceConfig::firepro_w5100(),
            RunSpec::Baseline { group: (16, 16) },
            0.0,
        )
        .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn select_rejects_empty_calibration_set() {
        let specs = [RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16)))];
        let err = select_with_budget(
            &Blur,
            &[],
            &specs,
            ErrorMetric::MeanRelative,
            &DeviceConfig::firepro_w5100(),
            RunSpec::Baseline { group: (16, 16) },
            0.1,
        );
        assert!(err.is_err());
    }
}
