//! # kp-core — local memory-aware kernel perforation
//!
//! Rust implementation of the approximation technique from *"Local
//! Memory-Aware Kernel Perforation"* (Maier, Cosenza, Juurlink — CGO 2018,
//! DOI [10.1145/3168814](https://doi.org/10.1145/3168814)), running on the
//! [`kp_gpu_sim`] simulated GPU.
//!
//! The technique accelerates memory-bound GPU kernels by *perforating their
//! input*: a [`PerforationScheme`] skips part of the global-memory loads of
//! each work-group tile, a [`Reconstruction`] technique rebuilds the skipped
//! elements in fast local memory, and the unmodified kernel body then runs
//! over the reconstructed tile. Compared with output approximation
//! (Paraprox, re-implemented in [`paraprox`] as the comparison baseline),
//! this reaches similar speedups at a fraction of the error.
//!
//! ## Pipeline (paper Fig. 1b)
//!
//! ```text
//!  input buffer ──(Ia) data perforation──▶ local memory (sparse)
//!               ──(Ib) reconstruction ───▶ local memory (dense approx.)
//!               ──(II) kernel execution──▶ output buffer
//! ```
//!
//! ## Quick start
//!
//! ```
//! use kp_core::{ApproxConfig, ImageInput, RunSpec, StencilApp, Window, run_app};
//! use kp_gpu_sim::{Device, DeviceConfig};
//!
//! /// A 3x3 box blur as a perforatable application.
//! struct Box3;
//!
//! impl StencilApp for Box3 {
//!     fn name(&self) -> &str { "box3" }
//!     fn halo(&self) -> usize { 1 }
//!     fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
//!         let mut acc = 0.0;
//!         for dy in -1..=1 { for dx in -1..=1 { acc += win.at(dx, dy); } }
//!         win.ops(9);
//!         acc / 9.0
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dev = Device::new(DeviceConfig::firepro_w5100())?;
//! let image = vec![0.5f32; 64 * 64];
//! let input = ImageInput::new(&image, 64, 64)?;
//!
//! let accurate = run_app(&mut dev, &Box3, &input, &RunSpec::Baseline { group: (16, 16) })?;
//! let perforated = run_app(&mut dev, &Box3, &input,
//!     &RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))))?;
//!
//! assert!(perforated.report.seconds < accurate.report.seconds);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod budget;
mod config;
mod error;
mod metrics;
mod pareto;
mod reconstruction;
mod runner;
mod scheme;
mod tile;
mod tuner;

pub mod par;
pub mod paraprox;
pub mod pipeline;

pub use budget::{best_under_budget, select_with_budget, BudgetSelection};
pub use config::ApproxConfig;
pub use error::CoreError;
pub use metrics::{
    max_abs_error, mean_absolute_error, mean_relative_error, psnr, rmse, Distribution, ErrorMetric,
    MRE_EPSILON,
};
pub use par::{parallel_ordered_map, resolve_threads};
pub use pareto::{pareto_front, TradeOff};
pub use pipeline::{
    pack_tiled, AccurateGlobalKernel, AccurateLocalKernel, AppRef, ImageBinding, PerforatedKernel,
    StencilApp, TilePrefetch, Window, Workload, WorkloadRef,
};
pub use reconstruction::{reconstruct_element, Reconstruction};
pub use runner::{run_app, run_iterative, run_specs_batched, ImageInput, RunResult, RunSpec};
pub use scheme::{LoadQuery, PerforationScheme, PrefetchLayout, SchemeSpec, SkipLevel};
pub use tile::{clamp_coord, TileGeometry};
pub use tuner::{
    fig8_specs, fig9_shapes, layout_specs, pareto_outcomes, sweep, SweepContext, SweepOutcome,
};
