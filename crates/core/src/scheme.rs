//! Input perforation schemes (paper §4.3–§4.4).
//!
//! A perforation scheme decides which elements of a work-group tile are
//! *loaded* from global memory and which are *skipped* (to be filled in by
//! the reconstruction phase). Schemes must respect the memory architecture:
//! skipping whole rows removes whole coalesced transactions, while skipping
//! scattered elements saves nothing because the surrounding line is fetched
//! anyway — this is why the paper's schemes are row-shaped and why the
//! random scheme (implemented here for completeness) buys accuracy but no
//! bandwidth.
//!
//! Row/column schemes are keyed on *global* coordinates so that the pattern
//! of adjacent work groups lines up ("the schemes match each other", §4.4).

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::tile::TileGeometry;

/// How aggressively rows/columns are skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkipLevel {
    /// Skip every other row/column — `Rows1`/`Cols1` in the paper: 1/2 of
    /// the data is loaded.
    Half,
    /// Skip 3 out of 4 rows/columns — `Rows2`/`Cols2`: 1/4 is loaded.
    ThreeQuarters,
}

impl SkipLevel {
    /// Period of the skip pattern (2 or 4).
    pub fn period(self) -> i64 {
        match self {
            SkipLevel::Half => 2,
            SkipLevel::ThreeQuarters => 4,
        }
    }

    /// Maximum distance from a skipped row/column to its nearest loaded
    /// neighbor (1 for `Half`, 2 for `ThreeQuarters`).
    pub fn max_gap(self) -> usize {
        match self {
            SkipLevel::Half => 1,
            SkipLevel::ThreeQuarters => 2,
        }
    }
}

/// One element of a padded tile, as seen by [`PerforationScheme::loads`].
///
/// Bundles the tile geometry, the element's padded tile coordinate and its
/// (unclamped) global coordinate, replacing the old five-argument
/// positional signature where the two coordinate pairs were easy to swap
/// silently.
#[derive(Debug, Clone, Copy)]
pub struct LoadQuery<'a> {
    /// Geometry of the tile the element belongs to.
    pub tile: &'a TileGeometry,
    /// Padded tile coordinate `(px, py)`, `0 ≤ px < padded_w`.
    pub padded: (usize, usize),
    /// Unclamped global coordinate `(gx, gy)`; halo elements of edge tiles
    /// can be negative or beyond the image.
    pub global: (i64, i64),
}

/// How a work group's tile is *fetched* into local memory — the second,
/// orthogonal scheme axis. Element selection (which elements load) and
/// prefetch layout (how the loads hit DRAM) compose freely in a
/// [`SchemeSpec`].
///
/// All layouts produce bit-identical local tiles and therefore bit-identical
/// outputs; they differ only in simulated cost. Marked `#[non_exhaustive]`:
/// match with a wildcard arm or key on [`PrefetchLayout::family_label`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PrefetchLayout {
    /// Fetch straight from the row-major image: each tile row is a separate
    /// strided DRAM block run (the layout every scheme used before this
    /// axis existed).
    #[default]
    RowMajor,
    /// Fetch from a tiled copy of the image in which each group's padded
    /// tile is contiguous, so the whole prefetch is one long burst run
    /// (open-row DRAM transfers priced at
    /// `DeviceConfig::burst_issue_cycles`). Requires the host to pack the
    /// tiled copy; falls back to row-major when no tiled buffer is bound.
    BurstTiled,
    /// Load only the tile body from DRAM and *shift in* vertical halo rows
    /// from the neighboring group's resident tile instead of re-fetching
    /// them (software-systolic reuse). Shifted elements are priced on the
    /// local/exchange pipeline, not the memory pipeline.
    SystolicShift,
}

impl PrefetchLayout {
    /// Stable short name of the layout family, for logs, tuning keys and
    /// downstream dispatch without matching the `#[non_exhaustive]` enum.
    pub fn family_label(self) -> &'static str {
        match self {
            PrefetchLayout::RowMajor => "row-major",
            PrefetchLayout::BurstTiled => "burst-tiled",
            PrefetchLayout::SystolicShift => "systolic-shift",
        }
    }

    /// Suffix appended to scheme labels (`""`, `"@burst"`, `"@systolic"`).
    /// Row-major is unsuffixed so pre-existing labels are unchanged.
    pub fn label_suffix(self) -> &'static str {
        match self {
            PrefetchLayout::RowMajor => "",
            PrefetchLayout::BurstTiled => "@burst",
            PrefetchLayout::SystolicShift => "@systolic",
        }
    }

    /// Validates the layout against a tile geometry.
    ///
    /// # Errors
    ///
    /// `SystolicShift` needs `1 ≤ halo ≤ tile_h`: with no halo there is
    /// nothing to shift, and with `halo > tile_h` the halo rows a group
    /// would shift in extend past its neighbor's resident tile rows.
    pub fn validate(self, tile: &TileGeometry) -> Result<(), CoreError> {
        match self {
            PrefetchLayout::SystolicShift => {
                if tile.halo == 0 {
                    Err(CoreError::IllegalConfig(
                        "systolic shift layout needs a stencil halo (halo >= 1); \
                         with no halo there are no rows to shift"
                            .into(),
                    ))
                } else if tile.halo > tile.tile_h {
                    Err(CoreError::IllegalConfig(format!(
                        "systolic shift layout needs halo <= tile height so the vertical \
                         halo fits in one neighbor's tile, got halo {} > tile_h {}",
                        tile.halo, tile.tile_h
                    )))
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }
    }
}

impl std::fmt::Display for PrefetchLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.family_label())
    }
}

/// A complete perforation scheme: *which* elements load ([`PerforationScheme`])
/// × *how* they are fetched ([`PrefetchLayout`]).
///
/// The closed selection enum stays available as a compat constructor:
/// `SchemeSpec::from(scheme)` (or `scheme.into()`) picks the row-major
/// layout, which reproduces the pre-axis behavior exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeSpec {
    /// Element-selection axis: which tile elements load from global memory.
    pub select: PerforationScheme,
    /// Prefetch-layout axis: how the loads reach local memory.
    pub layout: PrefetchLayout,
}

impl SchemeSpec {
    /// A spec with the default row-major layout.
    pub fn new(select: PerforationScheme) -> Self {
        SchemeSpec {
            select,
            layout: PrefetchLayout::default(),
        }
    }

    /// Returns the spec with its layout replaced.
    #[must_use]
    pub fn with_layout(mut self, layout: PrefetchLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Validates both axes against a tile geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`PerforationScheme::validate`] and
    /// [`PrefetchLayout::validate`] failures.
    pub fn validate(&self, tile: &TileGeometry) -> Result<(), CoreError> {
        self.select.validate(tile)?;
        self.layout.validate(tile)
    }

    /// True if the selection axis actually skips anything. Layouts never
    /// change *what* is resident, only how it arrives.
    pub fn perforates(&self) -> bool {
        self.select.perforates()
    }
}

impl From<PerforationScheme> for SchemeSpec {
    fn from(select: PerforationScheme) -> Self {
        SchemeSpec::new(select)
    }
}

impl std::fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.select, self.layout.label_suffix())
    }
}

/// An input perforation scheme (the element-selection axis).
///
/// Marked `#[non_exhaustive]`: new selection families may be added without
/// a breaking change. External code should match with a wildcard arm or
/// dispatch on [`PerforationScheme::family_label`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PerforationScheme {
    /// Load everything (the accurate local-memory baseline).
    None,
    /// Skip rows of the tile ([`SkipLevel::Half`] = `Rows1`, Fig. 4a;
    /// [`SkipLevel::ThreeQuarters`] = `Rows2`, Fig. 4b).
    Rows(SkipLevel),
    /// Skip columns of the tile. Misaligned with the row-major memory
    /// layout, so it saves little bandwidth (paper §6.4: "Cols becomes
    /// slower").
    Columns(SkipLevel),
    /// Load only the tile interior and skip the entire halo ring
    /// (`Stencil1`, Fig. 5). Requires a stencil app (`halo ≥ 1`).
    Stencil,
    /// Skip pseudo-random elements, keeping `keep_fraction` of them.
    /// Statistically ideal error spreading but interferes with coalescing
    /// (§4.4), so it reconstructs well and accelerates nothing.
    Random {
        /// Fraction of elements loaded, in `(0, 1]`.
        keep_fraction: f64,
        /// Seed decorrelating the pattern between runs.
        seed: u64,
    },
}

/// SplitMix64: cheap, high-quality stateless hash for the random scheme.
///
/// Halo coordinates of edge tiles can be negative; `gx as u64` / `gy as
/// u64` deliberately sign-extend them into huge unsigned values. This is a
/// documented, load-bearing choice: the mapping `i64 → u64` is a bijection,
/// so every global coordinate — negative or not — hashes to one fixed,
/// distinct stream value, and adjacent work groups sharing a halo column
/// agree on whether it is loaded ("the schemes match each other", §4.4).
/// The exact pattern, including negative coordinates, is pinned by the
/// `random_pattern_is_pinned` test; changing this function invalidates
/// every recorded error measurement that used the random scheme.
fn hash_coord(gx: i64, gy: i64, seed: u64) -> u64 {
    let mut z = seed
        .wrapping_add((gx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((gy as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PerforationScheme {
    /// Whether the queried element is loaded from global memory.
    pub fn loads(&self, query: LoadQuery<'_>) -> bool {
        let LoadQuery {
            tile,
            padded: (px, py),
            global: (gx, gy),
        } = query;
        match *self {
            PerforationScheme::None => true,
            PerforationScheme::Rows(level) => gy.rem_euclid(level.period()) == 0,
            PerforationScheme::Columns(level) => gx.rem_euclid(level.period()) == 0,
            PerforationScheme::Stencil => tile.is_interior(px, py),
            PerforationScheme::Random {
                keep_fraction,
                seed,
            } => {
                // `validate` permits keep_fraction == 1.0, which must load
                // *everything*: the strict comparison below would still
                // skip an element hashing to exactly u64::MAX, so full
                // keep is short-circuited.
                if keep_fraction >= 1.0 {
                    return true;
                }
                let h = hash_coord(gx, gy, seed);
                (h as f64 / u64::MAX as f64) < keep_fraction
            }
        }
    }

    /// The old five-argument positional form of [`PerforationScheme::loads`],
    /// kept as a migration shim.
    #[deprecated(note = "use loads(LoadQuery { tile, padded, global }) instead")]
    pub fn loads_at(&self, tile: &TileGeometry, px: usize, py: usize, gx: i64, gy: i64) -> bool {
        self.loads(LoadQuery {
            tile,
            padded: (px, py),
            global: (gx, gy),
        })
    }

    /// Exact fraction of the padded tile loaded for the work group at
    /// `group` (the row/column pattern is global, so edge groups can differ
    /// slightly from interior ones).
    pub fn fraction_loaded(&self, tile: &TileGeometry, group: (usize, usize)) -> f64 {
        let mut loaded = 0usize;
        for py in 0..tile.padded_h() {
            for px in 0..tile.padded_w() {
                let global = tile.global_of(group, px, py);
                if self.loads(LoadQuery {
                    tile,
                    padded: (px, py),
                    global,
                }) {
                    loaded += 1;
                }
            }
        }
        loaded as f64 / tile.padded_len() as f64
    }

    /// Stable short name of the selection family, for logs, tuning keys and
    /// downstream dispatch without matching the `#[non_exhaustive]` enum.
    pub fn family_label(&self) -> &'static str {
        match *self {
            PerforationScheme::None => "accurate",
            PerforationScheme::Rows(_) => "rows",
            PerforationScheme::Columns(_) => "cols",
            PerforationScheme::Stencil => "stencil",
            PerforationScheme::Random { .. } => "random",
        }
    }

    /// Validates the scheme against a tile geometry.
    ///
    /// # Errors
    ///
    /// * `Stencil` needs `halo ≥ 1` — with no halo it loads everything and
    ///   perforates nothing (the paper notes it "cannot be used" for the
    ///   1×1 Inversion kernel, §6.4).
    /// * Row/column schemes need the padded tile extent to cover at least
    ///   one loaded row/column **for the level's period**: loaded rows are
    ///   `gy ≡ 0 (mod period)`, so a tile spanning fewer than `period`
    ///   rows can fall entirely between them (e.g. a 3-row tile over
    ///   `gy ∈ {4k+1, 4k+2, 4k+3}` under `Rows2`), leaving reconstruction
    ///   with zero loaded neighbors.
    /// * `Random` needs `keep_fraction ∈ (0, 1]`.
    pub fn validate(&self, tile: &TileGeometry) -> Result<(), CoreError> {
        match *self {
            PerforationScheme::None => Ok(()),
            PerforationScheme::Rows(level) => {
                let need = level.period() as usize;
                if tile.padded_h() < need {
                    Err(CoreError::IllegalConfig(format!(
                        "{self} perforation (period {need}) needs a tile at least {need} rows \
                         high so every tile alignment contains a loaded row, got {}",
                        tile.padded_h()
                    )))
                } else {
                    Ok(())
                }
            }
            PerforationScheme::Columns(level) => {
                let need = level.period() as usize;
                if tile.padded_w() < need {
                    Err(CoreError::IllegalConfig(format!(
                        "{self} perforation (period {need}) needs a tile at least {need} columns \
                         wide so every tile alignment contains a loaded column, got {}",
                        tile.padded_w()
                    )))
                } else {
                    Ok(())
                }
            }
            PerforationScheme::Stencil => {
                if tile.halo == 0 {
                    Err(CoreError::IllegalConfig(
                        "stencil perforation needs a stencil app (halo >= 1); \
                         with a 1x1 kernel it would load everything"
                            .into(),
                    ))
                } else {
                    Ok(())
                }
            }
            PerforationScheme::Random { keep_fraction, .. } => {
                if keep_fraction > 0.0 && keep_fraction <= 1.0 {
                    Ok(())
                } else {
                    Err(CoreError::IllegalConfig(format!(
                        "random perforation keep_fraction must be in (0, 1], got {keep_fraction}"
                    )))
                }
            }
        }
    }

    /// True if the scheme actually skips anything.
    pub fn perforates(&self) -> bool {
        !matches!(self, PerforationScheme::None)
    }
}

impl std::fmt::Display for PerforationScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PerforationScheme::None => write!(f, "Accurate"),
            PerforationScheme::Rows(SkipLevel::Half) => write!(f, "Rows1"),
            PerforationScheme::Rows(SkipLevel::ThreeQuarters) => write!(f, "Rows2"),
            PerforationScheme::Columns(SkipLevel::Half) => write!(f, "Cols1"),
            PerforationScheme::Columns(SkipLevel::ThreeQuarters) => write!(f, "Cols2"),
            PerforationScheme::Stencil => write!(f, "Stencil1"),
            PerforationScheme::Random { keep_fraction, .. } => {
                write!(f, "Random({keep_fraction:.2})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile() -> TileGeometry {
        TileGeometry::new(16, 16, 1)
    }

    fn loads(
        s: &PerforationScheme,
        tile: &TileGeometry,
        px: usize,
        py: usize,
        gx: i64,
        gy: i64,
    ) -> bool {
        s.loads(LoadQuery {
            tile,
            padded: (px, py),
            global: (gx, gy),
        })
    }

    #[test]
    fn none_loads_everything() {
        let t = tile();
        assert!((PerforationScheme::None.fraction_loaded(&t, (0, 0)) - 1.0).abs() < 1e-12);
        assert!(!PerforationScheme::None.perforates());
    }

    #[test]
    fn rows1_loads_even_global_rows() {
        let t = tile();
        let s = PerforationScheme::Rows(SkipLevel::Half);
        for py in 0..t.padded_h() {
            let (gx, gy) = t.global_of((0, 0), 0, py);
            assert_eq!(
                loads(&s, &t, 0, py, gx, gy),
                gy.rem_euclid(2) == 0,
                "py={py}"
            );
        }
    }

    #[test]
    fn rows1_loads_about_half() {
        let t = tile();
        let f = PerforationScheme::Rows(SkipLevel::Half).fraction_loaded(&t, (0, 0));
        assert!((0.4..=0.6).contains(&f), "fraction {f}");
    }

    #[test]
    fn rows2_loads_about_a_quarter() {
        let t = tile();
        let f = PerforationScheme::Rows(SkipLevel::ThreeQuarters).fraction_loaded(&t, (0, 0));
        assert!((0.2..=0.3).contains(&f), "fraction {f}");
    }

    #[test]
    fn rows_pattern_is_consistent_across_groups() {
        // The same global row must be loaded (or not) regardless of which
        // group's tile covers it — the paper's "schemes match each other".
        let t = tile();
        let s = PerforationScheme::Rows(SkipLevel::Half);
        // Global row 16 is py=17 in group (0,0) (origin -1) and py=1 in
        // group (0,1) (origin 15).
        let (gx0, gy0) = t.global_of((0, 0), 5, 17);
        let (gx1, gy1) = t.global_of((0, 1), 5, 1);
        assert_eq!(gy0, 16);
        assert_eq!(gy1, 16);
        assert_eq!(
            loads(&s, &t, 5, 17, gx0, gy0),
            loads(&s, &t, 5, 1, gx1, gy1)
        );
    }

    #[test]
    fn columns_mirror_rows() {
        let t = tile();
        let s = PerforationScheme::Columns(SkipLevel::Half);
        for px in 0..t.padded_w() {
            let (gx, gy) = t.global_of((0, 0), px, 0);
            assert_eq!(loads(&s, &t, px, 0, gx, gy), gx.rem_euclid(2) == 0);
        }
    }

    #[test]
    fn stencil_loads_exactly_the_interior() {
        let t = tile();
        let s = PerforationScheme::Stencil;
        let mut loaded = 0;
        for py in 0..t.padded_h() {
            for px in 0..t.padded_w() {
                let (gx, gy) = t.global_of((0, 0), px, py);
                if loads(&s, &t, px, py, gx, gy) {
                    assert!(t.is_interior(px, py));
                    loaded += 1;
                }
            }
        }
        assert_eq!(loaded, 16 * 16);
    }

    #[test]
    fn random_fraction_tracks_parameter() {
        let t = TileGeometry::new(64, 64, 1);
        for keep in [0.25, 0.5, 0.9] {
            let s = PerforationScheme::Random {
                keep_fraction: keep,
                seed: 7,
            };
            let f = s.fraction_loaded(&t, (0, 0));
            assert!((f - keep).abs() < 0.05, "keep={keep} got {f}");
        }
    }

    #[test]
    fn random_is_deterministic() {
        let t = tile();
        let s = PerforationScheme::Random {
            keep_fraction: 0.5,
            seed: 42,
        };
        let a: Vec<bool> = (0..t.padded_len())
            .map(|i| {
                let (px, py) = t.coords(i);
                let (gx, gy) = t.global_of((0, 0), px, py);
                loads(&s, &t, px, py, gx, gy)
            })
            .collect();
        let b: Vec<bool> = (0..t.padded_len())
            .map(|i| {
                let (px, py) = t.coords(i);
                let (gx, gy) = t.global_of((0, 0), px, py);
                loads(&s, &t, px, py, gx, gy)
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn negative_global_coords_follow_parity() {
        let t = tile();
        let s = PerforationScheme::Rows(SkipLevel::Half);
        // Row -1 (top halo of the first tile) is odd -> skipped.
        assert!(!loads(&s, &t, 0, 0, -1, -1));
        // Row -2 would be even -> loaded.
        assert!(loads(&s, &t, 0, 0, 0, -2));
    }

    #[test]
    fn row_and_column_validation_requires_full_period_coverage() {
        // Loaded rows are gy ≡ 0 (mod period). A padded extent shorter
        // than the period can fall entirely between them, producing a tile
        // with ZERO loaded rows; validate must reject those geometries.
        let rows1 = PerforationScheme::Rows(SkipLevel::Half);
        let rows2 = PerforationScheme::Rows(SkipLevel::ThreeQuarters);
        let cols2 = PerforationScheme::Columns(SkipLevel::ThreeQuarters);

        // padded_h = 1 < 2: even Rows1 can miss every loaded row.
        assert!(rows1.validate(&TileGeometry::new(16, 1, 0)).is_err());
        assert!(rows1.validate(&TileGeometry::new(16, 2, 0)).is_ok());

        // padded_h ∈ {2, 3} < 4: Rows2 used to pass validation here, yet a
        // tile over gy ∈ {4k+1 .. 4k+3} contains no loaded row at all.
        for tile_h in [2, 3] {
            let t = TileGeometry::new(16, tile_h, 0);
            assert!(rows2.validate(&t).is_err(), "tile_h={tile_h}");
            // The hole this closes, demonstrated: alignment gy ∈ {1,2,3}.
            if tile_h == 3 {
                let loaded_in_group_row = |gy0: i64| {
                    (0..t.padded_h() as i64)
                        .any(|dy| loads(&rows2, &t, 0, dy as usize, 0, gy0 + dy))
                };
                assert!(loaded_in_group_row(0));
                assert!(!loaded_in_group_row(1), "gy 1..3 holds no loaded row");
            }
        }
        assert!(rows2.validate(&TileGeometry::new(16, 4, 0)).is_ok());
        // Halo rows count towards the covered extent.
        assert!(rows2.validate(&TileGeometry::new(16, 2, 1)).is_ok());

        // Columns mirror rows on the other axis.
        assert!(cols2.validate(&TileGeometry::new(3, 16, 0)).is_err());
        assert!(cols2.validate(&TileGeometry::new(4, 16, 0)).is_ok());
    }

    #[test]
    fn random_full_keep_loads_every_element() {
        // keep_fraction = 1.0 is explicitly permitted by validate and must
        // load everything — including any element whose hash lands on
        // exactly u64::MAX, which the strict `< keep` comparison skipped.
        let t = TileGeometry::new(32, 32, 2);
        for seed in [0u64, 1, 42, u64::MAX] {
            let s = PerforationScheme::Random {
                keep_fraction: 1.0,
                seed,
            };
            assert!(s.validate(&t).is_ok());
            for group in [(0, 0), (3, 7)] {
                assert_eq!(s.fraction_loaded(&t, group), 1.0, "seed {seed}");
            }
        }
    }

    #[test]
    fn random_pattern_is_pinned() {
        // Pins the exact random-scheme pattern — including the halo's
        // negative global coordinates, which hash_coord deliberately
        // sign-extends. If this snapshot changes, every recorded error
        // measurement using the random scheme changes with it.
        let t = TileGeometry::new(4, 4, 1);
        let s = PerforationScheme::Random {
            keep_fraction: 0.5,
            seed: 0xC0FFEE,
        };
        let mut pattern = String::new();
        for py in 0..t.padded_h() {
            for px in 0..t.padded_w() {
                let (gx, gy) = t.global_of((0, 0), px, py);
                pattern.push(if loads(&s, &t, px, py, gx, gy) {
                    '#'
                } else {
                    '.'
                });
            }
            pattern.push('\n');
        }
        let expected = "\
#.....\n\
#####.\n\
.#.#.#\n\
..#.#.\n\
.#.##.\n\
###...\n";
        assert_eq!(pattern, expected);
        // The same global coordinate loads identically from the adjacent
        // group's halo (row -1 here is group (0,0)'s top halo; the same
        // cells are group (0, -1)'s… unreachable, but group (1, 0) shares
        // the gx = 3..4 columns).
        let (gx, gy) = t.global_of((0, 0), 5, 2); // gx=4 — group 1's interior
        let (gx2, gy2) = t.global_of((1, 0), 1, 2);
        assert_eq!((gx, gy), (gx2, gy2));
        assert_eq!(
            loads(&s, &t, 5, 2, gx, gy),
            loads(&s, &t, 1, 2, gx2, gy2),
            "shared coordinate must agree across groups"
        );
    }

    #[test]
    fn stencil_requires_halo() {
        let flat = TileGeometry::new(16, 16, 0);
        assert!(PerforationScheme::Stencil.validate(&flat).is_err());
        assert!(PerforationScheme::Stencil.validate(&tile()).is_ok());
    }

    #[test]
    fn random_fraction_validated() {
        let t = tile();
        assert!(PerforationScheme::Random {
            keep_fraction: 0.0,
            seed: 0
        }
        .validate(&t)
        .is_err());
        assert!(PerforationScheme::Random {
            keep_fraction: 1.5,
            seed: 0
        }
        .validate(&t)
        .is_err());
        assert!(PerforationScheme::Random {
            keep_fraction: 0.5,
            seed: 0
        }
        .validate(&t)
        .is_ok());
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(
            PerforationScheme::Rows(SkipLevel::Half).to_string(),
            "Rows1"
        );
        assert_eq!(
            PerforationScheme::Rows(SkipLevel::ThreeQuarters).to_string(),
            "Rows2"
        );
        assert_eq!(
            PerforationScheme::Columns(SkipLevel::Half).to_string(),
            "Cols1"
        );
        assert_eq!(PerforationScheme::Stencil.to_string(), "Stencil1");
        assert_eq!(PerforationScheme::None.to_string(), "Accurate");
    }

    #[test]
    fn skip_level_gaps() {
        assert_eq!(SkipLevel::Half.period(), 2);
        assert_eq!(SkipLevel::Half.max_gap(), 1);
        assert_eq!(SkipLevel::ThreeQuarters.period(), 4);
        assert_eq!(SkipLevel::ThreeQuarters.max_gap(), 2);
    }

    #[test]
    fn deprecated_positional_shim_matches_load_query() {
        #[allow(deprecated)]
        fn shim(s: &PerforationScheme, t: &TileGeometry, px: usize, py: usize) -> bool {
            let (gx, gy) = t.global_of((1, 1), px, py);
            s.loads_at(t, px, py, gx, gy)
        }
        let t = tile();
        let s = PerforationScheme::Rows(SkipLevel::ThreeQuarters);
        for py in 0..t.padded_h() {
            let (gx, gy) = t.global_of((1, 1), 0, py);
            assert_eq!(shim(&s, &t, 0, py), loads(&s, &t, 0, py, gx, gy));
        }
    }

    #[test]
    fn scheme_spec_labels_append_layout_suffix() {
        let rows = PerforationScheme::Rows(SkipLevel::Half);
        let spec: SchemeSpec = rows.into();
        assert_eq!(spec.layout, PrefetchLayout::RowMajor);
        assert_eq!(spec.to_string(), "Rows1", "row-major keeps legacy labels");
        assert_eq!(
            spec.with_layout(PrefetchLayout::BurstTiled).to_string(),
            "Rows1@burst"
        );
        assert_eq!(
            spec.with_layout(PrefetchLayout::SystolicShift).to_string(),
            "Rows1@systolic"
        );
    }

    #[test]
    fn layout_family_labels_are_distinct() {
        let labels = [
            PrefetchLayout::RowMajor.family_label(),
            PrefetchLayout::BurstTiled.family_label(),
            PrefetchLayout::SystolicShift.family_label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(PerforationScheme::Stencil.family_label(), "stencil");
    }

    #[test]
    fn systolic_layout_requires_a_usable_halo() {
        let sys = PrefetchLayout::SystolicShift;
        assert!(sys.validate(&TileGeometry::new(16, 16, 0)).is_err());
        assert!(sys.validate(&TileGeometry::new(16, 1, 2)).is_err());
        assert!(sys.validate(&TileGeometry::new(16, 16, 1)).is_ok());
        assert!(sys.validate(&TileGeometry::new(16, 2, 2)).is_ok());
        // Other layouts are geometry-agnostic.
        assert!(PrefetchLayout::RowMajor
            .validate(&TileGeometry::new(16, 16, 0))
            .is_ok());
        assert!(PrefetchLayout::BurstTiled
            .validate(&TileGeometry::new(16, 16, 0))
            .is_ok());
    }

    #[test]
    fn scheme_spec_validates_both_axes() {
        let t = TileGeometry::new(16, 16, 0); // no halo
        let ok = SchemeSpec::new(PerforationScheme::Rows(SkipLevel::Half));
        assert!(ok.validate(&t).is_ok());
        // Selection-axis failure propagates.
        assert!(SchemeSpec::new(PerforationScheme::Stencil)
            .validate(&t)
            .is_err());
        // Layout-axis failure propagates.
        assert!(ok
            .with_layout(PrefetchLayout::SystolicShift)
            .validate(&t)
            .is_err());
        assert!(ok.perforates());
        assert!(!SchemeSpec::new(PerforationScheme::None).perforates());
    }
}
