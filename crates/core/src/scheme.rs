//! Input perforation schemes (paper §4.3–§4.4).
//!
//! A perforation scheme decides which elements of a work-group tile are
//! *loaded* from global memory and which are *skipped* (to be filled in by
//! the reconstruction phase). Schemes must respect the memory architecture:
//! skipping whole rows removes whole coalesced transactions, while skipping
//! scattered elements saves nothing because the surrounding line is fetched
//! anyway — this is why the paper's schemes are row-shaped and why the
//! random scheme (implemented here for completeness) buys accuracy but no
//! bandwidth.
//!
//! Row/column schemes are keyed on *global* coordinates so that the pattern
//! of adjacent work groups lines up ("the schemes match each other", §4.4).

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::tile::TileGeometry;

/// How aggressively rows/columns are skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkipLevel {
    /// Skip every other row/column — `Rows1`/`Cols1` in the paper: 1/2 of
    /// the data is loaded.
    Half,
    /// Skip 3 out of 4 rows/columns — `Rows2`/`Cols2`: 1/4 is loaded.
    ThreeQuarters,
}

impl SkipLevel {
    /// Period of the skip pattern (2 or 4).
    pub fn period(self) -> i64 {
        match self {
            SkipLevel::Half => 2,
            SkipLevel::ThreeQuarters => 4,
        }
    }

    /// Maximum distance from a skipped row/column to its nearest loaded
    /// neighbor (1 for `Half`, 2 for `ThreeQuarters`).
    pub fn max_gap(self) -> usize {
        match self {
            SkipLevel::Half => 1,
            SkipLevel::ThreeQuarters => 2,
        }
    }
}

/// An input perforation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PerforationScheme {
    /// Load everything (the accurate local-memory baseline).
    None,
    /// Skip rows of the tile ([`SkipLevel::Half`] = `Rows1`, Fig. 4a;
    /// [`SkipLevel::ThreeQuarters`] = `Rows2`, Fig. 4b).
    Rows(SkipLevel),
    /// Skip columns of the tile. Misaligned with the row-major memory
    /// layout, so it saves little bandwidth (paper §6.4: "Cols becomes
    /// slower").
    Columns(SkipLevel),
    /// Load only the tile interior and skip the entire halo ring
    /// (`Stencil1`, Fig. 5). Requires a stencil app (`halo ≥ 1`).
    Stencil,
    /// Skip pseudo-random elements, keeping `keep_fraction` of them.
    /// Statistically ideal error spreading but interferes with coalescing
    /// (§4.4), so it reconstructs well and accelerates nothing.
    Random {
        /// Fraction of elements loaded, in `(0, 1]`.
        keep_fraction: f64,
        /// Seed decorrelating the pattern between runs.
        seed: u64,
    },
}

/// SplitMix64: cheap, high-quality stateless hash for the random scheme.
///
/// Halo coordinates of edge tiles can be negative; `gx as u64` / `gy as
/// u64` deliberately sign-extend them into huge unsigned values. This is a
/// documented, load-bearing choice: the mapping `i64 → u64` is a bijection,
/// so every global coordinate — negative or not — hashes to one fixed,
/// distinct stream value, and adjacent work groups sharing a halo column
/// agree on whether it is loaded ("the schemes match each other", §4.4).
/// The exact pattern, including negative coordinates, is pinned by the
/// `random_pattern_is_pinned` test; changing this function invalidates
/// every recorded error measurement that used the random scheme.
fn hash_coord(gx: i64, gy: i64, seed: u64) -> u64 {
    let mut z = seed
        .wrapping_add((gx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((gy as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PerforationScheme {
    /// Whether the element at padded tile coordinate `(px, py)` — whose
    /// (unclamped) global coordinate is `(gx, gy)` — is loaded from global
    /// memory.
    pub fn loads(&self, tile: &TileGeometry, px: usize, py: usize, gx: i64, gy: i64) -> bool {
        match *self {
            PerforationScheme::None => true,
            PerforationScheme::Rows(level) => gy.rem_euclid(level.period()) == 0,
            PerforationScheme::Columns(level) => gx.rem_euclid(level.period()) == 0,
            PerforationScheme::Stencil => tile.is_interior(px, py),
            PerforationScheme::Random {
                keep_fraction,
                seed,
            } => {
                // `validate` permits keep_fraction == 1.0, which must load
                // *everything*: the strict comparison below would still
                // skip an element hashing to exactly u64::MAX, so full
                // keep is short-circuited.
                if keep_fraction >= 1.0 {
                    return true;
                }
                let h = hash_coord(gx, gy, seed);
                (h as f64 / u64::MAX as f64) < keep_fraction
            }
        }
    }

    /// Exact fraction of the padded tile loaded for the work group at
    /// `group` (the row/column pattern is global, so edge groups can differ
    /// slightly from interior ones).
    pub fn fraction_loaded(&self, tile: &TileGeometry, group: (usize, usize)) -> f64 {
        let mut loaded = 0usize;
        for py in 0..tile.padded_h() {
            for px in 0..tile.padded_w() {
                let (gx, gy) = tile.global_of(group, px, py);
                if self.loads(tile, px, py, gx, gy) {
                    loaded += 1;
                }
            }
        }
        loaded as f64 / tile.padded_len() as f64
    }

    /// Validates the scheme against a tile geometry.
    ///
    /// # Errors
    ///
    /// * `Stencil` needs `halo ≥ 1` — with no halo it loads everything and
    ///   perforates nothing (the paper notes it "cannot be used" for the
    ///   1×1 Inversion kernel, §6.4).
    /// * Row/column schemes need the padded tile extent to cover at least
    ///   one loaded row/column **for the level's period**: loaded rows are
    ///   `gy ≡ 0 (mod period)`, so a tile spanning fewer than `period`
    ///   rows can fall entirely between them (e.g. a 3-row tile over
    ///   `gy ∈ {4k+1, 4k+2, 4k+3}` under `Rows2`), leaving reconstruction
    ///   with zero loaded neighbors.
    /// * `Random` needs `keep_fraction ∈ (0, 1]`.
    pub fn validate(&self, tile: &TileGeometry) -> Result<(), CoreError> {
        match *self {
            PerforationScheme::None => Ok(()),
            PerforationScheme::Rows(level) => {
                let need = level.period() as usize;
                if tile.padded_h() < need {
                    Err(CoreError::IllegalConfig(format!(
                        "{self} perforation (period {need}) needs a tile at least {need} rows \
                         high so every tile alignment contains a loaded row, got {}",
                        tile.padded_h()
                    )))
                } else {
                    Ok(())
                }
            }
            PerforationScheme::Columns(level) => {
                let need = level.period() as usize;
                if tile.padded_w() < need {
                    Err(CoreError::IllegalConfig(format!(
                        "{self} perforation (period {need}) needs a tile at least {need} columns \
                         wide so every tile alignment contains a loaded column, got {}",
                        tile.padded_w()
                    )))
                } else {
                    Ok(())
                }
            }
            PerforationScheme::Stencil => {
                if tile.halo == 0 {
                    Err(CoreError::IllegalConfig(
                        "stencil perforation needs a stencil app (halo >= 1); \
                         with a 1x1 kernel it would load everything"
                            .into(),
                    ))
                } else {
                    Ok(())
                }
            }
            PerforationScheme::Random { keep_fraction, .. } => {
                if keep_fraction > 0.0 && keep_fraction <= 1.0 {
                    Ok(())
                } else {
                    Err(CoreError::IllegalConfig(format!(
                        "random perforation keep_fraction must be in (0, 1], got {keep_fraction}"
                    )))
                }
            }
        }
    }

    /// True if the scheme actually skips anything.
    pub fn perforates(&self) -> bool {
        !matches!(self, PerforationScheme::None)
    }
}

impl std::fmt::Display for PerforationScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PerforationScheme::None => write!(f, "Accurate"),
            PerforationScheme::Rows(SkipLevel::Half) => write!(f, "Rows1"),
            PerforationScheme::Rows(SkipLevel::ThreeQuarters) => write!(f, "Rows2"),
            PerforationScheme::Columns(SkipLevel::Half) => write!(f, "Cols1"),
            PerforationScheme::Columns(SkipLevel::ThreeQuarters) => write!(f, "Cols2"),
            PerforationScheme::Stencil => write!(f, "Stencil1"),
            PerforationScheme::Random { keep_fraction, .. } => {
                write!(f, "Random({keep_fraction:.2})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile() -> TileGeometry {
        TileGeometry::new(16, 16, 1)
    }

    #[test]
    fn none_loads_everything() {
        let t = tile();
        assert!((PerforationScheme::None.fraction_loaded(&t, (0, 0)) - 1.0).abs() < 1e-12);
        assert!(!PerforationScheme::None.perforates());
    }

    #[test]
    fn rows1_loads_even_global_rows() {
        let t = tile();
        let s = PerforationScheme::Rows(SkipLevel::Half);
        for py in 0..t.padded_h() {
            let (gx, gy) = t.global_of((0, 0), 0, py);
            assert_eq!(s.loads(&t, 0, py, gx, gy), gy.rem_euclid(2) == 0, "py={py}");
        }
    }

    #[test]
    fn rows1_loads_about_half() {
        let t = tile();
        let f = PerforationScheme::Rows(SkipLevel::Half).fraction_loaded(&t, (0, 0));
        assert!((0.4..=0.6).contains(&f), "fraction {f}");
    }

    #[test]
    fn rows2_loads_about_a_quarter() {
        let t = tile();
        let f = PerforationScheme::Rows(SkipLevel::ThreeQuarters).fraction_loaded(&t, (0, 0));
        assert!((0.2..=0.3).contains(&f), "fraction {f}");
    }

    #[test]
    fn rows_pattern_is_consistent_across_groups() {
        // The same global row must be loaded (or not) regardless of which
        // group's tile covers it — the paper's "schemes match each other".
        let t = tile();
        let s = PerforationScheme::Rows(SkipLevel::Half);
        // Global row 16 is py=17 in group (0,0) (origin -1) and py=1 in
        // group (0,1) (origin 15).
        let (gx0, gy0) = t.global_of((0, 0), 5, 17);
        let (gx1, gy1) = t.global_of((0, 1), 5, 1);
        assert_eq!(gy0, 16);
        assert_eq!(gy1, 16);
        assert_eq!(s.loads(&t, 5, 17, gx0, gy0), s.loads(&t, 5, 1, gx1, gy1));
    }

    #[test]
    fn columns_mirror_rows() {
        let t = tile();
        let s = PerforationScheme::Columns(SkipLevel::Half);
        for px in 0..t.padded_w() {
            let (gx, gy) = t.global_of((0, 0), px, 0);
            assert_eq!(s.loads(&t, px, 0, gx, gy), gx.rem_euclid(2) == 0);
        }
    }

    #[test]
    fn stencil_loads_exactly_the_interior() {
        let t = tile();
        let s = PerforationScheme::Stencil;
        let mut loaded = 0;
        for py in 0..t.padded_h() {
            for px in 0..t.padded_w() {
                let (gx, gy) = t.global_of((0, 0), px, py);
                if s.loads(&t, px, py, gx, gy) {
                    assert!(t.is_interior(px, py));
                    loaded += 1;
                }
            }
        }
        assert_eq!(loaded, 16 * 16);
    }

    #[test]
    fn random_fraction_tracks_parameter() {
        let t = TileGeometry::new(64, 64, 1);
        for keep in [0.25, 0.5, 0.9] {
            let s = PerforationScheme::Random {
                keep_fraction: keep,
                seed: 7,
            };
            let f = s.fraction_loaded(&t, (0, 0));
            assert!((f - keep).abs() < 0.05, "keep={keep} got {f}");
        }
    }

    #[test]
    fn random_is_deterministic() {
        let t = tile();
        let s = PerforationScheme::Random {
            keep_fraction: 0.5,
            seed: 42,
        };
        let a: Vec<bool> = (0..t.padded_len())
            .map(|i| {
                let (px, py) = t.coords(i);
                let (gx, gy) = t.global_of((0, 0), px, py);
                s.loads(&t, px, py, gx, gy)
            })
            .collect();
        let b: Vec<bool> = (0..t.padded_len())
            .map(|i| {
                let (px, py) = t.coords(i);
                let (gx, gy) = t.global_of((0, 0), px, py);
                s.loads(&t, px, py, gx, gy)
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn negative_global_coords_follow_parity() {
        let t = tile();
        let s = PerforationScheme::Rows(SkipLevel::Half);
        // Row -1 (top halo of the first tile) is odd -> skipped.
        assert!(!s.loads(&t, 0, 0, -1, -1));
        // Row -2 would be even -> loaded.
        assert!(s.loads(&t, 0, 0, 0, -2));
    }

    #[test]
    fn row_and_column_validation_requires_full_period_coverage() {
        // Loaded rows are gy ≡ 0 (mod period). A padded extent shorter
        // than the period can fall entirely between them, producing a tile
        // with ZERO loaded rows; validate must reject those geometries.
        let rows1 = PerforationScheme::Rows(SkipLevel::Half);
        let rows2 = PerforationScheme::Rows(SkipLevel::ThreeQuarters);
        let cols2 = PerforationScheme::Columns(SkipLevel::ThreeQuarters);

        // padded_h = 1 < 2: even Rows1 can miss every loaded row.
        assert!(rows1.validate(&TileGeometry::new(16, 1, 0)).is_err());
        assert!(rows1.validate(&TileGeometry::new(16, 2, 0)).is_ok());

        // padded_h ∈ {2, 3} < 4: Rows2 used to pass validation here, yet a
        // tile over gy ∈ {4k+1 .. 4k+3} contains no loaded row at all.
        for tile_h in [2, 3] {
            let t = TileGeometry::new(16, tile_h, 0);
            assert!(rows2.validate(&t).is_err(), "tile_h={tile_h}");
            // The hole this closes, demonstrated: alignment gy ∈ {1,2,3}.
            if tile_h == 3 {
                let loaded_in_group_row = |gy0: i64| {
                    (0..t.padded_h() as i64).any(|dy| rows2.loads(&t, 0, dy as usize, 0, gy0 + dy))
                };
                assert!(loaded_in_group_row(0));
                assert!(!loaded_in_group_row(1), "gy 1..3 holds no loaded row");
            }
        }
        assert!(rows2.validate(&TileGeometry::new(16, 4, 0)).is_ok());
        // Halo rows count towards the covered extent.
        assert!(rows2.validate(&TileGeometry::new(16, 2, 1)).is_ok());

        // Columns mirror rows on the other axis.
        assert!(cols2.validate(&TileGeometry::new(3, 16, 0)).is_err());
        assert!(cols2.validate(&TileGeometry::new(4, 16, 0)).is_ok());
    }

    #[test]
    fn random_full_keep_loads_every_element() {
        // keep_fraction = 1.0 is explicitly permitted by validate and must
        // load everything — including any element whose hash lands on
        // exactly u64::MAX, which the strict `< keep` comparison skipped.
        let t = TileGeometry::new(32, 32, 2);
        for seed in [0u64, 1, 42, u64::MAX] {
            let s = PerforationScheme::Random {
                keep_fraction: 1.0,
                seed,
            };
            assert!(s.validate(&t).is_ok());
            for group in [(0, 0), (3, 7)] {
                assert_eq!(s.fraction_loaded(&t, group), 1.0, "seed {seed}");
            }
        }
    }

    #[test]
    fn random_pattern_is_pinned() {
        // Pins the exact random-scheme pattern — including the halo's
        // negative global coordinates, which hash_coord deliberately
        // sign-extends. If this snapshot changes, every recorded error
        // measurement using the random scheme changes with it.
        let t = TileGeometry::new(4, 4, 1);
        let s = PerforationScheme::Random {
            keep_fraction: 0.5,
            seed: 0xC0FFEE,
        };
        let mut pattern = String::new();
        for py in 0..t.padded_h() {
            for px in 0..t.padded_w() {
                let (gx, gy) = t.global_of((0, 0), px, py);
                pattern.push(if s.loads(&t, px, py, gx, gy) {
                    '#'
                } else {
                    '.'
                });
            }
            pattern.push('\n');
        }
        let expected = "\
#.....\n\
#####.\n\
.#.#.#\n\
..#.#.\n\
.#.##.\n\
###...\n";
        assert_eq!(pattern, expected);
        // The same global coordinate loads identically from the adjacent
        // group's halo (row -1 here is group (0,0)'s top halo; the same
        // cells are group (0, -1)'s… unreachable, but group (1, 0) shares
        // the gx = 3..4 columns).
        let (gx, gy) = t.global_of((0, 0), 5, 2); // gx=4 — group 1's interior
        let (gx2, gy2) = t.global_of((1, 0), 1, 2);
        assert_eq!((gx, gy), (gx2, gy2));
        assert_eq!(
            s.loads(&t, 5, 2, gx, gy),
            s.loads(&t, 1, 2, gx2, gy2),
            "shared coordinate must agree across groups"
        );
    }

    #[test]
    fn stencil_requires_halo() {
        let flat = TileGeometry::new(16, 16, 0);
        assert!(PerforationScheme::Stencil.validate(&flat).is_err());
        assert!(PerforationScheme::Stencil.validate(&tile()).is_ok());
    }

    #[test]
    fn random_fraction_validated() {
        let t = tile();
        assert!(PerforationScheme::Random {
            keep_fraction: 0.0,
            seed: 0
        }
        .validate(&t)
        .is_err());
        assert!(PerforationScheme::Random {
            keep_fraction: 1.5,
            seed: 0
        }
        .validate(&t)
        .is_err());
        assert!(PerforationScheme::Random {
            keep_fraction: 0.5,
            seed: 0
        }
        .validate(&t)
        .is_ok());
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(
            PerforationScheme::Rows(SkipLevel::Half).to_string(),
            "Rows1"
        );
        assert_eq!(
            PerforationScheme::Rows(SkipLevel::ThreeQuarters).to_string(),
            "Rows2"
        );
        assert_eq!(
            PerforationScheme::Columns(SkipLevel::Half).to_string(),
            "Cols1"
        );
        assert_eq!(PerforationScheme::Stencil.to_string(), "Stencil1");
        assert_eq!(PerforationScheme::None.to_string(), "Accurate");
    }

    #[test]
    fn skip_level_gaps() {
        assert_eq!(SkipLevel::Half.period(), 2);
        assert_eq!(SkipLevel::Half.max_gap(), 1);
        assert_eq!(SkipLevel::ThreeQuarters.period(), 4);
        assert_eq!(SkipLevel::ThreeQuarters.max_gap(), 2);
    }
}
