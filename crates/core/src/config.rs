//! Approximation configurations: scheme × reconstruction × work-group size.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::reconstruction::Reconstruction;
use crate::scheme::{PerforationScheme, PrefetchLayout, SchemeSpec, SkipLevel};
use crate::tile::TileGeometry;

/// A complete perforation configuration for one kernel launch.
///
/// The paper's named configurations are available as constructors, e.g.
/// [`ApproxConfig::rows1_nn`] for "perforate every other row, reconstruct
/// with nearest-neighbor interpolation".
///
/// # Examples
///
/// ```
/// use kp_core::ApproxConfig;
///
/// let cfg = ApproxConfig::rows1_li((16, 16));
/// assert_eq!(cfg.label(), "Rows1:LI");
/// assert!(cfg.validate(1).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproxConfig {
    /// Which tile elements are loaded from global memory, and how the
    /// loads reach local memory (selection × prefetch layout).
    pub scheme: SchemeSpec,
    /// How skipped elements are filled in local memory.
    pub reconstruction: Reconstruction,
    /// Work-group (tile) size `(x, y)`.
    pub group: (usize, usize),
}

impl ApproxConfig {
    /// The accurate local-memory configuration (no perforation).
    pub fn accurate(group: (usize, usize)) -> Self {
        Self {
            scheme: PerforationScheme::None.into(),
            reconstruction: Reconstruction::None,
            group,
        }
    }

    /// `Rows1:NN` — skip every other row, nearest-neighbor reconstruction.
    pub fn rows1_nn(group: (usize, usize)) -> Self {
        Self {
            scheme: PerforationScheme::Rows(SkipLevel::Half).into(),
            reconstruction: Reconstruction::NearestNeighbor,
            group,
        }
    }

    /// `Rows2:NN` — skip 3 of 4 rows, nearest-neighbor reconstruction.
    pub fn rows2_nn(group: (usize, usize)) -> Self {
        Self {
            scheme: PerforationScheme::Rows(SkipLevel::ThreeQuarters).into(),
            reconstruction: Reconstruction::NearestNeighbor,
            group,
        }
    }

    /// `Rows1:LI` — skip every other row, linear interpolation.
    pub fn rows1_li(group: (usize, usize)) -> Self {
        Self {
            scheme: PerforationScheme::Rows(SkipLevel::Half).into(),
            reconstruction: Reconstruction::LinearInterpolation,
            group,
        }
    }

    /// `Cols1:NN` — skip every other column, nearest-neighbor.
    pub fn cols1_nn(group: (usize, usize)) -> Self {
        Self {
            scheme: PerforationScheme::Columns(SkipLevel::Half).into(),
            reconstruction: Reconstruction::NearestNeighbor,
            group,
        }
    }

    /// `Stencil1:NN` — skip the halo ring, nearest-neighbor.
    pub fn stencil1_nn(group: (usize, usize)) -> Self {
        Self {
            scheme: PerforationScheme::Stencil.into(),
            reconstruction: Reconstruction::NearestNeighbor,
            group,
        }
    }

    /// Returns the configuration with its prefetch layout replaced.
    #[must_use]
    pub fn with_layout(mut self, layout: PrefetchLayout) -> Self {
        self.scheme = self.scheme.with_layout(layout);
        self
    }

    /// Compact label in the paper's notation, e.g. `"Rows1:NN"`, with the
    /// layout suffix appended for non-default layouts (`"Rows1:NN@burst"`).
    /// The accurate row-major configuration is labeled `"Accurate"`.
    pub fn label(&self) -> String {
        let base = if !self.scheme.perforates() {
            "Accurate".to_owned()
        } else {
            format!("{}:{}", self.scheme.select, self.reconstruction)
        };
        format!("{base}{}", self.scheme.layout.label_suffix())
    }

    /// The tile geometry induced by this configuration for a stencil of
    /// radius `halo`.
    pub fn tile(&self, halo: usize) -> TileGeometry {
        TileGeometry::new(self.group.0, self.group.1, halo)
    }

    /// Validates the configuration for an application with the given
    /// stencil radius.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllegalConfig`] for scheme/tile mismatches
    /// (see [`PerforationScheme::validate`]) or scheme/reconstruction
    /// mismatches (see [`Reconstruction::validate`]), and for empty work
    /// groups.
    pub fn validate(&self, halo: usize) -> Result<(), CoreError> {
        if self.group.0 == 0 || self.group.1 == 0 {
            return Err(CoreError::IllegalConfig(format!(
                "work group must be non-empty, got {:?}",
                self.group
            )));
        }
        let tile = self.tile(halo);
        self.scheme.validate(&tile)?;
        if self.scheme.perforates() {
            self.reconstruction.validate(&self.scheme.select)?;
        }
        Ok(())
    }
}

impl std::fmt::Display for ApproxConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ {}x{}", self.label(), self.group.0, self.group.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(ApproxConfig::rows1_nn((16, 16)).label(), "Rows1:NN");
        assert_eq!(ApproxConfig::rows2_nn((16, 16)).label(), "Rows2:NN");
        assert_eq!(ApproxConfig::rows1_li((16, 16)).label(), "Rows1:LI");
        assert_eq!(ApproxConfig::stencil1_nn((16, 16)).label(), "Stencil1:NN");
        assert_eq!(ApproxConfig::cols1_nn((16, 16)).label(), "Cols1:NN");
        assert_eq!(ApproxConfig::accurate((16, 16)).label(), "Accurate");
    }

    #[test]
    fn layout_suffix_distinguishes_labels() {
        let rows = ApproxConfig::rows1_nn((16, 16));
        assert_eq!(rows.label(), "Rows1:NN");
        assert_eq!(
            rows.with_layout(PrefetchLayout::BurstTiled).label(),
            "Rows1:NN@burst"
        );
        assert_eq!(
            rows.with_layout(PrefetchLayout::SystolicShift).label(),
            "Rows1:NN@systolic"
        );
        assert_eq!(
            ApproxConfig::accurate((16, 16))
                .with_layout(PrefetchLayout::BurstTiled)
                .label(),
            "Accurate@burst"
        );
    }

    #[test]
    fn layout_validated_against_tile() {
        // Systolic shift needs a halo: rejected for a halo-0 app.
        let cfg = ApproxConfig::rows1_nn((16, 16)).with_layout(PrefetchLayout::SystolicShift);
        assert!(cfg.validate(0).is_err());
        assert!(cfg.validate(1).is_ok());
        // Burst tiling is geometry-agnostic.
        let cfg = ApproxConfig::rows1_nn((16, 16)).with_layout(PrefetchLayout::BurstTiled);
        assert!(cfg.validate(0).is_ok());
    }

    #[test]
    fn display_includes_group() {
        let c = ApproxConfig::rows1_nn((32, 8));
        assert_eq!(c.to_string(), "Rows1:NN @ 32x8");
    }

    #[test]
    fn stencil_invalid_without_halo() {
        assert!(ApproxConfig::stencil1_nn((16, 16)).validate(0).is_err());
        assert!(ApproxConfig::stencil1_nn((16, 16)).validate(1).is_ok());
    }

    #[test]
    fn li_invalid_with_stencil() {
        let cfg = ApproxConfig {
            scheme: PerforationScheme::Stencil.into(),
            reconstruction: Reconstruction::LinearInterpolation,
            group: (16, 16),
        };
        assert!(cfg.validate(1).is_err());
    }

    #[test]
    fn empty_group_rejected() {
        let cfg = ApproxConfig::rows1_nn((0, 16));
        assert!(cfg.validate(1).is_err());
    }

    #[test]
    fn accurate_with_any_reconstruction_is_valid() {
        // Reconstruction is irrelevant when nothing is perforated.
        let cfg = ApproxConfig {
            scheme: PerforationScheme::None.into(),
            reconstruction: Reconstruction::LinearInterpolation,
            group: (8, 8),
        };
        assert!(cfg.validate(0).is_ok());
    }

    #[test]
    fn tile_uses_group_and_halo() {
        let t = ApproxConfig::rows1_nn((32, 8)).tile(2);
        assert_eq!((t.tile_w, t.tile_h, t.halo), (32, 8, 2));
    }
}
