//! Paraprox-style output approximation (the paper's comparison baseline,
//! §4.3, Fig. 3).
//!
//! Paraprox approximates the *output*: it computes a subset of output
//! elements and copies each computed value to its skipped neighbors. The
//! generated kernels do not use local memory — the paper's §5 explains why
//! that caps their benefit when a good baseline already prefetches: the
//! computed elements still need every input element, so global traffic
//! barely drops, only compute does.
//!
//! Schemes (Fig. 3): **Rows** computes one row per band and copies it up and
//! down; **Cols** mirrors that horizontally; **Center** computes the center
//! of a block and copies it to all neighbors. Level 1 approximates 2
//! rows/columns per band (3-wide bands), level 2 approximates 4 (5-wide
//! bands).

use kp_gpu_sim::{ItemCtx, Kernel, NdRange, NdRangeError};
use serde::{Deserialize, Serialize};

use crate::pipeline::{AppRef, ImageBinding, StencilApp};
use crate::tile::clamp_coord;

/// Aggressiveness of the output approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParaproxLevel {
    /// Approximate 2 rows/columns per computed one (3-wide bands) —
    /// the points labeled "1" in Fig. 10.
    One,
    /// Approximate 4 rows/columns per computed one (5-wide bands) —
    /// the points labeled "2" in Fig. 10.
    Two,
}

impl ParaproxLevel {
    /// Band width: computed element plus approximated neighbors per axis.
    pub fn band(self) -> usize {
        match self {
            ParaproxLevel::One => 3,
            ParaproxLevel::Two => 5,
        }
    }

    /// Offset of the computed element within its band.
    pub fn center(self) -> usize {
        self.band() / 2
    }

    /// Numeric level (1 or 2), as annotated in the paper's plots.
    pub fn number(self) -> u8 {
        match self {
            ParaproxLevel::One => 1,
            ParaproxLevel::Two => 2,
        }
    }
}

/// A Paraprox output-approximation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParaproxScheme {
    /// Compute one row per band, copy to the band's other rows (Fig. 3a).
    Rows(ParaproxLevel),
    /// Compute one column per band, copy sideways (Fig. 3b).
    Cols(ParaproxLevel),
    /// Compute the center of each band×band block, copy to the whole
    /// block (Fig. 3c) — the most aggressive scheme.
    Center(ParaproxLevel),
}

impl ParaproxScheme {
    /// Output elements produced per computed element.
    pub fn amplification(&self) -> usize {
        match self {
            ParaproxScheme::Rows(l) | ParaproxScheme::Cols(l) => l.band(),
            ParaproxScheme::Center(l) => l.band() * l.band(),
        }
    }

    /// Step sizes `(x, y)` between computed elements.
    pub fn steps(&self) -> (usize, usize) {
        match self {
            ParaproxScheme::Rows(l) => (1, l.band()),
            ParaproxScheme::Cols(l) => (l.band(), 1),
            ParaproxScheme::Center(l) => (l.band(), l.band()),
        }
    }

    /// The reduced launch geometry covering a `width × height` image with
    /// work groups of `group` (global sizes are padded up to group
    /// multiples; the kernel guards the remainder).
    ///
    /// # Errors
    ///
    /// Propagates [`NdRangeError`] for empty group dimensions.
    pub fn launch_range(
        &self,
        width: usize,
        height: usize,
        group: (usize, usize),
    ) -> Result<NdRange, NdRangeError> {
        let (sx, sy) = self.steps();
        let nx = width.div_ceil(sx);
        let ny = height.div_ceil(sy);
        let gx = nx.div_ceil(group.0) * group.0;
        let gy = ny.div_ceil(group.1) * group.1;
        NdRange::new_2d((gx, gy), group)
    }
}

impl std::fmt::Display for ParaproxScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParaproxScheme::Rows(l) => write!(f, "PxRows{}", l.number()),
            ParaproxScheme::Cols(l) => write!(f, "PxCols{}", l.number()),
            ParaproxScheme::Center(l) => write!(f, "PxCenter{}", l.number()),
        }
    }
}

/// Output-approximation kernel: each work item computes one element and
/// broadcasts it to its band.
pub struct ParaproxKernel {
    app: AppRef,
    img: ImageBinding,
    scheme: ParaproxScheme,
}

impl std::fmt::Debug for ParaproxKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParaproxKernel")
            .field("app", &self.app.name())
            .field("img", &self.img)
            .field("scheme", &self.scheme)
            .finish()
    }
}

impl ParaproxKernel {
    /// Wraps `app` with the given output-approximation scheme.
    pub fn new(app: AppRef, img: ImageBinding, scheme: ParaproxScheme) -> Self {
        Self { app, img, scheme }
    }

    /// The scheme this kernel applies.
    pub fn scheme(&self) -> ParaproxScheme {
        self.scheme
    }
}

impl Kernel for ParaproxKernel {
    fn name(&self) -> &str {
        self.app.name()
    }

    fn buffer_usage(&self) -> Option<kp_gpu_sim::BufferUse> {
        Some(self.img.buffer_usage())
    }

    fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
        let (sx, sy) = self.scheme.steps();
        let base_x = ctx.global_id(0) * sx;
        let base_y = ctx.global_id(1) * sy;
        let (w, h) = (self.img.width, self.img.height);
        if base_x >= w || base_y >= h {
            return;
        }
        // Compute at the band center, clamped into the image for the
        // remainder bands at the bottom/right edges.
        let (cx_off, cy_off) = match self.scheme {
            ParaproxScheme::Rows(l) => (0, l.center()),
            ParaproxScheme::Cols(l) => (l.center(), 0),
            ParaproxScheme::Center(l) => (l.center(), l.center()),
        };
        let cx = clamp_coord((base_x + cx_off) as i64, w);
        let cy = clamp_coord((base_y + cy_off) as i64, h);
        let v = compute_at(self.app, ctx, &self.img, cx, cy);
        // Broadcast to the whole band (clamped to the image).
        for dy in 0..sy {
            for dx in 0..sx {
                let x = base_x + dx;
                let y = base_y + dy;
                if x < w && y < h {
                    ctx.write_global(self.img.output, y * w + x, v);
                    ctx.ops(1);
                }
            }
        }
    }
}

/// Runs the app's compute body once at `(cx, cy)` against global memory.
fn compute_at<A: StencilApp + ?Sized>(
    app: &A,
    ctx: &mut ItemCtx<'_>,
    img: &ImageBinding,
    cx: usize,
    cy: usize,
) -> f32 {
    crate::pipeline::compute_with_global_window(app, ctx, img, cx, cy)
}

/// All six Paraprox comparison points of Fig. 10.
pub fn fig10_schemes() -> Vec<ParaproxScheme> {
    vec![
        ParaproxScheme::Center(ParaproxLevel::One),
        ParaproxScheme::Center(ParaproxLevel::Two),
        ParaproxScheme::Rows(ParaproxLevel::One),
        ParaproxScheme::Rows(ParaproxLevel::Two),
        ParaproxScheme::Cols(ParaproxLevel::One),
        ParaproxScheme::Cols(ParaproxLevel::Two),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Window;
    use kp_gpu_sim::{Device, DeviceConfig};

    struct Identity;

    impl StencilApp for Identity {
        fn name(&self) -> &str {
            "identity"
        }

        fn halo(&self) -> usize {
            0
        }

        fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
            win.ops(1);
            win.at(0, 0)
        }
    }

    fn run(scheme: ParaproxScheme, data: &[f32], w: usize, h: usize) -> Vec<f32> {
        let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
        let input = dev.create_buffer_from("in", data).unwrap();
        let output = dev.create_buffer::<f32>("out", w * h).unwrap();
        let img = ImageBinding {
            input,
            aux: None,
            tiled: None,
            output,
            width: w,
            height: h,
        };
        let kernel = ParaproxKernel::new(&Identity, img, scheme);
        let range = scheme.launch_range(w, h, (8, 8)).unwrap();
        dev.launch(&kernel, range).unwrap();
        dev.read_buffer::<f32>(output).unwrap()
    }

    #[test]
    fn levels_and_bands() {
        assert_eq!(ParaproxLevel::One.band(), 3);
        assert_eq!(ParaproxLevel::Two.band(), 5);
        assert_eq!(ParaproxLevel::One.center(), 1);
        assert_eq!(ParaproxLevel::Two.center(), 2);
        assert_eq!(ParaproxScheme::Rows(ParaproxLevel::One).amplification(), 3);
        assert_eq!(
            ParaproxScheme::Center(ParaproxLevel::Two).amplification(),
            25
        );
    }

    #[test]
    fn rows_scheme_copies_band_center() {
        let (w, h) = (8, 9);
        let data: Vec<f32> = (0..w * h).map(|i| (i / w) as f32).collect();
        let out = run(ParaproxScheme::Rows(ParaproxLevel::One), &data, w, h);
        // Every band of 3 rows carries the center row's value.
        for y in 0..h {
            let band_center = (y / 3) * 3 + 1;
            for x in 0..w {
                assert_eq!(out[y * w + x], band_center as f32, "y={y} x={x}");
            }
        }
    }

    #[test]
    fn cols_scheme_copies_band_center() {
        let (w, h) = (9, 4);
        let data: Vec<f32> = (0..w * h).map(|i| (i % w) as f32).collect();
        let out = run(ParaproxScheme::Cols(ParaproxLevel::One), &data, w, h);
        for y in 0..h {
            for x in 0..w {
                let band_center = (x / 3) * 3 + 1;
                assert_eq!(out[y * w + x], band_center as f32);
            }
        }
    }

    #[test]
    fn center_scheme_fills_blocks() {
        let (w, h) = (6, 6);
        let data: Vec<f32> = (0..w * h).map(|i| i as f32).collect();
        let out = run(ParaproxScheme::Center(ParaproxLevel::One), &data, w, h);
        for y in 0..h {
            for x in 0..w {
                let cx = (x / 3) * 3 + 1;
                let cy = (y / 3) * 3 + 1;
                assert_eq!(out[y * w + x], (cy * w + cx) as f32);
            }
        }
    }

    #[test]
    fn remainder_bands_are_covered() {
        // Height not a multiple of the band: the last partial band must
        // still be written, computed from a clamped center.
        let (w, h) = (4, 7);
        let data: Vec<f32> = (0..w * h).map(|i| (i / w) as f32).collect();
        let out = run(ParaproxScheme::Rows(ParaproxLevel::One), &data, w, h);
        for x in 0..w {
            assert_eq!(out[6 * w + x], 6.0); // band 2 center row clamped to 6? center=7 -> clamp 6
        }
        assert!(out.iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn level_two_bands_are_five_wide() {
        let (w, h) = (4, 10);
        let data: Vec<f32> = (0..w * h).map(|i| (i / w) as f32).collect();
        let out = run(ParaproxScheme::Rows(ParaproxLevel::Two), &data, w, h);
        for y in 0..5 {
            assert_eq!(out[y * w], 2.0);
        }
        for y in 5..10 {
            assert_eq!(out[y * w], 7.0);
        }
    }

    #[test]
    fn launch_range_reduces_thread_count() {
        let s = ParaproxScheme::Rows(ParaproxLevel::One);
        let r = s.launch_range(1024, 1024, (16, 16)).unwrap();
        assert_eq!(r.global_size(0), 1024);
        // ceil(1024/3) = 342 padded up to 352 (next multiple of 16).
        assert_eq!(r.global_size(1), 352);
    }

    #[test]
    fn display_labels() {
        assert_eq!(
            ParaproxScheme::Rows(ParaproxLevel::One).to_string(),
            "PxRows1"
        );
        assert_eq!(
            ParaproxScheme::Center(ParaproxLevel::Two).to_string(),
            "PxCenter2"
        );
        assert_eq!(fig10_schemes().len(), 6);
    }
}
