//! Parameter sweeps: schemes × reconstructions × work-group sizes
//! (paper §6.3, Figs. 8 and 9).
//!
//! A sweep runs a list of kernel variants against one input, measures each
//! variant's simulated runtime and output error (against the accurate
//! output), and reports speedups relative to a chosen baseline variant.
//!
//! All candidate variants of a sweep are submitted as **one batched
//! command stream** on one device ([`crate::run_specs_batched`]): every
//! candidate's launch + read-back is enqueued up front, the queue
//! scheduler overlaps independent candidates across worker threads
//! (they share the read-only input buffer and write disjoint outputs, so
//! the inferred hazard DAG has no edges between them), and events are
//! reaped in spec order. Functional results are deterministic — the
//! command stream is bit-identical to in-order execution — so concurrency
//! cannot change any number. [`kp_gpu_sim::DeviceConfig::parallelism`]
//! (default: all cores) is the concurrency budget.
//!
//! When the device model asks for a fleet
//! ([`kp_gpu_sim::DeviceConfig::devices`] > 1, or the `KP_SIM_DEVICES`
//! environment variable), candidates are instead routed through a
//! [`DeviceGroup`]: each spec goes to the least-loaded member (a
//! deterministic round-robin over idle, identically configured devices)
//! and the members run their batches concurrently. Every member sees the
//! same config, so simulated seconds, errors and reports are identical to
//! the single-device sweep — only host wall-clock changes.
//!
//! The context's [`DeviceConfig`] also threads [`kp_gpu_sim::ExecMode`] —
//! compiled bytecode vs. tree-walking reference for IR-backed kernels —
//! through the whole sweep unchanged; the two modes are bit-identical by
//! contract, so switching it can only change sweep wall-clock time, never
//! a result.

use kp_gpu_sim::{resolve_devices, Device, DeviceConfig, DeviceGroup};
use serde::{Deserialize, Serialize};

use crate::config::ApproxConfig;
use crate::error::CoreError;
use crate::metrics::ErrorMetric;
use crate::pareto::{pareto_front, TradeOff};
use crate::pipeline::WorkloadRef;
use crate::runner::{run_app, run_specs_batched, ImageInput, RunSpec};
use crate::scheme::PrefetchLayout;

/// Everything a sweep needs besides the variant list.
pub struct SweepContext<'a> {
    /// The workload under test.
    pub app: WorkloadRef,
    /// The input image.
    pub input: ImageInput<'a>,
    /// Error metric (per paper Table 1).
    pub metric: ErrorMetric,
    /// Device model.
    pub device: DeviceConfig,
    /// The variant speedups are measured against (usually
    /// `RunSpec::Baseline`).
    pub baseline: RunSpec,
}

impl std::fmt::Debug for SweepContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepContext")
            .field("app", &self.app.name())
            .field("metric", &self.metric)
            .field("baseline", &self.baseline.label())
            .finish_non_exhaustive()
    }
}

/// Result of evaluating one variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// Label of the variant (`"Rows1:NN"`, `"PxCols2"`, …).
    pub label: String,
    /// Work-group size used.
    pub group: (usize, usize),
    /// Simulated runtime in seconds.
    pub seconds: f64,
    /// Speedup over the context's baseline variant.
    pub speedup: f64,
    /// Output error vs. the accurate result, in the context's metric.
    pub error: f64,
    /// Global read transactions (per launch) — the mechanism behind the
    /// speedup, useful in reports.
    pub read_transactions: u64,
}

impl SweepOutcome {
    /// The (speedup, error) trade-off point of this outcome.
    pub fn trade_off(&self) -> TradeOff {
        TradeOff::new(self.speedup, self.error)
    }
}

/// Runs `specs` against the context and returns one outcome per spec, in
/// order. All candidates go through one batched command stream (see the
/// module docs); the accurate reference and the baseline timing run first
/// on their own devices so candidate overlap cannot even share a queue
/// with them.
///
/// # Errors
///
/// Propagates the first error any variant encounters.
pub fn sweep(ctx: &SweepContext<'_>, specs: &[RunSpec]) -> Result<Vec<SweepOutcome>, CoreError> {
    // Reference output for the error metric: the accurate result (identical
    // for the global and local accurate kernels — asserted by tests).
    let mut dev = Device::new(ctx.device.clone())?;
    dev.set_profiling(false);
    let reference = run_app(
        &mut dev,
        ctx.app,
        &ctx.input,
        &RunSpec::AccurateGlobal {
            group: ctx.baseline.group(),
        },
    )?
    .output;

    // Baseline timing.
    let mut dev = Device::new(ctx.device.clone())?;
    let baseline_seconds = run_app(&mut dev, ctx.app, &ctx.input, &ctx.baseline)?
        .report
        .seconds;

    // Candidates: one queue, all launches enqueued before the first event
    // is reaped, overlap decided by the hazard DAG (none between
    // candidates) and the device's parallelism budget. With a multi-device
    // config the batch is split across a DeviceGroup's members instead.
    let runs = match resolve_devices(ctx.device.devices) {
        0 | 1 => {
            let mut dev = Device::new(ctx.device.clone())?;
            run_specs_batched(&mut dev, ctx.app, &ctx.input, specs)?
        }
        n => run_specs_grouped(ctx, specs, n)?,
    };
    Ok(specs
        .iter()
        .zip(runs)
        .map(|(spec, run)| {
            let error = ctx.metric.evaluate(&reference, &run.output);
            let seconds = run.report.seconds;
            SweepOutcome {
                label: spec.label(),
                group: spec.group(),
                seconds,
                speedup: baseline_seconds / seconds,
                error,
                read_transactions: run.report.stats.global_read_transactions,
            }
        })
        .collect())
}

/// Runs the candidate batch on an `n`-member [`DeviceGroup`]: each spec is
/// placed on the least-loaded member (round-robin, since members start
/// idle and every spec counts as one unit of load), each member runs its
/// shard as one batched command stream, and results are stitched back in
/// spec order. Members are identically configured, so every per-spec
/// number is bit-identical to the single-device batch.
fn run_specs_grouped(
    ctx: &SweepContext<'_>,
    specs: &[RunSpec],
    n: usize,
) -> Result<Vec<crate::runner::RunResult>, CoreError> {
    let mut group = DeviceGroup::with_devices(ctx.device.clone(), n)?;
    // Placement first (it needs &mut group), then the member split.
    let mut shards: Vec<Vec<(usize, RunSpec)>> = vec![Vec::new(); group.device_count()];
    for (i, &spec) in specs.iter().enumerate() {
        shards[group.place()].push((i, spec));
    }
    let shard_runs: Vec<Result<_, CoreError>> = std::thread::scope(|s| {
        let handles: Vec<_> = group
            .members_mut()
            .iter_mut()
            .zip(&shards)
            .map(|(dev, shard)| {
                s.spawn(move || {
                    let mine: Vec<RunSpec> = shard.iter().map(|&(_, spec)| spec).collect();
                    run_specs_batched(dev, ctx.app, &ctx.input, &mine)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep shard thread panicked"))
            .collect()
    });
    let mut runs = vec![None; specs.len()];
    for (shard, result) in shards.iter().zip(shard_runs) {
        for (&(i, _), run) in shard.iter().zip(result?) {
            runs[i] = Some(run);
        }
    }
    Ok(runs
        .into_iter()
        .map(|r| r.expect("every spec was placed on exactly one member"))
        .collect())
}

/// Returns the indices of the Pareto-optimal outcomes (by speedup/error).
pub fn pareto_outcomes(outcomes: &[SweepOutcome]) -> Vec<usize> {
    let points: Vec<TradeOff> = outcomes.iter().map(SweepOutcome::trade_off).collect();
    pareto_front(&points)
}

/// The four perforated configurations compared in Fig. 8
/// (`Rows1:NN`, `Rows2:NN`, `Rows1:LI`, `Stencil1:NN`), at a given
/// work-group size. The stencil configuration is omitted when the app has
/// no halo (paper: "Stencil1 cannot be used as the application has a filter
/// kernel size of 1×1").
pub fn fig8_specs(group: (usize, usize), halo: usize) -> Vec<RunSpec> {
    let mut specs = vec![
        RunSpec::Perforated(ApproxConfig::rows1_nn(group)),
        RunSpec::Perforated(ApproxConfig::rows2_nn(group)),
        RunSpec::Perforated(ApproxConfig::rows1_li(group)),
    ];
    if halo > 0 {
        specs.push(RunSpec::Perforated(ApproxConfig::stencil1_nn(group)));
    }
    specs
}

/// Layout-axis candidate family: the Fig. 8 selection × reconstruction
/// configurations crossed with every prefetch layout valid for the given
/// stencil radius and tile shape. Labels carry the layout suffix, so no
/// two candidates alias ([`crate::PrefetchLayout::label_suffix`]).
pub fn layout_specs(group: (usize, usize), halo: usize) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for base in fig8_specs(group, halo) {
        let RunSpec::Perforated(cfg) = base else {
            continue;
        };
        specs.push(RunSpec::Perforated(cfg));
        specs.push(RunSpec::Perforated(
            cfg.with_layout(PrefetchLayout::BurstTiled),
        ));
        if (1..=group.1).contains(&halo) {
            specs.push(RunSpec::Perforated(
                cfg.with_layout(PrefetchLayout::SystolicShift),
            ));
        }
    }
    specs
}

/// The ten work-group shapes swept in Fig. 9, from tall-skinny `(2,128)`
/// to wide-flat `(128,2)`.
pub fn fig9_shapes() -> Vec<(usize, usize)> {
    vec![
        (2, 128),
        (4, 64),
        (8, 8),
        (8, 16),
        (8, 32),
        (16, 8),
        (16, 16),
        (32, 8),
        (64, 4),
        (128, 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{StencilApp, Window};

    struct Blur;

    impl StencilApp for Blur {
        fn name(&self) -> &str {
            "blur"
        }

        fn halo(&self) -> usize {
            1
        }

        fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
            let mut acc = 0.0;
            for dy in -1..=1 {
                for dx in -1..=1 {
                    acc += win.at(dx, dy);
                }
            }
            win.ops(9);
            acc / 9.0
        }
    }

    fn noisy_image(w: usize, h: usize) -> Vec<f32> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                0.5 + 0.3 * ((x as f32 * 0.7).sin() * (y as f32 * 0.3).cos())
            })
            .collect()
    }

    fn context<'a>(data: &'a [f32], w: usize, h: usize) -> SweepContext<'a> {
        SweepContext {
            app: &Blur,
            input: ImageInput::new(data, w, h).unwrap(),
            metric: ErrorMetric::MeanRelative,
            device: DeviceConfig::firepro_w5100(),
            baseline: RunSpec::Baseline { group: (16, 16) },
        }
    }

    #[test]
    fn sweep_orders_and_measures() {
        let (w, h) = (64, 64);
        let data = noisy_image(w, h);
        let ctx = context(&data, w, h);
        let specs = fig8_specs((16, 16), 1);
        let outcomes = sweep(&ctx, &specs).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0].label, "Rows1:NN");
        assert_eq!(outcomes[3].label, "Stencil1:NN");
        for o in &outcomes {
            assert!(o.seconds > 0.0);
            assert!(o.error.is_finite());
            assert!(o.speedup > 1.0, "{} not faster than baseline", o.label);
        }
        // Error ordering from the paper: LI < NN, Rows1 < Rows2,
        // Stencil ~ smallest.
        let get = |label: &str| outcomes.iter().find(|o| o.label == label).unwrap();
        assert!(get("Rows1:LI").error <= get("Rows1:NN").error);
        assert!(get("Rows1:NN").error <= get("Rows2:NN").error);
        assert!(get("Stencil1:NN").error <= get("Rows1:NN").error);
    }

    #[test]
    fn sweep_is_deterministic_despite_parallelism() {
        let (w, h) = (48, 48);
        let data = noisy_image(w, h);
        let ctx = context(&data, w, h);
        let specs = fig8_specs((16, 16), 1);
        let a = sweep(&ctx, &specs).unwrap();
        let b = sweep(&ctx, &specs).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.seconds, y.seconds);
            assert_eq!(x.error, y.error);
        }
    }

    #[test]
    fn sweep_through_device_group_matches_single_device() {
        let (w, h) = (48, 48);
        let data = noisy_image(w, h);
        let single = context(&data, w, h);
        let specs = fig8_specs((16, 16), 1);
        let a = sweep(&single, &specs).unwrap();
        for n in [2, 3] {
            let mut fleet = context(&data, w, h);
            fleet.device.devices = n;
            let b = sweep(&fleet, &specs).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.label, y.label, "{n} devices");
                assert_eq!(x.seconds, y.seconds, "{n} devices: {}", x.label);
                assert_eq!(x.error, y.error, "{n} devices: {}", x.label);
                assert_eq!(x.read_transactions, y.read_transactions);
            }
        }
    }

    #[test]
    fn fig8_specs_drop_stencil_without_halo() {
        assert_eq!(fig8_specs((16, 16), 0).len(), 3);
        assert_eq!(fig8_specs((16, 16), 1).len(), 4);
    }

    #[test]
    fn fig9_shapes_are_the_papers_ten() {
        let shapes = fig9_shapes();
        assert_eq!(shapes.len(), 10);
        assert!(shapes.contains(&(2, 128)));
        assert!(shapes.contains(&(128, 2)));
        // All hold 256 work items except the 8x8 and 8x16 entries.
        for &(x, y) in &shapes {
            assert!(x * y <= 256);
        }
    }

    #[test]
    fn pareto_outcomes_filters_dominated() {
        let mk = |label: &str, speedup: f64, error: f64| SweepOutcome {
            label: label.into(),
            group: (16, 16),
            seconds: 1.0 / speedup,
            speedup,
            error,
            read_transactions: 0,
        };
        let outcomes = vec![
            mk("good", 2.0, 0.01),
            mk("dominated", 1.5, 0.05),
            mk("accurate", 1.0, 0.0),
        ];
        let front = pareto_outcomes(&outcomes);
        assert_eq!(front, vec![2, 0]);
    }
}
