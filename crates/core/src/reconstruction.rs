//! Local-memory data reconstruction (paper §5).
//!
//! After the perforated load, the skipped tile elements hold no data. The
//! reconstruction phase fills them *in local memory* from the sparse set of
//! loaded neighbors. The paper compares two techniques:
//!
//! * **nearest-neighbor** — copy the closest loaded value, and
//! * **linear interpolation** — distance-weighted blend of the loaded
//!   values on both sides; where only one side exists (tile borders,
//!   stencil halos) it falls back to nearest-neighbor.
//!
//! Reconstruction is a pure function of the tile contents, expressed over a
//! `read(px, py)` callback so it can run both inside the simulator (backed
//! by local memory, costing local accesses) and in host tests (backed by a
//! plain array).

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::scheme::PerforationScheme;
use crate::tile::TileGeometry;

/// The reconstruction technique applied after the perforated load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reconstruction {
    /// Leave skipped elements as zero. This reproduces the "black lines"
    /// of the paper's Fig. 2b and exists for demonstration and ablation;
    /// real configurations use one of the other techniques.
    None,
    /// Copy the nearest loaded value (`NN`).
    NearestNeighbor,
    /// Distance-weighted linear interpolation between the nearest loaded
    /// values on both sides (`LI`); nearest-neighbor at borders.
    LinearInterpolation,
}

impl Reconstruction {
    /// Validates the combination of scheme and reconstruction.
    ///
    /// # Errors
    ///
    /// Linear interpolation needs loaded elements on *both* sides of every
    /// skipped element, which only row/column schemes guarantee; `LI` with
    /// `Stencil` or `Random` is rejected (the paper runs `Stencil1:NN`
    /// only, §6.3).
    pub fn validate(&self, scheme: &PerforationScheme) -> Result<(), CoreError> {
        match (self, scheme) {
            (
                Reconstruction::LinearInterpolation,
                PerforationScheme::Stencil | PerforationScheme::Random { .. },
            ) => Err(CoreError::IllegalConfig(format!(
                "linear interpolation is undefined for the {scheme} scheme; use NN"
            ))),
            _ => Ok(()),
        }
    }
}

impl std::fmt::Display for Reconstruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reconstruction::None => write!(f, "Raw"),
            Reconstruction::NearestNeighbor => write!(f, "NN"),
            Reconstruction::LinearInterpolation => write!(f, "LI"),
        }
    }
}

/// Search limit for the random scheme's nearest-neighbor ring search.
const RANDOM_SEARCH_RADIUS: i64 = 4;

/// Reconstructs the value of the skipped element at padded coordinate
/// `(px, py)` of the tile owned by work group `group`.
///
/// `read` returns the tile value at a padded coordinate (loaded elements
/// only are meaningful); `ops` receives the ALU operation count charged to
/// the reconstructing work item.
///
/// Returns `0.0` if no loaded neighbor exists within reach (cannot happen
/// for validated scheme/tile combinations).
#[allow(clippy::too_many_arguments)] // mirrors the kernel-side call shape
pub fn reconstruct_element(
    scheme: &PerforationScheme,
    recon: Reconstruction,
    tile: &TileGeometry,
    group: (usize, usize),
    px: usize,
    py: usize,
    read: &mut dyn FnMut(usize, usize) -> f32,
    ops: &mut dyn FnMut(u64),
) -> f32 {
    match recon {
        Reconstruction::None => 0.0,
        Reconstruction::NearestNeighbor => nearest_neighbor(scheme, tile, group, px, py, read, ops),
        Reconstruction::LinearInterpolation => {
            linear_interpolation(scheme, tile, group, px, py, read, ops)
        }
    }
}

fn is_loaded(
    scheme: &PerforationScheme,
    tile: &TileGeometry,
    group: (usize, usize),
    px: usize,
    py: usize,
) -> bool {
    let (gx, gy) = tile.global_of(group, px, py);
    scheme.loads(crate::scheme::LoadQuery {
        tile,
        padded: (px, py),
        global: (gx, gy),
    })
}

/// Finds the nearest loaded row above/below `(px, py)` (for row schemes) in
/// the tile. Returns `(coord, distance)`.
fn nearest_loaded_axis(
    scheme: &PerforationScheme,
    tile: &TileGeometry,
    group: (usize, usize),
    px: usize,
    py: usize,
    vertical: bool,
    direction: i64,
) -> Option<(usize, usize)> {
    let limit = if vertical {
        tile.padded_h()
    } else {
        tile.padded_w()
    };
    let start = if vertical { py as i64 } else { px as i64 };
    let mut pos = start + direction;
    while (0..limit as i64).contains(&pos) {
        let (cx, cy) = if vertical {
            (px, pos as usize)
        } else {
            (pos as usize, py)
        };
        if is_loaded(scheme, tile, group, cx, cy) {
            return Some((pos as usize, pos.abs_diff(start) as usize));
        }
        pos += direction;
    }
    None
}

fn nearest_neighbor(
    scheme: &PerforationScheme,
    tile: &TileGeometry,
    group: (usize, usize),
    px: usize,
    py: usize,
    read: &mut dyn FnMut(usize, usize) -> f32,
    ops: &mut dyn FnMut(u64),
) -> f32 {
    match scheme {
        PerforationScheme::None => read(px, py),
        PerforationScheme::Rows(_) => {
            let up = nearest_loaded_axis(scheme, tile, group, px, py, true, -1);
            let down = nearest_loaded_axis(scheme, tile, group, px, py, true, 1);
            ops(2);
            match (up, down) {
                (Some((u, du)), Some((d, dd))) => {
                    // Tie-break upward: deterministic and matches the
                    // "copy from the row above" convention.
                    if du <= dd {
                        read(px, u)
                    } else {
                        read(px, d)
                    }
                }
                (Some((u, _)), None) => read(px, u),
                (None, Some((d, _))) => read(px, d),
                (None, None) => 0.0,
            }
        }
        PerforationScheme::Columns(_) => {
            let left = nearest_loaded_axis(scheme, tile, group, px, py, false, -1);
            let right = nearest_loaded_axis(scheme, tile, group, px, py, false, 1);
            ops(2);
            match (left, right) {
                (Some((l, dl)), Some((r, dr))) => {
                    if dl <= dr {
                        read(l, py)
                    } else {
                        read(r, py)
                    }
                }
                (Some((l, _)), None) => read(l, py),
                (None, Some((r, _))) => read(r, py),
                (None, None) => 0.0,
            }
        }
        PerforationScheme::Stencil => {
            // Halo elements copy the nearest interior element (clamp into
            // the interior rectangle).
            let cx = px.clamp(tile.halo, tile.halo + tile.tile_w - 1);
            let cy = py.clamp(tile.halo, tile.halo + tile.tile_h - 1);
            ops(2);
            read(cx, cy)
        }
        PerforationScheme::Random { .. } => {
            // Ring search outward in Chebyshev distance; deterministic
            // scan order within each ring.
            for r in 1..=RANDOM_SEARCH_RADIUS {
                for dy in -r..=r {
                    for dx in -r..=r {
                        if dx.abs().max(dy.abs()) != r {
                            continue;
                        }
                        let nx = px as i64 + dx;
                        let ny = py as i64 + dy;
                        if nx < 0
                            || ny < 0
                            || nx >= tile.padded_w() as i64
                            || ny >= tile.padded_h() as i64
                        {
                            continue;
                        }
                        ops(1);
                        if is_loaded(scheme, tile, group, nx as usize, ny as usize) {
                            return read(nx as usize, ny as usize);
                        }
                    }
                }
            }
            0.0
        }
    }
}

fn linear_interpolation(
    scheme: &PerforationScheme,
    tile: &TileGeometry,
    group: (usize, usize),
    px: usize,
    py: usize,
    read: &mut dyn FnMut(usize, usize) -> f32,
    ops: &mut dyn FnMut(u64),
) -> f32 {
    let axis = match scheme {
        PerforationScheme::Rows(_) => true,
        PerforationScheme::Columns(_) => false,
        // LI is undefined for the other schemes (validate() rejects them);
        // fall back to NN so the function still totals.
        _ => return nearest_neighbor(scheme, tile, group, px, py, read, ops),
    };
    let before = nearest_loaded_axis(scheme, tile, group, px, py, axis, -1);
    let after = nearest_loaded_axis(scheme, tile, group, px, py, axis, 1);
    match (before, after) {
        (Some((b, db)), Some((a, da))) => {
            let (vb, va) = if axis {
                (read(px, b), read(px, a))
            } else {
                (read(b, py), read(a, py))
            };
            ops(4);
            // Weight each side by the distance to the *other* side.
            let total = (db + da) as f32;
            (vb * da as f32 + va * db as f32) / total
        }
        (Some((b, _)), None) => {
            ops(2);
            if axis {
                read(px, b)
            } else {
                read(b, py)
            }
        }
        (None, Some((a, _))) => {
            ops(2);
            if axis {
                read(px, a)
            } else {
                read(a, py)
            }
        }
        (None, None) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SkipLevel;

    /// Builds a tile array where loaded elements carry `f(gx, gy)` and
    /// skipped elements are poisoned, then reconstructs every skipped
    /// element.
    fn run_reconstruction(
        tile: &TileGeometry,
        scheme: &PerforationScheme,
        recon: Reconstruction,
        f: impl Fn(i64, i64) -> f32,
    ) -> Vec<f32> {
        let group = (0, 0);
        let mut data = vec![f32::NAN; tile.padded_len()];
        for py in 0..tile.padded_h() {
            for px in 0..tile.padded_w() {
                let (gx, gy) = tile.global_of(group, px, py);
                if scheme.loads(crate::scheme::LoadQuery {
                    tile,
                    padded: (px, py),
                    global: (gx, gy),
                }) {
                    data[tile.index(px, py)] = f(gx, gy);
                }
            }
        }
        let snapshot = data.clone();
        let mut op_count = 0u64;
        for py in 0..tile.padded_h() {
            for px in 0..tile.padded_w() {
                let (gx, gy) = tile.global_of(group, px, py);
                if !scheme.loads(crate::scheme::LoadQuery {
                    tile,
                    padded: (px, py),
                    global: (gx, gy),
                }) {
                    let mut read = |x: usize, y: usize| snapshot[tile.index(x, y)];
                    let mut ops = |n: u64| op_count += n;
                    data[tile.index(px, py)] = reconstruct_element(
                        scheme, recon, tile, group, px, py, &mut read, &mut ops,
                    );
                }
            }
        }
        assert!(op_count > 0 || !scheme.perforates() || recon == Reconstruction::None);
        data
    }

    #[test]
    fn nn_rows_copies_adjacent_row() {
        let tile = TileGeometry::new(8, 8, 1);
        let scheme = PerforationScheme::Rows(SkipLevel::Half);
        let data = run_reconstruction(&tile, &scheme, Reconstruction::NearestNeighbor, |_, gy| {
            gy as f32
        });
        for py in 0..tile.padded_h() {
            for px in 0..tile.padded_w() {
                let v = data[tile.index(px, py)];
                let (_, gy) = tile.global_of((0, 0), px, py);
                assert!(!v.is_nan());
                // NN from distance 1: value differs from true row index by at most 1.
                assert!((v - gy as f32).abs() <= 1.0, "py={py} v={v} gy={gy}");
            }
        }
    }

    #[test]
    fn li_rows_exact_on_linear_ramp() {
        // A vertically linear signal is reconstructed *exactly* by LI
        // whenever both neighbors exist.
        let tile = TileGeometry::new(8, 8, 1);
        let scheme = PerforationScheme::Rows(SkipLevel::Half);
        let data = run_reconstruction(
            &tile,
            &scheme,
            Reconstruction::LinearInterpolation,
            |_, gy| 3.0 * gy as f32 + 1.0,
        );
        for py in 1..tile.padded_h() - 1 {
            for px in 0..tile.padded_w() {
                let (_, gy) = tile.global_of((0, 0), px, py);
                let expect = 3.0 * gy as f32 + 1.0;
                let got = data[tile.index(px, py)];
                assert!(
                    (got - expect).abs() < 1e-4,
                    "py={py} got={got} expect={expect}"
                );
            }
        }
    }

    #[test]
    fn li_rows2_exact_on_linear_ramp_interior() {
        let tile = TileGeometry::new(8, 8, 2);
        let scheme = PerforationScheme::Rows(SkipLevel::ThreeQuarters);
        let data = run_reconstruction(
            &tile,
            &scheme,
            Reconstruction::LinearInterpolation,
            |_, gy| -2.0 * gy as f32,
        );
        // Rows loaded at gy % 4 == 0; interior skipped rows have both
        // neighbors inside the tile whenever a loaded row exists on both
        // sides.
        for py in 0..tile.padded_h() {
            let (_, gy) = tile.global_of((0, 0), 0, py);
            let has_above = (0..py).any(|y| {
                let (_, g) = tile.global_of((0, 0), 0, y);
                g.rem_euclid(4) == 0
            });
            let has_below = (py + 1..tile.padded_h()).any(|y| {
                let (_, g) = tile.global_of((0, 0), 0, y);
                g.rem_euclid(4) == 0
            });
            if gy.rem_euclid(4) != 0 && has_above && has_below {
                let got = data[tile.index(3, py)];
                let expect = -2.0 * gy as f32;
                assert!(
                    (got - expect).abs() < 1e-4,
                    "py={py} got={got} expect={expect}"
                );
            }
        }
    }

    #[test]
    fn nn_columns_copies_adjacent_column() {
        let tile = TileGeometry::new(8, 8, 1);
        let scheme = PerforationScheme::Columns(SkipLevel::Half);
        let data = run_reconstruction(&tile, &scheme, Reconstruction::NearestNeighbor, |gx, _| {
            gx as f32
        });
        for (idx, &v) in data.iter().enumerate().take(tile.padded_len()) {
            let (px, py) = tile.coords(idx);
            let (gx, _) = tile.global_of((0, 0), px, py);
            assert!((v - gx as f32).abs() <= 1.0);
        }
    }

    #[test]
    fn stencil_halo_copies_nearest_interior() {
        let tile = TileGeometry::new(4, 4, 1);
        let scheme = PerforationScheme::Stencil;
        let data = run_reconstruction(&tile, &scheme, Reconstruction::NearestNeighbor, |gx, gy| {
            (10 * gy + gx) as f32
        });
        // Top-left halo corner copies the interior corner (global (0,0)).
        assert_eq!(data[tile.index(0, 0)], 0.0);
        // Top halo above interior column 2 copies global (2, 0) -> 2.
        assert_eq!(data[tile.index(3, 0)], 2.0);
        // Right halo next to interior row 1 copies global (3, 1) -> 13.
        assert_eq!(data[tile.index(5, 2)], 13.0);
    }

    #[test]
    fn random_reconstruction_fills_everything() {
        let tile = TileGeometry::new(8, 8, 1);
        let scheme = PerforationScheme::Random {
            keep_fraction: 0.5,
            seed: 3,
        };
        let data = run_reconstruction(&tile, &scheme, Reconstruction::NearestNeighbor, |gx, gy| {
            (gx + gy) as f32
        });
        assert!(data.iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn recon_none_zeroes_missing() {
        let tile = TileGeometry::new(4, 4, 0);
        let scheme = PerforationScheme::Rows(SkipLevel::Half);
        let data = run_reconstruction(&tile, &scheme, Reconstruction::None, |_, _| 7.0);
        for py in 0..tile.padded_h() {
            let (_, gy) = tile.global_of((0, 0), 0, py);
            let expect = if gy.rem_euclid(2) == 0 { 7.0 } else { 0.0 };
            assert_eq!(data[tile.index(2, py)], expect);
        }
    }

    #[test]
    fn reconstruction_stays_within_value_range() {
        // NN and LI are convex combinations: they can never produce values
        // outside [min, max] of the loaded data.
        let tile = TileGeometry::new(8, 8, 1);
        for recon in [
            Reconstruction::NearestNeighbor,
            Reconstruction::LinearInterpolation,
        ] {
            let scheme = PerforationScheme::Rows(SkipLevel::ThreeQuarters);
            let data = run_reconstruction(&tile, &scheme, recon, |gx, gy| {
                (gx * 31 + gy * 17).rem_euclid(101) as f32 / 100.0
            });
            for &v in &data {
                assert!((0.0..=1.0).contains(&v), "out of range: {v}");
            }
        }
    }

    #[test]
    fn li_validation_rejects_stencil_and_random() {
        let li = Reconstruction::LinearInterpolation;
        assert!(li.validate(&PerforationScheme::Stencil).is_err());
        assert!(li
            .validate(&PerforationScheme::Random {
                keep_fraction: 0.5,
                seed: 0
            })
            .is_err());
        assert!(li
            .validate(&PerforationScheme::Rows(SkipLevel::Half))
            .is_ok());
        assert!(Reconstruction::NearestNeighbor
            .validate(&PerforationScheme::Stencil)
            .is_ok());
    }

    #[test]
    fn display_labels() {
        assert_eq!(Reconstruction::NearestNeighbor.to_string(), "NN");
        assert_eq!(Reconstruction::LinearInterpolation.to_string(), "LI");
        assert_eq!(Reconstruction::None.to_string(), "Raw");
    }
}
