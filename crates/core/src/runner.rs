//! End-to-end execution: allocate buffers, build the requested kernel
//! variant, enqueue it on a command queue, and collect output + report.
//!
//! This is the glue the tuner, the error-budget helper, the benchmark
//! harness and the examples all share. Two entry points:
//!
//! * [`run_app`] — one variant, enqueue + wait (blocking convenience);
//! * [`run_specs_batched`] — many variants of one app submitted as a
//!   single command stream: all launches share the input buffer (reads
//!   never conflict) and write distinct outputs, so the queue scheduler
//!   overlaps them across worker threads. Results are bit-identical to
//!   running the specs one at a time, in order.

use kp_gpu_sim::{Device, Event, LaunchReport, Queue};

use crate::config::ApproxConfig;
use crate::error::CoreError;
use crate::paraprox::ParaproxScheme;
use crate::pipeline::{pack_tiled, ImageBinding, WorkloadRef};
use crate::scheme::PrefetchLayout;
use crate::tile::TileGeometry;

/// One input to an application: a row-major `f32` image plus an optional
/// same-shaped auxiliary image (e.g. Hotspot's power grid).
#[derive(Debug, Clone, Copy)]
pub struct ImageInput<'a> {
    /// Primary input, `width × height`, row-major.
    pub data: &'a [f32],
    /// Optional auxiliary input of identical shape.
    pub aux: Option<&'a [f32]>,
    /// Width in elements.
    pub width: usize,
    /// Height in rows.
    pub height: usize,
}

impl<'a> ImageInput<'a> {
    /// Creates and validates an input.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Input`] if sizes are zero or slice lengths do
    /// not match `width × height`.
    pub fn new(data: &'a [f32], width: usize, height: usize) -> Result<Self, CoreError> {
        Self::with_aux(data, None, width, height)
    }

    /// Creates an input with an auxiliary buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Input`] if sizes are zero or any slice length
    /// does not match `width × height`.
    pub fn with_aux(
        data: &'a [f32],
        aux: Option<&'a [f32]>,
        width: usize,
        height: usize,
    ) -> Result<Self, CoreError> {
        if width == 0 || height == 0 {
            return Err(CoreError::Input(format!(
                "image dimensions must be non-zero, got {width}x{height}"
            )));
        }
        if data.len() != width * height {
            return Err(CoreError::Input(format!(
                "image data has {} elements, expected {}",
                data.len(),
                width * height
            )));
        }
        if let Some(aux) = aux {
            if aux.len() != width * height {
                return Err(CoreError::Input(format!(
                    "aux data has {} elements, expected {}",
                    aux.len(),
                    width * height
                )));
            }
        }
        Ok(Self {
            data,
            aux,
            width,
            height,
        })
    }
}

/// Which kernel variant to execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunSpec {
    /// Accurate, window read from global memory.
    AccurateGlobal {
        /// Work-group size.
        group: (usize, usize),
    },
    /// Accurate with cooperative local-memory prefetch.
    AccurateLocal {
        /// Work-group size.
        group: (usize, usize),
    },
    /// The app's best-practice accurate baseline:
    /// [`crate::StencilApp::baseline_uses_local`] picks global or local.
    Baseline {
        /// Work-group size.
        group: (usize, usize),
    },
    /// The paper's perforated pipeline.
    Perforated(ApproxConfig),
    /// Paraprox output approximation (comparison baseline).
    Paraprox {
        /// Output-approximation scheme.
        scheme: ParaproxScheme,
        /// Work-group size.
        group: (usize, usize),
    },
}

impl RunSpec {
    /// Short label for tables (`"Accurate"`, `"Rows1:NN"`, `"PxRows1"`, …).
    pub fn label(&self) -> String {
        match self {
            RunSpec::AccurateGlobal { .. } => "AccurateGlobal".to_owned(),
            RunSpec::AccurateLocal { .. } => "AccurateLocal".to_owned(),
            RunSpec::Baseline { .. } => "Baseline".to_owned(),
            RunSpec::Perforated(cfg) => cfg.label(),
            RunSpec::Paraprox { scheme, .. } => scheme.to_string(),
        }
    }

    /// The work-group size this spec launches with.
    pub fn group(&self) -> (usize, usize) {
        match *self {
            RunSpec::AccurateGlobal { group }
            | RunSpec::AccurateLocal { group }
            | RunSpec::Baseline { group }
            | RunSpec::Paraprox { group, .. } => group,
            RunSpec::Perforated(cfg) => cfg.group,
        }
    }
}

/// Output and performance report of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The output image (`width × height`, row-major).
    pub output: Vec<f32>,
    /// The simulator's launch report.
    pub report: LaunchReport,
}

/// Whether a spec prefetches from a burst-friendly tiled copy, which the
/// host must pack and bind ([`pack_tiled`]).
fn needs_tiled(spec: &RunSpec) -> bool {
    matches!(
        spec,
        RunSpec::Perforated(cfg) if cfg.scheme.layout == PrefetchLayout::BurstTiled
    )
}

/// One spec's buffers plus its in-flight events.
struct InFlight {
    img: ImageBinding,
    launch: Event,
    read: Event,
}

/// Allocates a spec's output buffer (sized by the workload's
/// [`crate::Workload::output_len`]) plus, for burst-tiled specs, a packed
/// tiled copy of the input; builds its kernel and enqueues launch +
/// read-back on `queue`.
fn submit_spec(
    dev: &mut Device,
    queue: &Queue,
    app: WorkloadRef,
    input: &ImageInput<'_>,
    bufs: (kp_gpu_sim::BufferId, Option<kp_gpu_sim::BufferId>),
    spec: &RunSpec,
) -> Result<InFlight, CoreError> {
    let (width, height) = (input.width, input.height);
    let out_len = app.output_len(width, height, spec.group());
    let out_buf = dev.create_buffer::<f32>("output", out_len)?;
    let tiled = if needs_tiled(spec) {
        let group = spec.group();
        let geom = TileGeometry::new(group.0, group.1, app.halo());
        let packed = pack_tiled(input.data, width, height, &geom);
        match dev.create_buffer_from("tiled", &packed) {
            Ok(id) => Some(id),
            Err(e) => {
                let _ = dev.release_buffer(out_buf);
                return Err(e.into());
            }
        }
    } else {
        None
    };
    let img = ImageBinding {
        input: bufs.0,
        aux: bufs.1,
        tiled,
        output: out_buf,
        width,
        height,
    };
    let release_all = |dev: &mut Device| {
        let _ = dev.release_buffer(out_buf);
        if let Some(t) = tiled {
            let _ = dev.release_buffer(t);
        }
    };
    let (kernel, range) = match app.build_kernel(&img, spec) {
        Ok(k) => k,
        Err(e) => {
            release_all(dev);
            return Err(e);
        }
    };
    let enqueue = || -> Result<(Event, Event), kp_gpu_sim::SimError> {
        let launch = queue.enqueue_launch(kernel, range, &[])?;
        // The read is hazard-ordered after the launch already; the
        // explicit wait-list documents the intent.
        let read = queue.enqueue_read::<f32>(img.output, std::slice::from_ref(&launch))?;
        Ok((launch, read))
    };
    match enqueue() {
        Ok((launch, read)) => Ok(InFlight { img, launch, read }),
        Err(e) => {
            release_all(dev);
            Err(e.into())
        }
    }
}

/// Reaps one in-flight spec: waits for its events and collects the result.
fn reap(job: &InFlight) -> Result<RunResult, CoreError> {
    let report = job.launch.wait_report()?;
    let output = job.read.wait_read::<f32>()?;
    Ok(RunResult { output, report })
}

/// Executes one variant of `app` on `input` using `dev` — enqueue + wait
/// on a fresh command queue (see [`run_specs_batched`] for submitting
/// many variants as one overlappable stream).
///
/// Buffers are allocated on entry and released before returning, so a
/// single device can serve arbitrarily many runs.
///
/// # Errors
///
/// Propagates simulator errors ([`CoreError::Sim`]) and configuration
/// errors ([`CoreError::IllegalConfig`]).
pub fn run_app(
    dev: &mut Device,
    app: WorkloadRef,
    input: &ImageInput<'_>,
    spec: &RunSpec,
) -> Result<RunResult, CoreError> {
    let mut results = run_specs_batched(dev, app, input, std::slice::from_ref(spec))?;
    Ok(results.remove(0))
}

/// Executes many variants of one app as a **batched command stream**: one
/// queue, one shared input buffer (plus aux), one output buffer per spec.
/// Launches over disjoint outputs have no hazards between them, so the
/// scheduler overlaps them across worker threads
/// ([`kp_gpu_sim::DeviceConfig::parallelism`] is the budget); results are
/// returned in spec order and are bit-identical to running the specs one
/// at a time.
///
/// All buffers are released before returning, even on error.
///
/// # Errors
///
/// Fails on the first spec that cannot be built or enqueued, and on the
/// first reaped launch that failed ([`CoreError::Sim`]).
pub fn run_specs_batched(
    dev: &mut Device,
    app: WorkloadRef,
    input: &ImageInput<'_>,
    specs: &[RunSpec],
) -> Result<Vec<RunResult>, CoreError> {
    let in_buf = dev.create_buffer_from("input", input.data)?;
    let aux_buf = match input.aux {
        Some(aux) => match dev.create_buffer_from("aux", aux) {
            Ok(id) => Some(id),
            Err(e) => {
                let _ = dev.release_buffer(in_buf);
                return Err(e.into());
            }
        },
        None => None,
    };

    let queue = dev.create_queue();
    let mut jobs: Vec<InFlight> = Vec::with_capacity(specs.len());
    let mut failure: Option<CoreError> = None;
    for spec in specs {
        match submit_spec(dev, &queue, app, input, (in_buf, aux_buf), spec) {
            Ok(job) => jobs.push(job),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }

    // Reap in spec order (events may complete in any order internally).
    let mut results = Vec::with_capacity(jobs.len());
    if failure.is_none() {
        for job in &jobs {
            match reap(job) {
                Ok(r) => results.push(r),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
    }

    // Finish whatever the error paths left pending, then release all
    // buffers regardless of outcome.
    let _ = queue.finish();
    drop(queue);
    for job in &jobs {
        let _ = dev.release_buffer(job.img.output);
        if let Some(tiled) = job.img.tiled {
            let _ = dev.release_buffer(tiled);
        }
    }
    let _ = dev.release_buffer(in_buf);
    if let Some(aux) = aux_buf {
        let _ = dev.release_buffer(aux);
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(results),
    }
}

/// Runs `iterations` ping-pong steps of an iterative solver (e.g. Hotspot):
/// the output of step *k* becomes the primary input of step *k+1*; the
/// auxiliary input stays fixed. Returns the final output and the combined
/// report.
///
/// # Errors
///
/// As [`run_app`]; additionally [`CoreError::Input`] if `iterations == 0`
/// or the workload's output is not image-shaped (ping-pong feeds the
/// output back as the next step's input, so the shapes must match).
pub fn run_iterative(
    dev: &mut Device,
    app: WorkloadRef,
    input: &ImageInput<'_>,
    spec: &RunSpec,
    iterations: usize,
) -> Result<RunResult, CoreError> {
    if iterations == 0 {
        return Err(CoreError::Input("iterations must be >= 1".into()));
    }
    if app.output_len(input.width, input.height, spec.group()) != input.width * input.height {
        return Err(CoreError::Input(format!(
            "iterative runs need an image-shaped output to ping-pong, but workload '{}' \
             produces a different output length",
            app.name()
        )));
    }
    let mut current: Vec<f32> = input.data.to_vec();
    let mut reports = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let step_input = ImageInput {
            data: &current,
            aux: input.aux,
            width: input.width,
            height: input.height,
        };
        let r = run_app(dev, app, &step_input, spec)?;
        current = r.output;
        reports.push(r.report);
    }
    Ok(RunResult {
        output: current,
        report: LaunchReport::combine(reports.iter()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paraprox::ParaproxLevel;
    use crate::pipeline::{StencilApp, Window};
    use kp_gpu_sim::DeviceConfig;

    struct Blur;

    impl StencilApp for Blur {
        fn name(&self) -> &str {
            "blur"
        }

        fn halo(&self) -> usize {
            1
        }

        fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
            let mut acc = 0.0;
            for dy in -1..=1 {
                for dx in -1..=1 {
                    acc += win.at(dx, dy);
                }
            }
            win.ops(9);
            acc / 9.0
        }
    }

    struct Decay;

    impl StencilApp for Decay {
        fn name(&self) -> &str {
            "decay"
        }

        fn halo(&self) -> usize {
            0
        }

        fn baseline_uses_local(&self) -> bool {
            false
        }

        fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
            win.ops(1);
            win.at(0, 0) * 0.5
        }
    }

    fn dev() -> Device {
        Device::new(DeviceConfig::firepro_w5100()).unwrap()
    }

    fn image(w: usize, h: usize) -> Vec<f32> {
        (0..w * h).map(|i| ((i * 31) % 97) as f32 / 96.0).collect()
    }

    #[test]
    fn input_validation() {
        assert!(ImageInput::new(&[1.0; 6], 3, 2).is_ok());
        assert!(ImageInput::new(&[1.0; 5], 3, 2).is_err());
        assert!(ImageInput::new(&[], 0, 0).is_err());
        assert!(ImageInput::with_aux(&[1.0; 6], Some(&[1.0; 5]), 3, 2).is_err());
    }

    #[test]
    fn all_specs_run_and_release_buffers() {
        let (w, h) = (32, 32);
        let data = image(w, h);
        let input = ImageInput::new(&data, w, h).unwrap();
        let mut device = dev();
        let used_before = device.used_global_bytes();
        let specs = [
            RunSpec::AccurateGlobal { group: (16, 16) },
            RunSpec::AccurateLocal { group: (16, 16) },
            RunSpec::Baseline { group: (16, 16) },
            RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))),
            RunSpec::Perforated(ApproxConfig::stencil1_nn((16, 16))),
            RunSpec::Paraprox {
                scheme: ParaproxScheme::Rows(ParaproxLevel::One),
                group: (16, 16),
            },
        ];
        for spec in &specs {
            let r = run_app(&mut device, &Blur, &input, spec).unwrap();
            assert_eq!(r.output.len(), w * h);
            assert!(r.report.seconds > 0.0, "{}", spec.label());
        }
        assert_eq!(device.used_global_bytes(), used_before);
    }

    #[test]
    fn non_divisible_image_is_padded_and_guarded() {
        let (w, h) = (33, 17); // not multiples of 16
        let data = image(w, h);
        let input = ImageInput::new(&data, w, h).unwrap();
        let mut device = dev();
        let a = run_app(
            &mut device,
            &Blur,
            &input,
            &RunSpec::AccurateGlobal { group: (16, 16) },
        )
        .unwrap();
        let b = run_app(
            &mut device,
            &Blur,
            &input,
            &RunSpec::AccurateLocal { group: (16, 16) },
        )
        .unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn baseline_dispatches_on_app_preference() {
        let (w, h) = (32, 32);
        let data = image(w, h);
        let input = ImageInput::new(&data, w, h).unwrap();
        let mut device = dev();
        // Blur's baseline uses local memory: its launch has 2 phases.
        let blur = run_app(
            &mut device,
            &Blur,
            &input,
            &RunSpec::Baseline { group: (16, 16) },
        )
        .unwrap();
        assert_eq!(blur.report.phases, 2);
        // Decay's baseline is global: a single phase.
        let decay = run_app(
            &mut device,
            &Decay,
            &input,
            &RunSpec::Baseline { group: (16, 16) },
        )
        .unwrap();
        assert_eq!(decay.report.phases, 1);
    }

    #[test]
    fn run_iterative_pingpongs() {
        let (w, h) = (16, 16);
        let data = vec![1.0f32; w * h];
        let input = ImageInput::new(&data, w, h).unwrap();
        let mut device = dev();
        let spec = RunSpec::AccurateGlobal { group: (16, 16) };
        let r = run_iterative(&mut device, &Decay, &input, &spec, 3).unwrap();
        // 1.0 * 0.5^3 = 0.125 everywhere.
        assert!(r.output.iter().all(|&v| (v - 0.125).abs() < 1e-6));
        assert_eq!(r.report.groups, 3);
        assert!(run_iterative(&mut device, &Decay, &input, &spec, 0).is_err());
    }

    #[test]
    fn spec_labels() {
        assert_eq!(
            RunSpec::Perforated(ApproxConfig::rows1_nn((16, 16))).label(),
            "Rows1:NN"
        );
        assert_eq!(
            RunSpec::Paraprox {
                scheme: ParaproxScheme::Center(ParaproxLevel::One),
                group: (8, 8)
            }
            .label(),
            "PxCenter1"
        );
        assert_eq!(RunSpec::Baseline { group: (1, 1) }.label(), "Baseline");
        assert_eq!(RunSpec::Baseline { group: (4, 2) }.group(), (4, 2));
    }
}
