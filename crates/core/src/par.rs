//! Scoped-thread parallel mapping shared by the tuner and the bench
//! harness.
//!
//! This is host-side parallelism *across* independent simulations
//! (per-thread devices); parallelism *within* one launch lives in the
//! simulator's launch engine (`kp_gpu_sim::Device::launch`). Both layers
//! are deterministic: results are collected by input index, so the output
//! order — and, because every worker is a pure function of its input —
//! every value is independent of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count knob: `0` means "all available cores". Same
/// policy as the launch engine's knob (delegates to
/// [`kp_gpu_sim::resolve_parallelism`]).
pub fn resolve_threads(requested: usize) -> usize {
    kp_gpu_sim::resolve_parallelism(requested)
}

/// Applies `f` to every item in parallel on `threads` scoped workers
/// (`0` = all cores), returning results in input order.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn parallel_ordered_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_ordered_map worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7, 0] {
            let out = parallel_ordered_map(&items, threads, |_, &x| x * 3);
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn index_matches_item() {
        let items = ["a", "b", "c"];
        let out = parallel_ordered_map(&items, 2, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let items: [u8; 0] = [];
        assert!(parallel_ordered_map(&items, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
