//! The perforation pipeline: application abstraction and kernel wrappers.
//!
//! Applications implement [`StencilApp`]: a per-output-element computation
//! over a small input window (the GPU-kernel body). The module then derives
//! three executable kernels from one app (paper Fig. 1):
//!
//! * [`AccurateGlobalKernel`] — reads the window straight from global
//!   memory (Paraprox's baseline; also the error reference),
//! * [`AccurateLocalKernel`] — the best-practice baseline: phase 0
//!   cooperatively loads the padded tile into local memory, phase 1
//!   computes from the tile,
//! * [`PerforatedKernel`] — the paper's contribution: phase 0 loads only
//!   the elements selected by the [`PerforationScheme`], phase 1
//!   reconstructs the skipped elements in local memory, phase 2 computes
//!   from the reconstructed tile.
//!
//! Because all three share the same `compute` body, output differences are
//! purely due to perforation — exactly how the paper measures error.

use std::sync::Arc;

use kp_gpu_sim::{BufferId, BufferUse, ElemKind, ItemCtx, Kernel, LocalId, LocalSpec, NdRange};

use crate::config::ApproxConfig;
use crate::error::CoreError;
use crate::reconstruction::{reconstruct_element, Reconstruction};
use crate::runner::RunSpec;
use crate::scheme::{LoadQuery, PerforationScheme, PrefetchLayout, SchemeSpec};
use crate::tile::{clamp_coord, TileGeometry};

/// A shared reference to a stencil application.
///
/// Kernel variants built from an app are submitted to the simulator's
/// command queues, whose commands must be `'static` + `Send` — so the
/// kernels hold `'static` app references rather than scoped borrows. In
/// practice apps are stateless registry entries (`kp_apps::suite` keeps
/// them in `static`s) or unit structs, for which `&App` promotes to
/// `&'static App` automatically at the call site; dynamically configured
/// apps can use `Box::leak`.
pub type AppRef = &'static (dyn StencilApp + Send + Sync);

/// A data-parallel application: one output element per work item, computed
/// from a `(2·halo+1)²` window of the primary input (plus optionally a
/// point read of an auxiliary input, e.g. Hotspot's power grid).
pub trait StencilApp: Sync {
    /// Application name (used in reports and harness tables).
    fn name(&self) -> &str;

    /// Stencil radius: the window spans `[-halo, +halo]` in both axes.
    fn halo(&self) -> usize;

    /// Whether the app reads the auxiliary input buffer via
    /// [`Window::aux_at`].
    fn uses_aux(&self) -> bool {
        false
    }

    /// Whether the app's best-practice accurate implementation prefetches
    /// into local memory. Apps without data reuse (1×1 kernels) are faster
    /// without it (paper §6.3: the accurate Inversion "does not use local
    /// memory as a prefetching step would increase runtime").
    fn baseline_uses_local(&self) -> bool {
        self.halo() > 0
    }

    /// Computes the output element at the window's center.
    fn compute(&self, win: &mut Window<'_, '_>) -> f32;
}

/// A shared reference to a workload.
///
/// Same `'static` requirement and promotion rules as [`AppRef`]. Note that
/// a `dyn StencilApp` reference does **not** coerce to a `WorkloadRef`
/// (there is no dyn-to-dyn upcast through the blanket impl); convert from
/// the concrete app value instead.
pub type WorkloadRef = &'static (dyn Workload + Send + Sync);

/// The executable surface the runner, tuner and benches actually need —
/// a named computation that can build its kernel variants over an
/// [`ImageBinding`].
///
/// [`StencilApp`] keeps its dense-window, one-output-per-element contract
/// and every (`Sized`) stencil app is a `Workload` via a blanket impl; new
/// workload shapes (reductions, histograms — anything whose output is not
/// image-shaped) implement this trait directly and report their own
/// [`Workload::output_len`].
pub trait Workload: Sync {
    /// Workload name (used in reports, tuning keys and harness tables).
    fn name(&self) -> &str;

    /// Stencil radius of the input window ([`TileGeometry::halo`]); `0`
    /// for pointwise or reduction-style workloads.
    fn halo(&self) -> usize;

    /// Whether the workload reads the auxiliary input buffer.
    fn uses_aux(&self) -> bool {
        false
    }

    /// Whether the best-practice accurate baseline prefetches into local
    /// memory (see [`StencilApp::baseline_uses_local`]).
    fn baseline_uses_local(&self) -> bool;

    /// Number of output elements produced for a `width × height` input at
    /// the given work-group size. Stencil apps produce `width × height`;
    /// e.g. a per-group reduction produces one element per work group.
    fn output_len(&self, width: usize, height: usize, group: (usize, usize)) -> usize;

    /// Builds the kernel variant `spec` describes over `img`, plus its
    /// launch range.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllegalConfig`] for spec/workload mismatches
    /// (e.g. an invalid perforation config, or a variant the workload does
    /// not support).
    fn build_kernel(
        &'static self,
        img: &ImageBinding,
        spec: &RunSpec,
    ) -> Result<(Arc<dyn Kernel + Send + Sync>, NdRange), CoreError>;
}

/// Full-image launch geometry: global sizes padded up to group multiples
/// (kernels guard the remainder).
pub(crate) fn image_range(
    width: usize,
    height: usize,
    group: (usize, usize),
) -> Result<NdRange, CoreError> {
    let gx = width.div_ceil(group.0) * group.0;
    let gy = height.div_ceil(group.1) * group.1;
    NdRange::new_2d((gx, gy), group).map_err(|e| CoreError::Sim(e.into()))
}

impl<T: StencilApp + Send + Sync> Workload for T {
    fn name(&self) -> &str {
        StencilApp::name(self)
    }

    fn halo(&self) -> usize {
        StencilApp::halo(self)
    }

    fn uses_aux(&self) -> bool {
        StencilApp::uses_aux(self)
    }

    fn baseline_uses_local(&self) -> bool {
        StencilApp::baseline_uses_local(self)
    }

    fn output_len(&self, width: usize, height: usize, _group: (usize, usize)) -> usize {
        width * height
    }

    fn build_kernel(
        &'static self,
        img: &ImageBinding,
        spec: &RunSpec,
    ) -> Result<(Arc<dyn Kernel + Send + Sync>, NdRange), CoreError> {
        let app: AppRef = self;
        Ok(match *spec {
            RunSpec::AccurateGlobal { group } => {
                let range = image_range(img.width, img.height, group)?;
                (
                    Arc::new(AccurateGlobalKernel::new(app, *img)) as Arc<dyn Kernel + Send + Sync>,
                    range,
                )
            }
            RunSpec::AccurateLocal { group } => {
                let range = image_range(img.width, img.height, group)?;
                (Arc::new(AccurateLocalKernel::new(app, *img, group)), range)
            }
            RunSpec::Baseline { group } => {
                let range = image_range(img.width, img.height, group)?;
                if StencilApp::baseline_uses_local(self) {
                    (
                        Arc::new(AccurateLocalKernel::new(app, *img, group))
                            as Arc<dyn Kernel + Send + Sync>,
                        range,
                    )
                } else {
                    (Arc::new(AccurateGlobalKernel::new(app, *img)), range)
                }
            }
            RunSpec::Perforated(config) => {
                let range = image_range(img.width, img.height, config.group)?;
                (Arc::new(PerforatedKernel::new(app, *img, config)?), range)
            }
            RunSpec::Paraprox { scheme, group } => {
                let range = scheme
                    .launch_range(img.width, img.height, group)
                    .map_err(|e| CoreError::Sim(e.into()))?;
                (
                    Arc::new(crate::paraprox::ParaproxKernel::new(app, *img, scheme)),
                    range,
                )
            }
        })
    }
}

/// Where a [`Window`] sources the primary input from.
enum Source {
    /// Straight from global memory with clamp-to-edge addressing.
    Global,
    /// From the work group's local-memory tile (already clamped at load).
    Tile {
        tile: LocalId,
        geom: TileGeometry,
        /// Padded tile coordinates of the window center.
        cx: usize,
        cy: usize,
        /// Auxiliary tile (halo-0 geometry) when the app uses one: the
        /// aux input is prefetched/perforated through local memory too.
        aux_tile: Option<(LocalId, TileGeometry)>,
    },
}

/// Read access to the input window of one output element.
///
/// `at(dx, dy)` reads the primary input relative to the center with
/// clamp-to-edge semantics; the backing store (global memory or local tile)
/// is transparent to the application, which is what lets one `compute` body
/// serve accurate and perforated kernels alike.
pub struct Window<'w, 'a> {
    ctx: &'w mut ItemCtx<'a>,
    source: Source,
    x: usize,
    y: usize,
    width: usize,
    height: usize,
    input: BufferId,
    aux: Option<BufferId>,
}

impl std::fmt::Debug for Window<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Window")
            .field("x", &self.x)
            .field("y", &self.y)
            .field("width", &self.width)
            .field("height", &self.height)
            .finish_non_exhaustive()
    }
}

impl Window<'_, '_> {
    /// Global x coordinate of the output element.
    pub fn x(&self) -> usize {
        self.x
    }

    /// Global y coordinate of the output element.
    pub fn y(&self) -> usize {
        self.y
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Reads the primary input at offset `(dx, dy)` from the center,
    /// clamped to the image edges.
    ///
    /// Offsets beyond the declared halo are clamped to it in tile mode (and
    /// would read stale halo data); apps must keep `|dx|, |dy| ≤ halo`.
    pub fn at(&mut self, dx: i64, dy: i64) -> f32 {
        match self.source {
            Source::Global => {
                let gx = clamp_coord(self.x as i64 + dx, self.width);
                let gy = clamp_coord(self.y as i64 + dy, self.height);
                self.ctx
                    .read_global::<f32>(self.input, gy * self.width + gx)
            }
            Source::Tile {
                tile,
                ref geom,
                cx,
                cy,
                ..
            } => {
                let px = (cx as i64 + dx).clamp(0, geom.padded_w() as i64 - 1) as usize;
                let py = (cy as i64 + dy).clamp(0, geom.padded_h() as i64 - 1) as usize;
                let idx = geom.index(px, py);
                self.ctx.read_local::<f32>(tile, idx)
            }
        }
    }

    /// Reads the auxiliary input at offset `(dx, dy)` from the center. In
    /// tiled kernels the aux input is prefetched through local memory (a
    /// halo-0 tile, so offsets clamp at the tile border); in global kernels
    /// it reads global memory with clamp-to-edge addressing.
    ///
    /// Returns `0.0` if the kernel was launched without an auxiliary
    /// buffer.
    pub fn aux_at(&mut self, dx: i64, dy: i64) -> f32 {
        let Some(aux) = self.aux else { return 0.0 };
        if let Source::Tile {
            cx,
            cy,
            ref geom,
            aux_tile: Some((aux_id, aux_geom)),
            ..
        } = self.source
        {
            // Aux tile has no halo: its (0,0) is the group origin.
            let ax = (cx as i64 - geom.halo as i64 + dx).clamp(0, aux_geom.padded_w() as i64 - 1)
                as usize;
            let ay = (cy as i64 - geom.halo as i64 + dy).clamp(0, aux_geom.padded_h() as i64 - 1)
                as usize;
            let idx = aux_geom.index(ax, ay);
            return self.ctx.read_local::<f32>(aux_id, idx);
        }
        let gx = clamp_coord(self.x as i64 + dx, self.width);
        let gy = clamp_coord(self.y as i64 + dy, self.height);
        self.ctx.read_global::<f32>(aux, gy * self.width + gx)
    }

    /// Charges `n` ALU operations to the executing work item.
    pub fn ops(&mut self, n: u64) {
        self.ctx.ops(n);
    }
}

/// Runs an app's compute body once at global coordinates `(x, y)` with a
/// global-memory window. Used by the Paraprox output-approximation kernels,
/// which compute sparse outputs at positions decoupled from their work-item
/// ids.
pub(crate) fn compute_with_global_window<A: StencilApp + ?Sized>(
    app: &A,
    ctx: &mut ItemCtx<'_>,
    img: &ImageBinding,
    x: usize,
    y: usize,
) -> f32 {
    let mut win = Window {
        ctx: &mut *ctx,
        source: Source::Global,
        x,
        y,
        width: img.width,
        height: img.height,
        input: img.input,
        aux: img.aux,
    };
    app.compute(&mut win)
}

/// Tile bindings of a tiled kernel: primary tile plus optional aux tile.
#[derive(Debug, Clone, Copy)]
struct Tiles {
    geom: TileGeometry,
    aux_geom: Option<TileGeometry>,
}

impl Tiles {
    fn new(app: &(impl StencilApp + ?Sized), group: (usize, usize)) -> Self {
        let geom = TileGeometry::new(group.0, group.1, app.halo());
        let aux_geom = app
            .uses_aux()
            .then(|| TileGeometry::new(group.0, group.1, 0));
        Self { geom, aux_geom }
    }

    fn local_specs(&self) -> Vec<LocalSpec> {
        let mut specs = vec![LocalSpec::new(ElemKind::F32, self.geom.padded_len())];
        if let Some(aux) = self.aux_geom {
            specs.push(LocalSpec::new(ElemKind::F32, aux.padded_len()));
        }
        specs
    }
}

/// Buffer bindings shared by all kernel variants of an app.
#[derive(Debug, Clone, Copy)]
pub struct ImageBinding {
    /// Primary input buffer (`width × height` f32, row-major).
    pub input: BufferId,
    /// Optional auxiliary input (same shape), e.g. Hotspot's power grid.
    pub aux: Option<BufferId>,
    /// Optional burst-friendly tiled copy of the primary input (see
    /// [`pack_tiled`]): group-major, each group's padded tile contiguous.
    /// Kernels launched with [`PrefetchLayout::BurstTiled`] read their tile
    /// from here and fall back to the strided `input` when `None`.
    pub tiled: Option<BufferId>,
    /// Output buffer (f32; `width × height` for stencil apps, or whatever
    /// [`Workload::output_len`] reports for other workload shapes).
    pub output: BufferId,
    /// Image width in elements.
    pub width: usize,
    /// Image height in rows.
    pub height: usize,
}

impl ImageBinding {
    fn out_coords(&self, ctx: &ItemCtx<'_>) -> Option<(usize, usize)> {
        let x = ctx.global_id(0);
        let y = ctx.global_id(1);
        (x < self.width && y < self.height).then_some((x, y))
    }

    /// Declared buffer usage of every kernel variant over this binding:
    /// the inputs are read, the output is written. This is what lets the
    /// command-queue scheduler overlap launches over disjoint bindings
    /// (e.g. a tuner sweep's candidates, which share the input buffer but
    /// write distinct outputs). Public so custom [`Workload`] kernels can
    /// declare the same usage.
    pub fn buffer_usage(&self) -> BufferUse {
        let mut reads = vec![self.input];
        if let Some(aux) = self.aux {
            reads.push(aux);
        }
        if let Some(tiled) = self.tiled {
            reads.push(tiled);
        }
        BufferUse::new(reads, vec![self.output])
    }
}

/// Accurate kernel reading its window directly from global memory.
pub struct AccurateGlobalKernel {
    app: AppRef,
    img: ImageBinding,
}

impl std::fmt::Debug for AccurateGlobalKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccurateGlobalKernel")
            .field("app", &self.app.name())
            .field("img", &self.img)
            .finish()
    }
}

impl AccurateGlobalKernel {
    /// Wraps `app` over the given buffers.
    pub fn new(app: AppRef, img: ImageBinding) -> Self {
        Self { app, img }
    }
}

impl Kernel for AccurateGlobalKernel {
    fn name(&self) -> &str {
        self.app.name()
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(self.img.buffer_usage())
    }

    fn run_phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>) {
        let Some((x, y)) = self.img.out_coords(ctx) else {
            return;
        };
        let mut win = Window {
            ctx: &mut *ctx,
            source: Source::Global,
            x,
            y,
            width: self.img.width,
            height: self.img.height,
            input: self.img.input,
            aux: self.img.aux,
        };
        let v = self.app.compute(&mut win);
        ctx.write_global(self.img.output, y * self.img.width + x, v);
    }
}

/// Packs a row-major image into the group-major tiled layout that
/// [`PrefetchLayout::BurstTiled`] kernels read from: one contiguous
/// `padded_len` segment per work group (groups in row-major group order),
/// holding the group's padded tile in row-major order with clamp-to-edge
/// already applied.
///
/// Because each group's entire prefetch is one contiguous region, the
/// cooperative load turns into a single long DRAM block run per tile —
/// open-row bursts the simulator prices at
/// `DeviceConfig::burst_issue_cycles`. The local tile contents are
/// bit-identical to a strided load, so outputs never change with layout.
pub fn pack_tiled(data: &[f32], width: usize, height: usize, geom: &TileGeometry) -> Vec<f32> {
    let ngx = width.div_ceil(geom.tile_w);
    let ngy = height.div_ceil(geom.tile_h);
    let mut out = Vec::with_capacity(ngx * ngy * geom.padded_len());
    for group_y in 0..ngy {
        for group_x in 0..ngx {
            for k in 0..geom.padded_len() {
                let (px, py) = geom.coords(k);
                let (gx, gy) = geom.global_of((group_x, group_y), px, py);
                let cx = clamp_coord(gx, width);
                let cy = clamp_coord(gy, height);
                out.push(data[cy * width + cx]);
            }
        }
    }
    out
}

/// Whether a systolic-shift kernel sources the padded row `py` from a
/// vertical neighbor group's resident tile instead of DRAM: top halo rows
/// shift down from the group above, bottom halo rows shift up from the
/// group below. Edge groups with no neighbor on that side fall back to a
/// DRAM fetch. Horizontal halo columns always fetch (row-major halo
/// columns are cheap; rows are where re-fetch traffic lives).
///
/// Neighbor possession is guaranteed by the selection schemes being keyed
/// on *global* coordinates ("the schemes match each other", §4.4): if this
/// group's scheme loads a halo element, the neighbor's scheme loads the
/// same global element into its own tile.
fn shifts_from_neighbor(ctx: &ItemCtx<'_>, geom: &TileGeometry, py: usize) -> bool {
    let group_y = ctx.group_id(1);
    (py < geom.halo && group_y > 0)
        || (py >= geom.halo + geom.tile_h && group_y + 1 < ctx.num_groups(1))
}

/// Cooperative tile load shared by the accurate-local and perforated
/// kernels: the group's work items stride over the padded tile in flat
/// row-major order (consecutive items load consecutive elements, which
/// coalesces perfectly for the loaded rows). The scheme's selection axis
/// decides *which* elements load; its layout axis decides *where from*:
/// the strided row-major image, a burst-friendly tiled copy, or (for halo
/// rows under systolic shift) the neighboring group's resident tile.
fn cooperative_load(
    ctx: &mut ItemCtx<'_>,
    buffer: kp_gpu_sim::BufferId,
    tiled: Option<kp_gpu_sim::BufferId>,
    (width, height): (usize, usize),
    tile: LocalId,
    geom: &TileGeometry,
    scheme: &SchemeSpec,
) {
    let group = (ctx.group_id(0), ctx.group_id(1));
    let stride = ctx.group_size();
    let mut k = ctx.flat_local_id();
    while k < geom.padded_len() {
        let (px, py) = geom.coords(k);
        let global = geom.global_of(group, px, py);
        let query = LoadQuery {
            tile: geom,
            padded: (px, py),
            global,
        };
        if scheme.select.loads(query) {
            let (gx, gy) = global;
            let cx = clamp_coord(gx, width);
            let cy = clamp_coord(gy, height);
            let v = match scheme.layout {
                PrefetchLayout::BurstTiled if tiled.is_some() => {
                    // The tiled copy is group-major with clamp-to-edge
                    // applied at pack time, so the flat tile index k is
                    // also the offset within this group's segment.
                    let group_linear = group.1 * ctx.num_groups(0) + group.0;
                    ctx.read_global::<f32>(
                        tiled.unwrap_or(buffer),
                        group_linear * geom.padded_len() + k,
                    )
                }
                PrefetchLayout::SystolicShift if shifts_from_neighbor(ctx, geom, py) => {
                    ctx.read_shifted::<f32>(buffer, cy * width + cx)
                }
                _ => ctx.read_global::<f32>(buffer, cy * width + cx),
            };
            ctx.write_local(tile, k, v);
            ctx.ops(1);
        }
        k += stride;
    }
}

/// Loads the primary tile (and the aux tile, if any) with the given scheme.
/// The aux tile has no tiled copy and always loads row-major strided (it is
/// a halo-0 point read per element; there is no re-fetch to save).
fn load_tiles(ctx: &mut ItemCtx<'_>, img: &ImageBinding, tiles: &Tiles, scheme: &SchemeSpec) {
    cooperative_load(
        ctx,
        img.input,
        img.tiled,
        (img.width, img.height),
        TILE,
        &tiles.geom,
        scheme,
    );
    if let (Some(aux_geom), Some(aux)) = (tiles.aux_geom, img.aux) {
        let aux_scheme = SchemeSpec::new(scheme.select);
        cooperative_load(
            ctx,
            aux,
            None,
            (img.width, img.height),
            AUX_TILE,
            &aux_geom,
            &aux_scheme,
        );
    }
}

/// Reconstructs the skipped elements of one tile in local memory.
fn reconstruct_tile(
    ctx: &mut ItemCtx<'_>,
    tile: LocalId,
    geom: &TileGeometry,
    scheme: &PerforationScheme,
    recon: crate::reconstruction::Reconstruction,
) {
    let group = (ctx.group_id(0), ctx.group_id(1));
    let stride = ctx.group_size();
    let mut k = ctx.flat_local_id();
    while k < geom.padded_len() {
        let (px, py) = geom.coords(k);
        let global = geom.global_of(group, px, py);
        if !scheme.loads(LoadQuery {
            tile: geom,
            padded: (px, py),
            global,
        }) {
            let mut extra_ops = 0u64;
            let value = {
                let mut read =
                    |rx: usize, ry: usize| ctx.read_local::<f32>(tile, geom.index(rx, ry));
                let mut ops = |n: u64| extra_ops += n;
                reconstruct_element(scheme, recon, geom, group, px, py, &mut read, &mut ops)
            };
            ctx.write_local(tile, k, value);
            ctx.ops(extra_ops);
        }
        k += stride;
    }
}

/// Building block for custom [`Workload`] kernels that want the stencil
/// pipeline's perforated prefetch without its one-output-per-window-center
/// compute phase (reductions, histograms, …).
///
/// Wraps the same cooperative load / local reconstruction the
/// [`PerforatedKernel`] phases use — including the full
/// [`PrefetchLayout`] axis — over local tile [`TilePrefetch::TILE`].
/// Custom kernels call [`TilePrefetch::load`] in phase 0,
/// [`TilePrefetch::reconstruct`] in phase 1 (a no-op for non-perforating
/// schemes), and then read the tile with [`TilePrefetch::read`] in their
/// own compute phase.
#[derive(Debug, Clone, Copy)]
pub struct TilePrefetch {
    geom: TileGeometry,
}

impl TilePrefetch {
    /// The local-memory id the tile is loaded into (`LocalId(0)`); custom
    /// kernels must not reuse it for other local arrays.
    pub const TILE: LocalId = TILE;

    /// A prefetch helper for work groups of `group` and stencil radius
    /// `halo`.
    pub fn new(group: (usize, usize), halo: usize) -> Self {
        Self {
            geom: TileGeometry::new(group.0, group.1, halo),
        }
    }

    /// The padded tile geometry.
    pub fn geometry(&self) -> TileGeometry {
        self.geom
    }

    /// The local-buffer declaration a kernel using this helper must return
    /// from [`Kernel::local_buffers`].
    pub fn local_specs(&self) -> Vec<LocalSpec> {
        vec![LocalSpec::new(ElemKind::F32, self.geom.padded_len())]
    }

    /// Phase 0: cooperatively loads the scheme-selected elements of this
    /// group's padded tile from `img` (honoring the scheme's prefetch
    /// layout).
    pub fn load(&self, ctx: &mut ItemCtx<'_>, img: &ImageBinding, scheme: &SchemeSpec) {
        cooperative_load(
            ctx,
            img.input,
            img.tiled,
            (img.width, img.height),
            TILE,
            &self.geom,
            scheme,
        );
    }

    /// Phase 1: reconstructs the skipped elements in local memory.
    pub fn reconstruct(&self, ctx: &mut ItemCtx<'_>, scheme: &SchemeSpec, recon: Reconstruction) {
        if scheme.perforates() {
            reconstruct_tile(ctx, TILE, &self.geom, &scheme.select, recon);
        }
    }

    /// Reads the (loaded or reconstructed) tile element at padded
    /// coordinate `(px, py)`.
    pub fn read(&self, ctx: &mut ItemCtx<'_>, px: usize, py: usize) -> f32 {
        ctx.read_local::<f32>(TILE, self.geom.index(px, py))
    }
}

/// Compute phase shared by the tiled kernels: each item computes its own
/// output element from the local tile(s).
fn tile_compute<A: StencilApp + ?Sized>(
    app: &A,
    ctx: &mut ItemCtx<'_>,
    img: &ImageBinding,
    tiles: &Tiles,
) {
    let Some((x, y)) = img.out_coords(ctx) else {
        return;
    };
    let geom = tiles.geom;
    let (cx, cy) = geom.interior_of(ctx.local_id(0), ctx.local_id(1));
    let aux_tile = tiles.aux_geom.map(|g| (AUX_TILE, g));
    let mut win = Window {
        ctx: &mut *ctx,
        source: Source::Tile {
            tile: TILE,
            geom,
            cx,
            cy,
            aux_tile,
        },
        x,
        y,
        width: img.width,
        height: img.height,
        input: img.input,
        aux: img.aux,
    };
    let v = app.compute(&mut win);
    ctx.write_global(img.output, y * img.width + x, v);
}

/// Best-practice accurate kernel: cooperative tile prefetch into local
/// memory, then compute (2 phases).
pub struct AccurateLocalKernel {
    app: AppRef,
    img: ImageBinding,
    tiles: Tiles,
}

impl std::fmt::Debug for AccurateLocalKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccurateLocalKernel")
            .field("app", &self.app.name())
            .field("img", &self.img)
            .field("tiles", &self.tiles)
            .finish()
    }
}

impl AccurateLocalKernel {
    /// Wraps `app` with a tile sized for work groups of `group`.
    pub fn new(app: AppRef, img: ImageBinding, group: (usize, usize)) -> Self {
        let tiles = Tiles::new(app, group);
        Self { app, img, tiles }
    }
}

const TILE: LocalId = LocalId(0);
const AUX_TILE: LocalId = LocalId(1);

impl Kernel for AccurateLocalKernel {
    fn name(&self) -> &str {
        self.app.name()
    }

    fn phases(&self) -> usize {
        2
    }

    fn local_buffers(&self) -> Vec<LocalSpec> {
        self.tiles.local_specs()
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(self.img.buffer_usage())
    }

    fn run_phase(&self, phase: usize, ctx: &mut ItemCtx<'_>) {
        debug_assert_eq!(ctx.local_size(0), self.tiles.geom.tile_w);
        debug_assert_eq!(ctx.local_size(1), self.tiles.geom.tile_h);
        match phase {
            0 => load_tiles(
                ctx,
                &self.img,
                &self.tiles,
                &SchemeSpec::new(PerforationScheme::None),
            ),
            _ => tile_compute(self.app, ctx, &self.img, &self.tiles),
        }
    }
}

/// The paper's local memory-aware perforated kernel: perforated load,
/// local reconstruction, compute (3 phases).
pub struct PerforatedKernel {
    app: AppRef,
    img: ImageBinding,
    tiles: Tiles,
    config: ApproxConfig,
}

impl std::fmt::Debug for PerforatedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerforatedKernel")
            .field("app", &self.app.name())
            .field("img", &self.img)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl PerforatedKernel {
    /// Wraps `app` with the given perforation configuration. All input
    /// buffers are perforated: the primary input through the halo-padded
    /// tile and, when the app uses one, the auxiliary input through a
    /// halo-0 tile with the same scheme.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::IllegalConfig`] if the configuration is
    /// invalid for the app's halo (see [`ApproxConfig::validate`]).
    pub fn new(
        app: AppRef,
        img: ImageBinding,
        config: ApproxConfig,
    ) -> Result<Self, crate::CoreError> {
        config.validate(app.halo())?;
        let tiles = Tiles::new(app, config.group);
        Ok(Self {
            app,
            img,
            tiles,
            config,
        })
    }

    /// The primary tile geometry of this kernel.
    pub fn geometry(&self) -> TileGeometry {
        self.tiles.geom
    }
}

impl Kernel for PerforatedKernel {
    fn name(&self) -> &str {
        self.app.name()
    }

    fn phases(&self) -> usize {
        3
    }

    fn local_buffers(&self) -> Vec<LocalSpec> {
        self.tiles.local_specs()
    }

    fn buffer_usage(&self) -> Option<BufferUse> {
        Some(self.img.buffer_usage())
    }

    fn run_phase(&self, phase: usize, ctx: &mut ItemCtx<'_>) {
        debug_assert_eq!(ctx.local_size(0), self.tiles.geom.tile_w);
        debug_assert_eq!(ctx.local_size(1), self.tiles.geom.tile_h);
        match phase {
            // (Ia) data perforation: sparse cooperative load of all tiles.
            0 => load_tiles(ctx, &self.img, &self.tiles, &self.config.scheme),
            // (Ib) data reconstruction in local memory.
            1 => {
                reconstruct_tile(
                    ctx,
                    TILE,
                    &self.tiles.geom,
                    &self.config.scheme.select,
                    self.config.reconstruction,
                );
                if let Some(aux_geom) = self.tiles.aux_geom {
                    reconstruct_tile(
                        ctx,
                        AUX_TILE,
                        &aux_geom,
                        &self.config.scheme.select,
                        self.config.reconstruction,
                    );
                }
            }
            // (II) original kernel body over the reconstructed tiles.
            _ => tile_compute(self.app, ctx, &self.img, &self.tiles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruction::Reconstruction;
    use crate::scheme::SkipLevel;
    use kp_gpu_sim::{Device, DeviceConfig, NdRange};

    /// 3×3 box blur: simple, halo-1, center-weighted enough for tests.
    struct Box3;

    impl StencilApp for Box3 {
        fn name(&self) -> &str {
            "box3"
        }

        fn halo(&self) -> usize {
            1
        }

        fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
            let mut acc = 0.0;
            for dy in -1..=1 {
                for dx in -1..=1 {
                    acc += win.at(dx, dy);
                }
            }
            win.ops(9);
            acc / 9.0
        }
    }

    /// Pointwise negation with aux offset: exercises halo-0 and aux reads.
    struct InvertPlusAux;

    impl StencilApp for InvertPlusAux {
        fn name(&self) -> &str {
            "invert-aux"
        }

        fn halo(&self) -> usize {
            0
        }

        fn uses_aux(&self) -> bool {
            true
        }

        fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
            let v = win.at(0, 0);
            let a = win.aux_at(0, 0);
            win.ops(2);
            1.0 - v + a
        }
    }

    fn checkerboard(w: usize, h: usize) -> Vec<f32> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                ((x + y) % 2) as f32
            })
            .collect()
    }

    fn ramp(w: usize, h: usize) -> Vec<f32> {
        (0..w * h).map(|i| (i / w) as f32).collect()
    }

    struct Bed {
        dev: Device,
        img: ImageBinding,
    }

    fn bed(data: &[f32], aux: Option<&[f32]>, w: usize, h: usize) -> Bed {
        let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
        let input = dev.create_buffer_from("in", data).unwrap();
        let aux = aux.map(|a| dev.create_buffer_from("aux", a).unwrap());
        let output = dev.create_buffer::<f32>("out", w * h).unwrap();
        Bed {
            dev,
            img: ImageBinding {
                input,
                aux,
                tiled: None,
                output,
                width: w,
                height: h,
            },
        }
    }

    fn cpu_box3(data: &[f32], w: usize, h: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; w * h];
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let mut acc = 0.0;
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        let cx = clamp_coord(x + dx, w);
                        let cy = clamp_coord(y + dy, h);
                        acc += data[cy * w + cx];
                    }
                }
                out[(y as usize) * w + x as usize] = acc / 9.0;
            }
        }
        out
    }

    #[test]
    fn accurate_global_matches_cpu_reference() {
        let (w, h) = (32, 32);
        let data = checkerboard(w, h);
        let mut bed = bed(&data, None, w, h);
        let kernel = AccurateGlobalKernel::new(&Box3, bed.img);
        bed.dev
            .launch(&kernel, NdRange::new_2d((w, h), (16, 16)).unwrap())
            .unwrap();
        let out = bed.dev.read_buffer::<f32>(bed.img.output).unwrap();
        let expect = cpu_box3(&data, w, h);
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn accurate_local_bitwise_matches_accurate_global() {
        let (w, h) = (64, 32);
        let data: Vec<f32> = (0..w * h)
            .map(|i| ((i * 37) % 251) as f32 / 250.0)
            .collect();
        let mut bed = bed(&data, None, w, h);
        let global = AccurateGlobalKernel::new(&Box3, bed.img);
        bed.dev
            .launch(&global, NdRange::new_2d((w, h), (16, 8)).unwrap())
            .unwrap();
        let out_global = bed.dev.read_buffer::<f32>(bed.img.output).unwrap();

        let local = AccurateLocalKernel::new(&Box3, bed.img, (16, 8));
        bed.dev
            .launch(&local, NdRange::new_2d((w, h), (16, 8)).unwrap())
            .unwrap();
        let out_local = bed.dev.read_buffer::<f32>(bed.img.output).unwrap();
        assert_eq!(out_global, out_local);
    }

    #[test]
    fn accurate_local_needs_fewer_read_transactions_than_global() {
        let (w, h) = (128, 128);
        let data = checkerboard(w, h);
        let mut bed = bed(&data, None, w, h);
        let range = NdRange::new_2d((w, h), (16, 16)).unwrap();
        let g = bed
            .dev
            .launch(&AccurateGlobalKernel::new(&Box3, bed.img), range)
            .unwrap();
        let l = bed
            .dev
            .launch(&AccurateLocalKernel::new(&Box3, bed.img, (16, 16)), range)
            .unwrap();
        assert!(
            l.stats.global_read_transactions < g.stats.global_read_transactions,
            "local {} vs global {}",
            l.stats.global_read_transactions,
            g.stats.global_read_transactions
        );
    }

    #[test]
    fn perforated_rows_li_exact_on_vertical_ramp() {
        // A vertical ramp is reconstructed exactly by LI, so the perforated
        // output equals the accurate output except at tile borders where
        // NN fallback applies — on a ramp with halo rows present, even
        // those match. Box blur of an exactly reconstructed tile is exact.
        let (w, h) = (32, 32);
        let data = ramp(w, h);
        let mut bed = bed(&data, None, w, h);
        let range = NdRange::new_2d((w, h), (16, 16)).unwrap();
        bed.dev
            .launch(&AccurateGlobalKernel::new(&Box3, bed.img), range)
            .unwrap();
        let accurate = bed.dev.read_buffer::<f32>(bed.img.output).unwrap();

        let cfg = ApproxConfig::rows1_li((16, 16));
        let kernel = PerforatedKernel::new(&Box3, bed.img, cfg).unwrap();
        bed.dev.launch(&kernel, range).unwrap();
        let perf = bed.dev.read_buffer::<f32>(bed.img.output).unwrap();

        // Rows whose windows only touch tile rows with both LI neighbors
        // in-tile must match exactly. The first padded row of the second
        // group band (global row 15, odd parity) reconstructs via the NN
        // border fallback, so outputs at y = 16 (whose window reads row 15
        // from the second band's tile) legitimately differ; the same
        // applies at the image's last rows.
        for y in (2..h - 2).filter(|y| ![15, 16, 17].contains(y)) {
            for x in 0..w {
                let i = y * w + x;
                assert!(
                    (accurate[i] - perf[i]).abs() < 1e-4,
                    "mismatch at ({x},{y}): {} vs {}",
                    accurate[i],
                    perf[i]
                );
            }
        }
    }

    #[test]
    fn perforated_reduces_read_transactions() {
        let (w, h) = (128, 128);
        let data = checkerboard(w, h);
        let mut bed = bed(&data, None, w, h);
        let range = NdRange::new_2d((w, h), (16, 16)).unwrap();
        let base = bed
            .dev
            .launch(&AccurateLocalKernel::new(&Box3, bed.img, (16, 16)), range)
            .unwrap();
        for cfg in [
            ApproxConfig::rows1_nn((16, 16)),
            ApproxConfig::rows2_nn((16, 16)),
            ApproxConfig::stencil1_nn((16, 16)),
        ] {
            let k = PerforatedKernel::new(&Box3, bed.img, cfg).unwrap();
            let r = bed.dev.launch(&k, range).unwrap();
            assert!(
                r.stats.global_read_transactions < base.stats.global_read_transactions,
                "{}: {} vs baseline {}",
                cfg.label(),
                r.stats.global_read_transactions,
                base.stats.global_read_transactions
            );
            assert!(
                r.timing.device_cycles < base.timing.device_cycles,
                "{}",
                cfg.label()
            );
        }
    }

    #[test]
    fn stencil_scheme_error_is_tiny_on_smooth_input() {
        let (w, h) = (64, 64);
        // Smooth 2D gradient.
        let data: Vec<f32> = (0..w * h)
            .map(|i| {
                let (x, y) = ((i % w) as f32, (i / w) as f32);
                (x + y) / ((w + h) as f32)
            })
            .collect();
        let mut bed = bed(&data, None, w, h);
        let range = NdRange::new_2d((w, h), (16, 16)).unwrap();
        bed.dev
            .launch(&AccurateGlobalKernel::new(&Box3, bed.img), range)
            .unwrap();
        let accurate = bed.dev.read_buffer::<f32>(bed.img.output).unwrap();
        let k = PerforatedKernel::new(&Box3, bed.img, ApproxConfig::stencil1_nn((16, 16))).unwrap();
        bed.dev.launch(&k, range).unwrap();
        let perf = bed.dev.read_buffer::<f32>(bed.img.output).unwrap();
        let mre: f32 = accurate
            .iter()
            .zip(&perf)
            .map(|(a, p)| (a - p).abs() / a.max(1e-2))
            .sum::<f32>()
            / accurate.len() as f32;
        assert!(mre < 0.01, "stencil scheme MRE too high: {mre}");
    }

    #[test]
    fn halo_zero_app_with_aux_works_perforated() {
        let (w, h) = (32, 16);
        let data = checkerboard(w, h);
        let aux = vec![0.25f32; w * h];
        let mut bed = bed(&data, Some(&aux), w, h);
        let range = NdRange::new_2d((w, h), (16, 8)).unwrap();
        let cfg = ApproxConfig {
            scheme: PerforationScheme::Rows(SkipLevel::Half).into(),
            reconstruction: Reconstruction::NearestNeighbor,
            group: (16, 8),
        };
        let k = PerforatedKernel::new(&InvertPlusAux, bed.img, cfg).unwrap();
        bed.dev.launch(&k, range).unwrap();
        let out = bed.dev.read_buffer::<f32>(bed.img.output).unwrap();
        // Loaded rows (even y) are exact: 1 - v + 0.25.
        for y in (0..h).step_by(2) {
            for x in 0..w {
                let expect = 1.0 - data[y * w + x] + 0.25;
                assert!((out[y * w + x] - expect).abs() < 1e-6);
            }
        }
        // Skipped rows are NN copies of a neighbor row's result.
        for y in (1..h).step_by(2) {
            for x in 0..w {
                let from_above = 1.0 - data[(y - 1) * w + x] + 0.25;
                let diff = (out[y * w + x] - from_above).abs();
                assert!(diff < 1e-6, "row {y} not reconstructed from neighbor");
            }
        }
    }

    #[test]
    fn illegal_config_rejected_at_construction() {
        let (w, h) = (16, 16);
        let data = checkerboard(w, h);
        let bed = bed(&data, None, w, h);
        // Stencil on a halo-0 app.
        let err =
            PerforatedKernel::new(&InvertPlusAux, bed.img, ApproxConfig::stencil1_nn((16, 16)));
        assert!(err.is_err());
    }

    #[test]
    fn perforated_without_reconstruction_leaves_zero_rows() {
        // Reproduces the "black lines" of paper Fig. 2b.
        let (w, h) = (16, 16);
        let data = vec![1.0f32; w * h];
        let mut bed = bed(&data, None, w, h);
        let cfg = ApproxConfig {
            scheme: PerforationScheme::Rows(SkipLevel::Half).into(),
            reconstruction: Reconstruction::None,
            group: (16, 16),
        };
        let k = PerforatedKernel::new(&InvertPlusAux, bed.img, cfg).unwrap();
        bed.dev
            .launch(&k, NdRange::new_2d((w, h), (16, 16)).unwrap())
            .unwrap();
        let out = bed.dev.read_buffer::<f32>(bed.img.output).unwrap();
        // invert(1.0) = 0.0 on loaded rows; invert(0.0) = 1.0 on zeroed rows.
        assert_eq!(out[0], 0.0);
        assert_eq!(out[w], 1.0);
    }
}
