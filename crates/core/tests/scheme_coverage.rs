//! Seeded-deterministic coverage suite for the perforation-validation fix:
//! every (scheme, tile) pair that `PerforationScheme::validate` accepts
//! must leave at least one loaded element in every reconstruction
//! neighborhood, at **every** tile alignment — the exact property whose
//! violation used to produce tiles with zero loaded rows under
//! `Rows2`/`Cols2`.
//!
//! The neighborhoods match `kp_core::reconstruction`: row schemes search
//! the padded column of the skipped element, column schemes its padded
//! row, and the stencil scheme clamps halo coordinates into the (always
//! loaded) interior. The `Random` scheme is deliberately out of scope for
//! the per-neighborhood guarantee — its ring search has an explicit `0.0`
//! fallback because no validation can bound a hash pattern — but its
//! `keep_fraction = 1.0` edge case (which `validate` explicitly permits)
//! must load everything.

use kp_core::{PerforationScheme, SkipLevel, TileGeometry};

/// Deterministic schemes whose reconstruction neighborhoods are exact.
fn deterministic_schemes() -> Vec<PerforationScheme> {
    vec![
        PerforationScheme::None,
        PerforationScheme::Rows(SkipLevel::Half),
        PerforationScheme::Rows(SkipLevel::ThreeQuarters),
        PerforationScheme::Columns(SkipLevel::Half),
        PerforationScheme::Columns(SkipLevel::ThreeQuarters),
        PerforationScheme::Stencil,
    ]
}

/// Every tile geometry the suite sweeps (work-group extents × halos,
/// including the degenerate 1-wide/1-high shapes that used to slip
/// through validation).
fn tiles() -> Vec<TileGeometry> {
    let mut tiles = Vec::new();
    for &tile_w in &[1usize, 2, 3, 4, 5, 8, 16] {
        for &tile_h in &[1usize, 2, 3, 4, 5, 8, 16] {
            for &halo in &[0usize, 1, 2] {
                tiles.push(TileGeometry::new(tile_w, tile_h, halo));
            }
        }
    }
    tiles
}

fn loads(
    scheme: &PerforationScheme,
    tile: &TileGeometry,
    g: (usize, usize),
    px: usize,
    py: usize,
) -> bool {
    let (gx, gy) = tile.global_of(g, px, py);
    scheme.loads(tile, px, py, gx, gy)
}

/// Group coordinates covering every period alignment (periods divide 4,
/// so a 5×5 grid of groups hits each (gy mod 4, gx mod 4) combination for
/// every tile extent).
fn groups() -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for gy in 0..5 {
        for gx in 0..5 {
            v.push((gx, gy));
        }
    }
    v
}

#[test]
fn every_validated_pair_has_a_loaded_neighbor_in_every_neighborhood() {
    for tile in tiles() {
        for scheme in deterministic_schemes() {
            if scheme.validate(&tile).is_err() {
                continue;
            }
            for group in groups() {
                for py in 0..tile.padded_h() {
                    for px in 0..tile.padded_w() {
                        if loads(&scheme, &tile, group, px, py) {
                            continue;
                        }
                        // Skipped element: its reconstruction neighborhood
                        // must contain a loaded element.
                        let ok =
                            match scheme {
                                PerforationScheme::None => unreachable!("loads everything"),
                                PerforationScheme::Rows(_) => (0..tile.padded_h())
                                    .any(|y| loads(&scheme, &tile, group, px, y)),
                                PerforationScheme::Columns(_) => (0..tile.padded_w())
                                    .any(|x| loads(&scheme, &tile, group, x, py)),
                                PerforationScheme::Stencil => {
                                    let cx = px.clamp(tile.halo, tile.halo + tile.tile_w - 1);
                                    let cy = py.clamp(tile.halo, tile.halo + tile.tile_h - 1);
                                    loads(&scheme, &tile, group, cx, cy)
                                }
                                PerforationScheme::Random { .. } => unreachable!("not swept"),
                            };
                        assert!(
                            ok,
                            "{scheme} on {}x{} halo {} group {:?}: skipped ({px},{py}) \
                             has no loaded neighbor",
                            tile.tile_w, tile.tile_h, tile.halo, group
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn rejected_period_geometries_really_do_have_empty_alignments() {
    // The validation is tight, not conservative: for every row/column
    // geometry rejected because the padded extent is below the period,
    // there exists a tile alignment with ZERO loaded rows/columns.
    for tile in tiles() {
        for level in [SkipLevel::Half, SkipLevel::ThreeQuarters] {
            let period = level.period() as usize;
            let rows = PerforationScheme::Rows(level);
            if rows.validate(&tile).is_err() && tile.padded_h() < period {
                // Alignment starting just past a loaded row misses all of
                // them: gy ∈ [1, 1 + padded_h) ⊆ [1, period).
                let empty =
                    (0..tile.padded_h()).all(|dy| !rows.loads(&tile, 0, dy, 0, 1 + dy as i64));
                assert!(
                    empty,
                    "{rows} rejected {}x{} halo {} but alignment gy=1 has loaded rows",
                    tile.tile_w, tile.tile_h, tile.halo
                );
            }
            let cols = PerforationScheme::Columns(level);
            if cols.validate(&tile).is_err() && tile.padded_w() < period {
                let empty =
                    (0..tile.padded_w()).all(|dx| !cols.loads(&tile, dx, 0, 1 + dx as i64, 0));
                assert!(empty);
            }
        }
    }
}

#[test]
fn random_full_keep_is_exactly_total_at_every_alignment() {
    for tile in [TileGeometry::new(3, 3, 1), TileGeometry::new(16, 8, 2)] {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let s = PerforationScheme::Random {
                keep_fraction: 1.0,
                seed,
            };
            assert!(s.validate(&tile).is_ok());
            for group in groups() {
                assert_eq!(s.fraction_loaded(&tile, group), 1.0);
            }
        }
    }
}
