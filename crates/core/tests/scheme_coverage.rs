//! Seeded-deterministic coverage suite for the perforation-validation fix:
//! every (scheme, tile) pair that `PerforationScheme::validate` accepts
//! must leave at least one loaded element in every reconstruction
//! neighborhood, at **every** tile alignment — the exact property whose
//! violation used to produce tiles with zero loaded rows under
//! `Rows2`/`Cols2`.
//!
//! The neighborhoods match `kp_core::reconstruction`: row schemes search
//! the padded column of the skipped element, column schemes its padded
//! row, and the stencil scheme clamps halo coordinates into the (always
//! loaded) interior. The `Random` scheme is deliberately out of scope for
//! the per-neighborhood guarantee — its ring search has an explicit `0.0`
//! fallback because no validation can bound a hash pattern — but its
//! `keep_fraction = 1.0` edge case (which `validate` explicitly permits)
//! must load everything.
//!
//! With the prefetch-layout axis the suite sweeps full `SchemeSpec`s:
//! layouts change where loads come *from*, never *which* elements are
//! resident, so every `(select, layout, tile, alignment)` combination that
//! `SchemeSpec::validate` accepts must satisfy the same neighbor property.

use kp_core::{LoadQuery, PerforationScheme, PrefetchLayout, SchemeSpec, SkipLevel, TileGeometry};

/// Deterministic schemes whose reconstruction neighborhoods are exact.
fn deterministic_schemes() -> Vec<PerforationScheme> {
    vec![
        PerforationScheme::None,
        PerforationScheme::Rows(SkipLevel::Half),
        PerforationScheme::Rows(SkipLevel::ThreeQuarters),
        PerforationScheme::Columns(SkipLevel::Half),
        PerforationScheme::Columns(SkipLevel::ThreeQuarters),
        PerforationScheme::Stencil,
    ]
}

/// All prefetch layouts of the second scheme axis.
fn layouts() -> Vec<PrefetchLayout> {
    vec![
        PrefetchLayout::RowMajor,
        PrefetchLayout::BurstTiled,
        PrefetchLayout::SystolicShift,
    ]
}

/// Every tile geometry the suite sweeps (work-group extents × halos,
/// including the degenerate 1-wide/1-high shapes that used to slip
/// through validation).
fn tiles() -> Vec<TileGeometry> {
    let mut tiles = Vec::new();
    for &tile_w in &[1usize, 2, 3, 4, 5, 8, 16] {
        for &tile_h in &[1usize, 2, 3, 4, 5, 8, 16] {
            for &halo in &[0usize, 1, 2] {
                tiles.push(TileGeometry::new(tile_w, tile_h, halo));
            }
        }
    }
    tiles
}

fn loads_raw(
    scheme: &PerforationScheme,
    tile: &TileGeometry,
    px: usize,
    py: usize,
    gx: i64,
    gy: i64,
) -> bool {
    scheme.loads(LoadQuery {
        tile,
        padded: (px, py),
        global: (gx, gy),
    })
}

fn loads(
    scheme: &PerforationScheme,
    tile: &TileGeometry,
    g: (usize, usize),
    px: usize,
    py: usize,
) -> bool {
    let (gx, gy) = tile.global_of(g, px, py);
    loads_raw(scheme, tile, px, py, gx, gy)
}

/// Group coordinates covering every period alignment (periods divide 4,
/// so a 5×5 grid of groups hits each (gy mod 4, gx mod 4) combination for
/// every tile extent).
fn groups() -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for gy in 0..5 {
        for gx in 0..5 {
            v.push((gx, gy));
        }
    }
    v
}

/// The neighbor property for one accepted `(select, tile, group)` combo:
/// every skipped element's reconstruction neighborhood holds a loaded one.
fn assert_neighbors_covered(scheme: &PerforationScheme, tile: &TileGeometry, label: &str) {
    for group in groups() {
        for py in 0..tile.padded_h() {
            for px in 0..tile.padded_w() {
                if loads(scheme, tile, group, px, py) {
                    continue;
                }
                // Skipped element: its reconstruction neighborhood must
                // contain a loaded element. `family_label` dispatch keeps
                // this compiling when new selection families appear
                // (`PerforationScheme` is `#[non_exhaustive]`).
                let ok = match scheme.family_label() {
                    "accurate" => unreachable!("loads everything"),
                    "rows" => (0..tile.padded_h()).any(|y| loads(scheme, tile, group, px, y)),
                    "cols" => (0..tile.padded_w()).any(|x| loads(scheme, tile, group, x, py)),
                    "stencil" => {
                        let cx = px.clamp(tile.halo, tile.halo + tile.tile_w - 1);
                        let cy = py.clamp(tile.halo, tile.halo + tile.tile_h - 1);
                        loads(scheme, tile, group, cx, cy)
                    }
                    other => unreachable!("family {other} not swept"),
                };
                assert!(
                    ok,
                    "{label} on {}x{} halo {} group {:?}: skipped ({px},{py}) \
                     has no loaded neighbor",
                    tile.tile_w, tile.tile_h, tile.halo, group
                );
            }
        }
    }
}

#[test]
fn every_validated_pair_has_a_loaded_neighbor_in_every_neighborhood() {
    for tile in tiles() {
        for scheme in deterministic_schemes() {
            if scheme.validate(&tile).is_err() {
                continue;
            }
            assert_neighbors_covered(&scheme, &tile, &scheme.to_string());
        }
    }
}

#[test]
fn every_validated_spec_keeps_the_neighbor_property_across_layouts() {
    // Layouts never change element selection, so the neighbor property
    // must hold for every accepted (select, layout, tile, alignment)
    // combination exactly as it does for the bare selection scheme — and
    // the layout axis must never *admit* a selection the bare scheme
    // rejects.
    for tile in tiles() {
        for select in deterministic_schemes() {
            for layout in layouts() {
                let spec = SchemeSpec::new(select).with_layout(layout);
                if spec.validate(&tile).is_err() {
                    continue;
                }
                assert!(
                    select.validate(&tile).is_ok(),
                    "{spec} accepted but bare {select} rejected on {}x{} halo {}",
                    tile.tile_w,
                    tile.tile_h,
                    tile.halo
                );
                assert_neighbors_covered(&select, &tile, &spec.to_string());
            }
        }
    }
}

#[test]
fn systolic_layout_only_validates_with_a_shiftable_halo() {
    // The systolic handoff sources vertical halo rows from neighbor
    // groups' resident tiles; that requires a halo to exist and to fit in
    // one neighbor's tile height.
    for tile in tiles() {
        let spec = SchemeSpec::new(PerforationScheme::Rows(SkipLevel::Half))
            .with_layout(PrefetchLayout::SystolicShift);
        let layout_ok = tile.halo >= 1 && tile.halo <= tile.tile_h;
        let select_ok = PerforationScheme::Rows(SkipLevel::Half)
            .validate(&tile)
            .is_ok();
        assert_eq!(
            spec.validate(&tile).is_ok(),
            layout_ok && select_ok,
            "{}x{} halo {}",
            tile.tile_w,
            tile.tile_h,
            tile.halo
        );
    }
}

#[test]
fn rejected_period_geometries_really_do_have_empty_alignments() {
    // The validation is tight, not conservative: for every row/column
    // geometry rejected because the padded extent is below the period,
    // there exists a tile alignment with ZERO loaded rows/columns.
    for tile in tiles() {
        for level in [SkipLevel::Half, SkipLevel::ThreeQuarters] {
            let period = level.period() as usize;
            let rows = PerforationScheme::Rows(level);
            if rows.validate(&tile).is_err() && tile.padded_h() < period {
                // Alignment starting just past a loaded row misses all of
                // them: gy ∈ [1, 1 + padded_h) ⊆ [1, period).
                let empty = (0..tile.padded_h())
                    .all(|dy| !loads_raw(&rows, &tile, 0, dy, 0, 1 + dy as i64));
                assert!(
                    empty,
                    "{rows} rejected {}x{} halo {} but alignment gy=1 has loaded rows",
                    tile.tile_w, tile.tile_h, tile.halo
                );
            }
            let cols = PerforationScheme::Columns(level);
            if cols.validate(&tile).is_err() && tile.padded_w() < period {
                let empty = (0..tile.padded_w())
                    .all(|dx| !loads_raw(&cols, &tile, dx, 0, 1 + dx as i64, 0));
                assert!(empty);
            }
        }
    }
}

#[test]
fn random_full_keep_is_exactly_total_at_every_alignment() {
    for tile in [TileGeometry::new(3, 3, 1), TileGeometry::new(16, 8, 2)] {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let s = PerforationScheme::Random {
                keep_fraction: 1.0,
                seed,
            };
            assert!(s.validate(&tile).is_ok());
            for group in groups() {
                assert_eq!(s.fraction_loaded(&tile, group), 1.0);
            }
        }
    }
}
