//! Online-adaptation acceptance: replaying a fixed request trace through
//! per-tenant controllers keeps **every** tenant inside its error budget
//! while **strictly reducing** total simulated launch cost versus serving
//! without adaptation (every request on the most-accurate scheme), and
//! the whole replay is deterministic.

use kp_core::{
    fig8_specs, ApproxConfig, ErrorMetric, ImageInput, RunSpec, StencilApp, SweepContext, Window,
};
use kp_gpu_sim::DeviceConfig;
use kp_tune::{sweep_cached, AdaptController, Rung, Sla, TuneDb, WarmStart};

struct Blur;

impl StencilApp for Blur {
    fn name(&self) -> &str {
        "blur"
    }

    fn halo(&self) -> usize {
        1
    }

    fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
        let mut acc = 0.0;
        for dy in -1..=1 {
            for dx in -1..=1 {
                acc += win.at(dx, dy);
            }
        }
        win.ops(9);
        acc / 9.0
    }
}

/// The deterministic request-trace generator the bench suites use.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish jitter in `[0.9, 1.1]`.
    fn jitter(&mut self) -> f64 {
        0.9 + 0.2 * (self.next() % 1000) as f64 / 999.0
    }
}

fn ladder_from_cached_sweep() -> Vec<kp_core::SweepOutcome> {
    let (w, h) = (48, 48);
    let data: Vec<f32> = (0..w * h)
        .map(|i| {
            let (x, y) = (i % w, i / w);
            0.5 + 0.3 * ((x as f32 * 0.7).sin() * (y as f32 * 0.3).cos())
        })
        .collect();
    let ctx = SweepContext {
        app: &Blur,
        input: ImageInput::new(&data, w, h).unwrap(),
        metric: ErrorMetric::MeanRelative,
        device: DeviceConfig::firepro_w5100(),
        baseline: RunSpec::Baseline { group: (16, 16) },
    };
    // The accurate local-memory config anchors rung 0; fig8 provides the
    // perforated rungs.
    let mut specs = vec![RunSpec::Perforated(ApproxConfig::accurate((16, 16)))];
    specs.extend(fig8_specs((16, 16), 1));
    let mut db = TuneDb::in_memory();
    sweep_cached(&ctx, &specs, &mut db, "adapt", WarmStart::Trust).unwrap()
}

/// Replays `requests` through one tenant controller. Observed error is
/// the chosen rung's calibrated error under deterministic ±10% jitter;
/// observed cost is the rung's calibrated simulated seconds. Returns
/// (adapted cost, no-adaptation cost, controller).
fn replay(
    outcomes: &[kp_core::SweepOutcome],
    sla: Sla,
    requests: usize,
    seed: u64,
) -> (f64, f64, AdaptController) {
    let mut controller = AdaptController::from_outcomes(outcomes, sla).unwrap();
    let accurate_seconds = controller.ladder()[0].seconds;
    let mut rng = XorShift(seed);
    let mut adapted_cost = 0.0;
    for _ in 0..requests {
        let rung: &Rung = controller.current();
        let (err, sec) = (rung.error * rng.jitter(), rung.seconds);
        adapted_cost += sec;
        controller.observe(err, sec);
    }
    (adapted_cost, accurate_seconds * requests as f64, controller)
}

#[test]
fn every_tenant_meets_its_budget_while_total_cost_strictly_drops() {
    let outcomes = ladder_from_cached_sweep();
    let ladder_probe = AdaptController::from_outcomes(&outcomes, Sla::with_budget(1.0)).unwrap();
    assert!(
        ladder_probe.ladder().len() >= 2,
        "need at least one perforated rung to adapt into"
    );
    // Budgets derived from the measured ladder so the test tracks the
    // simulator instead of hard-coding error magnitudes: one tenant that
    // can just afford rung 1, one that can afford the whole ladder, one
    // that can afford nothing but accuracy.
    let e1 = ladder_probe.ladder()[1].error;
    let e_max = ladder_probe
        .ladder()
        .iter()
        .map(|r| r.error)
        .fold(0.0, f64::max);
    let tenants = [
        ("just-rung1", Sla::with_budget(e1 * 1.2)),
        ("everything", Sla::with_budget(e_max * 1.3)),
        ("accurate-only", Sla::with_budget(e1 * 0.5)),
    ];

    let requests = 640;
    let mut total_adapted = 0.0;
    let mut total_baseline = 0.0;
    let mut any_stepped = false;
    for (i, (name, sla)) in tenants.iter().enumerate() {
        let (adapted, baseline, controller) = replay(&outcomes, *sla, requests, 0x5EED + i as u64);
        total_adapted += adapted;
        total_baseline += baseline;
        let stats = controller.stats();
        // Budget accounting: mean observed error within the declared
        // budget, and no decision window ever blew through it.
        assert!(
            stats.mean_error() <= sla.error_budget,
            "tenant {name}: mean error {} exceeds budget {}",
            stats.mean_error(),
            sla.error_budget
        );
        assert_eq!(
            stats.violations, 0,
            "tenant {name}: {} window(s) violated the budget",
            stats.violations
        );
        assert_eq!(stats.observations, requests as u64);
        any_stepped |= stats.steps_up > 0;
        if *name == "accurate-only" {
            assert_eq!(
                controller.current_index(),
                0,
                "tenant {name} must never leave the accurate rung"
            );
            assert!((adapted - baseline).abs() < 1e-12);
        } else {
            assert!(
                controller.current_index() > 0,
                "tenant {name} should have earned a faster rung"
            );
            assert!(
                adapted < baseline,
                "tenant {name}: adapted cost {adapted} not below baseline {baseline}"
            );
        }
    }
    assert!(any_stepped, "adaptation never engaged");
    assert!(
        total_adapted < total_baseline,
        "total adapted cost {total_adapted} not strictly below no-adaptation {total_baseline}"
    );
}

#[test]
fn replaying_the_same_trace_is_deterministic() {
    let outcomes = ladder_from_cached_sweep();
    let e1 = AdaptController::from_outcomes(&outcomes, Sla::with_budget(1.0))
        .unwrap()
        .ladder()[1]
        .error;
    let sla = Sla::with_budget(e1 * 1.2);
    let (cost_a, base_a, ca) = replay(&outcomes, sla, 320, 42);
    let (cost_b, base_b, cb) = replay(&outcomes, sla, 320, 42);
    assert_eq!(cost_a.to_bits(), cost_b.to_bits());
    assert_eq!(base_a.to_bits(), base_b.to_bits());
    assert_eq!(ca.current_index(), cb.current_index());
    assert_eq!(ca.stats(), cb.stats());
}
