//! Differential guarantees of the persistent tuning cache:
//!
//! * cached, warm-started and re-validated sweeps return **bit-identical**
//!   [`SweepOutcome`] rankings to a cold [`kp_core::sweep`];
//! * corrupt files, version mismatches and foreign device fingerprints
//!   degrade to a clean cold sweep — never a panic, never a stale hit;
//! * exact hits perform **zero** simulated launches.

use kp_core::{
    fig8_specs, pareto_outcomes, sweep, ErrorMetric, ImageInput, RunSpec, StencilApp, SweepContext,
    SweepOutcome, Window,
};
use kp_gpu_sim::DeviceConfig;
use kp_tune::{outcomes_bit_equal, sweep_cached, TuneDb, TuneKey, WarmStart};

use std::path::PathBuf;

struct Blur;

impl StencilApp for Blur {
    fn name(&self) -> &str {
        "blur"
    }

    fn halo(&self) -> usize {
        1
    }

    fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
        let mut acc = 0.0;
        for dy in -1..=1 {
            for dx in -1..=1 {
                acc += win.at(dx, dy);
            }
        }
        win.ops(9);
        acc / 9.0
    }
}

fn noisy_image(w: usize, h: usize) -> Vec<f32> {
    (0..w * h)
        .map(|i| {
            let (x, y) = (i % w, i / w);
            0.5 + 0.3 * ((x as f32 * 0.7).sin() * (y as f32 * 0.3).cos())
        })
        .collect()
}

fn context<'a>(data: &'a [f32], w: usize, h: usize) -> SweepContext<'a> {
    SweepContext {
        app: &Blur,
        input: ImageInput::new(data, w, h).unwrap(),
        metric: ErrorMetric::MeanRelative,
        device: DeviceConfig::firepro_w5100(),
        baseline: RunSpec::Baseline { group: (16, 16) },
    }
}

fn assert_bit_identical(a: &[SweepOutcome], b: &[SweepOutcome], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (x, y) in a.iter().zip(b) {
        assert!(
            outcomes_bit_equal(x, y),
            "{what}: outcome diverged: {x:?} vs {y:?}"
        );
    }
}

fn temp_db(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kp_tune_cache_tests");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn exact_hit_is_bit_identical_and_launch_free() {
    let (w, h) = (48, 48);
    let data = noisy_image(w, h);
    let ctx = context(&data, w, h);
    let specs = fig8_specs((16, 16), 1);

    let cold = sweep(&ctx, &specs).unwrap();

    let mut db = TuneDb::in_memory();
    let miss = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_bit_identical(&cold, &miss, "cold-miss");
    assert_eq!(db.stats().misses, 1);

    db.reset_stats();
    let hit = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_bit_identical(&cold, &hit, "exact-hit");
    assert_eq!(db.stats().exact_hits, 1);
    assert_eq!(db.stats().sim_launches, 0, "exact hits must not simulate");
    assert_eq!(db.stats().launches_avoided, specs.len() as u64);

    // Rankings (Pareto fronts) are identical too — same bits, same order.
    assert_eq!(pareto_outcomes(&cold), pareto_outcomes(&hit));
}

#[test]
fn warm_start_partial_hit_matches_cold_sweep() {
    let (w, h) = (48, 48);
    let data = noisy_image(w, h);
    let ctx = context(&data, w, h);
    let full = fig8_specs((16, 16), 1);
    let subset = &full[..2];

    let cold_full = sweep(&ctx, &full).unwrap();

    // Seed the cache with only a subset, then ask for the full list: the
    // store serves the subset, sweeps the rest, and the merge must be
    // bit-identical to the cold full sweep.
    let mut db = TuneDb::in_memory();
    sweep_cached(&ctx, subset, &mut db, "fig8", WarmStart::Trust).unwrap();
    db.reset_stats();
    let warm = sweep_cached(&ctx, &full, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_bit_identical(&cold_full, &warm, "partial-warm");
    assert_eq!(db.stats().warm_hits, 1);
    assert_eq!(db.stats().launches_avoided, subset.len() as u64);
    assert_eq!(
        db.stats().sim_launches,
        2 + (full.len() - subset.len()) as u64,
        "only the missing candidates (+ reference & baseline) simulate"
    );
}

#[test]
fn validate_mode_revalidates_winners_and_stays_bit_identical() {
    let (w, h) = (48, 48);
    let data = noisy_image(w, h);
    let ctx = context(&data, w, h);
    let specs = fig8_specs((16, 16), 1);

    let cold = sweep(&ctx, &specs).unwrap();
    let winners = pareto_outcomes(&cold).len() as u64;

    let mut db = TuneDb::in_memory();
    sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Validate).unwrap();
    db.reset_stats();
    let validated = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Validate).unwrap();
    assert_bit_identical(&cold, &validated, "validate-warm");
    assert_eq!(db.stats().warm_hits, 1);
    assert_eq!(db.stats().stale, 0);
    assert_eq!(
        db.stats().sim_launches,
        2 + winners,
        "validate re-measures exactly the Pareto winners"
    );
    assert_eq!(db.stats().launches_avoided, specs.len() as u64 - winners);
}

#[test]
fn validate_mode_evicts_stale_entries_and_resweeps_cold() {
    let (w, h) = (48, 48);
    let data = noisy_image(w, h);
    let ctx = context(&data, w, h);
    let specs = fig8_specs((16, 16), 1);

    let mut db = TuneDb::in_memory();
    sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();

    // Poison the stored numbers: a re-validation must detect the
    // mismatch, evict, and answer with a fresh cold sweep.
    let key = TuneKey::for_sweep(&ctx, "fig8");
    let mut poisoned = db.entry(&key).unwrap().outcomes.clone();
    for o in &mut poisoned {
        o.seconds *= 2.0;
        o.speedup /= 2.0;
    }
    db.evict(&key);
    db.record(&key, &poisoned);

    db.reset_stats();
    let cold = sweep(&ctx, &specs).unwrap();
    let recovered = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Validate).unwrap();
    assert_bit_identical(&cold, &recovered, "stale-recovery");
    assert_eq!(db.stats().stale, 1);
    assert_eq!(db.stats().misses, 1);
    // The store now holds the fresh numbers: a Trust hit serves them.
    db.reset_stats();
    let hit = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_bit_identical(&cold, &hit, "post-recovery-hit");
    assert_eq!(db.stats().exact_hits, 1);
}

#[test]
fn persisted_store_serves_bit_identical_outcomes_across_handles() {
    let (w, h) = (48, 48);
    let data = noisy_image(w, h);
    let ctx = context(&data, w, h);
    let specs = fig8_specs((16, 16), 1);
    let path = temp_db("persist.db");

    let cold = {
        let mut db = TuneDb::open(&path);
        let out = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
        db.save().unwrap();
        out
    };

    // A brand-new handle (fresh process, conceptually) hits warm.
    let mut db = TuneDb::open(&path);
    assert_eq!(db.load_report().entries, 1);
    let warm = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_bit_identical(&cold, &warm, "cross-handle");
    assert_eq!(db.stats().exact_hits, 1);
    assert_eq!(db.stats().sim_launches, 0);
}

#[test]
fn corrupt_version_mismatch_and_foreign_fingerprint_degrade_to_cold() {
    let (w, h) = (32, 32);
    let data = noisy_image(w, h);
    let ctx = context(&data, w, h);
    let specs = fig8_specs((16, 16), 1);
    let cold = sweep(&ctx, &specs).unwrap();

    // Corrupt file.
    let path = temp_db("corrupt.db");
    std::fs::write(
        &path,
        "kp-tune-db v1\nentry total nonsense\nhalf an outcome",
    )
    .unwrap();
    let mut db = TuneDb::open(&path);
    let out = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_bit_identical(&cold, &out, "corrupt-file");
    assert_eq!(db.stats().misses, 1);

    // Version mismatch.
    let path = temp_db("version.db");
    std::fs::write(&path, "kp-tune-db v999\nentry whatever\nend\n").unwrap();
    let mut db = TuneDb::open(&path);
    assert!(db.load_report().version_mismatch);
    let out = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_bit_identical(&cold, &out, "version-mismatch");
    assert_eq!(db.stats().misses, 1);
    // Saving rewrites the store at the current version; the next handle
    // loads it cleanly and hits.
    db.save().unwrap();
    let mut db = TuneDb::open(&path);
    assert!(!db.load_report().version_mismatch);
    let out = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_bit_identical(&cold, &out, "rewritten-store");
    assert_eq!(db.stats().exact_hits, 1);

    // Foreign device fingerprint: entries recorded for one device model
    // are invisible to another (different key), so the sweep is cold —
    // and records under the new fingerprint without clobbering the old.
    let path = temp_db("foreign.db");
    let mut db = TuneDb::open(&path);
    sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_eq!(db.len(), 1);
    let mut foreign_ctx = context(&data, w, h);
    foreign_ctx.device.global_issue_cycles += 1;
    db.reset_stats();
    let foreign_cold = sweep(&foreign_ctx, &specs).unwrap();
    let out = sweep_cached(&foreign_ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_bit_identical(&foreign_cold, &out, "foreign-fingerprint");
    assert_eq!(db.stats().misses, 1);
    assert_eq!(db.stats().exact_hits, 0);
    assert_eq!(db.len(), 2, "both device models coexist in the store");
    // The two entries hold genuinely different numbers (the timing
    // parameter changed), proving the miss was mandatory.
    assert!(cold
        .iter()
        .zip(&foreign_cold)
        .any(|(a, b)| a.seconds.to_bits() != b.seconds.to_bits()));
}

#[test]
fn different_input_content_misses_despite_identical_shape() {
    let (w, h) = (32, 32);
    let data_a = noisy_image(w, h);
    let mut data_b = data_a.clone();
    data_b[0] += 0.25; // same size, different content
    let ctx_a = context(&data_a, w, h);
    let ctx_b = context(&data_b, w, h);
    let specs = fig8_specs((16, 16), 1);

    let mut db = TuneDb::in_memory();
    sweep_cached(&ctx_a, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    db.reset_stats();
    let cold_b = sweep(&ctx_b, &specs).unwrap();
    let out = sweep_cached(&ctx_b, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    assert_bit_identical(&cold_b, &out, "content-miss");
    assert_eq!(db.stats().misses, 1, "content digest must key the entry");
}

#[test]
fn families_do_not_alias() {
    let (w, h) = (32, 32);
    let data = noisy_image(w, h);
    let ctx = context(&data, w, h);
    let specs = fig8_specs((16, 16), 1);

    let mut db = TuneDb::in_memory();
    sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust).unwrap();
    db.reset_stats();
    sweep_cached(&ctx, &specs, &mut db, "other-family", WarmStart::Trust).unwrap();
    assert_eq!(db.stats().misses, 1, "families are distinct cache keys");
    assert_eq!(db.len(), 2);
}
