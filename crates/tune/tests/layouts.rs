//! Layout axis through the tuning cache: candidates differing only in
//! [`kp_core::PrefetchLayout`] must never alias a cache slot (their labels
//! carry the layout suffix), and a non-stencil workload must tune through
//! [`sweep_cached`] end to end.

use kp_apps::RegionSum;
use kp_core::{
    layout_specs, ApproxConfig, ErrorMetric, ImageInput, PrefetchLayout, RunSpec, SweepContext,
};
use kp_gpu_sim::DeviceConfig;
use kp_tune::{outcomes_bit_equal, sweep_cached, TuneDb, TuneKey, WarmStart};

fn image(w: usize, h: usize) -> Vec<f32> {
    (0..w * h).map(|i| ((i * 31) % 97) as f32 / 96.0).collect()
}

#[test]
fn layout_candidates_never_alias_cache_slots() {
    let (w, h) = (64, 64);
    let data = image(w, h);
    let ctx = SweepContext {
        app: &RegionSum,
        input: ImageInput::new(&data, w, h).unwrap(),
        metric: ErrorMetric::MeanRelative,
        // Burst pricing below the strided price, so the layouts differ in
        // simulated seconds, not just in label.
        device: DeviceConfig::firepro_w5100().with_burst_discount(8),
        baseline: RunSpec::Baseline { group: (16, 16) },
    };
    // A column scheme touches every tile row, so the burst-tiled copy
    // turns the whole prefetch into one contiguous block run; a row scheme
    // at this tile width would skip entire 64 B blocks and leave no runs.
    let cfg = ApproxConfig::cols1_nn((16, 16));
    let specs = [
        RunSpec::Perforated(cfg),
        RunSpec::Perforated(cfg.with_layout(PrefetchLayout::BurstTiled)),
    ];

    let mut db = TuneDb::in_memory();
    let cold = sweep_cached(&ctx, &specs, &mut db, "layout", WarmStart::Trust).unwrap();
    assert_eq!(cold.len(), 2);
    assert_eq!(cold[0].label, "Cols1:NN");
    assert_eq!(cold[1].label, "Cols1:NN@burst");
    // Same selection ⇒ same error; different layout ⇒ different seconds
    // under the burst discount. If the labels aliased, the cache could
    // serve one candidate's timing for the other.
    assert_eq!(cold[0].error.to_bits(), cold[1].error.to_bits());
    assert!(
        cold[1].seconds < cold[0].seconds,
        "burst {} vs strided {}",
        cold[1].seconds,
        cold[0].seconds
    );

    // A repeat lookup is an exact hit serving both slots bit-identically.
    let launches_before = db.stats().sim_launches;
    let warm = sweep_cached(&ctx, &specs, &mut db, "layout", WarmStart::Trust).unwrap();
    assert_eq!(db.stats().sim_launches, launches_before);
    assert_eq!(db.stats().exact_hits, 1);
    for (c, w) in cold.iter().zip(&warm) {
        assert!(outcomes_bit_equal(c, w));
    }
}

#[test]
fn non_stencil_workload_tunes_through_the_cache() {
    let (w, h) = (48, 48);
    let data = image(w, h);
    let ctx = SweepContext {
        app: &RegionSum,
        input: ImageInput::new(&data, w, h).unwrap(),
        metric: ErrorMetric::MeanRelative,
        device: DeviceConfig::firepro_w5100().with_burst_discount(8),
        baseline: RunSpec::Baseline { group: (16, 16) },
    };
    // The workload is halo-0, so the layout family holds row-major + burst
    // variants of each fig8 config (systolic needs a halo).
    let specs = layout_specs((16, 16), 0);
    assert!(specs.len() >= 6);
    assert!(specs.iter().all(|s| !s.label().contains("@systolic")));

    let mut db = TuneDb::in_memory();
    let outcomes = sweep_cached(&ctx, &specs, &mut db, "layout", WarmStart::Trust).unwrap();
    assert_eq!(outcomes.len(), specs.len());
    for o in &outcomes {
        assert!(o.seconds > 0.0, "{}", o.label);
        assert!(o.error.is_finite(), "{}", o.label);
        assert!(o.speedup > 0.0, "{}", o.label);
    }
    // The key carries the workload's name, and the burst/shift prices are
    // part of the device fingerprint: retuning under different burst
    // pricing can never hit this entry.
    let key = TuneKey::for_sweep(&ctx, "layout");
    assert_eq!(key.app, "regionsum");
    let other = TuneKey {
        fingerprint: DeviceConfig::firepro_w5100().fingerprint(),
        ..key.clone()
    };
    assert_ne!(key, other);
}
