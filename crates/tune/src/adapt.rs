//! Online SLA-driven scheme adaptation for the serving path.
//!
//! One [`AdaptController`] per tenant walks a **ladder** of perforation
//! schemes — the cached Pareto front of a sweep, ordered from most
//! accurate (rung 0) to most aggressive — and steps up or down based on
//! the errors and simulated latencies it *observes* per request
//! (calibrated outcome errors at admission, [`LaunchReport`] seconds at
//! completion; the controller does not care which, it only sees
//! numbers).
//!
//! ## Determinism
//!
//! A controller is a pure fold over its observation sequence: no clocks,
//! no randomness. Replaying the same request trace through the same
//! ladder and [`Sla`] reproduces the same step sequence exactly.
//!
//! ## Hysteresis & bounded step rate
//!
//! Decisions happen only at window boundaries (every [`Sla::window`]
//! observations) and move **at most one rung** — the bounded step rate.
//! Stepping down (toward accuracy) triggers when the window's mean error
//! crosses `high_water × error_budget`; stepping up (toward speed)
//! additionally requires the *next* rung's calibrated error to fit under
//! the same high-water mark, so the controller cannot oscillate onto a
//! rung it would immediately have to leave: the `[low_water, high_water]`
//! gap is the hysteresis band.
//!
//! [`LaunchReport`]: kp_gpu_sim::LaunchReport

use kp_core::{pareto_outcomes, SweepOutcome};

use crate::error::TuneError;

/// The per-tenant service-level agreement the controller enforces.
#[derive(Debug, Clone, Copy)]
pub struct Sla {
    /// Mean observed per-request error must stay at or below this.
    pub error_budget: f64,
    /// Step **down** (more accurate) when a window's mean error exceeds
    /// `high_water × error_budget`; a candidate rung must fit under the
    /// same mark to be stepped **up** to. In `(0, 1]`.
    pub high_water: f64,
    /// Step **up** (more aggressive) only when the window's mean error is
    /// at or below `low_water × error_budget`. In `[0, high_water)`.
    pub low_water: f64,
    /// Observations per decision window (the inverse step-rate bound:
    /// at most one rung step per `window` requests).
    pub window: usize,
}

impl Sla {
    /// A reasonable default shape around a given error budget: decide
    /// every 16 requests, step down above 90% budget utilization, step
    /// up below 60%.
    pub fn with_budget(error_budget: f64) -> Self {
        Self {
            error_budget,
            high_water: 0.9,
            low_water: 0.6,
            window: 16,
        }
    }

    fn validate(&self) -> Result<(), TuneError> {
        if !self.error_budget.is_finite() || self.error_budget < 0.0 {
            return Err(TuneError::Config(format!(
                "error_budget must be finite and >= 0, got {}",
                self.error_budget
            )));
        }
        if !(0.0 < self.high_water && self.high_water <= 1.0) {
            return Err(TuneError::Config(format!(
                "high_water must be in (0, 1], got {}",
                self.high_water
            )));
        }
        if !(0.0..1.0).contains(&self.low_water) || self.low_water >= self.high_water {
            return Err(TuneError::Config(format!(
                "low_water must be in [0, high_water), got {} (high {})",
                self.low_water, self.high_water
            )));
        }
        if self.window == 0 {
            return Err(TuneError::Config("window must be >= 1".into()));
        }
        Ok(())
    }
}

/// One rung of the adaptation ladder: a scheme with its calibrated
/// numbers.
#[derive(Debug, Clone)]
pub struct Rung {
    /// Scheme label (matches the [`SweepOutcome`] it came from).
    pub label: String,
    /// Work-group size of the scheme.
    pub group: (usize, usize),
    /// Calibrated error of the scheme (from the sweep).
    pub error: f64,
    /// Calibrated simulated seconds per request.
    pub seconds: f64,
    /// Calibrated speedup over the sweep baseline.
    pub speedup: f64,
}

/// A step the controller took at a window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Moved one rung toward speed (more aggressive perforation).
    Up,
    /// Moved one rung toward accuracy.
    Down,
}

/// Aggregate accounting of one controller (per tenant).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdaptStats {
    /// Observations folded in.
    pub observations: u64,
    /// Steps toward speed.
    pub steps_up: u64,
    /// Steps toward accuracy.
    pub steps_down: u64,
    /// Sum of observed errors (budget accounting: the consumed error).
    pub error_sum: f64,
    /// Sum of observed simulated seconds (the latency/cost side).
    pub seconds_sum: f64,
    /// Windows whose mean error exceeded the full budget (SLA
    /// violations — the controller steps down, but the window already
    /// happened).
    pub violations: u64,
}

impl AdaptStats {
    /// Mean observed error so far (0 when nothing observed).
    pub fn mean_error(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.error_sum / self.observations as f64
        }
    }
}

/// Online per-tenant scheme selector over a cached Pareto ladder.
#[derive(Debug, Clone)]
pub struct AdaptController {
    ladder: Vec<Rung>,
    sla: Sla,
    current: usize,
    window_error: f64,
    window_count: usize,
    stats: AdaptStats,
}

impl AdaptController {
    /// Builds a controller from sweep outcomes: keeps the **Pareto
    /// front** (no rung is both slower and less accurate than another),
    /// drops non-finite rows, orders rungs from most accurate to most
    /// aggressive, and starts at rung 0 (most accurate — the controller
    /// earns speed, it never assumes it).
    ///
    /// # Errors
    ///
    /// [`TuneError::Config`] when the SLA is malformed or no usable rung
    /// remains.
    pub fn from_outcomes(outcomes: &[SweepOutcome], sla: Sla) -> Result<Self, TuneError> {
        sla.validate()?;
        let finite: Vec<SweepOutcome> = outcomes
            .iter()
            .filter(|o| o.error.is_finite() && o.seconds.is_finite() && o.speedup.is_finite())
            .cloned()
            .collect();
        let mut ladder: Vec<Rung> = pareto_outcomes(&finite)
            .into_iter()
            .map(|i| Rung {
                label: finite[i].label.clone(),
                group: finite[i].group,
                error: finite[i].error,
                seconds: finite[i].seconds,
                speedup: finite[i].speedup,
            })
            .collect();
        // Most accurate first; ties broken by cost then label so the
        // ladder is deterministic for any input order.
        ladder.sort_by(|a, b| {
            a.error
                .total_cmp(&b.error)
                .then(a.seconds.total_cmp(&b.seconds))
                .then(a.label.cmp(&b.label))
        });
        if ladder.is_empty() {
            return Err(TuneError::Config(
                "adaptation ladder needs at least one finite outcome".into(),
            ));
        }
        Ok(Self {
            ladder,
            sla,
            current: 0,
            window_error: 0.0,
            window_count: 0,
            stats: AdaptStats::default(),
        })
    }

    /// The rung currently selected for new requests.
    pub fn current(&self) -> &Rung {
        &self.ladder[self.current]
    }

    /// Index of the current rung (0 = most accurate).
    pub fn current_index(&self) -> usize {
        self.current
    }

    /// The full ladder, most accurate first.
    pub fn ladder(&self) -> &[Rung] {
        &self.ladder
    }

    /// The SLA under enforcement.
    pub fn sla(&self) -> &Sla {
        &self.sla
    }

    /// Accounting so far.
    pub fn stats(&self) -> &AdaptStats {
        &self.stats
    }

    /// Folds one request observation (its error and simulated seconds)
    /// into the controller. Returns the step taken, if this observation
    /// closed a decision window that demanded one.
    ///
    /// Non-finite observations are treated as worst-case (a full budget's
    /// worth of error), so a broken signal drives the controller toward
    /// accuracy instead of poisoning the arithmetic.
    pub fn observe(&mut self, error: f64, sim_seconds: f64) -> Option<Step> {
        let error = if error.is_finite() {
            error
        } else {
            self.sla.error_budget
        };
        self.stats.observations += 1;
        self.stats.error_sum += error;
        if sim_seconds.is_finite() {
            self.stats.seconds_sum += sim_seconds;
        }
        self.window_error += error;
        self.window_count += 1;
        if self.window_count < self.sla.window {
            return None;
        }
        let mean = self.window_error / self.window_count as f64;
        self.window_error = 0.0;
        self.window_count = 0;
        self.decide(mean)
    }

    fn decide(&mut self, window_mean: f64) -> Option<Step> {
        let budget = self.sla.error_budget;
        if window_mean > budget {
            self.stats.violations += 1;
        }
        if window_mean > self.sla.high_water * budget {
            if self.current > 0 {
                self.current -= 1;
                self.stats.steps_down += 1;
                return Some(Step::Down);
            }
            return None;
        }
        if window_mean <= self.sla.low_water * budget {
            if let Some(next) = self.ladder.get(self.current + 1) {
                // Hysteresis: only climb onto a rung that fits under the
                // step-down threshold, otherwise we would bounce.
                if next.error <= self.sla.high_water * budget {
                    self.current += 1;
                    self.stats.steps_up += 1;
                    return Some(Step::Up);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(label: &str, speedup: f64, error: f64) -> SweepOutcome {
        SweepOutcome {
            label: label.into(),
            group: (16, 16),
            seconds: 1.0 / speedup,
            speedup,
            error,
            read_transactions: 0,
        }
    }

    fn ladder() -> Vec<SweepOutcome> {
        vec![
            outcome("accurate", 1.0, 0.0),
            outcome("mild", 1.6, 0.02),
            outcome("aggressive", 2.5, 0.08),
        ]
    }

    fn sla() -> Sla {
        Sla {
            error_budget: 0.05,
            high_water: 0.9,
            low_water: 0.6,
            window: 4,
        }
    }

    #[test]
    fn ladder_is_pareto_sorted_and_starts_accurate() {
        let mut outcomes = ladder();
        outcomes.push(outcome("dominated", 1.1, 0.07)); // slower & worse than mild
        outcomes.push(outcome("nan", f64::NAN, 0.01));
        let c = AdaptController::from_outcomes(&outcomes, sla()).unwrap();
        let labels: Vec<&str> = c.ladder().iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["accurate", "mild", "aggressive"]);
        assert_eq!(c.current().label, "accurate");
    }

    #[test]
    fn steps_up_only_into_rungs_that_fit() {
        let mut c = AdaptController::from_outcomes(&ladder(), sla()).unwrap();
        // Window of zero-error observations: climb to "mild"
        // (0.02 <= 0.9*0.05).
        for _ in 0..3 {
            assert_eq!(c.observe(0.0, 1.0), None);
        }
        assert_eq!(c.observe(0.0, 1.0), Some(Step::Up));
        assert_eq!(c.current().label, "mild");
        // "aggressive" (0.08) exceeds high_water*budget (0.045): even a
        // perfect window must not climb onto it.
        for _ in 0..4 {
            c.observe(0.0, 1.0);
        }
        assert_eq!(c.current().label, "mild", "hysteresis guard");
        assert_eq!(c.stats().steps_up, 1);
    }

    #[test]
    fn steps_down_on_high_water_and_counts_violations() {
        let mut c = AdaptController::from_outcomes(&ladder(), sla()).unwrap();
        for _ in 0..4 {
            c.observe(0.0, 1.0); // climb to mild
        }
        assert_eq!(c.current().label, "mild");
        // A hot window (mean 0.06 > budget): violation + step down.
        let mut stepped = None;
        for _ in 0..4 {
            stepped = c.observe(0.06, 0.6);
        }
        assert_eq!(stepped, Some(Step::Down));
        assert_eq!(c.current().label, "accurate");
        assert_eq!(c.stats().violations, 1);
        assert_eq!(c.stats().steps_down, 1);
        // At the bottom, a hot window cannot step further.
        for _ in 0..4 {
            stepped = c.observe(0.06, 1.0);
        }
        assert_eq!(stepped, None);
        assert_eq!(c.current_index(), 0);
    }

    #[test]
    fn at_most_one_step_per_window() {
        let mut c = AdaptController::from_outcomes(&ladder(), sla()).unwrap();
        let mut steps = 0;
        for _ in 0..16 {
            if c.observe(0.0, 1.0).is_some() {
                steps += 1;
            }
        }
        // 16 observations = 4 windows: bounded step rate regardless of
        // how eager the signal is.
        assert!(steps <= 4);
    }

    #[test]
    fn non_finite_observations_push_toward_accuracy() {
        let mut c = AdaptController::from_outcomes(&ladder(), sla()).unwrap();
        for _ in 0..4 {
            c.observe(0.0, 1.0); // climb to mild
        }
        assert_eq!(c.current().label, "mild");
        let mut last = None;
        for _ in 0..4 {
            last = c.observe(f64::NAN, f64::INFINITY);
        }
        assert_eq!(last, Some(Step::Down), "NaN treated as worst-case error");
        assert!(c.stats().mean_error().is_finite());
    }

    #[test]
    fn replay_is_deterministic() {
        let trace: Vec<(f64, f64)> = (0..64)
            .map(|i| ((i % 7) as f64 * 0.01, 1.0 / (1.0 + (i % 3) as f64)))
            .collect();
        let run = || {
            let mut c = AdaptController::from_outcomes(&ladder(), sla()).unwrap();
            let steps: Vec<Option<Step>> = trace.iter().map(|&(e, s)| c.observe(e, s)).collect();
            (steps, c.current_index(), *c.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejects_malformed_slas_and_empty_ladders() {
        let bad_budget = Sla {
            error_budget: f64::NAN,
            ..sla()
        };
        assert!(AdaptController::from_outcomes(&ladder(), bad_budget).is_err());
        let bad_waters = Sla {
            low_water: 0.95,
            ..sla()
        };
        assert!(AdaptController::from_outcomes(&ladder(), bad_waters).is_err());
        let bad_window = Sla { window: 0, ..sla() };
        assert!(AdaptController::from_outcomes(&ladder(), bad_window).is_err());
        assert!(AdaptController::from_outcomes(&[], sla()).is_err());
        let all_nan = vec![outcome("nan", f64::NAN, f64::NAN)];
        assert!(AdaptController::from_outcomes(&all_nan, sla()).is_err());
    }

    #[test]
    fn with_budget_default_is_valid() {
        assert!(Sla::with_budget(0.05).validate().is_ok());
    }
}
