//! Error type of the autotuning subsystem.

use kp_core::CoreError;

/// Errors returned by the tuning cache and adaptation controller.
#[derive(Debug)]
pub enum TuneError {
    /// A sweep behind a cache miss failed.
    Core(CoreError),
    /// Persisting the store failed.
    Io(std::io::Error),
    /// A controller or SLA parameter is malformed.
    Config(String),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Core(e) => write!(f, "sweep error: {e}"),
            TuneError::Io(e) => write!(f, "tuning-store i/o error: {e}"),
            TuneError::Config(msg) => write!(f, "invalid tuning configuration: {msg}"),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Core(e) => Some(e),
            TuneError::Io(e) => Some(e),
            TuneError::Config(_) => None,
        }
    }
}

impl From<CoreError> for TuneError {
    fn from(e: CoreError) -> Self {
        TuneError::Core(e)
    }
}

impl From<std::io::Error> for TuneError {
    fn from(e: std::io::Error) -> Self {
        TuneError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error as _;
        let c = TuneError::from(CoreError::Input("bad".into()));
        assert!(c.to_string().contains("bad"));
        assert!(c.source().is_some());
        let i = TuneError::from(std::io::Error::other("disk"));
        assert!(i.to_string().contains("disk"));
        assert!(i.source().is_some());
        let cfg = TuneError::Config("window".into());
        assert!(cfg.to_string().contains("window"));
        assert!(cfg.source().is_none());
    }
}
