//! Cache-aware sweeps: warm-start or skip [`kp_core::sweep`] runs using
//! the persistent store.
//!
//! Three lookup outcomes (counted in [`TuneStats`]):
//!
//! * **exact hit** — the entry covers every requested candidate. Under
//!   [`WarmStart::Trust`] the sweep is skipped outright: zero simulated
//!   launches, outcomes served bit-identical from the store. Under
//!   [`WarmStart::Validate`] only the cached **Pareto winners** are
//!   re-measured and compared bit-for-bit; a match serves the full cached
//!   set, a mismatch evicts the entry (counted `stale`) and re-sweeps
//!   cold.
//! * **warm hit** — the entry covers part of the request: only the
//!   missing candidates are swept (the cached ones are served as-is).
//!   Per-candidate numbers are independent by construction — each sweep
//!   re-measures its own reference and baseline deterministically — so
//!   the merge is bit-identical to a cold sweep of the full list.
//! * **miss** — no usable entry (absent, corrupt, foreign version,
//!   foreign device fingerprint or input digest): a clean cold sweep,
//!   then the entry is recorded.
//!
//! [`TuneStats`]: crate::TuneStats

use kp_core::{
    pareto_outcomes, sweep, BudgetSelection, CoreError, ErrorMetric, ImageInput, RunSpec,
    SweepContext, SweepOutcome,
};
use kp_gpu_sim::DeviceConfig;

use crate::db::TuneDb;
use crate::key::TuneKey;

/// How much to trust a fresh exact hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStart {
    /// Serve exact hits without any simulated work (the production
    /// default: the key already pins device model, input content and
    /// candidate family, and the simulator is deterministic).
    #[default]
    Trust,
    /// Re-measure only the cached Pareto winners and require bit-for-bit
    /// agreement before serving the rest from cache; on mismatch, evict
    /// and re-sweep cold. The paranoid mode for migrated cache files.
    Validate,
}

/// Identity of a candidate inside a sweep: `(label, group)`.
fn spec_identity(spec: &RunSpec) -> (String, (usize, usize)) {
    (spec.label(), spec.group())
}

/// Cache-aware variant of [`kp_core::sweep`]: consults (and updates)
/// `db` under the key derived from `ctx` + `family`, and only simulates
/// what the cache cannot answer. Returned outcomes are **bit-identical**
/// to a cold [`kp_core::sweep`] of the same context and specs, in the
/// same order.
///
/// # Errors
///
/// Propagates sweep errors ([`CoreError`]). Database I/O never fails the
/// sweep: persistence is explicit via [`TuneDb::save`].
pub fn sweep_cached(
    ctx: &SweepContext<'_>,
    specs: &[RunSpec],
    db: &mut TuneDb,
    family: &str,
    warm: WarmStart,
) -> Result<Vec<SweepOutcome>, CoreError> {
    if specs.is_empty() {
        return Ok(Vec::new());
    }
    let key = TuneKey::for_sweep(ctx, family);
    db.stats.lookups += 1;

    let wanted: Vec<(String, (usize, usize))> = specs.iter().map(spec_identity).collect();
    let cached: Option<Vec<Option<usize>>> = db
        .entry(&key)
        .map(|entry| wanted.iter().map(|(l, g)| entry.find(l, *g)).collect());

    match cached {
        Some(slots) if slots.iter().all(Option::is_some) => {
            let serve = |db: &TuneDb| -> Vec<SweepOutcome> {
                let entry = db.entry(&key).expect("entry just found");
                slots
                    .iter()
                    .map(|s| entry.outcomes[s.expect("all present")].clone())
                    .collect()
            };
            match warm {
                WarmStart::Trust => {
                    db.stats.exact_hits += 1;
                    db.stats.launches_avoided += specs.len() as u64;
                    Ok(serve(db))
                }
                WarmStart::Validate => {
                    let cached_now = serve(db);
                    let winners = pareto_outcomes(&cached_now);
                    let winner_specs: Vec<RunSpec> = winners.iter().map(|&i| specs[i]).collect();
                    let fresh = sweep(ctx, &winner_specs)?;
                    db.stats.sim_launches += 2 + winner_specs.len() as u64;
                    let valid = winners
                        .iter()
                        .zip(&fresh)
                        .all(|(&i, f)| outcomes_bit_equal(&cached_now[i], f));
                    if valid {
                        db.stats.warm_hits += 1;
                        db.stats.launches_avoided += (specs.len() - winner_specs.len()) as u64;
                        Ok(cached_now)
                    } else {
                        // The environment changed under the cache: the
                        // stored numbers no longer reproduce. Evict and
                        // answer cold.
                        db.stats.stale += 1;
                        db.stats.misses += 1;
                        db.evict(&key);
                        let outcomes = sweep(ctx, specs)?;
                        db.stats.sim_launches += 2 + specs.len() as u64;
                        db.record(&key, &outcomes);
                        Ok(outcomes)
                    }
                }
            }
        }
        Some(slots) => {
            // Partial coverage: sweep only the missing candidates and
            // splice the cached ones back in request order.
            let missing: Vec<RunSpec> = slots
                .iter()
                .zip(specs)
                .filter(|(s, _)| s.is_none())
                .map(|(_, spec)| *spec)
                .collect();
            let fresh = sweep(ctx, &missing)?;
            db.stats.warm_hits += 1;
            db.stats.sim_launches += 2 + missing.len() as u64;
            db.stats.launches_avoided += (specs.len() - missing.len()) as u64;
            db.record(&key, &fresh);
            let entry = db.entry(&key).expect("entry just recorded");
            let merged = wanted
                .iter()
                .map(|(l, g)| {
                    let i = entry.find(l, *g).expect("cached or just recorded");
                    entry.outcomes[i].clone()
                })
                .collect();
            Ok(merged)
        }
        None => {
            let outcomes = sweep(ctx, specs)?;
            db.stats.misses += 1;
            db.stats.sim_launches += 2 + specs.len() as u64;
            db.record(&key, &outcomes);
            Ok(outcomes)
        }
    }
}

/// Bit-level equality of two outcomes (floats compared by bit pattern —
/// the re-validation contract is *exact* reproduction, not tolerance).
pub fn outcomes_bit_equal(a: &SweepOutcome, b: &SweepOutcome) -> bool {
    a.label == b.label
        && a.group == b.group
        && a.seconds.to_bits() == b.seconds.to_bits()
        && a.speedup.to_bits() == b.speedup.to_bits()
        && a.error.to_bits() == b.error.to_bits()
        && a.read_transactions == b.read_transactions
}

/// Cache-aware variant of [`kp_core::select_with_budget`]: calibrates
/// `specs` over the calibration set through [`sweep_cached`] (one store
/// entry per calibration input — the content digest is part of the key)
/// and picks the fastest candidate whose mean error meets `budget`.
///
/// Selection semantics mirror [`kp_core::select_with_budget`], including
/// the non-finite guards: candidates whose mean error or speedup is NaN
/// or infinite never qualify.
///
/// # Errors
///
/// Propagates sweep errors; [`CoreError::Input`] if the calibration set
/// is empty.
#[allow(clippy::too_many_arguments)]
pub fn select_with_budget_cached(
    app: kp_core::WorkloadRef,
    calibration_inputs: &[ImageInput<'_>],
    specs: &[RunSpec],
    metric: ErrorMetric,
    device: &DeviceConfig,
    baseline: RunSpec,
    budget: f64,
    db: &mut TuneDb,
    family: &str,
) -> Result<Option<BudgetSelection>, CoreError> {
    if calibration_inputs.is_empty() {
        return Err(CoreError::Input("calibration set must not be empty".into()));
    }
    let mut error_sums = vec![0.0f64; specs.len()];
    let mut speedups = vec![0.0f64; specs.len()];
    for (k, input) in calibration_inputs.iter().enumerate() {
        let ctx = SweepContext {
            app,
            input: *input,
            metric,
            device: device.clone(),
            baseline,
        };
        let outcomes = sweep_cached(&ctx, specs, db, family, WarmStart::Trust)?;
        for (i, o) in outcomes.iter().enumerate() {
            error_sums[i] += o.error;
            if k == 0 {
                speedups[i] = o.speedup;
            }
        }
    }
    let n = calibration_inputs.len() as f64;
    let candidate_errors: Vec<f64> = error_sums.iter().map(|e| e / n).collect();
    let chosen = candidate_errors
        .iter()
        .enumerate()
        .filter(|(i, &e)| e.is_finite() && e <= budget && speedups[*i].is_finite())
        .max_by(|(i, _), (j, _)| speedups[*i].total_cmp(&speedups[*j]))
        .map(|(i, _)| i);
    Ok(chosen.map(|index| BudgetSelection {
        label: specs[index].label(),
        index,
        mean_error: candidate_errors[index],
        speedup: speedups[index],
        candidate_errors,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_equality_is_exact() {
        let a = SweepOutcome {
            label: "x".into(),
            group: (16, 16),
            seconds: 0.1,
            speedup: 2.0,
            error: 0.01,
            read_transactions: 5,
        };
        let mut b = a.clone();
        assert!(outcomes_bit_equal(&a, &b));
        b.seconds = 0.1 + f64::EPSILON;
        assert!(!outcomes_bit_equal(&a, &b));
    }

    #[test]
    fn empty_spec_list_never_touches_the_store() {
        let mut db = TuneDb::in_memory();
        let data = vec![0.5f32; 32 * 32];
        let ctx = SweepContext {
            app: &crate::testutil::Blur,
            input: ImageInput::new(&data, 32, 32).unwrap(),
            metric: ErrorMetric::MeanRelative,
            device: DeviceConfig::firepro_w5100(),
            baseline: RunSpec::Baseline { group: (16, 16) },
        };
        let out = sweep_cached(&ctx, &[], &mut db, "empty", WarmStart::Trust).unwrap();
        assert!(out.is_empty());
        assert_eq!(db.stats().lookups, 0);
        assert_eq!(db.stats().sim_launches, 0);
    }
}
