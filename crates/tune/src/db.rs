//! The persistent tuning database: a versioned, deterministic on-disk
//! store of ranked sweep outcomes.
//!
//! ## Format
//!
//! A plain whitespace-tokenized text file:
//!
//! ```text
//! kp-tune-db v1
//! entry <canonical key — see TuneKey::canonical>
//! outcome <label> <gx> <gy> <seconds-bits> <speedup-bits> <error-bits> <read-transactions>
//! ...
//! end
//! ```
//!
//! Floats are stored as hexadecimal `f64::to_bits` patterns, so a
//! save/load round-trip is **lossless**: a cache hit returns outcomes
//! bit-identical to the sweep that produced them. Entries are written
//! sorted by canonical key, so the same logical store always serializes
//! to the same bytes (diff-able, rsync-friendly).
//!
//! ## Degradation rules
//!
//! Loading never fails and never panics. A missing file, a foreign format
//! version, or any unparseable line degrades to an **empty or partial
//! store** — the next lookup misses and the caller re-sweeps cold. A
//! stale hit is impossible by construction: entries for a different
//! device model or different input data live under different keys
//! (fingerprint and content digest are part of [`TuneKey`]).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use kp_core::SweepOutcome;

use crate::key::{outcome_identity, TuneKey};
use crate::TUNE_FORMAT_VERSION;

/// File magic; the version suffix gates the whole file.
const MAGIC: &str = "kp-tune-db";

/// What [`TuneDb::open`] found on disk (diagnostics; the store itself
/// silently degrades to cold sweeps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries successfully loaded.
    pub entries: usize,
    /// File existed but carried a foreign format version (whole file
    /// ignored).
    pub version_mismatch: bool,
    /// Number of entry blocks dropped because a line failed to parse.
    pub corrupt_entries: usize,
    /// File was absent (a fresh store).
    pub missing: bool,
}

/// Hit/miss/staleness counters of one [`TuneDb`] handle.
///
/// `sim_launches` counts simulated kernel launches actually performed on
/// behalf of cached sweeps (including each inner sweep's accurate
/// reference + baseline run); `launches_avoided` counts candidate
/// launches served from cache instead of the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuneStats {
    /// Cache consultations.
    pub lookups: u64,
    /// Lookups fully served from cache (zero simulated launches).
    pub exact_hits: u64,
    /// Lookups partially served from cache (warm starts: only missing
    /// candidates or Pareto-winner re-validations were launched).
    pub warm_hits: u64,
    /// Lookups with no usable entry (cold sweeps).
    pub misses: u64,
    /// Entries evicted because a re-validation produced different
    /// numbers than the stored ones (environment changed under us).
    pub stale: u64,
    /// Simulated launches performed despite the cache.
    pub sim_launches: u64,
    /// Candidate launches served from cache.
    pub launches_avoided: u64,
}

impl TuneStats {
    /// Fraction of lookups served at least partially from cache, in
    /// `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        (self.exact_hits + self.warm_hits) as f64 / self.lookups as f64
    }
}

/// One stored sweep: the key plus its outcomes in sweep order.
#[derive(Debug, Clone)]
pub struct TuneEntry {
    /// The question this sweep answered.
    pub key: TuneKey,
    /// Measured outcomes, bit-exact.
    pub outcomes: Vec<SweepOutcome>,
}

impl TuneEntry {
    /// Index of the stored outcome matching `(label, group)`, if any.
    pub fn find(&self, label: &str, group: (usize, usize)) -> Option<usize> {
        self.outcomes
            .iter()
            .position(|o| o.label == label && o.group == group)
    }
}

/// The persistent tuning database.
///
/// All mutation is in-memory; [`TuneDb::save`] serializes the store
/// deterministically (atomic rename). Counters in [`TuneDb::stats`] are
/// per-handle, not persisted.
#[derive(Debug)]
pub struct TuneDb {
    path: Option<PathBuf>,
    entries: BTreeMap<String, TuneEntry>,
    load: LoadReport,
    pub(crate) stats: TuneStats,
}

impl TuneDb {
    /// An empty store with no backing file ([`TuneDb::save`] is a no-op).
    pub fn in_memory() -> Self {
        Self {
            path: None,
            entries: BTreeMap::new(),
            load: LoadReport {
                missing: true,
                ..LoadReport::default()
            },
            stats: TuneStats::default(),
        }
    }

    /// Opens (or initializes) the store at `path`. Never fails: missing,
    /// corrupt or foreign-version files degrade to an empty store — see
    /// the module docs and [`TuneDb::load_report`].
    pub fn open(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let (entries, load) = match std::fs::read_to_string(&path) {
            Ok(text) => parse_store(&text),
            Err(_) => (
                BTreeMap::new(),
                LoadReport {
                    missing: true,
                    ..LoadReport::default()
                },
            ),
        };
        Self {
            path: Some(path),
            entries,
            load,
            stats: TuneStats::default(),
        }
    }

    /// The backing file path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// What [`TuneDb::open`] found on disk.
    pub fn load_report(&self) -> LoadReport {
        self.load
    }

    /// Hit/miss counters accumulated through this handle.
    pub fn stats(&self) -> TuneStats {
        self.stats
    }

    /// Resets the per-handle counters (e.g. between a cold and a warm
    /// benchmark pass).
    pub fn reset_stats(&mut self) {
        self.stats = TuneStats::default();
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the entry for `key`.
    pub fn entry(&self, key: &TuneKey) -> Option<&TuneEntry> {
        self.entries.get(&key.canonical())
    }

    /// Inserts or merges outcomes under `key`: existing `(label, group)`
    /// rows are replaced, new ones appended — the entry accumulates the
    /// union of every sweep ever stored under the key.
    pub fn record(&mut self, key: &TuneKey, outcomes: &[SweepOutcome]) {
        let canonical = key.canonical();
        let entry = self.entries.entry(canonical).or_insert_with(|| TuneEntry {
            key: key.clone(),
            outcomes: Vec::new(),
        });
        for outcome in outcomes {
            let (label, group) = outcome_identity(outcome);
            match entry.find(&label, group) {
                Some(i) => entry.outcomes[i] = outcome.clone(),
                None => entry.outcomes.push(outcome.clone()),
            }
        }
    }

    /// Drops the entry for `key` (used when re-validation detects stale
    /// numbers).
    pub fn evict(&mut self, key: &TuneKey) -> bool {
        self.entries.remove(&key.canonical()).is_some()
    }

    /// Serializes the store to its backing file (deterministic bytes,
    /// atomic rename). No-op for in-memory stores.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (permissions, full disk, …).
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut text = format!("{MAGIC} v{TUNE_FORMAT_VERSION}\n");
        for entry in self.entries.values() {
            text.push_str("entry ");
            text.push_str(&entry.key.canonical());
            text.push('\n');
            for o in &entry.outcomes {
                text.push_str(&format!(
                    "outcome {} {} {} {:016x} {:016x} {:016x} {}\n",
                    o.label,
                    o.group.0,
                    o.group.1,
                    o.seconds.to_bits(),
                    o.speedup.to_bits(),
                    o.error.to_bits(),
                    o.read_transactions,
                ));
            }
            text.push_str("end\n");
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

fn parse_outcome(line: &str) -> Option<SweepOutcome> {
    let mut it = line.split_ascii_whitespace();
    let label = it.next()?.to_owned();
    let gx = it.next()?.parse().ok()?;
    let gy = it.next()?.parse().ok()?;
    let seconds = f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?);
    let speedup = f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?);
    let error = f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?);
    let read_transactions = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(SweepOutcome {
        label,
        group: (gx, gy),
        seconds,
        speedup,
        error,
        read_transactions,
    })
}

fn parse_store(text: &str) -> (BTreeMap<String, TuneEntry>, LoadReport) {
    let mut report = LoadReport::default();
    let mut entries = BTreeMap::new();
    let mut lines = text.lines();
    match lines.next() {
        Some(header) if header.trim() == format!("{MAGIC} v{TUNE_FORMAT_VERSION}") => {}
        Some(_) => {
            report.version_mismatch = true;
            return (entries, report);
        }
        None => {
            // Empty file: treat as a fresh store.
            return (entries, report);
        }
    }
    let mut current: Option<TuneEntry> = None;
    let mut current_broken = false;
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("entry ") {
            if current.take().is_some() {
                // Previous entry never saw its `end`: drop it.
                report.corrupt_entries += 1;
            }
            current_broken = false;
            match TuneKey::parse(rest) {
                Some(key) => {
                    current = Some(TuneEntry {
                        key,
                        outcomes: Vec::new(),
                    })
                }
                None => {
                    report.corrupt_entries += 1;
                    current_broken = true;
                }
            }
        } else if let Some(rest) = line.strip_prefix("outcome ") {
            match (&mut current, parse_outcome(rest)) {
                (Some(entry), Some(outcome)) => entry.outcomes.push(outcome),
                (Some(_), None) => {
                    // Poison the whole entry: partial outcome lists must
                    // not masquerade as complete sweeps.
                    current = None;
                    report.corrupt_entries += 1;
                }
                (None, _) => {
                    if !current_broken {
                        report.corrupt_entries += 1;
                        current_broken = true;
                    }
                }
            }
        } else if line == "end" {
            if let Some(entry) = current.take() {
                entries.insert(entry.key.canonical(), entry);
                report.entries += 1;
            }
            current_broken = false;
        } else {
            report.corrupt_entries += 1;
            current = None;
            current_broken = true;
        }
    }
    if current.is_some() {
        report.corrupt_entries += 1;
    }
    (entries, report)
}

/// Resolves the cache path: an explicit path wins, else the
/// `KP_TUNE_CACHE` environment variable, else `.kp-tune-cache.db` in the
/// current directory.
pub fn resolve_cache_path(explicit: Option<&Path>) -> PathBuf {
    if let Some(p) = explicit {
        return p.to_path_buf();
    }
    match std::env::var("KP_TUNE_CACHE") {
        Ok(p) if !p.trim().is_empty() => PathBuf::from(p),
        _ => PathBuf::from(".kp-tune-cache.db"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::BUDGET_ANY;

    fn key(app: &str) -> TuneKey {
        TuneKey {
            app: app.into(),
            family: "fam".into(),
            width: 64,
            height: 64,
            group: (16, 16),
            metric: "MeanRelative".into(),
            baseline: "Baseline".into(),
            budget_bits: BUDGET_ANY.to_bits(),
            input_digest: 42,
            fingerprint: 7,
        }
    }

    fn outcome(label: &str, seconds: f64, error: f64) -> SweepOutcome {
        SweepOutcome {
            label: label.into(),
            group: (16, 16),
            seconds,
            speedup: 1.0 / seconds,
            error,
            read_transactions: 123,
        }
    }

    #[test]
    fn record_merges_by_identity() {
        let mut db = TuneDb::in_memory();
        db.record(&key("a"), &[outcome("x", 1.0, 0.1), outcome("y", 2.0, 0.2)]);
        db.record(&key("a"), &[outcome("x", 3.0, 0.3), outcome("z", 4.0, 0.4)]);
        let e = db.entry(&key("a")).unwrap();
        assert_eq!(e.outcomes.len(), 3);
        assert_eq!(e.outcomes[e.find("x", (16, 16)).unwrap()].seconds, 3.0);
        assert!(db.evict(&key("a")));
        assert!(!db.evict(&key("a")));
        assert!(db.is_empty());
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let dir = std::env::temp_dir().join("kp_tune_db_roundtrip");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.db");
        let _ = std::fs::remove_file(&path);
        let mut db = TuneDb::open(&path);
        assert!(db.load_report().missing);
        // Awkward but representable floats must survive exactly.
        let gnarly = outcome("g", 0.1 + 0.2, f64::MIN_POSITIVE);
        db.record(&key("a"), &[gnarly.clone(), outcome("x", 1.0, 0.25)]);
        db.record(&key("b"), &[outcome("y", 2.0, 0.5)]);
        db.save().unwrap();

        let db2 = TuneDb::open(&path);
        assert_eq!(db2.load_report().entries, 2);
        assert!(!db2.load_report().version_mismatch);
        let e = db2.entry(&key("a")).unwrap();
        let g = &e.outcomes[e.find("g", (16, 16)).unwrap()];
        assert_eq!(g.seconds.to_bits(), gnarly.seconds.to_bits());
        assert_eq!(g.error.to_bits(), gnarly.error.to_bits());
        assert_eq!(g.speedup.to_bits(), gnarly.speedup.to_bits());
        assert_eq!(g.read_transactions, gnarly.read_transactions);

        // Deterministic bytes: saving the reloaded store reproduces the
        // file exactly.
        let bytes_a = std::fs::read(&path).unwrap();
        db2.save().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes_a);
    }

    #[test]
    fn version_mismatch_degrades_to_empty() {
        let dir = std::env::temp_dir().join("kp_tune_db_version");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.db");
        std::fs::write(&path, "kp-tune-db v999\nentry whatever\nend\n").unwrap();
        let db = TuneDb::open(&path);
        assert!(db.is_empty());
        assert!(db.load_report().version_mismatch);
    }

    #[test]
    fn corrupt_lines_drop_only_their_entry() {
        let dir = std::env::temp_dir().join("kp_tune_db_corrupt");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.db");
        let mut db = TuneDb::open(&path);
        db.record(&key("a"), &[outcome("x", 1.0, 0.1)]);
        db.record(&key("b"), &[outcome("y", 2.0, 0.2)]);
        db.save().unwrap();
        // Mangle entry a's outcome line.
        let text = std::fs::read_to_string(&path).unwrap();
        let mangled = text.replace("outcome x 16 16", "outcome x sixteen 16");
        std::fs::write(&path, mangled).unwrap();
        let db2 = TuneDb::open(&path);
        assert_eq!(db2.load_report().entries, 1);
        assert!(db2.load_report().corrupt_entries >= 1);
        assert!(db2.entry(&key("a")).is_none(), "poisoned entry must miss");
        assert!(db2.entry(&key("b")).is_some());
        // Pure garbage: empty store, no panic.
        std::fs::write(&path, "kp-tune-db v1\n\u{1F980} total garbage\n").unwrap();
        let db3 = TuneDb::open(&path);
        assert!(db3.is_empty());
        assert!(db3.load_report().corrupt_entries >= 1);
    }

    #[test]
    fn truncated_entry_is_dropped() {
        let dir = std::env::temp_dir().join("kp_tune_db_trunc");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.db");
        let mut db = TuneDb::open(&path);
        db.record(&key("a"), &[outcome("x", 1.0, 0.1)]);
        db.save().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let truncated = text.trim_end_matches("end\n");
        std::fs::write(&path, truncated).unwrap();
        let db2 = TuneDb::open(&path);
        assert!(db2.is_empty());
        assert_eq!(db2.load_report().corrupt_entries, 1);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let mut s = TuneStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.lookups = 4;
        s.exact_hits = 1;
        s.warm_hits = 1;
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resolve_cache_path_precedence() {
        let explicit = PathBuf::from("/tmp/explicit.db");
        assert_eq!(resolve_cache_path(Some(&explicit)), explicit);
        // No env set in tests by default: falls back to the cwd default.
        if std::env::var("KP_TUNE_CACHE").is_err() {
            assert_eq!(resolve_cache_path(None), PathBuf::from(".kp-tune-cache.db"));
        }
    }
}
