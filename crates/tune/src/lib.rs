//! # kp-tune — persistent cross-run tuning cache + online SLA adaptation
//!
//! The [`kp_core`] tuner re-measures every candidate configuration from
//! scratch on each invocation. This crate amortizes that cost across
//! runs and adapts selections online while serving:
//!
//! * **[`TuneDb`]** — a versioned, deterministic on-disk store of sweep
//!   outcomes, keyed by *(app, candidate family, image size + content
//!   digest, tile, metric, baseline, error budget, device fingerprint)*
//!   ([`TuneKey`]). Floats persist as bit patterns, so a hit returns
//!   outcomes **bit-identical** to the sweep that produced them. Missing,
//!   corrupt, foreign-version or foreign-device stores degrade to clean
//!   cold sweeps — never a panic, never a stale hit.
//! * **[`sweep_cached`]** — the cache-aware entry point over
//!   [`kp_core::sweep`]: exact hits skip the sweep entirely (zero
//!   simulated launches under [`WarmStart::Trust`], Pareto-winner
//!   re-validation under [`WarmStart::Validate`]), partial hits sweep
//!   only the missing candidates. Hit/miss/stale counters surface in
//!   [`TuneStats`].
//! * **[`AdaptController`]** — per-tenant online adaptation for the
//!   serving path: walks the cached Pareto ladder under a declared
//!   [`Sla`] (error budget + hysteresis band + decision window), purely
//!   as a function of the observed request stream — deterministic given
//!   the same trace.
//!
//! ## Quick start
//!
//! ```
//! use kp_core::{ErrorMetric, ImageInput, RunSpec, SweepContext, fig8_specs};
//! use kp_gpu_sim::DeviceConfig;
//! use kp_tune::{sweep_cached, TuneDb, WarmStart};
//! # use kp_core::{StencilApp, Window};
//! # struct Blur;
//! # impl StencilApp for Blur {
//! #     fn name(&self) -> &str { "blur" }
//! #     fn halo(&self) -> usize { 1 }
//! #     fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
//! #         let mut acc = 0.0;
//! #         for dy in -1..=1 { for dx in -1..=1 { acc += win.at(dx, dy); } }
//! #         win.ops(9);
//! #         acc / 9.0
//! #     }
//! # }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = vec![0.5f32; 64 * 64];
//! let ctx = SweepContext {
//!     app: &Blur,
//!     input: ImageInput::new(&data, 64, 64)?,
//!     metric: ErrorMetric::MeanRelative,
//!     device: DeviceConfig::firepro_w5100(),
//!     baseline: RunSpec::Baseline { group: (16, 16) },
//! };
//! let specs = fig8_specs((16, 16), 1);
//!
//! let mut db = TuneDb::in_memory(); // TuneDb::open(path) persists
//! let cold = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust)?;
//! let warm = sweep_cached(&ctx, &specs, &mut db, "fig8", WarmStart::Trust)?;
//! assert_eq!(db.stats().exact_hits, 1);
//! assert_eq!(cold[0].seconds.to_bits(), warm[0].seconds.to_bits());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adapt;
mod db;
mod error;
mod key;
mod sweep;

/// On-disk format version; foreign versions are ignored wholesale (the
/// next sweep is cold and overwrites on save).
pub const TUNE_FORMAT_VERSION: u32 = 1;

pub use adapt::{AdaptController, AdaptStats, Rung, Sla, Step};
pub use db::{resolve_cache_path, LoadReport, TuneDb, TuneEntry, TuneStats};
pub use error::TuneError;
pub use key::{digest_input, TuneKey, BUDGET_ANY};
pub use sweep::{outcomes_bit_equal, select_with_budget_cached, sweep_cached, WarmStart};

#[cfg(test)]
pub(crate) mod testutil {
    use kp_core::{StencilApp, Window};

    /// The 3×3 box blur every crate-local test suite uses.
    pub struct Blur;

    impl StencilApp for Blur {
        fn name(&self) -> &str {
            "blur"
        }

        fn halo(&self) -> usize {
            1
        }

        fn compute(&self, win: &mut Window<'_, '_>) -> f32 {
            let mut acc = 0.0;
            for dy in -1..=1 {
                for dx in -1..=1 {
                    acc += win.at(dx, dy);
                }
            }
            win.ops(9);
            acc / 9.0
        }
    }
}
