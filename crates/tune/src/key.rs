//! Cache keys: everything that must match for a stored sweep to be
//! reusable.
//!
//! A [`TuneKey`] pins the *question* a sweep answered: which app, which
//! candidate family, which input (size **and content digest** — error is
//! strongly data-dependent, paper §6.2), which tile, which metric and
//! baseline, which error budget the family was assembled for, and which
//! device model ([`kp_gpu_sim::DeviceConfig::fingerprint`]). Two runs
//! agreeing on the whole key are guaranteed — by the simulator's
//! determinism contract — to reproduce bit-identical [`SweepOutcome`]s,
//! which is what makes serving cached outcomes safe.

use kp_core::{SweepContext, SweepOutcome};

use crate::TUNE_FORMAT_VERSION;

/// Budget tag for sweeps whose outcomes are budget-independent (a plain
/// candidate sweep measures every candidate; budgets apply at selection
/// time). Stored in the key as the bit pattern of `+∞`.
pub const BUDGET_ANY: f64 = f64::INFINITY;

/// FNV-1a, the same construction [`kp_gpu_sim::DeviceConfig::fingerprint`]
/// uses; stable across platforms and runs.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content digest of a sweep input: the bit patterns of the primary (and
/// auxiliary, when present) image data. Same data ⇒ same digest, so a
/// re-run on identical input hits; any content change misses.
pub fn digest_input(input: &kp_core::ImageInput<'_>) -> u64 {
    let mut bytes: Vec<u8> = Vec::with_capacity(4 * (input.data.len() + 1));
    for v in input.data {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    match input.aux {
        Some(aux) => {
            bytes.push(1);
            for v in aux {
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        None => bytes.push(0),
    }
    fnv1a(&bytes)
}

/// Keys may not contain whitespace (the on-disk format is
/// whitespace-tokenized); offending characters are replaced.
fn sanitize(token: &str) -> String {
    let cleaned: String = token
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    if cleaned.is_empty() {
        "_".to_owned()
    } else {
        cleaned
    }
}

/// The full lookup key of one cached sweep.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TuneKey {
    /// Workload name ([`kp_core::Workload::name`]).
    pub app: String,
    /// Logical candidate-family name (e.g. `"fig8"`, `"serve"`): sweeps
    /// of different families never alias even at identical geometry.
    pub family: String,
    /// Input image width in elements.
    pub width: usize,
    /// Input image height in rows.
    pub height: usize,
    /// Work-group (tile) size of the sweep's baseline.
    pub group: (usize, usize),
    /// Error-metric name (`"MeanRelative"` / `"MeanAbsolute"`).
    pub metric: String,
    /// Baseline variant label speedups are measured against.
    pub baseline: String,
    /// Bit pattern of the error budget the family was assembled for;
    /// [`BUDGET_ANY`]'s bits for budget-independent candidate sweeps.
    pub budget_bits: u64,
    /// Content digest of the input data ([`digest_input`]).
    pub input_digest: u64,
    /// Device-model fingerprint
    /// ([`kp_gpu_sim::DeviceConfig::fingerprint`]).
    pub fingerprint: u64,
}

impl TuneKey {
    /// Builds the key a [`SweepContext`] + family names. The budget is
    /// tagged [`BUDGET_ANY`] — candidate sweeps measure every candidate;
    /// budget filtering happens at selection time.
    pub fn for_sweep(ctx: &SweepContext<'_>, family: &str) -> Self {
        Self {
            app: sanitize(ctx.app.name()),
            family: sanitize(family),
            width: ctx.input.width,
            height: ctx.input.height,
            group: ctx.baseline.group(),
            metric: format!("{:?}", ctx.metric),
            baseline: sanitize(&ctx.baseline.label()),
            budget_bits: BUDGET_ANY.to_bits(),
            input_digest: digest_input(&ctx.input),
            fingerprint: ctx.device.fingerprint(),
        }
    }

    /// Canonical single-line rendering — the on-disk identity and the
    /// deterministic sort key of the store.
    pub fn canonical(&self) -> String {
        format!(
            "v{} {} {} {} {} {} {} {} {} {:016x} {:016x} {:016x}",
            TUNE_FORMAT_VERSION,
            self.app,
            self.family,
            self.width,
            self.height,
            self.group.0,
            self.group.1,
            self.metric,
            self.baseline,
            self.budget_bits,
            self.input_digest,
            self.fingerprint,
        )
    }

    /// Parses a [`Self::canonical`] rendering; `None` on any token
    /// mismatch (callers treat that as a corrupt entry).
    pub fn parse(line: &str) -> Option<Self> {
        let mut it = line.split_ascii_whitespace();
        let version = it.next()?;
        if version != format!("v{TUNE_FORMAT_VERSION}") {
            return None;
        }
        let app = it.next()?.to_owned();
        let family = it.next()?.to_owned();
        let width = it.next()?.parse().ok()?;
        let height = it.next()?.parse().ok()?;
        let gx = it.next()?.parse().ok()?;
        let gy = it.next()?.parse().ok()?;
        let metric = it.next()?.to_owned();
        let baseline = it.next()?.to_owned();
        let budget_bits = u64::from_str_radix(it.next()?, 16).ok()?;
        let input_digest = u64::from_str_radix(it.next()?, 16).ok()?;
        let fingerprint = u64::from_str_radix(it.next()?, 16).ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(Self {
            app,
            family,
            width,
            height,
            group: (gx, gy),
            metric,
            baseline,
            budget_bits,
            input_digest,
            fingerprint,
        })
    }
}

/// Identity of one candidate inside an entry: label + group (labels alone
/// do not carry the work-group shape, and mixed-shape sweeps exist —
/// Fig. 9).
pub(crate) fn outcome_identity(outcome: &SweepOutcome) -> (String, (usize, usize)) {
    (outcome.label.clone(), outcome.group)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> TuneKey {
        TuneKey {
            app: "gaussian".into(),
            family: "fig8".into(),
            width: 128,
            height: 96,
            group: (16, 16),
            metric: "MeanRelative".into(),
            baseline: "Baseline".into(),
            budget_bits: BUDGET_ANY.to_bits(),
            input_digest: 0xDEAD_BEEF,
            fingerprint: 0x1234_5678_9ABC_DEF0,
        }
    }

    #[test]
    fn canonical_round_trips() {
        let k = key();
        assert_eq!(TuneKey::parse(&k.canonical()), Some(k));
    }

    #[test]
    fn parse_rejects_foreign_versions_and_garbage() {
        let k = key();
        let line = k.canonical().replacen("v1", "v0", 1);
        assert!(TuneKey::parse(&line).is_none());
        assert!(TuneKey::parse("not a key").is_none());
        assert!(TuneKey::parse(&format!("{} extra", key().canonical())).is_none());
        assert!(TuneKey::parse("").is_none());
    }

    #[test]
    fn digest_tracks_content_and_aux() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [1.0f32, 2.0, 3.0, 5.0];
        let ia = kp_core::ImageInput::new(&a, 2, 2).unwrap();
        let ib = kp_core::ImageInput::new(&b, 2, 2).unwrap();
        let iaux = kp_core::ImageInput::with_aux(&a, Some(&b), 2, 2).unwrap();
        assert_eq!(digest_input(&ia), digest_input(&ia));
        assert_ne!(digest_input(&ia), digest_input(&ib));
        assert_ne!(digest_input(&ia), digest_input(&iaux));
    }

    #[test]
    fn sanitize_strips_whitespace() {
        assert_eq!(sanitize("a b\tc"), "a_b_c");
        assert_eq!(sanitize(""), "_");
    }
}
