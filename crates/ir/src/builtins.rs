//! Builtin functions of the PerfCL language.

use crate::ast::ScalarTy;

/// The builtin functions a kernel may call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `get_global_id(dim)`
    GlobalId,
    /// `get_local_id(dim)`
    LocalId,
    /// `get_group_id(dim)`
    GroupId,
    /// `get_global_size(dim)`
    GlobalSize,
    /// `get_local_size(dim)`
    LocalSize,
    /// `get_num_groups(dim)`
    NumGroups,
    /// `min(a, b)` — numeric, polymorphic.
    Min,
    /// `max(a, b)` — numeric, polymorphic.
    Max,
    /// `clamp(x, lo, hi)` — numeric, polymorphic.
    Clamp,
    /// `sqrt(x)` — float.
    Sqrt,
    /// `fabs(x)` — float.
    Fabs,
    /// `abs(x)` — int.
    Abs,
    /// `floor(x)` — float.
    Floor,
    /// `exp(x)` — float.
    Exp,
    /// `log(x)` — float.
    Log,
    /// `sin(x)` — float.
    Sin,
    /// `cos(x)` — float.
    Cos,
    /// `pow(x, y)` — float.
    Pow,
    /// `float(x)` — conversion to float.
    ToFloat,
    /// `int(x)` — conversion to int (truncating).
    ToInt,
}

impl Builtin {
    /// Resolves a call name to a builtin.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "get_global_id" => Builtin::GlobalId,
            "get_local_id" => Builtin::LocalId,
            "get_group_id" => Builtin::GroupId,
            "get_global_size" => Builtin::GlobalSize,
            "get_local_size" => Builtin::LocalSize,
            "get_num_groups" => Builtin::NumGroups,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "clamp" => Builtin::Clamp,
            "sqrt" => Builtin::Sqrt,
            "fabs" => Builtin::Fabs,
            "abs" => Builtin::Abs,
            "floor" => Builtin::Floor,
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "pow" => Builtin::Pow,
            "float" => Builtin::ToFloat,
            "int" => Builtin::ToInt,
            _ => return None,
        })
    }

    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::GlobalId
            | Builtin::LocalId
            | Builtin::GroupId
            | Builtin::GlobalSize
            | Builtin::LocalSize
            | Builtin::NumGroups
            | Builtin::Sqrt
            | Builtin::Fabs
            | Builtin::Abs
            | Builtin::Floor
            | Builtin::Exp
            | Builtin::Log
            | Builtin::Sin
            | Builtin::Cos
            | Builtin::ToFloat
            | Builtin::ToInt => 1,
            Builtin::Min | Builtin::Max | Builtin::Pow => 2,
            Builtin::Clamp => 3,
        }
    }

    /// Result type given the argument types (after checking). `None` means
    /// the argument types are invalid for this builtin.
    pub fn result_ty(self, args: &[ScalarTy]) -> Option<ScalarTy> {
        if args.len() != self.arity() {
            return None;
        }
        let all_numeric = args
            .iter()
            .all(|t| matches!(t, ScalarTy::Int | ScalarTy::Float));
        match self {
            Builtin::GlobalId
            | Builtin::LocalId
            | Builtin::GroupId
            | Builtin::GlobalSize
            | Builtin::LocalSize
            | Builtin::NumGroups => (args[0] == ScalarTy::Int).then_some(ScalarTy::Int),
            Builtin::Min | Builtin::Max | Builtin::Clamp => {
                if !all_numeric {
                    return None;
                }
                if args.contains(&ScalarTy::Float) {
                    Some(ScalarTy::Float)
                } else {
                    Some(ScalarTy::Int)
                }
            }
            Builtin::Sqrt
            | Builtin::Fabs
            | Builtin::Floor
            | Builtin::Exp
            | Builtin::Log
            | Builtin::Sin
            | Builtin::Cos => all_numeric.then_some(ScalarTy::Float),
            Builtin::Pow => all_numeric.then_some(ScalarTy::Float),
            Builtin::Abs => (args[0] == ScalarTy::Int).then_some(ScalarTy::Int),
            Builtin::ToFloat => all_numeric.then_some(ScalarTy::Float),
            Builtin::ToInt => all_numeric.then_some(ScalarTy::Int),
        }
    }

    /// ALU cost charged per evaluation (transcendental functions map to
    /// the GPU's special function unit and cost more than one op).
    pub fn op_cost(self) -> u64 {
        match self {
            Builtin::Sqrt | Builtin::Exp | Builtin::Log | Builtin::Sin | Builtin::Cos => 4,
            Builtin::Pow => 8,
            Builtin::Min
            | Builtin::Max
            | Builtin::Fabs
            | Builtin::Abs
            | Builtin::Floor
            | Builtin::ToFloat
            | Builtin::ToInt => 1,
            Builtin::Clamp => 2,
            _ => 0, // id queries are free (register reads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_known_names() {
        assert_eq!(Builtin::from_name("get_global_id"), Some(Builtin::GlobalId));
        assert_eq!(Builtin::from_name("clamp"), Some(Builtin::Clamp));
        assert_eq!(Builtin::from_name("nope"), None);
    }

    #[test]
    fn arities() {
        assert_eq!(Builtin::Clamp.arity(), 3);
        assert_eq!(Builtin::Min.arity(), 2);
        assert_eq!(Builtin::Sqrt.arity(), 1);
    }

    #[test]
    fn polymorphic_min_promotes_to_float() {
        assert_eq!(
            Builtin::Min.result_ty(&[ScalarTy::Int, ScalarTy::Int]),
            Some(ScalarTy::Int)
        );
        assert_eq!(
            Builtin::Min.result_ty(&[ScalarTy::Int, ScalarTy::Float]),
            Some(ScalarTy::Float)
        );
    }

    #[test]
    fn id_queries_require_int_dim() {
        assert_eq!(
            Builtin::GlobalId.result_ty(&[ScalarTy::Int]),
            Some(ScalarTy::Int)
        );
        assert_eq!(Builtin::GlobalId.result_ty(&[ScalarTy::Float]), None);
    }

    #[test]
    fn wrong_arity_rejected() {
        assert_eq!(Builtin::Sqrt.result_ty(&[]), None);
        assert_eq!(Builtin::Clamp.result_ty(&[ScalarTy::Int; 2]), None);
    }

    #[test]
    fn bool_args_rejected_for_math() {
        assert_eq!(Builtin::Sqrt.result_ty(&[ScalarTy::Bool]), None);
        assert_eq!(
            Builtin::Min.result_ty(&[ScalarTy::Bool, ScalarTy::Int]),
            None
        );
    }

    #[test]
    fn op_costs_ordered() {
        assert!(Builtin::Pow.op_cost() > Builtin::Sqrt.op_cost());
        assert!(Builtin::Sqrt.op_cost() > Builtin::Min.op_cost());
        assert_eq!(Builtin::GlobalId.op_cost(), 0);
    }
}
