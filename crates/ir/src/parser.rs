//! Recursive-descent parser for PerfCL.

use crate::ast::{BinOp, Expr, KernelDef, Param, ParamTy, Program, ScalarTy, Stmt, UnOp};
use crate::error::IrError;
use crate::lexer::lex;
use crate::token::{Loc, Spanned, Tok};

/// Parses a PerfCL program.
///
/// # Errors
///
/// Returns [`IrError::Lex`] or [`IrError::Parse`] with a source location.
///
/// # Examples
///
/// ```
/// use kp_ir::parser::parse;
///
/// let prog = parse(
///     "kernel copy(global const float* src, global float* dst, int n) {
///          int i = get_global_id(0);
///          if (i < n) { dst[i] = src[i]; }
///      }",
/// )?;
/// assert_eq!(prog.kernels[0].name, "copy");
/// # Ok::<(), kp_ir::IrError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, IrError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut kernels = Vec::new();
    while !p.at(&Tok::Eof) {
        kernels.push(p.kernel()?);
    }
    if kernels.is_empty() {
        return Err(IrError::Parse {
            loc: Loc::start(),
            msg: "expected at least one kernel".into(),
        });
    }
    Ok(Program { kernels })
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn loc(&self) -> Loc {
        self.toks[self.pos].loc
    }

    fn at(&self, tok: &Tok) -> bool {
        self.peek() == tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.at(tok) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), IrError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(IrError::Parse {
                loc: self.loc(),
                msg: format!("expected '{tok}', found '{}'", self.peek()),
            })
        }
    }

    fn ident(&mut self) -> Result<String, IrError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(IrError::Parse {
                loc: self.loc(),
                msg: format!("expected identifier, found '{other}'"),
            }),
        }
    }

    fn scalar_ty(&mut self) -> Result<ScalarTy, IrError> {
        let ty = match self.peek() {
            Tok::FloatTy => ScalarTy::Float,
            Tok::IntTy => ScalarTy::Int,
            Tok::BoolTy => ScalarTy::Bool,
            other => {
                return Err(IrError::Parse {
                    loc: self.loc(),
                    msg: format!("expected a type, found '{other}'"),
                })
            }
        };
        self.bump();
        Ok(ty)
    }

    fn kernel(&mut self) -> Result<KernelDef, IrError> {
        let loc = self.loc();
        // Optional `void` return type before `kernel` is not supported;
        // OpenCL order is `kernel void name(...)`.
        self.expect(&Tok::Kernel)?;
        let _ = self.eat(&Tok::Void);
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(KernelDef {
            name,
            params,
            body,
            loc,
        })
    }

    fn param(&mut self) -> Result<Param, IrError> {
        if self.eat(&Tok::Global) {
            let is_const = self.eat(&Tok::Const);
            let elem = self.scalar_ty()?;
            self.expect(&Tok::Star)?;
            let name = self.ident()?;
            Ok(Param {
                name,
                ty: ParamTy::GlobalPtr { elem, is_const },
            })
        } else if self.eat(&Tok::Const) {
            // `const global float*` order also appears in the wild.
            self.expect(&Tok::Global)?;
            let elem = self.scalar_ty()?;
            self.expect(&Tok::Star)?;
            let name = self.ident()?;
            Ok(Param {
                name,
                ty: ParamTy::GlobalPtr {
                    elem,
                    is_const: true,
                },
            })
        } else {
            let ty = self.scalar_ty()?;
            let name = self.ident()?;
            Ok(Param {
                name,
                ty: ParamTy::Scalar(ty),
            })
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, IrError> {
        self.expect(&Tok::LBrace)?;
        let mut body = Vec::new();
        while !self.at(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return Err(IrError::Parse {
                    loc: self.loc(),
                    msg: "unclosed block".into(),
                });
            }
            body.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, IrError> {
        match self.peek().clone() {
            Tok::Local => {
                self.bump();
                let elem = self.scalar_ty()?;
                let name = self.ident()?;
                self.expect(&Tok::LBracket)?;
                let len = self.expr()?;
                self.expect(&Tok::RBracket)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::LocalDecl { elem, name, len })
            }
            Tok::FloatTy | Tok::IntTy | Tok::BoolTy => {
                let ty = self.scalar_ty()?;
                let name = self.ident()?;
                self.expect(&Tok::Assign)?;
                let init = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Decl { ty, name, init })
            }
            Tok::If => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then_body = self.block_or_single()?;
                let else_body = if self.eat(&Tok::Else) {
                    self.block_or_single()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Tok::For => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = Box::new(self.simple_stmt_no_semi()?);
                self.expect(&Tok::Semi)?;
                let cond = self.expr()?;
                self.expect(&Tok::Semi)?;
                let step = Box::new(self.simple_stmt_no_semi()?);
                self.expect(&Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::While => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Return => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return)
            }
            Tok::Ident(name) if name == "barrier" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                // Accept an optional fence-flag identifier for OpenCL
                // compatibility (e.g. CLK_LOCAL_MEM_FENCE).
                if let Tok::Ident(_) = self.peek() {
                    self.bump();
                }
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Barrier)
            }
            _ => {
                let s = self.simple_stmt_no_semi()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// Assignment / store / declaration without the trailing semicolon
    /// (used in `for` headers and as a fallback statement).
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, IrError> {
        if matches!(self.peek(), Tok::FloatTy | Tok::IntTy | Tok::BoolTy) {
            let ty = self.scalar_ty()?;
            let name = self.ident()?;
            self.expect(&Tok::Assign)?;
            let init = self.expr()?;
            return Ok(Stmt::Decl { ty, name, init });
        }
        let name = self.ident()?;
        if self.eat(&Tok::LBracket) {
            let index = self.expr()?;
            self.expect(&Tok::RBracket)?;
            self.expect(&Tok::Assign)?;
            let value = self.expr()?;
            Ok(Stmt::Store {
                base: name,
                index,
                value,
            })
        } else {
            self.expect(&Tok::Assign)?;
            let value = self.expr()?;
            Ok(Stmt::Assign { name, value })
        }
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, IrError> {
        if self.at(&Tok::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    // Expression precedence climbing.
    fn expr(&mut self) -> Result<Expr, IrError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, IrError> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Un {
                op: UnOp::Neg,
                expr: Box::new(e),
            });
        }
        if self.eat(&Tok::Not) {
            let e = self.unary_expr()?;
            return Ok(Expr::Un {
                op: UnOp::Not,
                expr: Box::new(e),
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, IrError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::FloatLit(v))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::BoolLit(true))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::BoolLit(false))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            // Conversion casts spelled like calls: float(x), int(x).
            Tok::FloatTy | Tok::IntTy => {
                let name = if self.at(&Tok::FloatTy) {
                    "float"
                } else {
                    "int"
                };
                self.bump();
                self.expect(&Tok::LParen)?;
                let arg = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Call {
                    name: name.to_owned(),
                    args: vec![arg],
                })
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.at(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call { name, args })
                } else if self.eat(&Tok::LBracket) {
                    let index = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(Expr::Index {
                        base: name,
                        index: Box::new(index),
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(IrError::Parse {
                loc: self.loc(),
                msg: format!("expected expression, found '{other}'"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn parses_minimal_kernel() {
        let p = parse_ok("kernel k() { return; }");
        assert_eq!(p.kernels.len(), 1);
        assert_eq!(p.kernels[0].name, "k");
        assert_eq!(p.kernels[0].body, vec![Stmt::Return]);
    }

    #[test]
    fn parses_opencl_style_signature() {
        let p = parse_ok(
            "__kernel void blur(__global const float* in, __global float* out, int w) { return; }",
        );
        let k = &p.kernels[0];
        assert_eq!(k.params.len(), 3);
        assert_eq!(
            k.params[0].ty,
            ParamTy::GlobalPtr {
                elem: ScalarTy::Float,
                is_const: true
            }
        );
        assert_eq!(
            k.params[1].ty,
            ParamTy::GlobalPtr {
                elem: ScalarTy::Float,
                is_const: false
            }
        );
        assert_eq!(k.params[2].ty, ParamTy::Scalar(ScalarTy::Int));
    }

    #[test]
    fn parses_declarations_and_assignments() {
        let p = parse_ok(
            "kernel k(global float* buf) {
                 int x = get_global_id(0);
                 float v = 1.5;
                 v = v * 2.0;
                 buf[x] = v;
             }",
        );
        let body = &p.kernels[0].body;
        assert!(matches!(
            body[0],
            Stmt::Decl {
                ty: ScalarTy::Int,
                ..
            }
        ));
        assert!(matches!(
            body[1],
            Stmt::Decl {
                ty: ScalarTy::Float,
                ..
            }
        ));
        assert!(matches!(body[2], Stmt::Assign { .. }));
        assert!(matches!(body[3], Stmt::Store { .. }));
    }

    #[test]
    fn parses_control_flow() {
        let p = parse_ok(
            "kernel k(int n) {
                 int acc = 0;
                 for (int i = 0; i < n; i = i + 1) {
                     if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }
                 }
                 while (acc > 10) { acc = acc - 10; }
             }",
        );
        let body = &p.kernels[0].body;
        assert!(matches!(body[1], Stmt::For { .. }));
        assert!(matches!(body[2], Stmt::While { .. }));
    }

    #[test]
    fn parses_barrier_with_and_without_flags() {
        let p = parse_ok(
            "kernel k() {
                 barrier();
                 barrier(CLK_LOCAL_MEM_FENCE);
             }",
        );
        assert_eq!(p.kernels[0].body, vec![Stmt::Barrier, Stmt::Barrier]);
        assert_eq!(p.kernels[0].phases().len(), 3);
    }

    #[test]
    fn parses_local_declaration() {
        let p = parse_ok("kernel k() { local float tile[324]; }");
        assert!(matches!(
            p.kernels[0].body[0],
            Stmt::LocalDecl {
                elem: ScalarTy::Float,
                ..
            }
        ));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_ok("kernel k(int a, int b, int c) { int x = a + b * c; }");
        let Stmt::Decl { init, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        // a + (b * c)
        let Expr::Bin {
            op: BinOp::Add,
            rhs,
            ..
        } = init
        else {
            panic!("{init:?}")
        };
        assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_cmp_over_logic() {
        let p = parse_ok("kernel k(int a) { bool b = a < 1 && a > -1 || false; }");
        let Stmt::Decl { init, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(init, Expr::Bin { op: BinOp::Or, .. }));
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse_ok("kernel k(int a) { int x = - - a; bool b = !!true; }");
        let Stmt::Decl { init, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(init, Expr::Un { op: UnOp::Neg, .. }));
    }

    #[test]
    fn single_statement_bodies_allowed() {
        let p = parse_ok("kernel k(int a) { if (a > 0) a = 0; else a = 1; }");
        let Stmt::If {
            then_body,
            else_body,
            ..
        } = &p.kernels[0].body[0]
        else {
            panic!()
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn multiple_kernels() {
        let p = parse_ok("kernel a() { return; } kernel b() { return; }");
        assert_eq!(p.kernels.len(), 2);
        assert!(p.kernel("a").is_some());
        assert!(p.kernel("b").is_some());
        assert!(p.kernel("c").is_none());
    }

    #[test]
    fn parses_conversion_casts() {
        let p = parse_ok("kernel k(int a) { float f = float(a); int i = int(f); }");
        let Stmt::Decl { init, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        assert_eq!(init, &Expr::call("float", vec![Expr::var("a")]));
    }

    #[test]
    fn error_on_missing_paren() {
        let err = parse("kernel k( { }").unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }), "{err}");
    }

    #[test]
    fn error_on_unclosed_block() {
        assert!(matches!(
            parse("kernel k() { return;"),
            Err(IrError::Parse { .. })
        ));
    }

    #[test]
    fn error_on_empty_program() {
        assert!(matches!(parse("   "), Err(IrError::Parse { .. })));
    }

    #[test]
    fn error_on_garbage_expression() {
        assert!(matches!(
            parse("kernel k() { int x = ; }"),
            Err(IrError::Parse { .. })
        ));
    }
}
