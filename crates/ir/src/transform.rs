//! The automatic local memory-aware perforation pass (paper §7's
//! "fully automatic compiler-based framework").
//!
//! Given a kernel in the canonical stencil form (see [`crate::analysis`]),
//! the pass generates a new kernel implementing the paper's three-phase
//! pipeline:
//!
//! 1. **data perforation** — a cooperative, scheme-filtered load of the
//!    work-group tile into a generated `local` array,
//! 2. **data reconstruction** — scheme/technique-specific filling of the
//!    skipped elements in local memory,
//! 3. **kernel execution** — the original body with every read of the
//!    input buffer rewritten to the reconstructed tile.
//!
//! The generated source is ordinary PerfCL: it pretty-prints, re-parses,
//! type-checks and runs on the simulator like hand-written code, and its
//! semantics match the hand-built `kp-core` pipeline kernels element for
//! element (tie-breaking included), which the integration tests assert.

use crate::analysis::{analyze, StencilInfo};
use crate::ast::{BinOp, Expr, KernelDef, ScalarTy, Stmt};
use crate::error::IrError;

/// Perforation schemes supported by the code generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrScheme {
    /// Skip every other row (`Rows1`).
    RowsHalf,
    /// Skip 3 of 4 rows (`Rows2`).
    RowsQuarter,
    /// Skip every other column (`Cols1`).
    ColsHalf,
    /// Skip the halo ring (`Stencil1`); requires `halo ≥ 1`.
    Stencil,
}

/// Reconstruction techniques supported by the code generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrRecon {
    /// Nearest neighbor.
    NearestNeighbor,
    /// Linear interpolation (rows/cols schemes only).
    LinearInterpolation,
}

/// Options of one pass invocation. The pass specializes the kernel for a
/// fixed work-group size (as a real specializing compiler would); launches
/// must use the same size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Perforation scheme to apply.
    pub scheme: IrScheme,
    /// Reconstruction technique.
    pub reconstruction: IrRecon,
    /// Work-group width the kernel is specialized for.
    pub tile_w: usize,
    /// Work-group height the kernel is specialized for.
    pub tile_h: usize,
}

/// Applies the perforation pass to a kernel.
///
/// # Errors
///
/// Returns [`IrError::Transform`] if the kernel does not match the
/// canonical stencil shape, uses reserved `__`-prefixed names, or the
/// scheme/reconstruction combination is invalid (e.g. `Stencil` on a
/// halo-0 kernel, LI with `Stencil`).
pub fn perforate_kernel(kernel: &KernelDef, cfg: &PassConfig) -> Result<KernelDef, IrError> {
    let info = analyze(kernel)?;
    let halo = info.halo();

    if cfg.tile_w == 0 || cfg.tile_h == 0 {
        return Err(IrError::Transform(
            "tile dimensions must be non-zero".into(),
        ));
    }
    match cfg.scheme {
        IrScheme::Stencil if halo == 0 => {
            return Err(IrError::Transform(
                "the stencil scheme needs a stencil kernel (halo >= 1)".into(),
            ))
        }
        IrScheme::RowsQuarter if cfg.tile_h + 2 * halo < 4 => {
            return Err(IrError::Transform(
                "Rows2 needs a tile at least 4 rows high".into(),
            ))
        }
        _ => {}
    }
    if cfg.reconstruction == IrRecon::LinearInterpolation && cfg.scheme == IrScheme::Stencil {
        return Err(IrError::Transform(
            "linear interpolation is undefined for the stencil scheme; use NN".into(),
        ));
    }
    if uses_reserved_names(kernel) {
        return Err(IrError::Transform(
            "kernel uses reserved '__'-prefixed identifiers".into(),
        ));
    }

    let pw = (cfg.tile_w + 2 * halo) as i64;
    let ph = (cfg.tile_h + 2 * halo) as i64;
    let plen = pw * ph;
    let group_size = (cfg.tile_w * cfg.tile_h) as i64;
    let g = Gen {
        info: &info,
        cfg: *cfg,
        halo: halo as i64,
        pw,
        ph,
        plen,
        group_size,
    };

    // local float __tile[PLEN];
    let mut body = vec![Stmt::LocalDecl {
        elem: ScalarTy::Float,
        name: "__tile".into(),
        len: Expr::IntLit(plen),
    }];
    body.push(decl_int(
        "__lx",
        Expr::call("get_local_id", vec![Expr::IntLit(0)]),
    ));
    body.push(decl_int(
        "__ly",
        Expr::call("get_local_id", vec![Expr::IntLit(1)]),
    ));
    body.push(decl_int(
        "__flat",
        Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Mul,
                Expr::var("__ly"),
                Expr::IntLit(cfg.tile_w as i64),
            ),
            Expr::var("__lx"),
        ),
    ));

    // Phase (Ia): perforated cooperative load.
    body.push(g.stride_loop("__k", g.load_body()));
    body.push(Stmt::Barrier);
    // Phase (Ib): reconstruction.
    body.push(g.stride_loop("__r", g.recon_body()));
    body.push(Stmt::Barrier);
    // Phase (II): original body with input reads rewritten to the tile.
    let mut compute = kernel.body.clone();
    rewrite_stmts(&mut compute, &g)?;
    body.extend(compute);

    Ok(KernelDef {
        name: format!("{}_perforated", kernel.name),
        params: kernel.params.clone(),
        body,
        loc: kernel.loc,
    })
}

struct Gen<'i> {
    info: &'i StencilInfo,
    cfg: PassConfig,
    halo: i64,
    pw: i64,
    ph: i64,
    plen: i64,
    group_size: i64,
}

fn decl_int(name: &str, init: Expr) -> Stmt {
    Stmt::Decl {
        ty: ScalarTy::Int,
        name: name.to_owned(),
        init,
    }
}

impl Gen<'_> {
    /// `int VAR = __flat; while (VAR < PLEN) { <coords>; BODY; VAR += GS; }`
    fn stride_loop(&self, var: &str, mut inner: Vec<Stmt>) -> Stmt {
        let mut body = vec![
            decl_int(
                "__px",
                Expr::bin(BinOp::Rem, Expr::var(var), Expr::IntLit(self.pw)),
            ),
            decl_int(
                "__py",
                Expr::bin(BinOp::Div, Expr::var(var), Expr::IntLit(self.pw)),
            ),
            decl_int(
                "__gx",
                Expr::bin(
                    BinOp::Sub,
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(
                            BinOp::Mul,
                            Expr::call("get_group_id", vec![Expr::IntLit(0)]),
                            Expr::IntLit(self.cfg.tile_w as i64),
                        ),
                        Expr::var("__px"),
                    ),
                    Expr::IntLit(self.halo),
                ),
            ),
            decl_int(
                "__gy",
                Expr::bin(
                    BinOp::Sub,
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(
                            BinOp::Mul,
                            Expr::call("get_group_id", vec![Expr::IntLit(1)]),
                            Expr::IntLit(self.cfg.tile_h as i64),
                        ),
                        Expr::var("__py"),
                    ),
                    Expr::IntLit(self.halo),
                ),
            ),
        ];
        body.append(&mut inner);
        Stmt::For {
            init: Box::new(decl_int(var, Expr::var("__flat"))),
            cond: Expr::bin(BinOp::Lt, Expr::var(var), Expr::IntLit(self.plen)),
            step: Box::new(Stmt::Assign {
                name: var.to_owned(),
                value: Expr::bin(BinOp::Add, Expr::var(var), Expr::IntLit(self.group_size)),
            }),
            body,
        }
    }

    /// The scheme's "is loaded" predicate over `__gx`/`__gy`/`__px`/`__py`.
    fn loads_pred(&self) -> Expr {
        match self.cfg.scheme {
            IrScheme::RowsHalf => Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::Rem, Expr::var("__gy"), Expr::IntLit(2)),
                Expr::IntLit(0),
            ),
            IrScheme::RowsQuarter => Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::Rem, Expr::var("__gy"), Expr::IntLit(4)),
                Expr::IntLit(0),
            ),
            IrScheme::ColsHalf => Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::Rem, Expr::var("__gx"), Expr::IntLit(2)),
                Expr::IntLit(0),
            ),
            IrScheme::Stencil => {
                let in_range = |v: &str, lo: i64, hi: i64| {
                    Expr::bin(
                        BinOp::And,
                        Expr::bin(BinOp::Ge, Expr::var(v), Expr::IntLit(lo)),
                        Expr::bin(BinOp::Lt, Expr::var(v), Expr::IntLit(hi)),
                    )
                };
                Expr::bin(
                    BinOp::And,
                    in_range("__px", self.halo, self.halo + self.cfg.tile_w as i64),
                    in_range("__py", self.halo, self.halo + self.cfg.tile_h as i64),
                )
            }
        }
    }

    /// Load-phase inner statements.
    fn load_body(&self) -> Vec<Stmt> {
        // __tile[__k] = input[clamp(__gy,0,h-1) * width + clamp(__gx,0,w-1)];
        let gidx = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Mul,
                Expr::call(
                    "clamp",
                    vec![
                        Expr::var("__gy"),
                        Expr::IntLit(0),
                        Expr::bin(BinOp::Sub, Expr::var(&self.info.height), Expr::IntLit(1)),
                    ],
                ),
                Expr::var(&self.info.width),
            ),
            Expr::call(
                "clamp",
                vec![
                    Expr::var("__gx"),
                    Expr::IntLit(0),
                    Expr::bin(BinOp::Sub, Expr::var(&self.info.width), Expr::IntLit(1)),
                ],
            ),
        );
        vec![Stmt::If {
            cond: self.loads_pred(),
            then_body: vec![Stmt::Store {
                base: "__tile".into(),
                index: Expr::var("__k"),
                value: Expr::index(&self.info.input, gidx),
            }],
            else_body: vec![],
        }]
    }

    /// `__tile[AY * PW + AX]`
    fn tile_at(&self, ax: Expr, ay: Expr) -> Expr {
        Expr::index(
            "__tile",
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, ay, Expr::IntLit(self.pw)),
                ax,
            ),
        )
    }

    /// Reconstruction-phase inner statements.
    fn recon_body(&self) -> Vec<Stmt> {
        let store_from = |src_x: Expr, src_y: Expr| Stmt::Store {
            base: "__tile".into(),
            index: Expr::var("__r"),
            value: self.tile_at(src_x, src_y),
        };
        let recon: Vec<Stmt> = match (self.cfg.scheme, self.cfg.reconstruction) {
            (IrScheme::RowsHalf, IrRecon::NearestNeighbor) => vec![
                // Prefer the row above (matches the library's tie-break).
                decl_int(
                    "__src",
                    Expr::bin(BinOp::Sub, Expr::var("__py"), Expr::IntLit(1)),
                ),
                Stmt::If {
                    cond: Expr::bin(BinOp::Lt, Expr::var("__src"), Expr::IntLit(0)),
                    then_body: vec![Stmt::Assign {
                        name: "__src".into(),
                        value: Expr::bin(BinOp::Add, Expr::var("__py"), Expr::IntLit(1)),
                    }],
                    else_body: vec![],
                },
                store_from(Expr::var("__px"), Expr::var("__src")),
            ],
            (IrScheme::RowsHalf, IrRecon::LinearInterpolation) => {
                let up = self.tile_at(
                    Expr::var("__px"),
                    Expr::bin(BinOp::Sub, Expr::var("__py"), Expr::IntLit(1)),
                );
                let dn = self.tile_at(
                    Expr::var("__px"),
                    Expr::bin(BinOp::Add, Expr::var("__py"), Expr::IntLit(1)),
                );
                vec![Stmt::If {
                    cond: Expr::bin(
                        BinOp::Lt,
                        Expr::bin(BinOp::Sub, Expr::var("__py"), Expr::IntLit(1)),
                        Expr::IntLit(0),
                    ),
                    then_body: vec![store_from(
                        Expr::var("__px"),
                        Expr::bin(BinOp::Add, Expr::var("__py"), Expr::IntLit(1)),
                    )],
                    else_body: vec![Stmt::If {
                        cond: Expr::bin(
                            BinOp::Ge,
                            Expr::bin(BinOp::Add, Expr::var("__py"), Expr::IntLit(1)),
                            Expr::IntLit(self.ph),
                        ),
                        then_body: vec![store_from(
                            Expr::var("__px"),
                            Expr::bin(BinOp::Sub, Expr::var("__py"), Expr::IntLit(1)),
                        )],
                        else_body: vec![Stmt::Store {
                            base: "__tile".into(),
                            index: Expr::var("__r"),
                            value: Expr::bin(
                                BinOp::Mul,
                                Expr::bin(BinOp::Add, up, dn),
                                Expr::FloatLit(0.5),
                            ),
                        }],
                    }],
                }]
            }
            (IrScheme::RowsQuarter, IrRecon::NearestNeighbor) => vec![
                // Distance to the loaded row above: d = ((gy % 4) + 4) % 4.
                decl_int(
                    "__d",
                    Expr::bin(
                        BinOp::Rem,
                        Expr::bin(
                            BinOp::Add,
                            Expr::bin(BinOp::Rem, Expr::var("__gy"), Expr::IntLit(4)),
                            Expr::IntLit(4),
                        ),
                        Expr::IntLit(4),
                    ),
                ),
                decl_int(
                    "__src",
                    Expr::bin(BinOp::Sub, Expr::var("__py"), Expr::var("__d")),
                ),
                // d == 3: the row below (distance 1) is nearer.
                Stmt::If {
                    cond: Expr::bin(BinOp::Eq, Expr::var("__d"), Expr::IntLit(3)),
                    then_body: vec![Stmt::Assign {
                        name: "__src".into(),
                        value: Expr::bin(BinOp::Add, Expr::var("__py"), Expr::IntLit(1)),
                    }],
                    else_body: vec![],
                },
                // Border fallbacks.
                Stmt::If {
                    cond: Expr::bin(BinOp::Lt, Expr::var("__src"), Expr::IntLit(0)),
                    then_body: vec![Stmt::Assign {
                        name: "__src".into(),
                        value: Expr::bin(
                            BinOp::Add,
                            Expr::var("__py"),
                            Expr::bin(BinOp::Sub, Expr::IntLit(4), Expr::var("__d")),
                        ),
                    }],
                    else_body: vec![],
                },
                Stmt::If {
                    cond: Expr::bin(BinOp::Ge, Expr::var("__src"), Expr::IntLit(self.ph)),
                    then_body: vec![Stmt::Assign {
                        name: "__src".into(),
                        value: Expr::bin(BinOp::Sub, Expr::var("__py"), Expr::var("__d")),
                    }],
                    else_body: vec![],
                },
                store_from(Expr::var("__px"), Expr::var("__src")),
            ],
            (IrScheme::ColsHalf, IrRecon::NearestNeighbor) => vec![
                decl_int(
                    "__src",
                    Expr::bin(BinOp::Sub, Expr::var("__px"), Expr::IntLit(1)),
                ),
                Stmt::If {
                    cond: Expr::bin(BinOp::Lt, Expr::var("__src"), Expr::IntLit(0)),
                    then_body: vec![Stmt::Assign {
                        name: "__src".into(),
                        value: Expr::bin(BinOp::Add, Expr::var("__px"), Expr::IntLit(1)),
                    }],
                    else_body: vec![],
                },
                store_from(Expr::var("__src"), Expr::var("__py")),
            ],
            (IrScheme::ColsHalf, IrRecon::LinearInterpolation) => {
                let left = self.tile_at(
                    Expr::bin(BinOp::Sub, Expr::var("__px"), Expr::IntLit(1)),
                    Expr::var("__py"),
                );
                let right = self.tile_at(
                    Expr::bin(BinOp::Add, Expr::var("__px"), Expr::IntLit(1)),
                    Expr::var("__py"),
                );
                vec![Stmt::If {
                    cond: Expr::bin(
                        BinOp::Lt,
                        Expr::bin(BinOp::Sub, Expr::var("__px"), Expr::IntLit(1)),
                        Expr::IntLit(0),
                    ),
                    then_body: vec![store_from(
                        Expr::bin(BinOp::Add, Expr::var("__px"), Expr::IntLit(1)),
                        Expr::var("__py"),
                    )],
                    else_body: vec![Stmt::If {
                        cond: Expr::bin(
                            BinOp::Ge,
                            Expr::bin(BinOp::Add, Expr::var("__px"), Expr::IntLit(1)),
                            Expr::IntLit(self.pw),
                        ),
                        then_body: vec![store_from(
                            Expr::bin(BinOp::Sub, Expr::var("__px"), Expr::IntLit(1)),
                            Expr::var("__py"),
                        )],
                        else_body: vec![Stmt::Store {
                            base: "__tile".into(),
                            index: Expr::var("__r"),
                            value: Expr::bin(
                                BinOp::Mul,
                                Expr::bin(BinOp::Add, left, right),
                                Expr::FloatLit(0.5),
                            ),
                        }],
                    }],
                }]
            }
            (IrScheme::Stencil, _) => vec![
                decl_int(
                    "__cx",
                    Expr::call(
                        "clamp",
                        vec![
                            Expr::var("__px"),
                            Expr::IntLit(self.halo),
                            Expr::IntLit(self.halo + self.cfg.tile_w as i64 - 1),
                        ],
                    ),
                ),
                decl_int(
                    "__cy",
                    Expr::call(
                        "clamp",
                        vec![
                            Expr::var("__py"),
                            Expr::IntLit(self.halo),
                            Expr::IntLit(self.halo + self.cfg.tile_h as i64 - 1),
                        ],
                    ),
                ),
                store_from(Expr::var("__cx"), Expr::var("__cy")),
            ],
            (IrScheme::RowsQuarter, IrRecon::LinearInterpolation) => {
                // Weighted interpolation between the loaded rows at
                // distances d (above) and 4-d (below); borders fall back.
                let wu = |d: Expr| {
                    Expr::bin(
                        BinOp::Div,
                        Expr::bin(
                            BinOp::Sub,
                            Expr::FloatLit(4.0),
                            Expr::call("float", vec![d]),
                        ),
                        Expr::FloatLit(4.0),
                    )
                };
                let up_row = Expr::bin(BinOp::Sub, Expr::var("__py"), Expr::var("__d"));
                let dn_row = Expr::bin(
                    BinOp::Add,
                    Expr::var("__py"),
                    Expr::bin(BinOp::Sub, Expr::IntLit(4), Expr::var("__d")),
                );
                let up = self.tile_at(Expr::var("__px"), up_row.clone());
                let dn = self.tile_at(Expr::var("__px"), dn_row.clone());
                vec![
                    decl_int(
                        "__d",
                        Expr::bin(
                            BinOp::Rem,
                            Expr::bin(
                                BinOp::Add,
                                Expr::bin(BinOp::Rem, Expr::var("__gy"), Expr::IntLit(4)),
                                Expr::IntLit(4),
                            ),
                            Expr::IntLit(4),
                        ),
                    ),
                    Stmt::If {
                        cond: Expr::bin(BinOp::Lt, up_row.clone(), Expr::IntLit(0)),
                        then_body: vec![store_from(Expr::var("__px"), dn_row.clone())],
                        else_body: vec![Stmt::If {
                            cond: Expr::bin(BinOp::Ge, dn_row, Expr::IntLit(self.ph)),
                            then_body: vec![store_from(Expr::var("__px"), up_row)],
                            else_body: vec![Stmt::Store {
                                base: "__tile".into(),
                                index: Expr::var("__r"),
                                value: Expr::bin(
                                    BinOp::Add,
                                    Expr::bin(BinOp::Mul, up, wu(Expr::var("__d"))),
                                    Expr::bin(
                                        BinOp::Mul,
                                        dn,
                                        Expr::bin(
                                            BinOp::Div,
                                            Expr::call("float", vec![Expr::var("__d")]),
                                            Expr::FloatLit(4.0),
                                        ),
                                    ),
                                ),
                            }],
                        }],
                    },
                ]
            }
        };
        vec![Stmt::If {
            cond: Expr::Un {
                op: crate::ast::UnOp::Not,
                expr: Box::new(self.loads_pred()),
            },
            then_body: recon,
            else_body: vec![],
        }]
    }
}

/// Rewrites reads of the input buffer to tile reads in the compute phase.
fn rewrite_stmts(stmts: &mut [Stmt], g: &Gen<'_>) -> Result<(), IrError> {
    for s in stmts {
        match s {
            Stmt::Decl { init, .. } => rewrite_expr(init, g)?,
            Stmt::Assign { value, .. } => rewrite_expr(value, g)?,
            Stmt::Store { index, value, .. } => {
                rewrite_expr(index, g)?;
                rewrite_expr(value, g)?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                rewrite_expr(cond, g)?;
                rewrite_stmts(then_body, g)?;
                rewrite_stmts(else_body, g)?;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                rewrite_stmts(std::slice::from_mut(init), g)?;
                rewrite_expr(cond, g)?;
                rewrite_stmts(std::slice::from_mut(step), g)?;
                rewrite_stmts(body, g)?;
            }
            Stmt::While { cond, body } => {
                rewrite_expr(cond, g)?;
                rewrite_stmts(body, g)?;
            }
            _ => {}
        }
    }
    Ok(())
}

fn rewrite_expr(e: &mut Expr, g: &Gen<'_>) -> Result<(), IrError> {
    // Recurse first.
    match e {
        Expr::Bin { lhs, rhs, .. } => {
            rewrite_expr(lhs, g)?;
            rewrite_expr(rhs, g)?;
        }
        Expr::Un { expr, .. } => rewrite_expr(expr, g)?,
        Expr::Call { args, .. } => {
            for a in args {
                rewrite_expr(a, g)?;
            }
        }
        Expr::Index { base, index } if *base != g.info.input => rewrite_expr(index, g)?,
        _ => {}
    }
    if let Expr::Index { base, index } = e {
        if *base == g.info.input {
            let int_params = vec![g.info.width.clone()];
            let d = crate::analysis::decompose_for_rewrite(
                index,
                &g.info.x_var,
                &g.info.y_var,
                &int_params,
            )
            .ok_or_else(|| {
                IrError::Transform(format!(
                    "read of '{}' in the compute phase does not decompose",
                    g.info.input
                ))
            })?;
            let tx = Expr::bin(BinOp::Add, Expr::var("__lx"), Expr::IntLit(g.halo + d.0));
            let ty = Expr::bin(BinOp::Add, Expr::var("__ly"), Expr::IntLit(g.halo + d.1));
            *e = Expr::index(
                "__tile",
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Mul, ty, Expr::IntLit(g.pw)),
                    tx,
                ),
            );
        }
    }
    Ok(())
}

fn uses_reserved_names(kernel: &KernelDef) -> bool {
    fn expr_uses(e: &Expr) -> bool {
        match e {
            Expr::Var(n) => n.starts_with("__"),
            Expr::Bin { lhs, rhs, .. } => expr_uses(lhs) || expr_uses(rhs),
            Expr::Un { expr, .. } => expr_uses(expr),
            Expr::Index { base, index } => base.starts_with("__") || expr_uses(index),
            Expr::Call { args, .. } => args.iter().any(expr_uses),
            _ => false,
        }
    }
    fn stmt_uses(s: &Stmt) -> bool {
        match s {
            Stmt::Decl { name, init, .. } => name.starts_with("__") || expr_uses(init),
            Stmt::LocalDecl { name, len, .. } => name.starts_with("__") || expr_uses(len),
            Stmt::Assign { name, value } => name.starts_with("__") || expr_uses(value),
            Stmt::Store { base, index, value } => {
                base.starts_with("__") || expr_uses(index) || expr_uses(value)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr_uses(cond)
                    || then_body.iter().any(stmt_uses)
                    || else_body.iter().any(stmt_uses)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                stmt_uses(init) || expr_uses(cond) || stmt_uses(step) || body.iter().any(stmt_uses)
            }
            Stmt::While { cond, body } => expr_uses(cond) || body.iter().any(stmt_uses),
            _ => false,
        }
    }
    kernel.params.iter().any(|p| p.name.starts_with("__")) || kernel.body.iter().any(stmt_uses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ArgValue, IrKernel};
    use crate::parser::parse;
    use crate::pretty::print_kernel;
    use kp_gpu_sim::{Device, DeviceConfig, NdRange};

    const BLUR: &str = "kernel blur(global const float* in, global float* out,
                                    int width, int height) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        if (x >= width || y >= height) { return; }
        float acc = in[clamp(y - 1, 0, height - 1) * width + clamp(x - 1, 0, width - 1)]
                  + in[clamp(y - 1, 0, height - 1) * width + clamp(x, 0, width - 1)]
                  + in[clamp(y - 1, 0, height - 1) * width + clamp(x + 1, 0, width - 1)]
                  + in[clamp(y, 0, height - 1) * width + clamp(x - 1, 0, width - 1)]
                  + in[y * width + x]
                  + in[clamp(y, 0, height - 1) * width + clamp(x + 1, 0, width - 1)]
                  + in[clamp(y + 1, 0, height - 1) * width + clamp(x - 1, 0, width - 1)]
                  + in[clamp(y + 1, 0, height - 1) * width + clamp(x, 0, width - 1)]
                  + in[clamp(y + 1, 0, height - 1) * width + clamp(x + 1, 0, width - 1)];
        out[y * width + x] = acc / 9.0;
    }";

    const INVERT: &str = "kernel invert(global const float* in, global float* out,
                                        int width, int height) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        if (x >= width || y >= height) { return; }
        out[y * width + x] = 1.0 - in[y * width + x];
    }";

    fn cfg(scheme: IrScheme, recon: IrRecon) -> PassConfig {
        PassConfig {
            scheme,
            reconstruction: recon,
            tile_w: 8,
            tile_h: 8,
        }
    }

    /// Runs `src` (accurate) and its perforated version on the same input,
    /// returning (accurate, perforated, perforated report).
    fn run_pair(
        src: &str,
        pass: &PassConfig,
        w: usize,
        h: usize,
        data: &[f32],
    ) -> (Vec<f32>, Vec<f32>, kp_gpu_sim::LaunchReport) {
        let prog = parse(src).unwrap();
        let perforated = perforate_kernel(&prog.kernels[0], pass).unwrap();

        let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
        let input = dev.create_buffer_from("in", data).unwrap();
        let out_a = dev.create_buffer::<f32>("out_a", w * h).unwrap();
        let out_p = dev.create_buffer::<f32>("out_p", w * h).unwrap();
        let args_a = [
            ("in", ArgValue::Buffer(input)),
            ("out", ArgValue::Buffer(out_a)),
            ("width", ArgValue::Int(w as i64)),
            ("height", ArgValue::Int(h as i64)),
        ];
        let args_p = [
            ("in", ArgValue::Buffer(input)),
            ("out", ArgValue::Buffer(out_p)),
            ("width", ArgValue::Int(w as i64)),
            ("height", ArgValue::Int(h as i64)),
        ];
        let range = NdRange::new_2d((w, h), (pass.tile_w, pass.tile_h)).unwrap();

        let acc = IrKernel::new(prog.kernels[0].clone(), &args_a).unwrap();
        dev.launch(&acc, range).unwrap();
        assert!(acc.take_runtime_error().is_none());

        let perf = IrKernel::new(perforated, &args_p).unwrap();
        let report = dev.launch(&perf, range).unwrap();
        assert!(perf.take_runtime_error().is_none());

        (
            dev.read_buffer::<f32>(out_a).unwrap(),
            dev.read_buffer::<f32>(out_p).unwrap(),
            report,
        )
    }

    fn test_image(w: usize, h: usize) -> Vec<f32> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                0.5 + 0.3 * ((x as f32 * 0.37).sin() * (y as f32 * 0.23).cos())
            })
            .collect()
    }

    #[test]
    fn generated_kernel_roundtrips_and_typechecks() {
        let prog = parse(BLUR).unwrap();
        let out = perforate_kernel(
            &prog.kernels[0],
            &cfg(IrScheme::RowsHalf, IrRecon::NearestNeighbor),
        )
        .unwrap();
        assert_eq!(out.name, "blur_perforated");
        assert_eq!(out.phases().len(), 3);
        let printed = print_kernel(&out);
        let reparsed = parse(&printed).unwrap();
        crate::typeck::check(&reparsed.kernels[0]).unwrap();
        assert!(printed.contains("local float __tile[100];"), "{printed}");
    }

    #[test]
    fn perforated_blur_close_to_accurate_and_cheaper() {
        let (w, h) = (32, 32);
        let data = test_image(w, h);
        let pass = cfg(IrScheme::RowsHalf, IrRecon::NearestNeighbor);
        let (acc, perf, report) = run_pair(BLUR, &pass, w, h, &data);
        let mre: f32 = acc
            .iter()
            .zip(&perf)
            .map(|(a, p)| (a - p).abs() / a.abs().max(1e-2))
            .sum::<f32>()
            / acc.len() as f32;
        assert!(mre < 0.05, "perforated blur MRE too high: {mre}");
        assert!(mre > 0.0, "perforation should not be exact on a wavy image");
        // Fewer DRAM reads than an accurate tile would need.
        assert!(report.stats.dram_read_transactions > 0);
    }

    #[test]
    fn stencil_scheme_keeps_interior_exact() {
        let (w, h) = (32, 32);
        let data = test_image(w, h);
        let pass = cfg(IrScheme::Stencil, IrRecon::NearestNeighbor);
        let (acc, perf, _) = run_pair(BLUR, &pass, w, h, &data);
        // Outputs whose 3x3 window stays inside the tile interior are
        // bit-exact; only halo-adjacent outputs differ.
        let tile = 8;
        for y in 0..h {
            for x in 0..w {
                let on_tile_edge =
                    x % tile == 0 || x % tile == tile - 1 || y % tile == 0 || y % tile == tile - 1;
                if !on_tile_edge {
                    assert_eq!(acc[y * w + x], perf[y * w + x], "interior ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn rows_li_exact_on_vertical_ramp() {
        let (w, h) = (16, 16);
        let data: Vec<f32> = (0..w * h).map(|i| (i / w) as f32).collect();
        let pass = cfg(IrScheme::RowsHalf, IrRecon::LinearInterpolation);
        let (_, perf, _) = run_pair(INVERT, &pass, w, h, &data);
        // invert(ramp): loaded rows exact; interpolated rows exact except
        // at tile borders where NN fallback applies.
        for y in 1..h - 1 {
            if y % 8 != 0 && y % 8 != 7 {
                for x in 0..w {
                    let expect = 1.0 - y as f32;
                    assert!(
                        (perf[y * w + x] - expect).abs() < 1e-5,
                        "({x},{y}): {} vs {expect}",
                        perf[y * w + x]
                    );
                }
            }
        }
    }

    #[test]
    fn cols_scheme_mirrors_rows() {
        let (w, h) = (16, 16);
        let data: Vec<f32> = (0..w * h).map(|i| (i % w) as f32).collect();
        let pass = cfg(IrScheme::ColsHalf, IrRecon::NearestNeighbor);
        let (_, perf, _) = run_pair(INVERT, &pass, w, h, &data);
        // Odd columns copy their left neighbor: value x-1.
        for y in 0..h {
            for x in (1..w).step_by(2) {
                let expect = 1.0 - (x - 1) as f32;
                assert_eq!(perf[y * w + x], expect, "({x},{y})");
            }
        }
    }

    #[test]
    fn rows_quarter_loads_every_fourth_row() {
        let (w, h) = (16, 16);
        let data: Vec<f32> = (0..w * h).map(|i| (i / w) as f32).collect();
        let pass = cfg(IrScheme::RowsQuarter, IrRecon::NearestNeighbor);
        let (_, perf, _) = run_pair(INVERT, &pass, w, h, &data);
        // Loaded rows (y % 4 == 0) are exact.
        for y in (0..h).step_by(4) {
            for x in 0..w {
                assert_eq!(perf[y * w + x], 1.0 - y as f32);
            }
        }
        // Skipped rows carry a loaded row's value (multiple of 4).
        for y in 0..h {
            let val = 1.0 - perf[y * w];
            assert_eq!(val as usize % 4, 0, "row {y} reconstructed from row {val}");
        }
    }

    #[test]
    fn pass_rejects_bad_configurations() {
        let prog = parse(INVERT).unwrap();
        // Stencil on a pointwise kernel.
        assert!(matches!(
            perforate_kernel(
                &prog.kernels[0],
                &cfg(IrScheme::Stencil, IrRecon::NearestNeighbor)
            ),
            Err(IrError::Transform(_))
        ));
        // LI with stencil.
        let blur = parse(BLUR).unwrap();
        assert!(matches!(
            perforate_kernel(
                &blur.kernels[0],
                &cfg(IrScheme::Stencil, IrRecon::LinearInterpolation)
            ),
            Err(IrError::Transform(_))
        ));
        // Zero tile.
        assert!(perforate_kernel(
            &blur.kernels[0],
            &PassConfig {
                scheme: IrScheme::RowsHalf,
                reconstruction: IrRecon::NearestNeighbor,
                tile_w: 0,
                tile_h: 8
            }
        )
        .is_err());
        // Rows2 on a too-flat tile.
        assert!(perforate_kernel(
            &prog.kernels[0],
            &PassConfig {
                scheme: IrScheme::RowsQuarter,
                reconstruction: IrRecon::NearestNeighbor,
                tile_w: 16,
                tile_h: 2
            }
        )
        .is_err());
    }

    #[test]
    fn pass_rejects_reserved_names() {
        let prog = parse(
            "kernel k(global const float* in, global float* out, int w, int h) {
                 int x = get_global_id(0);
                 int y = get_global_id(1);
                 int __evil = 0;
                 if (y >= h) { return; }
                 out[y * w + x] = in[y * w + x];
             }",
        )
        .unwrap();
        let err = perforate_kernel(
            &prog.kernels[0],
            &cfg(IrScheme::RowsHalf, IrRecon::NearestNeighbor),
        )
        .unwrap_err();
        assert!(err.to_string().contains("reserved"));
    }

    #[test]
    fn perforated_kernel_reduces_dram_reads_vs_accurate() {
        let (w, h) = (32, 32);
        let data = test_image(w, h);
        let prog = parse(INVERT).unwrap();
        let pass = cfg(IrScheme::RowsHalf, IrRecon::NearestNeighbor);
        let perforated = perforate_kernel(&prog.kernels[0], &pass).unwrap();

        let mut dev = Device::new(DeviceConfig::firepro_w5100()).unwrap();
        let input = dev.create_buffer_from("in", &data).unwrap();
        let out = dev.create_buffer::<f32>("out", w * h).unwrap();
        let args = [
            ("in", ArgValue::Buffer(input)),
            ("out", ArgValue::Buffer(out)),
            ("width", ArgValue::Int(w as i64)),
            ("height", ArgValue::Int(h as i64)),
        ];
        let range = NdRange::new_2d((w, h), (8, 8)).unwrap();
        let acc = IrKernel::new(prog.kernels[0].clone(), &args).unwrap();
        let r_acc = dev.launch(&acc, range).unwrap();
        let perf = IrKernel::new(perforated, &args).unwrap();
        let r_perf = dev.launch(&perf, range).unwrap();
        assert!(
            r_perf.stats.dram_read_transactions < r_acc.stats.dram_read_transactions,
            "perforated {} vs accurate {}",
            r_perf.stats.dram_read_transactions,
            r_acc.stats.dram_read_transactions
        );
        assert!(r_perf.timing.device_cycles < r_acc.timing.device_cycles);
    }
}
