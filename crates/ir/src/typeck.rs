//! Type checker for PerfCL kernels.
//!
//! Checks a [`KernelDef`] against OpenCL-like typing rules: implicit
//! `int → float` promotion in arithmetic and assignments, `%` on ints
//! only, boolean conditions, read-only `const` pointers, local arrays
//! declared at kernel scope, barriers only at the top level.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, KernelDef, ParamTy, ScalarTy, Stmt, UnOp};
use crate::builtins::Builtin;
use crate::error::IrError;
use crate::token::Loc;

/// What a name refers to during checking.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NameTy {
    Scalar(ScalarTy),
    GlobalPtr { elem: ScalarTy, is_const: bool },
    LocalArray(ScalarTy),
}

/// Type information produced by checking (local array declarations in
/// order, for the interpreter's local-buffer layout).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedInfo {
    /// `(name, element type)` of each `local` array, in declaration order.
    pub local_arrays: Vec<(String, ScalarTy)>,
}

struct Checker<'k> {
    kernel: &'k KernelDef,
    scopes: Vec<HashMap<String, NameTy>>,
    local_arrays: Vec<(String, ScalarTy)>,
}

/// Type-checks a kernel.
///
/// # Errors
///
/// Returns [`IrError::Type`] describing the first violation.
pub fn check(kernel: &KernelDef) -> Result<CheckedInfo, IrError> {
    let mut c = Checker {
        kernel,
        scopes: vec![HashMap::new()],
        local_arrays: Vec::new(),
    };
    for p in &kernel.params {
        let ty = match p.ty {
            ParamTy::Scalar(t) => NameTy::Scalar(t),
            ParamTy::GlobalPtr { elem, is_const } => NameTy::GlobalPtr { elem, is_const },
        };
        if c.scopes[0].insert(p.name.clone(), ty).is_some() {
            return Err(c.err(format!("duplicate parameter '{}'", p.name)));
        }
    }
    c.check_stmts(&kernel.body, true)?;
    Ok(CheckedInfo {
        local_arrays: c.local_arrays,
    })
}

impl Checker<'_> {
    fn err(&self, msg: String) -> IrError {
        IrError::Type {
            loc: self.kernel.loc,
            msg,
        }
    }

    fn lookup(&self, name: &str) -> Option<NameTy> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: NameTy) -> Result<(), IrError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_owned(), ty).is_some() {
            return Err(IrError::Type {
                loc: self.kernel.loc,
                msg: format!("redeclaration of '{name}' in the same scope"),
            });
        }
        Ok(())
    }

    fn check_stmts(&mut self, stmts: &[Stmt], top_level: bool) -> Result<(), IrError> {
        for stmt in stmts {
            self.check_stmt(stmt, top_level)?;
        }
        Ok(())
    }

    fn check_block(&mut self, stmts: &[Stmt]) -> Result<(), IrError> {
        self.scopes.push(HashMap::new());
        let r = self.check_stmts(stmts, false);
        self.scopes.pop();
        r
    }

    fn check_stmt(&mut self, stmt: &Stmt, top_level: bool) -> Result<(), IrError> {
        match stmt {
            Stmt::Decl { ty, name, init } => {
                let init_ty = self.expr_ty(init)?;
                self.coerce(init_ty, *ty, "initializer")?;
                self.declare(name, NameTy::Scalar(*ty))
            }
            Stmt::LocalDecl { elem, name, len } => {
                if !top_level {
                    return Err(self.err(format!(
                        "local array '{name}' must be declared at kernel scope"
                    )));
                }
                let len_ty = self.expr_ty(len)?;
                if len_ty != ScalarTy::Int {
                    return Err(self.err(format!("local array '{name}' length must be int")));
                }
                self.local_arrays.push((name.clone(), *elem));
                self.declare(name, NameTy::LocalArray(*elem))
            }
            Stmt::Assign { name, value } => {
                let Some(target) = self.lookup(name) else {
                    return Err(self.err(format!("assignment to undeclared variable '{name}'")));
                };
                let NameTy::Scalar(target_ty) = target else {
                    return Err(self.err(format!("cannot assign to buffer '{name}'")));
                };
                let value_ty = self.expr_ty(value)?;
                self.coerce(value_ty, target_ty, "assignment")
            }
            Stmt::Store { base, index, value } => {
                let elem = match self.lookup(base) {
                    Some(NameTy::GlobalPtr { elem, is_const }) => {
                        if is_const {
                            return Err(
                                self.err(format!("cannot store through const pointer '{base}'"))
                            );
                        }
                        elem
                    }
                    Some(NameTy::LocalArray(elem)) => elem,
                    Some(NameTy::Scalar(_)) => {
                        return Err(self.err(format!("'{base}' is not indexable")))
                    }
                    None => return Err(self.err(format!("unknown buffer '{base}'"))),
                };
                if self.expr_ty(index)? != ScalarTy::Int {
                    return Err(self.err(format!("index into '{base}' must be int")));
                }
                let value_ty = self.expr_ty(value)?;
                self.coerce(value_ty, elem, "store")
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.require_bool(cond, "if condition")?;
                self.check_block(then_body)?;
                self.check_block(else_body)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let r = (|| {
                    self.check_stmt(init, false)?;
                    self.require_bool(cond, "for condition")?;
                    self.check_stmt(step, false)?;
                    self.check_stmts(body, false)
                })();
                self.scopes.pop();
                r
            }
            Stmt::While { cond, body } => {
                self.require_bool(cond, "while condition")?;
                self.check_block(body)
            }
            Stmt::Barrier => {
                if top_level {
                    Ok(())
                } else {
                    Err(self
                        .err("barrier() is only allowed at the top level of a kernel body".into()))
                }
            }
            Stmt::Return => Ok(()),
        }
    }

    fn require_bool(&mut self, e: &Expr, what: &str) -> Result<(), IrError> {
        let t = self.expr_ty(e)?;
        if t != ScalarTy::Bool {
            return Err(self.err(format!("{what} must be bool, found {t}")));
        }
        Ok(())
    }

    fn coerce(&self, from: ScalarTy, to: ScalarTy, what: &str) -> Result<(), IrError> {
        let ok = from == to || (from == ScalarTy::Int && to == ScalarTy::Float);
        if ok {
            Ok(())
        } else {
            Err(self.err(format!("{what}: cannot convert {from} to {to}")))
        }
    }

    fn expr_ty(&mut self, e: &Expr) -> Result<ScalarTy, IrError> {
        match e {
            Expr::IntLit(_) => Ok(ScalarTy::Int),
            Expr::FloatLit(_) => Ok(ScalarTy::Float),
            Expr::BoolLit(_) => Ok(ScalarTy::Bool),
            Expr::Var(name) => match self.lookup(name) {
                Some(NameTy::Scalar(t)) => Ok(t),
                Some(_) => Err(self.err(format!("'{name}' is a buffer, not a scalar"))),
                None => Err(self.err(format!("unknown variable '{name}'"))),
            },
            Expr::Un { op, expr } => {
                let t = self.expr_ty(expr)?;
                match op {
                    UnOp::Neg => {
                        if matches!(t, ScalarTy::Int | ScalarTy::Float) {
                            Ok(t)
                        } else {
                            Err(self.err("negation needs a numeric operand".into()))
                        }
                    }
                    UnOp::Not => {
                        if t == ScalarTy::Bool {
                            Ok(ScalarTy::Bool)
                        } else {
                            Err(self.err("! needs a bool operand".into()))
                        }
                    }
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let lt = self.expr_ty(lhs)?;
                let rt = self.expr_ty(rhs)?;
                let numeric = |t: ScalarTy| matches!(t, ScalarTy::Int | ScalarTy::Float);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        if !numeric(lt) || !numeric(rt) {
                            return Err(self.err(format!(
                                "operator '{}' needs numeric operands, found {lt} and {rt}",
                                op.symbol()
                            )));
                        }
                        if lt == ScalarTy::Float || rt == ScalarTy::Float {
                            Ok(ScalarTy::Float)
                        } else {
                            Ok(ScalarTy::Int)
                        }
                    }
                    BinOp::Rem => {
                        if lt == ScalarTy::Int && rt == ScalarTy::Int {
                            Ok(ScalarTy::Int)
                        } else {
                            Err(self.err("% needs int operands".into()))
                        }
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        let bool_eq = lt == ScalarTy::Bool
                            && rt == ScalarTy::Bool
                            && matches!(op, BinOp::Eq | BinOp::Ne);
                        if (numeric(lt) && numeric(rt)) || bool_eq {
                            Ok(ScalarTy::Bool)
                        } else {
                            Err(self.err(format!(
                                "operator '{}' cannot compare {lt} and {rt}",
                                op.symbol()
                            )))
                        }
                    }
                    BinOp::And | BinOp::Or => {
                        if lt == ScalarTy::Bool && rt == ScalarTy::Bool {
                            Ok(ScalarTy::Bool)
                        } else {
                            Err(self.err(format!("operator '{}' needs bool operands", op.symbol())))
                        }
                    }
                }
            }
            Expr::Index { base, index } => {
                let elem = match self.lookup(base) {
                    Some(NameTy::GlobalPtr { elem, .. }) => elem,
                    Some(NameTy::LocalArray(elem)) => elem,
                    Some(NameTy::Scalar(_)) => {
                        return Err(self.err(format!("'{base}' is not indexable")))
                    }
                    None => return Err(self.err(format!("unknown buffer '{base}'"))),
                };
                if self.expr_ty(index)? != ScalarTy::Int {
                    return Err(self.err(format!("index into '{base}' must be int")));
                }
                Ok(elem)
            }
            Expr::Call { name, args } => {
                let Some(builtin) = Builtin::from_name(name) else {
                    return Err(self.err(format!("unknown function '{name}'")));
                };
                let arg_tys = args
                    .iter()
                    .map(|a| self.expr_ty(a))
                    .collect::<Result<Vec<_>, _>>()?;
                builtin.result_ty(&arg_tys).ok_or_else(|| {
                    self.err(format!(
                        "invalid arguments to '{name}': ({})",
                        arg_tys
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })
            }
        }
    }
}

/// Convenience: parse + check a single-kernel program.
///
/// # Errors
///
/// Propagates lex, parse and type errors.
pub fn check_source(src: &str) -> Result<(KernelDef, CheckedInfo), IrError> {
    let prog = crate::parser::parse(src)?;
    let kernel = prog.kernels.into_iter().next().ok_or(IrError::Parse {
        loc: Loc::start(),
        msg: "expected a kernel".into(),
    })?;
    let info = check(&kernel)?;
    Ok((kernel, info))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) {
        check_source(src).unwrap_or_else(|e| panic!("expected well-typed: {e}\n{src}"));
    }

    fn bad(src: &str) -> IrError {
        match check_source(src) {
            Ok(_) => panic!("expected type error:\n{src}"),
            Err(e) => e,
        }
    }

    #[test]
    fn accepts_the_canonical_copy_kernel() {
        ok(
            "kernel copy(global const float* src, global float* dst, int n) {
               int i = get_global_id(0);
               if (i < n) { dst[i] = src[i]; }
           }",
        );
    }

    #[test]
    fn int_promotes_to_float() {
        ok("kernel k(global float* out) {
               float v = 1;
               v = v + 2;
               out[0] = v * 3;
           }");
    }

    #[test]
    fn float_does_not_demote_to_int() {
        let e = bad("kernel k() { int x = 1.5; }");
        assert!(e.to_string().contains("cannot convert"));
    }

    #[test]
    fn rem_requires_ints() {
        bad("kernel k() { float x = 1.0 % 2.0; }");
    }

    #[test]
    fn conditions_must_be_bool() {
        bad("kernel k() { if (1) { return; } }");
        bad("kernel k() { while (0.5) { return; } }");
        ok("kernel k() { if (1 < 2) { return; } }");
    }

    #[test]
    fn const_pointers_are_read_only() {
        let e = bad("kernel k(global const float* b) { b[0] = 1.0; }");
        assert!(e.to_string().contains("const"));
    }

    #[test]
    fn stores_typecheck_elem() {
        bad("kernel k(global int* b) { b[0] = 1.5; }");
        ok("kernel k(global float* b) { b[0] = 1; }");
    }

    #[test]
    fn unknown_names_are_errors() {
        bad("kernel k() { int x = y; }");
        bad("kernel k() { nothere[0] = 1.0; }");
        bad("kernel k() { int x = mystery(1); }");
    }

    #[test]
    fn scoping_rules() {
        // Inner declarations do not leak.
        bad("kernel k() { if (true) { int x = 1; } int y = x; }");
        // Shadowing in an inner scope is fine.
        ok("kernel k() { int x = 1; if (true) { int x = 2; x = 3; } x = 4; }");
        // Redeclaration in the same scope is not.
        bad("kernel k() { int x = 1; int x = 2; }");
        // For-loop variable scoped to the loop.
        bad("kernel k() { for (int i = 0; i < 3; i = i + 1) { } i = 1; }");
    }

    #[test]
    fn local_arrays_only_at_top_level() {
        ok("kernel k() { local float t[16]; }");
        bad("kernel k() { if (true) { local float t[16]; } }");
    }

    #[test]
    fn barriers_only_at_top_level() {
        ok("kernel k() { barrier(); }");
        let e = bad("kernel k() { if (true) { barrier(); } }");
        assert!(e.to_string().contains("barrier"));
    }

    #[test]
    fn builtin_signatures_checked() {
        bad("kernel k() { int x = get_global_id(1.0); }");
        bad("kernel k() { float x = clamp(1.0, 2.0); }");
        ok("kernel k() { float x = clamp(1.0, 0.0, 2.0); int y = clamp(1, 0, 2); }");
    }

    #[test]
    fn logical_ops_require_bool() {
        bad("kernel k(int a) { bool b = a && true; }");
        ok("kernel k(int a) { bool b = a > 0 && true; }");
    }

    #[test]
    fn checked_info_lists_local_arrays_in_order() {
        let (_, info) = check_source("kernel k() { local float a[4]; local int b[8]; }").unwrap();
        assert_eq!(
            info.local_arrays,
            vec![
                ("a".to_owned(), ScalarTy::Float),
                ("b".to_owned(), ScalarTy::Int)
            ]
        );
    }

    #[test]
    fn duplicate_params_rejected() {
        bad("kernel k(int a, int a) { return; }");
    }
}
